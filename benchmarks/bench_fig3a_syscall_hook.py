"""Figure 3a: B-tree lookup throughput, reissuing from the syscall layer.

Paper's claim: the syscall-dispatch hook only removes boundary crossings
and app-side processing — each reissue still walks ext4 and the block
layer — so the speedup is modest, topping out around 1.25x.
"""

import sys

import harness

from repro.bench import fig3_throughput, format_table

COLUMNS = ["depth", "threads", "baseline_klookups", "syscall_klookups",
           "speedup"]

FULL = {"hook": "syscall", "depths": (2, 6, 10),
        "threads": (1, 2, 4, 6, 8, 12), "duration_ns": 8_000_000}
SMOKE = {"hook": "syscall", "depths": (4,), "threads": (1,),
         "duration_ns": 2_000_000}


def check_shape(rows):
    # Modest but real gains, bounded the way the paper reports.
    speedups = [row["speedup"] for row in rows]
    assert all(speedup > 1.0 for speedup in speedups)
    assert max(speedups) <= 1.35


def test_fig3a_syscall_hook(benchmark):
    rows = benchmark.pedantic(fig3_throughput, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table(
        "Figure 3a — lookups/sec, syscall-dispatch hook vs baseline",
        COLUMNS, rows))
    speedups = [row["speedup"] for row in rows]
    benchmark.extra_info["max_speedup"] = round(max(speedups), 3)
    # Modest but real gains, bounded the way the paper reports.
    assert all(speedup > 1.05 for speedup in speedups)
    assert max(speedups) <= 1.35
    # Baseline saturates at 6 threads (6 cores).
    depth6 = {row["threads"]: row for row in rows if row["depth"] == 6}
    assert depth6[12]["baseline_klookups"] < depth6[6][
        "baseline_klookups"] * 1.05


SPEC = harness.BenchSpec(
    name="fig3a_syscall_hook",
    title="Figure 3a — lookups/sec, syscall-dispatch hook vs baseline",
    func=fig3_throughput,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="speedups modest and bounded (<= 1.35x)",
    metric_cols=["speedup"],
    throughput=("syscall_klookups", "klookups/s", "max"),
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
