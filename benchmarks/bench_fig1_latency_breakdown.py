"""Figure 1: fraction of 512 B random-read latency spent in kernel software.

Paper's claim: the kernel's share is negligible on an HDD, a few percent on
a NAND SSD, 10-15 % on first-generation Optane, and about *half* on
second-generation Optane — which is the whole motivation for pushing BPF
into the completion path.
"""

import sys

import harness

from repro.bench import fig1_latency_breakdown, format_table

COLUMNS = ["device", "total_us", "device_us", "software_us", "software_pct"]

FULL = {"reads": 300}
SMOKE = {"reads": 30}


def check_shape(rows):
    # The software share grows monotonically with device speed.
    pcts = [row["software_pct"] for row in rows]
    assert pcts == sorted(pcts)
    assert pcts[-1] > 40


def test_fig1_latency_breakdown(benchmark):
    rows = benchmark.pedantic(fig1_latency_breakdown,
                              kwargs=FULL, rounds=1, iterations=1)
    print()
    print(format_table("Figure 1 — kernel overhead per device generation",
                       COLUMNS, rows))
    by_device = {row["device"]: row for row in rows}
    benchmark.extra_info["software_pct"] = {
        name: round(row["software_pct"], 2) for name, row in by_device.items()
    }
    # Shape: the software share grows monotonically with device speed.
    assert (by_device["HDD"]["software_pct"]
            < by_device["NAND"]["software_pct"]
            < by_device["NVM-1"]["software_pct"]
            < by_device["NVM-2"]["software_pct"])
    # Bands the paper reports.
    assert by_device["HDD"]["software_pct"] < 1.0
    assert by_device["NAND"]["software_pct"] < 10.0
    assert 8.0 <= by_device["NVM-1"]["software_pct"] <= 18.0
    assert 40.0 <= by_device["NVM-2"]["software_pct"] <= 55.0


SPEC = harness.BenchSpec(
    name="fig1_latency_breakdown",
    title="Figure 1 — kernel overhead per device generation",
    func=fig1_latency_breakdown,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="software share grows with device speed, NVM-2 ~half",
    metrics_fn=lambda rows: {
        f"{row['device']}_software_pct": round(row["software_pct"], 4)
        for row in rows},
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
