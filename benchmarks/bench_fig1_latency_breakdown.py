"""Figure 1: fraction of 512 B random-read latency spent in kernel software.

Paper's claim: the kernel's share is negligible on an HDD, a few percent on
a NAND SSD, 10-15 % on first-generation Optane, and about *half* on
second-generation Optane — which is the whole motivation for pushing BPF
into the completion path.
"""

from repro.bench import fig1_latency_breakdown, format_table

COLUMNS = ["device", "total_us", "device_us", "software_us", "software_pct"]


def test_fig1_latency_breakdown(benchmark):
    rows = benchmark.pedantic(fig1_latency_breakdown,
                              kwargs={"reads": 300}, rounds=1, iterations=1)
    print()
    print(format_table("Figure 1 — kernel overhead per device generation",
                       COLUMNS, rows))
    by_device = {row["device"]: row for row in rows}
    benchmark.extra_info["software_pct"] = {
        name: round(row["software_pct"], 2) for name, row in by_device.items()
    }
    # Shape: the software share grows monotonically with device speed.
    assert (by_device["HDD"]["software_pct"]
            < by_device["NAND"]["software_pct"]
            < by_device["NVM-1"]["software_pct"]
            < by_device["NVM-2"]["software_pct"])
    # Bands the paper reports.
    assert by_device["HDD"]["software_pct"] < 1.0
    assert by_device["NAND"]["software_pct"] < 10.0
    assert 8.0 <= by_device["NVM-1"]["software_pct"] <= 18.0
    assert 40.0 <= by_device["NVM-2"]["software_pct"] <= 55.0
