"""Fault resilience: availability and tail latency of chained lookups.

A seed-deterministic fault plan injects transient media errors (in
bursts), controller timeouts, and latency spikes into the NVMe device
while closed-loop workers run robust chained B-tree lookups.  The
expectation is graceful degradation: availability stays high because
faulted hops are retried by the driver (bounded, with backoff) or
degraded to a user-space restart, the p99 grows with the fault rate,
and no lookup ever hangs — every injected fault is accounted for as a
retry, a fallback, or a surfaced error.

Runnable directly for the CI smoke test::

    PYTHONPATH=src python benchmarks/bench_fault_resilience.py --quick
"""

import sys

import harness

from repro.bench import fault_resilience, format_table

COLUMNS = ["fault_rate", "klookups_per_s", "p99_latency_us",
           "availability_pct", "injected", "retries", "timeouts",
           "fallbacks", "surfaced_errors"]

FULL = {"rates": (0.0, 0.001, 0.01, 0.05), "depth": 4, "threads": 4,
        "duration_ns": 4_000_000}
QUICK = {"rates": (0.0, 0.01), "depth": 3, "threads": 2,
         "duration_ns": 1_500_000}


def check_shape(rows):
    """The graceful-degradation invariants any run must satisfy."""
    clean = rows[0]
    assert clean["fault_rate"] == 0.0
    # A no-fault run injects, retries, and degrades nothing.
    assert clean["injected"] == 0
    assert clean["retries"] == 0
    assert clean["fallbacks"] == 0
    assert clean["surfaced_errors"] == 0
    assert clean["availability_pct"] == 100.0
    for row in rows[1:]:
        # Faults were actually injected and handled.
        assert row["injected"] > 0
        assert row["retries"] > 0
        # Bounded retries: the retry machinery never loops unboundedly.
        assert row["retries"] <= row["injected"] * 8
        # At the modest rates swept here, chained lookups stay available.
        assert row["availability_pct"] >= 90.0
        # Paying for recovery: tail latency does not beat the clean run.
        assert row["p99_latency_us"] >= clean["p99_latency_us"] * 0.95


def test_fault_resilience(benchmark):
    rows = benchmark.pedantic(fault_resilience, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table(
        "Resilience — chained lookups under an injected fault plan",
        COLUMNS, rows))
    check_shape(rows)
    worst = rows[-1]
    benchmark.extra_info["worst_availability_pct"] = round(
        worst["availability_pct"], 2)
    benchmark.extra_info["worst_p99_us"] = round(worst["p99_latency_us"], 2)
    # 1 % transient faults must not visibly dent availability.
    one_pct = next(row for row in rows if row["fault_rate"] == 0.01)
    assert one_pct["availability_pct"] >= 99.0


SPEC = harness.BenchSpec(
    name="fault_resilience",
    title="Resilience — chained lookups under an injected fault plan",
    func=fault_resilience,
    columns=COLUMNS,
    full=FULL,
    smoke=QUICK,
    check=check_shape,
    shape_note="bounded retries, availability >= 90 % at all rates",
    metric_cols=["availability_pct", "p99_latency_us"],
    throughput=("klookups_per_s", "klookups/s", "max"),
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
