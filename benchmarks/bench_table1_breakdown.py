"""Table 1: per-layer latency of a 512 B random read() on gen-2 Optane.

Paper's numbers (ns): kernel crossing 351, read syscall 199, ext4 2006,
bio 379, NVMe driver 113, device 3224 — 6.27 us total, ~48.6 % software.
"""

import sys

import harness

from repro.bench import format_table, table1_breakdown

COLUMNS = ["layer", "measured_ns", "paper_ns", "measured_pct"]

FULL = {"reads": 300}
SMOKE = {"reads": 30}


def check_shape(rows):
    # Every layer within 2 % of the paper's measurement.
    for row in rows:
        assert abs(row["measured_ns"] - row["paper_ns"]) <= \
            max(2, 0.02 * row["paper_ns"]), row["layer"]


def test_table1_breakdown(benchmark):
    rows = benchmark.pedantic(table1_breakdown, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table("Table 1 — 512 B read() latency breakdown (NVM-2)",
                       COLUMNS, rows))
    by_layer = {row["layer"]: row for row in rows}
    benchmark.extra_info["total_ns"] = by_layer["total"]["measured_ns"]
    # Every layer within 2 % of the paper's measurement.
    for layer, row in by_layer.items():
        assert abs(row["measured_ns"] - row["paper_ns"]) <= \
            max(2, 0.02 * row["paper_ns"]), layer
    # The file system dominates the software side; the device is ~half.
    assert by_layer["ext4"]["measured_pct"] > 25.0
    assert 45.0 <= by_layer["storage device"]["measured_pct"] <= 55.0


SPEC = harness.BenchSpec(
    name="table1_breakdown",
    title="Table 1 — 512 B read() latency breakdown (NVM-2)",
    func=table1_breakdown,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="every layer within 2 % of the paper's numbers",
    metrics_fn=lambda rows: {
        f"{row['layer'].replace(' ', '_')}_ns": row["measured_ns"]
        for row in rows},
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
