"""Observability overhead: the disabled bus must be a no-op fast path.

Every tracepoint call site is guarded by ``if bus.enabled:`` so a run
with the default (disabled) bus pays only a predicate check per event
site.  This benchmark times the same Figure-3b workload with the bus
disabled and enabled, verifies that observation never perturbs the
simulated results (identical rows either way — the bus is read-only),
and that the disabled path emits nothing.
"""

import time

from repro.bench import fig3_throughput
from repro.faults import FaultSpec, fault_injection
from repro.obs import ObsSession, get_default_bus

QUICK = {"hook": "nvme", "depths": (4,), "threads": (1, 6),
         "duration_ns": 2_000_000}


def _run_disabled():
    return fig3_throughput(**QUICK)


def _run_enabled():
    with ObsSession() as obs:
        rows = fig3_throughput(**QUICK)
    return rows, obs


def test_obs_disabled_is_noop(benchmark):
    rows_disabled = benchmark.pedantic(_run_disabled, rounds=1, iterations=1)
    assert not get_default_bus().enabled
    assert get_default_bus().events_emitted == 0

    start = time.perf_counter()
    rows_enabled, obs = _run_enabled()
    enabled_s = time.perf_counter() - start

    # Observation is read-only: the simulation's results are identical.
    assert rows_enabled == rows_disabled
    assert obs.bus.events_emitted > 0

    disabled_s = benchmark.stats.stats.mean
    benchmark.extra_info["enabled_s"] = round(enabled_s, 4)
    benchmark.extra_info["events"] = obs.bus.events_emitted
    benchmark.extra_info["overhead_x"] = round(enabled_s / disabled_s, 3)
    # The disabled path must never be slower than full observation
    # (small tolerance for timer noise on a ~1 s workload).
    assert disabled_s < enabled_s * 1.10


def test_fault_hooks_are_noop_when_idle(benchmark):
    """An armed all-zero-rate fault plan neither perturbs nor slows runs.

    The fault-injection call sites follow the same discipline as the
    tracepoints: with no plan armed they are a ``None`` check, and even a
    plan whose every rate is zero must leave the simulated results
    byte-identical (the plan draws from its own RNG streams, never the
    device's).  The wall-clock cost of the armed-but-idle hooks must stay
    within a few percent of the unhooked run.
    """
    rows_plain = benchmark.pedantic(_run_disabled, rounds=1, iterations=1)

    idle_spec = FaultSpec(seed=5)
    assert not idle_spec.any_faults()
    start = time.perf_counter()
    with fault_injection(idle_spec):
        rows_armed = fig3_throughput(**QUICK)
    armed_s = time.perf_counter() - start

    assert rows_armed == rows_plain
    plain_s = benchmark.stats.stats.mean
    benchmark.extra_info["armed_s"] = round(armed_s, 4)
    benchmark.extra_info["overhead_x"] = round(armed_s / plain_s, 3)
    # Same tolerance style as the bus test: the target is <2 % overhead,
    # asserted with headroom for timer noise on a ~1 s workload.
    assert armed_s < plain_s * 1.10


def test_disabled_emit_is_cheap():
    """A disabled guard costs a predicate, not an event construction."""
    bus = get_default_bus()
    assert not bus.enabled
    loops = 200_000
    start = time.perf_counter()
    for _ in range(loops):
        if bus.enabled:  # pragma: no cover - never taken
            bus.emit("never", 0)
    per_site_ns = (time.perf_counter() - start) * 1e9 / loops
    # Generous bound: a guarded call site is tens of ns, not microseconds.
    assert per_site_ns < 2_000
