"""Observability overhead: the disabled bus must be a no-op fast path.

Every tracepoint call site is guarded by ``if bus.enabled:`` so a run
with the default (disabled) bus pays only a predicate check per event
site.  This benchmark times the same Figure-3b workload with the bus
disabled and enabled, verifies that observation never perturbs the
simulated results (identical rows either way — the bus is read-only),
and that the disabled path emits nothing.  The self-profiler
(``repro.perf``) makes the same contract, so it is measured under the
same harness: profiled runs must produce identical rows too.

In full (non-smoke) mode the documented <5 % disabled-bus bound is
asserted outright: the best-of-N disabled run may cost at most 1.05x
the best-of-N fully-observed run, and the measured ratio lands in
``BENCH_obs_overhead.json``.
"""

import sys
import time

import harness

from repro.bench import fig3_throughput
from repro.faults import FaultSpec, fault_injection
from repro.obs import ObsSession, get_default_bus
from repro.perf import profiling

QUICK = {"hook": "nvme", "depths": (4,), "threads": (1, 6),
         "duration_ns": 2_000_000}
FULL_WORKLOAD = {"hook": "nvme", "depths": (4,), "threads": (1, 6),
                 "duration_ns": 8_000_000}

COLUMNS = ["instrumentation", "best_s", "overhead_x"]

FULL = {"workload": None, "rounds": 3, "assert_bound": True}
SMOKE = {"workload": QUICK, "rounds": 1, "assert_bound": False}


def _timed_best(fn, rounds):
    """Best-of-N wall time plus the (identical) rows of every round."""
    best_s = None
    rows = None
    for _ in range(rounds):
        start = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - start
        if rows is None:
            rows = out
        else:
            assert out == rows, "workload rows changed between rounds"
        if best_s is None or elapsed < best_s:
            best_s = elapsed
    return best_s, rows


def overhead_comparison(workload=None, rounds=3, assert_bound=True):
    """One workload, three instrumentation settings, identical results.

    Returns one row per setting with best-of-``rounds`` wall time and
    the overhead relative to the uninstrumented run.  ``assert_bound``
    (full mode) enforces the documented <5 % disabled-bus bound.
    """
    workload = workload or FULL_WORKLOAD

    disabled_s, rows_disabled = _timed_best(
        lambda: fig3_throughput(**workload), rounds)

    def enabled_run():
        with ObsSession():
            return fig3_throughput(**workload)

    enabled_s, rows_enabled = _timed_best(enabled_run, rounds)

    def profiled_run():
        with profiling():
            return fig3_throughput(**workload)

    profiled_s, rows_profiled = _timed_best(profiled_run, rounds)

    # Neither the bus nor the profiler may perturb the simulation.
    assert rows_enabled == rows_disabled
    assert rows_profiled == rows_disabled

    if assert_bound:
        # The documented bound: the disabled fast path costs at most 5 %
        # of a fully-observed run's wall time.
        assert disabled_s <= enabled_s * 1.05, (
            f"disabled bus not a fast path: {disabled_s:.4f}s vs "
            f"enabled {enabled_s:.4f}s")

    return [
        {"instrumentation": "off", "best_s": round(disabled_s, 4),
         "overhead_x": 1.0},
        {"instrumentation": "obs-bus", "best_s": round(enabled_s, 4),
         "overhead_x": round(enabled_s / disabled_s, 3)},
        {"instrumentation": "profiler", "best_s": round(profiled_s, 4),
         "overhead_x": round(profiled_s / disabled_s, 3)},
    ]


def check_shape(rows):
    by_mode = {row["instrumentation"]: row for row in rows}
    assert by_mode["off"]["overhead_x"] == 1.0
    assert by_mode["obs-bus"]["best_s"] > 0
    assert by_mode["profiler"]["best_s"] > 0


def _overhead_metrics(rows):
    by_mode = {row["instrumentation"]: row for row in rows}
    return {
        "disabled_vs_enabled_x": round(
            by_mode["off"]["best_s"] / by_mode["obs-bus"]["best_s"], 4),
        "profiler_overhead_x": by_mode["profiler"]["overhead_x"],
        "obs_bus_overhead_x": by_mode["obs-bus"]["overhead_x"],
    }


SPEC = harness.BenchSpec(
    name="obs_overhead",
    title="Observability overhead — off vs obs-bus vs profiler",
    func=overhead_comparison,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="identical sim rows under all instrumentation settings",
    metrics_fn=_overhead_metrics,
    deterministic=False,  # rows carry wall-clock times
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


def _run_disabled():
    return fig3_throughput(**QUICK)


def _run_enabled():
    with ObsSession() as obs:
        rows = fig3_throughput(**QUICK)
    return rows, obs


def test_obs_disabled_is_noop(benchmark):
    rows_disabled = benchmark.pedantic(_run_disabled, rounds=1, iterations=1)
    assert not get_default_bus().enabled
    assert get_default_bus().events_emitted == 0

    start = time.perf_counter()
    rows_enabled, obs = _run_enabled()
    enabled_s = time.perf_counter() - start

    # Observation is read-only: the simulation's results are identical.
    assert rows_enabled == rows_disabled
    assert obs.bus.events_emitted > 0

    disabled_s = benchmark.stats.stats.mean
    benchmark.extra_info["enabled_s"] = round(enabled_s, 4)
    benchmark.extra_info["events"] = obs.bus.events_emitted
    benchmark.extra_info["overhead_x"] = round(enabled_s / disabled_s, 3)
    # The disabled path must never be slower than full observation
    # (small tolerance for timer noise on a ~1 s workload).
    assert disabled_s < enabled_s * 1.10


def test_fault_hooks_are_noop_when_idle(benchmark):
    """An armed all-zero-rate fault plan neither perturbs nor slows runs.

    The fault-injection call sites follow the same discipline as the
    tracepoints: with no plan armed they are a ``None`` check, and even a
    plan whose every rate is zero must leave the simulated results
    byte-identical (the plan draws from its own RNG streams, never the
    device's).  The wall-clock cost of the armed-but-idle hooks must stay
    within a few percent of the unhooked run.
    """
    rows_plain = benchmark.pedantic(_run_disabled, rounds=1, iterations=1)

    idle_spec = FaultSpec(seed=5)
    assert not idle_spec.any_faults()
    start = time.perf_counter()
    with fault_injection(idle_spec):
        rows_armed = fig3_throughput(**QUICK)
    armed_s = time.perf_counter() - start

    assert rows_armed == rows_plain
    plain_s = benchmark.stats.stats.mean
    benchmark.extra_info["armed_s"] = round(armed_s, 4)
    benchmark.extra_info["overhead_x"] = round(armed_s / plain_s, 3)
    # Same tolerance style as the bus test: the target is <2 % overhead,
    # asserted with headroom for timer noise on a ~1 s workload.
    assert armed_s < plain_s * 1.10


def test_disabled_emit_is_cheap():
    """A disabled guard costs a predicate, not an event construction."""
    bus = get_default_bus()
    assert not bus.enabled
    loops = 200_000
    start = time.perf_counter()
    for _ in range(loops):
        if bus.enabled:  # pragma: no cover - never taken
            bus.emit("never", 0)
    per_site_ns = (time.perf_counter() - start) * 1e9 / loops
    # Generous bound: a guarded call site is tens of ns, not microseconds.
    assert per_site_ns < 2_000


if __name__ == "__main__":
    sys.exit(main())
