"""Ablation: eBPF interpreter vs JIT on the completion path (§3).

The paper notes programs "can be executed either using an interpreter or a
just-in-time (JIT) compiler".  The per-hop BPF cost sits directly on the
device's completion path, so execution mode shifts end-to-end latency by
(insns x cost-delta) per hop.
"""

from repro.bench import ablation_vm_mode, format_table

COLUMNS = ["mode", "depth", "mean_latency_us", "speedup_vs_baseline"]


def test_ablation_vm_mode(benchmark):
    rows = benchmark.pedantic(ablation_vm_mode,
                              kwargs={"depth": 6, "operations": 200},
                              rounds=1, iterations=1)
    print()
    print(format_table("Ablation — interpreter vs JIT", COLUMNS, rows))
    by_mode = {row["mode"]: row for row in rows}
    benchmark.extra_info["jit_gain_pct"] = round(
        100 * (1 - by_mode["jit"]["mean_latency_us"] /
               by_mode["interp"]["mean_latency_us"]), 2)
    # JIT is strictly faster, and both beat the baseline.
    assert by_mode["jit"]["mean_latency_us"] < \
        by_mode["interp"]["mean_latency_us"]
    assert by_mode["interp"]["speedup_vs_baseline"] > 1.0
    # But the delta is small relative to device time (< 10 %): the paper's
    # design works even with the interpreter.
    assert by_mode["jit"]["mean_latency_us"] > \
        0.90 * by_mode["interp"]["mean_latency_us"]
