"""Ablation: eBPF interpreter vs JIT vs fused blocks on the completion path.

The paper notes programs "can be executed either using an interpreter or a
just-in-time (JIT) compiler".  The per-hop BPF cost sits directly on the
device's completion path, so execution mode shifts end-to-end latency by
(insns x cost-delta) per hop.  The third tier (``block``, the simulator's
default) charges the same simulated cost as ``jit`` — its win is simulator
wall-clock, which this bench's harness timing captures.
"""

import sys

import harness

from repro.bench import ablation_vm_mode, format_table

COLUMNS = ["mode", "depth", "mean_latency_us", "speedup_vs_baseline"]

FULL = {"depth": 6, "operations": 200}
SMOKE = {"depth": 3, "operations": 20}


def check_shape(rows):
    by_mode = {row["mode"]: row for row in rows}
    # Compiled tiers are never slower, and every tier beats the baseline.
    assert by_mode["jit"]["mean_latency_us"] <= \
        by_mode["interp"]["mean_latency_us"]
    # block models the same per-hop cost as jit: identical simulated time.
    assert by_mode["block"]["mean_latency_us"] == \
        by_mode["jit"]["mean_latency_us"]
    assert by_mode["interp"]["speedup_vs_baseline"] > 1.0


def test_ablation_vm_mode(benchmark):
    rows = benchmark.pedantic(ablation_vm_mode, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table("Ablation — interp vs jit vs block", COLUMNS, rows))
    by_mode = {row["mode"]: row for row in rows}
    benchmark.extra_info["jit_gain_pct"] = round(
        100 * (1 - by_mode["jit"]["mean_latency_us"] /
               by_mode["interp"]["mean_latency_us"]), 2)
    # JIT is strictly faster, and both beat the baseline.
    assert by_mode["jit"]["mean_latency_us"] < \
        by_mode["interp"]["mean_latency_us"]
    assert by_mode["interp"]["speedup_vs_baseline"] > 1.0
    # But the delta is small relative to device time (< 10 %): the paper's
    # design works even with the interpreter.
    assert by_mode["jit"]["mean_latency_us"] > \
        0.90 * by_mode["interp"]["mean_latency_us"]
    # The fused-block tier models the same per-hop cost as the JIT.
    assert by_mode["block"]["mean_latency_us"] == \
        by_mode["jit"]["mean_latency_us"]


SPEC = harness.BenchSpec(
    name="ablation_vm_mode",
    title="Ablation — interp vs jit vs block",
    func=ablation_vm_mode,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="jit <= interp latency, block == jit, all beat baseline",
    metric_cols=["mean_latency_us", "speedup_vs_baseline"],
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
