"""Figure 3b: B-tree lookup throughput, reissuing from the NVMe driver.

Paper's claims: speedup reaches ~2.5x; relative gains appear once the
baseline saturates the 6 cores at 6 threads; deeper trees gain more
because every level compounds the number of cheaply reissued requests.
"""

import sys

import harness

from repro.bench import fig3_throughput, format_table

COLUMNS = ["depth", "threads", "baseline_klookups", "nvme_klookups",
           "speedup"]

FULL = {"hook": "nvme", "depths": (2, 6, 10),
        "threads": (1, 2, 4, 6, 8, 12), "duration_ns": 8_000_000}
SMOKE = {"hook": "nvme", "depths": (4,), "threads": (1, 6),
         "duration_ns": 2_000_000}


def check_shape(rows):
    # The NVMe hook beats the baseline everywhere.
    assert all(row["speedup"] > 1.1 for row in rows)


def test_fig3b_nvme_hook(benchmark):
    rows = benchmark.pedantic(fig3_throughput, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table(
        "Figure 3b — lookups/sec, NVMe-driver hook vs baseline",
        COLUMNS, rows))
    benchmark.extra_info["max_speedup"] = round(
        max(row["speedup"] for row in rows), 3)

    def cell(depth, threads):
        return next(row for row in rows
                    if row["depth"] == depth and row["threads"] == threads)

    # The NVMe hook beats the baseline everywhere.
    assert all(row["speedup"] > 1.2 for row in rows)
    # The headline factor: ~2.5x once the baseline is CPU-saturated.
    assert 2.2 <= max(row["speedup"] for row in rows) <= 3.2
    # Gains grow once the baseline saturates at 6 threads...
    assert cell(6, 12)["speedup"] > cell(6, 6)["speedup"] * 1.2
    # ...and the baseline itself stops scaling there.
    assert cell(6, 12)["baseline_klookups"] < \
        cell(6, 6)["baseline_klookups"] * 1.05
    # Deeper trees gain more (at saturation).
    assert cell(10, 12)["speedup"] >= cell(2, 12)["speedup"] * 0.95


SPEC = harness.BenchSpec(
    name="fig3b_nvme_hook",
    title="Figure 3b — lookups/sec, NVMe-driver hook vs baseline",
    func=fig3_throughput,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="NVMe hook beats baseline at every cell",
    metric_cols=["speedup"],
    throughput=("nvme_klookups", "klookups/s", "max"),
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
