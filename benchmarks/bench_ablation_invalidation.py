"""Ablation: extent-cache invalidation rate (§4, Translation & Security).

The paper's protocol is deliberately heavy-handed: any unmap kills every
in-flight chain and forces a re-install ioctl.  That is cheap only because
invalidations are rare.  This sweep injects extent churn at increasing
rates and measures how chain throughput and latency degrade — quantifying
the "invalidations need to be rare" claim.
"""

import sys

import harness

from repro.bench import ablation_invalidation_rate, format_table

COLUMNS = ["churn_interval_us", "klookups_per_s", "mean_latency_us",
           "invalidations", "refresh_ioctls"]

FULL = {"intervals_us": (None, 5000, 1000, 200), "depth": 4,
        "duration_ns": 8_000_000}
SMOKE = {"intervals_us": (None, 1000), "depth": 3,
         "duration_ns": 2_000_000}


def check_shape(rows):
    # No churn -> no invalidations; churn -> invalidations and slowdown.
    assert rows[0]["invalidations"] == 0
    assert rows[-1]["invalidations"] > 0
    assert rows[-1]["klookups_per_s"] < rows[0]["klookups_per_s"]


def test_ablation_invalidation_rate(benchmark):
    rows = benchmark.pedantic(ablation_invalidation_rate, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table("Ablation — extent churn vs chain throughput",
                       COLUMNS, rows))
    benchmark.extra_info["throughput_loss_pct"] = round(
        100 * (1 - rows[-1]["klookups_per_s"] / rows[0]["klookups_per_s"]),
        2)
    # No churn -> no invalidations.
    assert rows[0]["invalidations"] == 0
    # More churn -> more invalidations and lower throughput.
    invalidations = [row["invalidations"] for row in rows]
    assert all(a <= b for a, b in zip(invalidations, invalidations[1:]))
    assert rows[-1]["invalidations"] > 0
    assert rows[-1]["klookups_per_s"] < rows[0]["klookups_per_s"]
    # At rare churn (5 ms) the cost is negligible (< 5 %).
    assert rows[1]["klookups_per_s"] > 0.95 * rows[0]["klookups_per_s"]


SPEC = harness.BenchSpec(
    name="ablation_invalidation",
    title="Ablation — extent churn vs chain throughput",
    func=ablation_invalidation_rate,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="churn costs throughput; no churn, no invalidations",
    metric_cols=["invalidations", "refresh_ioctls", "mean_latency_us"],
    throughput=("klookups_per_s", "klookups/s", "max"),
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
