"""Shared benchmark runner: every ``bench_*.py`` emits ``BENCH_<name>.json``.

Each benchmark module declares a :class:`BenchSpec` (callable + full and
smoke kwargs + table columns + shape check) and delegates its ``main`` to
:func:`bench_main`, which prints the usual table and — with ``--json`` —
writes a uniform ``repro-bench/1`` document (see
:mod:`repro.perf.benchresult`): wall-clock rounds, deterministic metrics,
throughput, and a machine fingerprint.  Those documents are the repo's
perf trajectory; committed baselines live in ``benchmarks/baselines/``
and ``scripts/check_bench_regression.py`` diffs fresh runs against them.

Run one benchmark::

    python benchmarks/bench_net_pushdown.py --smoke --json -

Run the whole suite (the CI regression path)::

    python benchmarks/harness.py --all --smoke --out bench_results

Importing ``harness`` first also makes ``repro`` importable when a bench
file is run as a plain script without ``PYTHONPATH=src``.
"""

import argparse
import importlib
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))

try:  # pragma: no cover - exercised via subprocess runs
    import repro  # noqa: F401
except ImportError:  # running as a script without PYTHONPATH=src
    sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))

from repro.bench.tables import format_table
from repro.perf import BenchResult

__all__ = ["BenchSpec", "bench_main", "discover_specs", "run_spec"]


class BenchSpec:
    """Everything the shared runner needs to drive one benchmark.

    ``func(**kwargs)`` must return the table rows (a list of dicts of
    scalars).  ``metric_cols`` name row columns whose per-run mean goes
    into the JSON's deterministic ``metrics`` dict; ``metrics_fn(rows)``
    can add arbitrary extra entries.  ``throughput`` is an optional
    ``(column, unit, "max"|"mean")`` triple.  ``check(rows)`` asserts the
    shape invariants that must hold in *both* modes.
    """

    def __init__(self, name, title, func, columns, full, smoke,
                 check=None, shape_note=None, metric_cols=(),
                 metrics_fn=None, throughput=None, sim_time_fn=None,
                 deterministic=True):
        self.name = name
        self.title = title
        self.func = func
        self.columns = list(columns)
        self.full = dict(full)
        self.smoke = dict(smoke)
        self.check = check
        self.shape_note = shape_note
        self.metric_cols = list(metric_cols)
        self.metrics_fn = metrics_fn
        self.throughput = throughput
        self.sim_time_fn = sim_time_fn
        self.deterministic = deterministic

    def kwargs(self, mode):
        return self.smoke if mode == "smoke" else self.full


def _column_mean(rows, column):
    values = [row[column] for row in rows
              if isinstance(row.get(column), (int, float))]
    if not values:
        return None
    return round(sum(values) / len(values), 6)


def _build_metrics(spec, rows):
    metrics = {}
    for column in spec.metric_cols:
        mean = _column_mean(rows, column)
        if mean is not None:
            metrics[f"{column}_mean"] = mean
    if spec.metrics_fn is not None:
        metrics.update(spec.metrics_fn(rows))
    metrics["table_rows"] = len(rows)
    return metrics


def _build_throughput(spec, rows):
    if spec.throughput is None:
        return None
    column, unit, agg = spec.throughput
    values = [row[column] for row in rows
              if isinstance(row.get(column), (int, float))]
    if not values:
        return None
    value = max(values) if agg == "max" else sum(values) / len(values)
    return {"value": round(value, 6), "unit": unit}


def run_spec(spec, mode="full", rounds=1):
    """Run ``spec`` and return ``(rows, BenchResult)``.

    With ``rounds > 1`` every round is timed separately; for
    deterministic benchmarks the rows must be identical across rounds
    (the simulation is a pure function of its seed — a mismatch means
    something nondeterministic leaked into the sim).
    """
    wall_rounds = []
    rows = None
    for round_index in range(max(1, rounds)):
        started = time.perf_counter()
        out = spec.func(**spec.kwargs(mode))
        wall_rounds.append(time.perf_counter() - started)
        if rows is not None and spec.deterministic and out != rows:
            raise AssertionError(
                f"{spec.name}: rows differ between rounds "
                f"{round_index - 1} and {round_index} — simulation is "
                f"supposed to be deterministic")
        rows = out
    result = BenchResult(
        name=spec.name,
        title=spec.title,
        mode=mode,
        wall_rounds_s=wall_rounds,
        sim_time_ns=spec.sim_time_fn(rows) if spec.sim_time_fn else None,
        throughput=_build_throughput(spec, rows),
        metrics=_build_metrics(spec, rows),
    )
    return rows, result


def bench_main(spec, argv=None):
    """The shared ``main`` for every bench module."""
    parser = argparse.ArgumentParser(description=spec.title)
    parser.add_argument("--smoke", "--quick", action="store_true",
                        dest="smoke",
                        help="miniature sweep for CI smoke testing")
    parser.add_argument("--rounds", type=int, default=1, metavar="N",
                        help="timed repetitions (default 1)")
    parser.add_argument("--json", nargs="?", const="", default=None,
                        metavar="PATH",
                        help="write BENCH_%s.json (default ./BENCH_%s.json;"
                             " '-' for stdout)" % (spec.name, spec.name))
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    rows, result = run_spec(spec, mode, rounds=args.rounds)
    print(format_table(spec.title, spec.columns, rows))
    if spec.check is not None:
        spec.check(rows)
        print(f"shape OK: {spec.shape_note or 'invariants hold'}")
    if args.json is not None:
        if args.json == "-":
            sys.stdout.write(result.to_json())
        else:
            path = args.json or f"BENCH_{spec.name}.json"
            result.write(path)
            print(f"wrote {path}")
    return 0


# ---------------------------------------------------------------------------
# Suite mode: discover every bench module's SPEC and run them all
# ---------------------------------------------------------------------------


def discover_specs(names=None):
    """Import every ``bench_*.py`` next to this file and collect SPECs."""
    if _HERE not in sys.path:
        sys.path.insert(0, _HERE)
    specs = []
    for filename in sorted(os.listdir(_HERE)):
        if not (filename.startswith("bench_") and filename.endswith(".py")):
            continue
        module = importlib.import_module(filename[:-3])
        spec = getattr(module, "SPEC", None)
        if spec is None:
            raise RuntimeError(f"{filename} declares no SPEC")
        if names and spec.name not in names:
            continue
        specs.append(spec)
    if names:
        missing = set(names) - {spec.name for spec in specs}
        if missing:
            raise SystemExit(f"unknown benchmarks: {sorted(missing)}")
    return specs


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Run the benchmark suite and emit BENCH_<name>.json "
                    "documents")
    parser.add_argument("--all", action="store_true",
                        help="run every discovered benchmark")
    parser.add_argument("--only", default=None, metavar="A,B",
                        help="comma-separated subset of benchmark names")
    parser.add_argument("--smoke", "--quick", action="store_true",
                        dest="smoke",
                        help="miniature sweeps for CI smoke testing")
    parser.add_argument("--rounds", type=int, default=1, metavar="N")
    parser.add_argument("--out", default=".", metavar="DIR",
                        help="directory for BENCH_<name>.json files")
    parser.add_argument("--tables", action="store_true",
                        help="also print each benchmark's table")
    args = parser.parse_args(argv)
    if not args.all and not args.only:
        parser.error("pass --all or --only NAME[,NAME...]")
    names = args.only.split(",") if args.only else None
    specs = discover_specs(names)
    os.makedirs(args.out, exist_ok=True)
    mode = "smoke" if args.smoke else "full"
    failures = []
    for spec in specs:
        started = time.perf_counter()
        try:
            rows, result = run_spec(spec, mode, rounds=args.rounds)
            if spec.check is not None:
                spec.check(rows)
        except AssertionError as exc:
            failures.append(spec.name)
            print(f"FAIL  {spec.name}: {exc}")
            continue
        if args.tables:
            print(format_table(spec.title, spec.columns, rows))
        path = os.path.join(args.out, f"BENCH_{spec.name}.json")
        result.write(path)
        elapsed = time.perf_counter() - started
        print(f"ok    {spec.name:28s} {elapsed:7.2f}s  -> {path}")
    if failures:
        print(f"{len(failures)} benchmark(s) failed shape checks: "
              f"{failures}")
        return 1
    print(f"{len(specs)} benchmarks, mode={mode}, out={args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
