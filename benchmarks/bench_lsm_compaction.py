"""LSM compaction offload: boundary-crossing bytes and interference.

Compaction is the paper's other auxiliary-I/O monster: a merge reads
every input byte up across the syscall boundary and writes every output
byte back down, purely to throw the inputs away.  This benchmark runs
the same k-way merge (overlapping L0 runs, bottom-level tombstone drop)
three ways — user-space pread/merge/pwrite, an installed per-run BPF
merge chain (two u64 counters cross the boundary per run), and a single
COMPACT RPC against a remote :class:`~repro.net.StorageTarget` — while
foreground 512 B readers share the device, and reports the bytes each
mode moves across the syscall/network boundary plus the foreground p99
during the compaction window.
"""

import sys

import harness

from repro.bench.experiments import compaction
from repro.bench.tables import format_table

FULL = {"runs": 4, "keys_per_run": 600, "tombstones_per_run": 40}
SMOKE = {"runs": 3, "keys_per_run": 200, "tombstones_per_run": 20}


def _run_comparison(runs=4, keys_per_run=600, tombstones_per_run=40):
    return compaction(runs=runs, keys_per_run=keys_per_run,
                      tombstones_per_run=tombstones_per_run)


COLUMNS = ["mode", "input_tables", "boundary_kb", "output_kb",
           "output_entries", "dropped", "chain_hops", "compaction_us",
           "fg_reads", "fg_p99_us"]


def check_shape(rows):
    by_mode = {row["mode"]: row for row in rows}
    user = by_mode["user"]
    offloaded = by_mode["offloaded"]
    remote = by_mode["remote"]
    # All three modes produce byte-identical output tables.
    for row in (offloaded, remote):
        assert row["output_kb"] == user["output_kb"]
        assert row["output_entries"] == user["output_entries"]
        assert row["dropped"] == user["dropped"]
    # Offload moves at least 5x fewer bytes across the boundary
    # (acceptance floor; in practice it is orders of magnitude).
    assert user["boundary_kb"] >= 5 * offloaded["boundary_kb"]
    assert user["boundary_kb"] >= 5 * remote["boundary_kb"]


def test_lsm_compaction(benchmark):
    rows = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    print()
    print(format_table(
        "LSM compaction — user vs offloaded vs remote boundary bytes",
        COLUMNS, rows))
    check_shape(rows)
    by_mode = {row["mode"]: row for row in rows}
    benchmark.extra_info["boundary_reduction_x"] = round(
        by_mode["user"]["boundary_kb"] / by_mode["offloaded"]["boundary_kb"],
        1)


SPEC = harness.BenchSpec(
    name="lsm_compaction",
    title="LSM compaction — user vs offloaded vs remote boundary bytes",
    func=_run_comparison,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="identical outputs, offload moves >= 5x fewer boundary bytes",
    metric_cols=["boundary_kb", "compaction_us", "fg_p99_us"],
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
