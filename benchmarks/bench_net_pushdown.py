"""Network pushdown: naive vs pushdown remote B-tree GETs (BPF-oF).

One client looks up keys in a B-tree that lives on a disaggregated
storage target across the simulated fabric.  The naive strategy issues
one READ RPC per tree level and parses pages client-side; the pushdown
strategy installs the (target-re-verified) traversal chain once and
issues a single EXEC_CHAIN per GET.  The expectation is BPF-oF's shape:
the speedup grows with depth and RTT, approaching the hop count once
the network dominates the device — at RTT >= 20 us and depth >= 4 the
pushdown GET must be at least 2x faster, with exactly one RPC per GET
against the naive strategy's depth RPCs.

Runnable directly for the CI smoke test::

    PYTHONPATH=src python benchmarks/bench_net_pushdown.py --smoke

``--json [PATH]`` additionally writes a ``BENCH_net_pushdown.json``
result document (see ``benchmarks/harness.py``).
"""

import sys

import harness

from repro.bench import format_table, net_pushdown

COLUMNS = ["depth", "rtt_us", "naive_us", "pushdown_us", "speedup",
           "naive_rpcs_per_get", "pushdown_rpcs_per_get",
           "naive_kiops", "pushdown_kiops"]

FULL = {"depths": (1, 2, 3, 4, 5, 6), "rtts_us": (5, 10, 20, 50),
        "gets": 30}
SMOKE = {"depths": (2, 4), "rtts_us": (10, 20), "gets": 10}


def check_shape(rows):
    """The pushdown invariants any run must satisfy."""
    for row in rows:
        # Pushdown is always exactly one RPC; naive pays one per hop.
        assert row["pushdown_rpcs_per_get"] == 1.0
        assert row["naive_rpcs_per_get"] >= row["depth"]
        # Pushdown never loses at depth >= 2 (at depth 1 both sides do
        # one round trip, so it is a wash).
        if row["depth"] >= 2:
            assert row["speedup"] > 1.0, row
        # The acceptance criterion: >= 2x once the network dominates.
        if row["depth"] >= 4 and row["rtt_us"] >= 20:
            assert row["speedup"] >= 2.0, row
    # Speedup grows with RTT at fixed depth: more network to save.
    by_depth = {}
    for row in rows:
        by_depth.setdefault(row["depth"], []).append(row)
    for depth, group in by_depth.items():
        group.sort(key=lambda row: row["rtt_us"])
        for low, high in zip(group, group[1:]):
            if depth >= 2:
                assert high["speedup"] >= low["speedup"], (depth, low, high)


def test_net_pushdown(benchmark):
    rows = benchmark.pedantic(net_pushdown, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table("BPF-oF — naive vs pushdown GETs over the network",
                       COLUMNS, rows))
    check_shape(rows)
    best = max(rows, key=lambda row: row["speedup"])
    benchmark.extra_info["best_speedup"] = best["speedup"]
    benchmark.extra_info["best_cell"] = (best["depth"], best["rtt_us"])


SPEC = harness.BenchSpec(
    name="net_pushdown",
    title="BPF-oF — naive vs pushdown GETs over the network",
    func=net_pushdown,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="1 RPC per pushdown GET, >=2x at depth>=4, rtt>=20us",
    metric_cols=["speedup", "pushdown_rpcs_per_get"],
    throughput=("pushdown_kiops", "kiops", "max"),
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
