"""Application workload: LSM point lookups (the paper's RocksDB scenario).

Each get that misses the memtable probes bloom-admitted SSTables with a
3-hop dependent chain (root index → index block → data block).  This is
the paper's motivating application shape: the index blocks are pure
auxiliary I/O the application throws away.  The benchmark compares
application-level gets with BPF-chain gets over a populated store under a
zipfian read workload.
"""

import struct
import sys

import harness

from repro.bench.runner import NVM2_BENCH
from repro.bench.tables import format_table
from repro.core import StorageBpf
from repro.core.library import index_traversal_program
from repro.kernel import Kernel, KernelConfig
from repro.sim import RandomStreams, Simulator
from repro.structures import LsmTree
from repro.structures.pages import PAGE_SIZE, search_page
from repro.workloads import ZipfianGenerator

NUM_KEYS = 30_000
READS = 400

FULL = {"num_keys": NUM_KEYS, "reads": READS}
SMOKE = {"num_keys": 8_000, "reads": 60}


def _setup(num_keys):
    sim = Simulator()
    kernel = Kernel(sim, NVM2_BENCH, KernelConfig(cores=6))
    bpf = StorageBpf(kernel)
    lsm = LsmTree(kernel.fs, "/db", memtable_limit=4096, l0_limit=4)
    for key in range(num_keys):
        lsm.put(key, key * 3 + 1)
    lsm.flush()
    keys = ZipfianGenerator(num_keys, RandomStreams(8).stream("keys"),
                            theta=0.9)
    return sim, kernel, bpf, lsm, keys


def _run_comparison(num_keys=NUM_KEYS, reads=READS):
    sim, kernel, bpf, lsm, keys = _setup(num_keys)
    program = index_traversal_program()
    bpf.verify_program(program)
    proc = kernel.spawn_process()
    stats = {"baseline_ns": 0, "chain_ns": 0, "checked": 0,
             "tables": lsm.table_count()}
    probe_list = [keys.next_key() for _ in range(reads)]

    def workload():
        fds = {}
        for path, _table in lsm.candidate_tables(0) or []:
            pass  # candidate set varies per key; fds opened lazily below

        def fd_for(path, install):
            def opener():
                if path not in fds:
                    fd = yield from kernel.sys_open(proc, path)
                    if install:
                        yield from bpf.install(proc, fd, program)
                    fds[path] = fd
                return fds[path]
            return opener()

        # Baseline: 3 read() round trips + parses per candidate table.
        for probe in probe_list:
            start = sim.now
            for path, table in lsm.candidate_tables(probe):
                fd = yield from fd_for(path, install=False)
                offset = table.root_index_offset
                value = None
                for _hop in (2, 1):
                    result = yield from kernel.sys_pread(proc, fd, offset,
                                                         PAGE_SIZE)
                    yield from kernel.cpus.run_thread(
                        kernel.cost.user_process_ns)
                    _idx, child = search_page(result.data, probe)
                    offset = child
                result = yield from kernel.sys_pread(proc, fd, offset,
                                                     PAGE_SIZE)
                yield from kernel.cpus.run_thread(
                    kernel.cost.user_process_ns)
                idx, value = search_page(result.data, probe)
                if idx >= 0:
                    entry_key = struct.unpack_from(
                        "<Q", result.data, 16 + 16 * idx)[0]
                    if entry_key == probe:
                        break
            stats["baseline_ns"] += sim.now - start

        # Accelerated: one 3-hop chain per candidate table.
        fds.clear()
        for probe in probe_list:
            start = sim.now
            expected = lsm.get(probe)
            got = None
            for path, table in lsm.candidate_tables(probe):
                fd = yield from fd_for(path, install=True)
                result = yield from bpf.read_chain_robust(
                    proc, fd, table.root_index_offset, PAGE_SIZE,
                    args=(probe,))
                if result.value2 == 1:
                    got = result.value
                    break
            stats["chain_ns"] += sim.now - start
            assert got == expected, (probe, got, expected)
            stats["checked"] += 1

    kernel.run_syscall(workload())
    return [{
        "reads": reads,
        "sstables": stats["tables"],
        "baseline_us_per_get": stats["baseline_ns"] / reads / 1000,
        "chain_us_per_get": stats["chain_ns"] / reads / 1000,
        "speedup": stats["baseline_ns"] / stats["chain_ns"],
        "verified_against_reference": stats["checked"],
    }]


COLUMNS = ["reads", "sstables", "baseline_us_per_get", "chain_us_per_get",
           "speedup", "verified_against_reference"]


def check_shape(rows):
    for row in rows:
        # Every accelerated get matched the reference implementation.
        assert row["verified_against_reference"] == row["reads"]
        # The 3-hop chain never loses.
        assert row["speedup"] > 1.0


def test_lsm_get(benchmark):
    rows = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    print()
    print(format_table(
        "LSM point gets — BPF chains vs application traversal",
        COLUMNS, rows))
    row = rows[0]
    benchmark.extra_info["speedup"] = round(row["speedup"], 3)
    # Every accelerated get matched the reference implementation.
    assert row["verified_against_reference"] == READS
    # The 3-hop chain wins by a solid margin per get.
    assert row["speedup"] > 1.25


SPEC = harness.BenchSpec(
    name="lsm_get",
    title="LSM point gets — BPF chains vs application traversal",
    func=_run_comparison,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="every get verified against reference, chain wins",
    metric_cols=["speedup", "chain_us_per_get", "baseline_us_per_get"],
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
