"""§4's extent-stability measurement (the TokuDB/YCSB experiment).

Paper's observation: under a 24 h YCSB run (40 % reads, 40 % updates,
20 % inserts, zipfian 0.7) against an on-disk index, the index file's
extents changed only every ~159 s on average, and just 5 changes in 24 h
unmapped any blocks — which is what makes the NVMe-layer soft-state extent
cache viable.

We drive the same mix against an append-rebuilt B-tree index (batch
rebuilds append past EOF; a rare GC pass rewrites the file) and report the
measured change interval plus the 24-hour extrapolation.
"""

from repro.bench import extent_stability, format_table

COLUMNS = ["sim_hours", "operations", "extent_changes", "unmap_changes",
           "mean_change_interval_s", "changes_per_24h", "unmaps_per_24h",
           "invalidations", "paper_interval_s", "paper_unmaps_per_24h"]


def test_extent_stability(benchmark):
    rows = benchmark.pedantic(
        extent_stability,
        kwargs={"sim_hours": 2.0, "ops_per_sec": 500},
        rounds=1, iterations=1)
    print()
    print(format_table("§4 — index-file extent stability under YCSB",
                       COLUMNS, rows))
    row = rows[0]
    benchmark.extra_info["mean_change_interval_s"] = round(
        row["mean_change_interval_s"], 1)
    benchmark.extra_info["unmaps_per_24h"] = row["unmaps_per_24h"]
    # Changes are O(minutes) apart, like the paper's 159 s.
    assert 60 <= row["mean_change_interval_s"] <= 400
    # Unmapping changes are rare: single digits per extrapolated day.
    assert row["unmaps_per_24h"] <= 10
    # Every unmap invalidated the NVMe-layer cache exactly once.
    assert row["invalidations"] == row["unmap_changes"]
