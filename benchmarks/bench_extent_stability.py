"""§4's extent-stability measurement (the TokuDB/YCSB experiment).

Paper's observation: under a 24 h YCSB run (40 % reads, 40 % updates,
20 % inserts, zipfian 0.7) against an on-disk index, the index file's
extents changed only every ~159 s on average, and just 5 changes in 24 h
unmapped any blocks — which is what makes the NVMe-layer soft-state extent
cache viable.

We drive the same mix against an append-rebuilt B-tree index (batch
rebuilds append past EOF; a rare GC pass rewrites the file) and report the
measured change interval plus the 24-hour extrapolation.
"""

import sys

import harness

from repro.bench import extent_stability, format_table

COLUMNS = ["sim_hours", "operations", "extent_changes", "unmap_changes",
           "mean_change_interval_s", "changes_per_24h", "unmaps_per_24h",
           "invalidations", "paper_interval_s", "paper_unmaps_per_24h"]

FULL = {"sim_hours": 2.0, "ops_per_sec": 500}
SMOKE = {"sim_hours": 0.05, "ops_per_sec": 500, "rebuild_overlay": 3000,
         "gc_every_rebuilds": 3, "initial_keys": 3000, "fanout": 32}


def check_shape(rows):
    row = rows[0]
    assert row["extent_changes"] > 0
    # Every unmap invalidated the NVMe-layer cache exactly once.
    assert row["invalidations"] == row["unmap_changes"]


def test_extent_stability(benchmark):
    rows = benchmark.pedantic(extent_stability, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table("§4 — index-file extent stability under YCSB",
                       COLUMNS, rows))
    row = rows[0]
    benchmark.extra_info["mean_change_interval_s"] = round(
        row["mean_change_interval_s"], 1)
    benchmark.extra_info["unmaps_per_24h"] = row["unmaps_per_24h"]
    # Changes are O(minutes) apart, like the paper's 159 s.
    assert 60 <= row["mean_change_interval_s"] <= 400
    # Unmapping changes are rare: single digits per extrapolated day.
    assert row["unmaps_per_24h"] <= 10
    # Every unmap invalidated the NVMe-layer cache exactly once.
    assert row["invalidations"] == row["unmap_changes"]


SPEC = harness.BenchSpec(
    name="extent_stability",
    title="§4 — index-file extent stability under YCSB",
    func=extent_stability,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="extents change, every unmap invalidates exactly once",
    metric_cols=["mean_change_interval_s", "unmaps_per_24h",
                 "extent_changes"],
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
