"""Sharded cluster: YCSB IOPS scaling and crash failover durability.

A consistent-hash cluster of N storage targets (each a full simulated
kernel with journal, write cache, and chain engine) runs the paper's
YCSB mix through a routed, failover-aware client.  Clean rows sweep the
shard count — aggregate IOPS must grow across the replicated configs as
targets are added — and the final row arms a power cut on one target
mid-run.  The robustness invariants any run must satisfy: the crash is
detected (via RPC timeout) and exactly one failover promotes the
replicas; **zero acknowledged writes are lost and zero reads come back
stale** (ack-after-replica replication plus per-key version stamps);
the availability gap is bounded; the rejoined target passes fsck after
journal replay and serves a freshly re-verified chain.

Runnable directly for the CI smoke test::

    PYTHONPATH=src python benchmarks/bench_cluster_failover.py --smoke

``--json [PATH]`` additionally writes a ``BENCH_cluster_failover.json``
result document (see ``benchmarks/harness.py``).
"""

import sys

import harness

from repro.bench import cluster_failover, format_table

COLUMNS = ["shards", "ops", "kiops", "crash", "failovers", "gap_us",
           "lost_acked", "stale_reads", "replayed_txns", "caught_up",
           "fsck", "chain_ok"]

FULL = {"shard_counts": (1, 2, 4, 8), "ops": 160, "initial_keys": 48}
SMOKE = {"shard_counts": (1, 2, 4), "ops": 80, "initial_keys": 32}


def check_shape(rows):
    """The durability/failover invariants any run must satisfy."""
    clean = [row for row in rows if row["crash"] == 0]
    crash = [row for row in rows if row["crash"] == 1]
    assert len(crash) == 1, "exactly one armed-crash row"
    for row in rows:
        # The headline guarantees: nothing acked is ever lost, and no
        # read is ever answered below its acked version.
        assert row["lost_acked"] == 0, row
        assert row["stale_reads"] == 0, row
        assert row["fsck"] == "ok", row
        assert row["chain_ok"] == 1, row
    # Aggregate IOPS grows with shard count across replicated configs
    # (shards=1 pays no replication round trip, so it is excluded).
    replicated = sorted((row for row in clean if row["shards"] > 1),
                        key=lambda row: row["shards"])
    for low, high in zip(replicated, replicated[1:]):
        assert high["kiops"] > low["kiops"], (low, high)
    row = crash[0]
    # The kill really happened, was detected, and was survived.
    assert row["failovers"] >= 1, row
    assert row["gap_us"] > 0, row
    # Detection is the client's retransmission budget plus promotion:
    # bounded well under a tenth of a simulated second.
    assert row["gap_us"] < 100_000, row
    # Rejoin pulled the records the crashed target missed.
    assert row["caught_up"] > 0, row


def test_cluster_failover(benchmark):
    rows = benchmark.pedantic(cluster_failover, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table("Sharded cluster — YCSB scaling + crash failover",
                       COLUMNS, rows))
    check_shape(rows)
    crash = next(row for row in rows if row["crash"] == 1)
    benchmark.extra_info["gap_us"] = crash["gap_us"]
    benchmark.extra_info["caught_up"] = crash["caught_up"]


SPEC = harness.BenchSpec(
    name="cluster_failover",
    title="Sharded cluster — YCSB scaling + crash failover",
    func=cluster_failover,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="0 acked writes lost, 0 stale reads, clean fsck, "
               "IOPS grows across replicated shard counts",
    metric_cols=["gap_us", "failovers", "lost_acked", "stale_reads"],
    throughput=("kiops", "kiops", "max"),
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
