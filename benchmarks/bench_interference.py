"""§4 Fairness: deep BPF chains vs ordinary readers on one machine.

BPF reissues never pass the block-layer scheduler, so chain-heavy
processes can pressure the device from the completion path.  This
experiment measures what ordinary 512 B readers lose when twelve deep-chain
processes saturate the device, and verifies the per-process resubmission
accounting (the counters the NVMe layer periodically drains to the BIO
layer) balances exactly.
"""

from repro.bench import format_table, interference

COLUMNS = ["scenario", "plain_kreads_per_s", "plain_mean_latency_us",
           "chained_resubmissions", "chain_processes_accounted"]


def test_interference(benchmark):
    rows = benchmark.pedantic(
        interference,
        kwargs={"chain_depth": 16, "plain_threads": 3, "chain_threads": 12,
                "duration_ns": 8_000_000},
        rounds=1, iterations=1)
    print()
    print(format_table("§4 fairness — chains vs plain readers",
                       COLUMNS, rows))
    alone, loaded = rows
    benchmark.extra_info["throughput_loss_pct"] = round(
        100 * (1 - loaded["plain_kreads_per_s"] /
               alone["plain_kreads_per_s"]), 2)
    # Chains visibly pressure plain readers (the fairness concern is real)...
    assert loaded["plain_mean_latency_us"] > alone["plain_mean_latency_us"]
    # ...but device arbitration prevents outright starvation.
    assert loaded["plain_kreads_per_s"] > \
        0.5 * alone["plain_kreads_per_s"]
    # The accounting saw every chain process.
    assert loaded["chain_processes_accounted"] == 12
    assert loaded["chained_resubmissions"] > 0
    assert alone["chained_resubmissions"] == 0
