"""§4 Fairness: deep BPF chains vs ordinary readers on one machine.

BPF reissues never pass the block-layer scheduler, so chain-heavy
processes can pressure the device from the completion path.  This
experiment measures what ordinary 512 B readers lose when twelve deep-chain
processes saturate the device, and verifies the per-process resubmission
accounting (the counters the NVMe layer periodically drains to the BIO
layer) balances exactly.
"""

import sys

import harness

from repro.bench import format_table, interference

COLUMNS = ["scenario", "plain_kreads_per_s", "plain_mean_latency_us",
           "chained_resubmissions", "chain_processes_accounted"]

FULL = {"chain_depth": 16, "plain_threads": 3, "chain_threads": 12,
        "duration_ns": 8_000_000}
SMOKE = {"chain_depth": 8, "plain_threads": 2, "chain_threads": 6,
         "duration_ns": 3_000_000}


def check_shape(rows):
    alone, loaded = rows
    # Chains pressure plain readers, and the accounting balances.
    assert loaded["plain_mean_latency_us"] > alone["plain_mean_latency_us"]
    assert alone["chained_resubmissions"] == 0
    assert loaded["chained_resubmissions"] > 0


def test_interference(benchmark):
    rows = benchmark.pedantic(interference, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table("§4 fairness — chains vs plain readers",
                       COLUMNS, rows))
    alone, loaded = rows
    benchmark.extra_info["throughput_loss_pct"] = round(
        100 * (1 - loaded["plain_kreads_per_s"] /
               alone["plain_kreads_per_s"]), 2)
    # Chains visibly pressure plain readers (the fairness concern is real)...
    assert loaded["plain_mean_latency_us"] > alone["plain_mean_latency_us"]
    # ...but device arbitration prevents outright starvation.
    assert loaded["plain_kreads_per_s"] > \
        0.5 * alone["plain_kreads_per_s"]
    # The accounting saw every chain process.
    assert loaded["chain_processes_accounted"] == 12
    assert loaded["chained_resubmissions"] > 0
    assert alone["chained_resubmissions"] == 0


SPEC = harness.BenchSpec(
    name="interference",
    title="§4 fairness — chains vs plain readers",
    func=interference,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="chains pressure plain readers, accounting balances",
    metric_cols=["plain_kreads_per_s", "plain_mean_latency_us"],
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
