"""Ablation: application-managed index caching above BPF chains (§4).

The paper's caching position: BPF traversals do not touch the kernel
buffer cache; applications cache index objects themselves.  The natural
hybrid is to cache the hot *top levels* of the index in application memory
and start the kernel chain below them — each cached level converts one
device round trip into an in-memory page parse.
"""

import sys

import harness

from repro.bench import ablation_app_cache, format_table

COLUMNS = ["cached_levels", "device_reads_per_lookup", "mean_latency_us"]

FULL = {"depth": 6, "cached_levels": (0, 1, 2, 3, 5), "operations": 150}
SMOKE = {"depth": 4, "cached_levels": (0, 2), "operations": 20}


def check_shape(rows):
    # Every cached level strictly lowers latency and device reads.
    latencies = [row["mean_latency_us"] for row in rows]
    assert all(a > b for a, b in zip(latencies, latencies[1:]))
    reads = [row["device_reads_per_lookup"] for row in rows]
    assert all(a > b for a, b in zip(reads, reads[1:]))


def test_ablation_app_cache(benchmark):
    rows = benchmark.pedantic(ablation_app_cache, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table("Ablation — app-level cache of top index levels",
                       COLUMNS, rows))
    benchmark.extra_info["latency_us_by_cached_levels"] = {
        row["cached_levels"]: round(row["mean_latency_us"], 2)
        for row in rows
    }
    # Every cached level strictly lowers latency.
    latencies = [row["mean_latency_us"] for row in rows]
    assert all(a > b for a, b in zip(latencies, latencies[1:]))
    # Caching five levels saves roughly five device round trips (~2.5 us
    # each on gen-2 Optane).
    assert latencies[0] - latencies[-1] > 8.0


SPEC = harness.BenchSpec(
    name="ablation_appcache",
    title="Ablation — app-level cache of top index levels",
    func=ablation_app_cache,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="each cached level lowers latency and device reads",
    metric_cols=["mean_latency_us", "device_reads_per_lookup"],
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
