"""Crash recovery: fsync cost and mount-time replay vs checkpoint cadence.

A metadata-heavy workload (create, sector-aligned writes, fsync every
few files) runs against the journaled file system at several
``checkpoint_every_txns`` settings, then the machine loses power and
remounts.  The trade the sweep exposes is the classic journaling one:
frequent checkpoints keep the log short (cheap recovery, few replayed
transactions) but pay checkpoint writes during normal operation;
``0`` (checkpoint only when the log would overflow) makes fsync cheap
and steady but leaves a long tail to replay at mount.  Whatever the
cadence, recovery must replay to exactly the last fsync: fsck clean,
every fsynced file intact.

Runnable directly for the CI smoke test::

    PYTHONPATH=src python benchmarks/bench_crash_recovery.py --quick

``--json [PATH]`` additionally writes a ``BENCH_crash_recovery.json``
result document (see ``benchmarks/harness.py``).
"""

import sys

import harness

from repro.bench import format_table
from repro.device import NVM_GEN2
from repro.kernel import JournalConfig, Kernel, KernelConfig, fsck
from repro.sim import Simulator

COLUMNS = ["checkpoint_every", "files", "fsyncs", "fsync_avg_us",
           "journal_kib", "checkpoints", "replayed_txns", "fsck",
           "recovered_files"]

FULL = {"files": 120, "fsync_every": 3, "write_kib": 8}
QUICK = {"files": 24, "fsync_every": 3, "write_kib": 4}

CADENCES = (0, 4, 16, 64)


def _run_workload(kernel, files, fsync_every, write_kib, seed=11):
    """Create ``files`` files, fsyncing every ``fsync_every``-th one."""
    import random

    rng = random.Random(seed)
    sim = kernel.sim
    proc = kernel.spawn_process("recovery-bench")
    fsync_ns = []
    synced = []
    pending = []
    for index in range(files):
        path = f"/f{index:04d}"
        fd = kernel.run_syscall(kernel.sys_open(proc, path, create=True))
        data = rng.randbytes(write_kib * 1024)
        kernel.run_syscall(kernel.sys_pwrite(proc, fd, 0, data))
        pending.append((path, data))
        if (index + 1) % fsync_every == 0:
            start = sim.now
            kernel.run_syscall(kernel.sys_fsync(proc, fd))
            fsync_ns.append(sim.now - start)
            synced.extend(pending)
            pending.clear()
    return fsync_ns, synced


def crash_recovery_sweep(files=120, fsync_every=3, write_kib=8,
                         cadences=CADENCES, seed=11):
    rows = []
    for cadence in cadences:
        sim = Simulator()
        kernel = Kernel(sim, NVM_GEN2, KernelConfig(
            seed=seed, capacity_sectors=1 << 20, write_cache_depth=8,
            journal=JournalConfig(journal_blocks=256,
                                  checkpoint_every_txns=cadence)))
        fsync_ns, synced = _run_workload(kernel, files, fsync_every,
                                         write_kib, seed=seed)
        journal = kernel.fs.journal
        journal_kib = journal.bytes_written / 1024
        checkpoints = journal.checkpoints
        kernel.crash()
        report = kernel.recover()
        audit = fsck(kernel.fs)
        intact = sum(
            1 for path, data in synced
            if _read_file(kernel.fs, path) == data)
        rows.append({
            "checkpoint_every": cadence or "overflow",
            "files": files,
            "fsyncs": len(fsync_ns),
            "fsync_avg_us": (sum(fsync_ns) / len(fsync_ns) / 1000
                             if fsync_ns else 0.0),
            "journal_kib": journal_kib,
            "checkpoints": checkpoints,
            "replayed_txns": report.replayed_txns,
            "fsck": "ok" if audit.ok else "FAIL",
            "recovered_files": f"{intact}/{len(synced)}",
        })
    return rows


def _read_file(fs, path):
    try:
        inode = fs.lookup(path)
    except Exception:
        return None
    return fs.read_sync(inode, 0, inode.size)


def check_shape(rows):
    """The journaling trade-off any run must exhibit."""
    for row in rows:
        assert row["fsck"] == "ok"
        intact, total = map(int, row["recovered_files"].split("/"))
        # Every fsynced file survives the crash byte-for-byte.
        assert intact == total
    by_cadence = {row["checkpoint_every"]: row for row in rows}
    lazy = by_cadence["overflow"]
    eager = by_cadence[min(c for c in by_cadence if c != "overflow")]
    # Eager checkpointing shortens the log left to replay at mount.
    assert eager["replayed_txns"] <= lazy["replayed_txns"]
    # ... and actually checkpoints during the run.
    assert eager["checkpoints"] > lazy["checkpoints"]


def test_crash_recovery(benchmark):
    rows = benchmark.pedantic(crash_recovery_sweep, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table(
        "Crash recovery — fsync cost and replay vs checkpoint cadence",
        COLUMNS, rows))
    check_shape(rows)
    lazy = rows[0]
    benchmark.extra_info["lazy_replayed_txns"] = lazy["replayed_txns"]
    benchmark.extra_info["lazy_fsync_avg_us"] = round(
        lazy["fsync_avg_us"], 2)


SPEC = harness.BenchSpec(
    name="crash_recovery",
    title="Crash recovery — fsync cost and replay vs checkpoint cadence",
    func=crash_recovery_sweep,
    columns=COLUMNS,
    full=FULL,
    smoke=QUICK,
    check=check_shape,
    shape_note="fsck clean, every fsynced file intact, eager checkpoints "
               "shorten replay",
    metric_cols=["fsync_avg_us", "replayed_txns", "checkpoints"],
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
