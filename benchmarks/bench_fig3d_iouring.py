"""Figure 3d: single-thread io_uring lookups, NVMe hook vs plain io_uring.

Paper's claims: increasing the batch size increases the speedup (each tree
level saves `batch` concurrently reissued requests); with deep trees BPF +
io_uring delivers > 2.5x.  Both systems run on one core with completion
interrupts steered to the submitting CPU.

Known deviation (documented in EXPERIMENTS.md): at depth 3 the paper
reports 1.3-1.5x where we measure ~2-3x — our per-hop resubmission cost is
calibrated against Figure 3c's 49 % latency cut, which makes chained hops
cheaper relative to the baseline than the authors' proxy implementation.
"""

import sys

import harness

from repro.bench import fig3d_iouring, format_table

COLUMNS = ["depth", "batch", "baseline_klookups", "bpf_klookups", "speedup"]

FULL = {"depths": (3, 6, 10), "batches": (1, 2, 4, 8, 16, 32),
        "duration_ns": 8_000_000}
SMOKE = {"depths": (4,), "batches": (1, 8), "duration_ns": 2_000_000}


def check_shape(rows):
    # Speedup grows with batch size at every depth; BPF never loses.
    assert all(row["speedup"] > 1.0 for row in rows)
    by_depth = {}
    for row in rows:
        by_depth.setdefault(row["depth"], []).append(row["speedup"])
    for speedups in by_depth.values():
        assert speedups[-1] > speedups[0]


def test_fig3d_iouring(benchmark):
    rows = benchmark.pedantic(fig3d_iouring, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table(
        "Figure 3d — io_uring lookups/sec, NVMe hook vs unmodified",
        COLUMNS, rows))
    benchmark.extra_info["max_speedup"] = round(
        max(row["speedup"] for row in rows), 3)

    def series(depth):
        return [row["speedup"] for row in rows if row["depth"] == depth]

    # Speedup grows with batch size at every depth (the headline shape).
    for depth in (3, 6, 10):
        speedups = series(depth)
        assert speedups[-1] > speedups[0] * 1.3, f"depth {depth}"
    # Deep trees exceed the paper's >2.5x bar.
    assert max(series(10)) > 2.5
    # Deeper trees gain more at equal batch size.
    big_batch = {row["depth"]: row["speedup"] for row in rows
                 if row["batch"] == 32}
    assert big_batch[10] > big_batch[3]


SPEC = harness.BenchSpec(
    name="fig3d_iouring",
    title="Figure 3d — io_uring lookups/sec, NVMe hook vs unmodified",
    func=fig3d_iouring,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="speedup grows with batch size, BPF never loses",
    metric_cols=["speedup"],
    throughput=("bpf_klookups", "klookups/s", "max"),
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
