"""Multi-tenant QoS: one aggressor tenant vs a victim's tail latency.

A victim tenant runs a light mixed YCSB while an aggressor tenant floods
the same device with deep NVMe-hook chains (whose reissues bypass the
block scheduler entirely).  Without QoS the victim's p99 collapses by an
order of magnitude; arming ``QosConfig`` (weighted-fair queueing at the
NVMe submission queue plus chain pacing on the aggressor's IRQ path)
pulls it back to ~1.1x the unloaded baseline, while the aggregate
ops/sec stays well above the unisolated run — WFQ is work-conserving
and the victim's small ops are cheap.
"""

import sys

import harness

from repro.bench import format_table, tenants

COLUMNS = ["scenario", "qos", "victim_p99_us", "victim_p99_x_alone",
           "victim_kops_per_s", "aggressor_kops_per_s",
           "aggregate_kops_per_s"]

FULL = {"chain_depth": 12, "victim_threads": 2, "aggressor_threads": 96,
        "duration_ns": 8_000_000}
SMOKE = {"chain_depth": 12, "victim_threads": 2, "aggressor_threads": 96,
         "duration_ns": 2_000_000}


def check_shape(rows):
    alone, off, on = rows
    # The aggressor really does wreck the victim's tail without QoS...
    assert off["victim_p99_x_alone"] > 5.0
    # ...and QoS pulls it back to within 2x of the unloaded baseline...
    assert on["victim_p99_x_alone"] <= 2.0
    # ...without sacrificing aggregate throughput (>= 90 % of qos-off).
    assert on["aggregate_kops_per_s"] >= 0.9 * off["aggregate_kops_per_s"]
    # The aggressor is shaped, not starved.
    assert on["aggressor_kops_per_s"] > 0
    assert alone["aggressor_kops_per_s"] == 0


def test_tenant_isolation(benchmark):
    rows = benchmark.pedantic(tenants, kwargs=FULL, rounds=1, iterations=1)
    print()
    print(format_table("Multi-tenant QoS — victim p99 vs aggressor",
                       COLUMNS, rows))
    check_shape(rows)
    _alone, off, on = rows
    benchmark.extra_info["p99_degradation_off_x"] = round(
        off["victim_p99_x_alone"], 2)
    benchmark.extra_info["p99_degradation_on_x"] = round(
        on["victim_p99_x_alone"], 2)


SPEC = harness.BenchSpec(
    name="tenant_isolation",
    title="Multi-tenant QoS — victim p99 vs aggressor",
    func=tenants,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="victim p99 >5x off, <=2x on, aggregate within 10%",
    metric_cols=["victim_p99_us", "victim_kops_per_s",
                 "aggregate_kops_per_s"],
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
