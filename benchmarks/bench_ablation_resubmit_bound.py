"""Ablation: the per-process chained-resubmission bound (§4, Fairness).

The NVMe layer kills chains at the bound; the application continues with a
fresh bounded chain from where the kill left off.  Tighter bounds cost
latency (extra full-stack restarts) but cap how long one process can
monopolise the completion path — the fairness trade the paper proposes.
"""

import sys

import harness

from repro.bench import ablation_resubmit_bound, format_table

COLUMNS = ["bound", "chain_length", "kills_per_lookup", "mean_latency_us"]

FULL = {"chain_length": 24, "bounds": (2, 4, 8, 16, 64), "lookups": 50}
SMOKE = {"chain_length": 8, "bounds": (2, 8), "lookups": 5}


def check_shape(rows):
    # Tighter bounds -> more kills and higher latency, monotonically.
    latencies = [row["mean_latency_us"] for row in rows]
    assert all(a >= b for a, b in zip(latencies, latencies[1:]))
    kills = [row["kills_per_lookup"] for row in rows]
    assert all(a >= b for a, b in zip(kills, kills[1:]))


def test_ablation_resubmit_bound(benchmark):
    rows = benchmark.pedantic(ablation_resubmit_bound, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table("Ablation — chained-resubmission bound",
                       COLUMNS, rows))
    by_bound = {row["bound"]: row for row in rows}
    benchmark.extra_info["latency_cost_2_vs_64"] = round(
        by_bound[2]["mean_latency_us"] / by_bound[64]["mean_latency_us"], 3)
    # Tighter bounds -> more kills and higher latency, monotonically.
    latencies = [row["mean_latency_us"] for row in rows]
    assert all(a >= b for a, b in zip(latencies, latencies[1:]))
    kills = [row["kills_per_lookup"] for row in rows]
    assert all(a >= b for a, b in zip(kills, kills[1:]))
    # A bound >= the chain length never kills.
    assert by_bound[64]["kills_per_lookup"] == 0
    # ceil(24/2) - 1 = 11 kills per lookup at the tightest bound.
    assert by_bound[2]["kills_per_lookup"] == 11


SPEC = harness.BenchSpec(
    name="ablation_resubmit_bound",
    title="Ablation — chained-resubmission bound",
    func=ablation_resubmit_bound,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="tighter bounds cost kills and latency, monotonically",
    metric_cols=["kills_per_lookup", "mean_latency_us"],
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
