"""Figure 3c: single-thread lookup latency vs tree depth, both hooks.

Paper's claims: reissuing from the NVMe driver cuts lookup latency by up
to ~49 % (approaching the asymptote with depth); the syscall hook saves
far less.  The depth-1 row is the crossover the paper implies: with no
dependent I/O to chain there is nothing to win, and the interrupt-driven
chain completion costs slightly more than a polled read.
"""

import sys

import harness

from repro.bench import fig3c_latency, format_table

COLUMNS = ["depth", "baseline_us", "syscall_us", "nvme_us",
           "nvme_reduction_pct"]

FULL = {"depths": (1, 2, 3, 4, 6, 8, 10, 16), "operations": 100}
SMOKE = {"depths": (2, 6), "operations": 30}


def check_shape(rows):
    # Latency reduction grows with depth toward the paper's ~49 %.
    reductions = [row["nvme_reduction_pct"] for row in rows]
    assert all(b >= a for a, b in zip(reductions, reductions[1:]))


def test_fig3c_latency(benchmark):
    rows = benchmark.pedantic(fig3c_latency, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table("Figure 3c — single-thread lookup latency",
                       COLUMNS, rows))
    by_depth = {row["depth"]: row for row in rows}
    benchmark.extra_info["max_reduction_pct"] = round(
        max(row["nvme_reduction_pct"] for row in rows), 2)
    # Latency reduction grows with depth toward the paper's ~49 %.
    reductions = [row["nvme_reduction_pct"] for row in rows]
    assert all(b >= a for a, b in zip(reductions, reductions[1:]))
    assert 40.0 <= by_depth[16]["nvme_reduction_pct"] <= 52.0
    # The syscall hook helps, but much less.
    assert by_depth[10]["syscall_us"] < by_depth[10]["baseline_us"]
    assert by_depth[10]["nvme_us"] < by_depth[10]["syscall_us"]
    # Depth 1: nothing to chain, so the hook cannot win.
    assert by_depth[1]["nvme_reduction_pct"] < 0


SPEC = harness.BenchSpec(
    name="fig3c_latency",
    title="Figure 3c — single-thread lookup latency",
    func=fig3c_latency,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="latency reduction grows monotonically with depth",
    metric_cols=["nvme_reduction_pct", "nvme_us", "baseline_us"],
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
