"""Multi-queue scaling: aggregate chain IOPS vs NVMe SQ/CQ pairs.

Closed-loop workers run NVMe-hook B-tree chains against a deep gen-2
Optane model while the kernel sweeps the number of submission/completion
queue pairs.  Completion interrupts are steered per core (queue ``q``
fires on core ``q % cores``), so a single pair funnels every hop's IRQ +
BPF + resubmission work through one core.  The expectation is the
paper's multi-queue shape: aggregate IOPS grows strictly from 1 to 4
pairs as completion work spreads across cores, stays roughly balanced
across pairs, and flattens once the lanes stop being the bottleneck.

Runnable directly for the CI smoke test::

    PYTHONPATH=src python benchmarks/bench_mq_scaling.py --smoke
"""

import sys

import harness

from repro.bench import format_table, mq_scaling

COLUMNS = ["threads", "queue_pairs", "klookups", "kiops",
           "speedup_vs_1q", "busiest_q_pct"]

FULL = {"queue_pairs": (1, 2, 4, 8), "threads": (24, 32),
        "duration_ns": 2_000_000}
SMOKE = {"queue_pairs": (1, 2, 4), "threads": (24,),
         "duration_ns": 1_000_000}


def check_shape(rows):
    """The scaling invariants any run must satisfy."""
    groups = {}
    for row in rows:
        groups.setdefault(row["threads"], []).append(row)
    for threads, group in groups.items():
        by_pairs = {row["queue_pairs"]: row for row in group}
        # One pair concentrates every completion on one queue.
        assert by_pairs[1]["busiest_q_pct"] == 100.0
        # Aggregate IOPS strictly increases from 1 to 4 pairs.
        swept = [pairs for pairs in (1, 2, 4) if pairs in by_pairs]
        for low, high in zip(swept, swept[1:]):
            assert by_pairs[high]["kiops"] > by_pairs[low]["kiops"], (
                f"threads={threads}: {high} pairs not faster than {low}")
        # Steering spreads completions: no pair hogs the device.
        for pairs, row in by_pairs.items():
            if pairs > 1:
                assert row["busiest_q_pct"] < 150.0 / pairs
        # Spreading IRQ work over 4 cores buys a real speedup.
        if 4 in by_pairs:
            assert by_pairs[4]["speedup_vs_1q"] >= 1.2


def test_mq_scaling(benchmark):
    rows = benchmark.pedantic(mq_scaling, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table("Multi-queue NVMe — IOPS vs SQ/CQ pairs",
                       COLUMNS, rows))
    check_shape(rows)
    best = max(rows, key=lambda row: row["kiops"])
    benchmark.extra_info["best_kiops"] = round(best["kiops"], 1)
    benchmark.extra_info["best_queue_pairs"] = best["queue_pairs"]


SPEC = harness.BenchSpec(
    name="mq_scaling",
    title="Multi-queue NVMe — IOPS vs SQ/CQ pairs",
    func=mq_scaling,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="IOPS strictly increasing 1->4 pairs, queues balanced",
    metric_cols=["speedup_vs_1q", "busiest_q_pct"],
    throughput=("kiops", "kiops", "max"),
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
