"""Ablation: hook placement (Figure 2's three dispatch paths).

Compares, at one representative depth, the application-level traversal,
the syscall-dispatch hook, and the NVMe-driver hook — quantifying how much
each eliminated layer is worth, which is the design argument of §3-§4.
"""

import sys

import harness

from repro.bench import fig3c_latency, format_table

COLUMNS = ["depth", "baseline_us", "syscall_us", "nvme_us",
           "nvme_reduction_pct"]

FULL = {"depths": (6,), "operations": 200}
SMOKE = {"depths": (6,), "operations": 30}


def check_shape(rows):
    # Each deeper hook strictly improves on the previous path.
    for row in rows:
        assert row["nvme_us"] < row["syscall_us"] < row["baseline_us"]


def test_ablation_hook_placement(benchmark):
    rows = benchmark.pedantic(fig3c_latency, kwargs=FULL,
                              rounds=1, iterations=1)
    print()
    print(format_table("Ablation — dispatch path at depth 6", COLUMNS, rows))
    row = rows[0]
    benchmark.extra_info["nvme_reduction_pct"] = round(
        row["nvme_reduction_pct"], 2)
    # Each deeper hook strictly improves on the previous path.
    assert row["nvme_us"] < row["syscall_us"] < row["baseline_us"]
    # The syscall hook saves only crossings + app processing (< 15 %);
    # the NVMe hook saves several kernel layers per hop (> 30 %).
    syscall_saving = 1 - row["syscall_us"] / row["baseline_us"]
    nvme_saving = 1 - row["nvme_us"] / row["baseline_us"]
    assert syscall_saving < 0.25
    assert nvme_saving > 0.30


SPEC = harness.BenchSpec(
    name="ablation_hooks",
    title="Ablation — dispatch path at depth 6",
    func=fig3c_latency,
    columns=COLUMNS,
    full=FULL,
    smoke=SMOKE,
    check=check_shape,
    shape_note="nvme < syscall < baseline latency at every depth",
    metric_cols=["nvme_reduction_pct", "nvme_us", "baseline_us"],
)


def main(argv=None) -> int:
    return harness.bench_main(SPEC, argv)


if __name__ == "__main__":
    sys.exit(main())
