"""A BPF-accelerated LSM key-value store (the RocksDB-style workload).

This is the paper's motivating application class: an LSM tree whose
immutable SSTables are read with 3-hop dependent chains (root index →
index block → data block).  Writes go through the memtable and flush into
L0; compactions merge levels and *unlink* the inputs, firing the extent
invalidations the NVMe-layer cache must survive — the robust read path
re-runs the install ioctl transparently.

The demo loads a dataset, runs a read-mostly YCSB-B phase comparing
accelerated gets against application-level gets, then forces a compaction
mid-workload to show the invalidation protocol at work.

Run: ``python examples/kvstore_lsm.py``
"""

from repro.bench.runner import NVM2_BENCH
from repro.core import StorageBpf
from repro.core.library import index_traversal_program
from repro.kernel import Kernel, KernelConfig
from repro.sim import RandomStreams, Simulator
from repro.structures import LsmTree
from repro.structures.lsm import TOMBSTONE
from repro.structures.pages import PAGE_SIZE
from repro.workloads import OpType, YcsbWorkload


class AcceleratedLsmReader:
    """BPF-chain reads over an LsmTree's candidate SSTables.

    Keeps one installed descriptor per live SSTable file (installing is an
    ioctl, so it is done once per table, not per read), and re-installs
    whenever compaction replaces tables.
    """

    def __init__(self, kernel, bpf, lsm, proc):
        self.kernel = kernel
        self.bpf = bpf
        self.lsm = lsm
        self.proc = proc
        self.program = index_traversal_program()
        bpf.verify_program(self.program)
        self._installed = {}  # path -> fd

    def _fd_for(self, path):
        if path not in self._installed:
            fd = yield from self.kernel.sys_open(self.proc, path)
            yield from self.bpf.install(self.proc, fd, self.program)
            self._installed[path] = fd
        return self._installed[path]

    def prune_dead_tables(self):
        live = {path for level in self.lsm.levels for path, _t in level}
        for path in list(self._installed):
            if path not in live:
                del self._installed[path]

    def get(self, key):
        """Generator: point lookup via BPF chains; returns value or None."""
        if key in self.lsm.memtable:
            value = self.lsm.memtable[key]
            return None if value == TOMBSTONE else value
        for path, table in self.lsm.candidate_tables(key):
            fd = yield from self._fd_for(path)
            result = yield from self.bpf.read_chain_robust(
                self.proc, fd, table.root_index_offset, PAGE_SIZE,
                args=(key,))
            if result.value2 == 1:
                return None if result.value == TOMBSTONE else result.value
        return None


def baseline_get(kernel, proc, fd_cache, lsm, key):
    """Application-level get: 3 read() round trips per candidate table."""
    from repro.structures.pages import search_page
    import struct

    if key in lsm.memtable:
        value = lsm.memtable[key]
        return (yield from _done(None if value == TOMBSTONE else value))
    for path, table in lsm.candidate_tables(key):
        if path not in fd_cache:
            fd_cache[path] = yield from kernel.sys_open(proc, path)
        fd = fd_cache[path]
        offset = table.root_index_offset
        for _hop in (2, 1):
            result = yield from kernel.sys_pread(proc, fd, offset, PAGE_SIZE)
            yield from kernel.cpus.run_thread(kernel.cost.user_process_ns)
            _idx, child = search_page(result.data, key)
            if child is None:
                break
            offset = child
        else:
            result = yield from kernel.sys_pread(proc, fd, offset, PAGE_SIZE)
            yield from kernel.cpus.run_thread(kernel.cost.user_process_ns)
            idx, value = search_page(result.data, key)
            if idx >= 0:
                entry_key = struct.unpack_from("<Q", result.data,
                                               16 + 16 * idx)[0]
                if entry_key == key:
                    return (None if value == TOMBSTONE else value)
    return None


def _done(value):
    if False:
        yield
    return value


def main():
    sim = Simulator()
    kernel = Kernel(sim, NVM2_BENCH, KernelConfig(cores=6))
    bpf = StorageBpf(kernel)
    lsm = LsmTree(kernel.fs, "/db", memtable_limit=2048, l0_limit=4)

    rng = RandomStreams(42).stream("load")
    print("loading 20,000 keys through the LSM write path ...")
    for key in range(20_000):
        lsm.put(key, key * 7 + 1)
    lsm.flush()
    print(f"  tables={lsm.table_count()} flushes={lsm.flushes} "
          f"compactions={lsm.compactions}")

    proc = kernel.spawn_process("kv-app")
    reader = AcceleratedLsmReader(kernel, bpf, lsm, proc)
    workload = YcsbWorkload(20_000, RandomStreams(42).stream("ycsb"),
                            mix="b", theta=0.7)

    stats = {"reads": 0, "accel_ns": 0, "base_ns": 0, "mismatches": 0}
    fd_cache = {}

    def phase(reads):
        for _ in range(reads):
            op = workload.next_operation()
            if op.op is OpType.READ:
                start = sim.now
                accel = yield from reader.get(op.key)
                stats["accel_ns"] += sim.now - start
                start = sim.now
                base = yield from baseline_get(kernel, proc, fd_cache, lsm,
                                               op.key)
                stats["base_ns"] += sim.now - start
                stats["reads"] += 1
                if accel != base or accel != lsm.get(op.key):
                    stats["mismatches"] += 1
            else:
                lsm.put(op.key, op.value)

    def workload_run():
        yield from phase(300)
        print("\nforcing a compaction mid-workload "
              "(unlinks tables -> extent invalidation) ...")
        lsm.flush()
        lsm._compact(0)
        reader.prune_dead_tables()
        yield from phase(300)

    kernel.run_syscall(workload_run())

    reads = stats["reads"]
    print(f"\n{reads} point reads, 0 mismatches required -> "
          f"{stats['mismatches']} mismatches")
    print(f"  accelerated mean: {stats['accel_ns'] / reads / 1000:6.2f} us")
    print(f"  baseline mean:    {stats['base_ns'] / reads / 1000:6.2f} us")
    print(f"  speedup:          "
          f"{stats['base_ns'] / max(1, stats['accel_ns']):.2f}x")
    print(f"  cache invalidations survived: {bpf.cache.invalidations}, "
          f"refresh ioctls: {bpf.cache.refreshes}")
    assert stats["mismatches"] == 0


if __name__ == "__main__":
    main()
