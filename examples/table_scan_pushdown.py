"""Pushing a filtered aggregation into the kernel (the iterator use case).

The paper's §3 motivates "database iterators that scan tables sequentially
until an attribute satisfies a condition" — auxiliary I/O whose pages the
application throws away after trivial processing.  This example stores a
table of (key, value) rows across consecutive data pages and computes

    SELECT SUM(value), COUNT(*) WHERE low <= key <= high

two ways:

* baseline — read every page into user space and filter there;
* pushdown — the scan-aggregate BPF program filters and accumulates in the
  NVMe completion handler, chaining page to page; only 16 bytes of result
  ever reach the application.

Run: ``python examples/table_scan_pushdown.py``
"""

from repro.bench.runner import NVM2_BENCH
from repro.core import StorageBpf
from repro.core.library import scan_aggregate_program
from repro.kernel import Kernel, KernelConfig
from repro.sim import Simulator
from repro.structures.pages import BTREE_PAGE_MAGIC, PAGE_SIZE, decode_page, encode_page

ROWS_PER_PAGE = 200
PAGES = 64
LOW, HIGH = 3_000, 9_000


def build_table(kernel):
    pages = []
    key = 0
    expected_sum = 0
    expected_count = 0
    for _page in range(PAGES):
        entries = []
        for _row in range(ROWS_PER_PAGE):
            value = (key * 17) % 1000
            entries.append((key, value))
            if LOW <= key <= HIGH:
                expected_sum += value
                expected_count += 1
            key += 1
        pages.append(encode_page(BTREE_PAGE_MAGIC, 0, entries))
    kernel.create_file("/table", b"".join(pages))
    return expected_sum, expected_count


def main():
    sim = Simulator()
    kernel = Kernel(sim, NVM2_BENCH, KernelConfig(cores=6))
    bpf = StorageBpf(kernel, max_chain_hops=PAGES + 1)
    expected_sum, expected_count = build_table(kernel)
    print(f"table: {PAGES} pages x {ROWS_PER_PAGE} rows; predicate "
          f"[{LOW}, {HIGH}]")

    program = scan_aggregate_program(fanout=ROWS_PER_PAGE + 1)
    bpf.verify_program(program)
    proc = kernel.spawn_process("scan-app")
    report = {}

    def workload():
        fd = yield from kernel.sys_open(proc, "/table")

        # Baseline: fetch and filter every page in user space.
        start = sim.now
        total = 0
        count = 0
        for page in range(PAGES):
            result = yield from kernel.sys_pread(proc, fd,
                                                 page * PAGE_SIZE, PAGE_SIZE)
            _magic, _level, entries = decode_page(result.data)
            # Page handling plus the same per-entry filter compute the BPF
            # program pays (native code ~ JIT'd BPF per entry).
            yield from kernel.cpus.run_thread(
                kernel.cost.user_process_ns + 15 * len(entries))
            for key, value in entries:
                if LOW <= key <= HIGH:
                    total += value
                    count += 1
        report["baseline"] = (total, count, sim.now - start)

        # Pushdown: install and let the chain do the whole scan.
        yield from bpf.install(proc, fd, program,
                               args=(LOW, HIGH, PAGES))
        start = sim.now
        result = yield from bpf.read_chain(proc, fd, 0, PAGE_SIZE)
        report["pushdown"] = (result.value, result.value2, sim.now - start)
        return result

    result = kernel.run_syscall(workload())

    for path in ("baseline", "pushdown"):
        total, count, ns = report[path]
        print(f"  {path:9s} sum={total:<10d} count={count:<6d} "
              f"elapsed={ns / 1000:8.1f} us")
        assert (total, count) == (expected_sum, expected_count), path

    base_ns = report["baseline"][2]
    push_ns = report["pushdown"][2]
    print(f"\npushdown speedup: {base_ns / push_ns:.2f}x; bytes returned to "
          f"user space: {PAGES * PAGE_SIZE} -> 16")
    print(f"chain hops: {result.hops} (one per page, all but the first "
          "recycled in the interrupt handler)")


if __name__ == "__main__":
    main()
