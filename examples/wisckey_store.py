"""Key/value separation: chaining across *two* data structures.

WiscKey-style stores keep a compact B-tree index whose leaves point into a
value log.  A lookup is therefore an index traversal **plus one more
dependent I/O** — the exact "auxiliary request" pattern the paper targets.
The two-phase BPF program walks the index and dereferences the log record
in a single kernel chain; only the final record block surfaces to user
space.

Run: ``python examples/wisckey_store.py``
"""

from repro.bench.runner import NVM2_BENCH
from repro.core import StorageBpf
from repro.core.library import wisckey_get_program
from repro.kernel import Kernel, KernelConfig
from repro.sim import Simulator
from repro.structures import FsBackend, WisckeyStore
from repro.structures.pages import PAGE_SIZE, search_page

NUM_KEYS = 4000
FANOUT = 16


def main():
    sim = Simulator()
    kernel = Kernel(sim, NVM2_BENCH, KernelConfig(cores=6,
                                                  trace_device=True))
    bpf = StorageBpf(kernel)

    inode = kernel.fs.create("/store")
    items = [(key * 5, f"value-for-{key}".encode())
             for key in range(NUM_KEYS)]
    store = WisckeyStore.build(FsBackend(kernel.fs, inode), items,
                               fanout=FANOUT)
    print(f"store: {NUM_KEYS} records, index depth {store.tree.depth}, "
          f"{store.hops_per_get()} dependent I/Os per get")

    program = wisckey_get_program(fanout=FANOUT)
    bpf.verify_program(program)
    proc = kernel.spawn_process("wk-app")
    probes = [0, 5 * 1234, 5 * 3999, 7]  # three hits, one miss
    timings = {}

    def workload():
        fd = yield from kernel.sys_open(proc, "/store")

        # Baseline: application walks index pages, then reads the record.
        for probe in probes:
            start = sim.now
            offset = store.tree.meta.root_offset
            payload = None
            for _level in range(store.tree.depth):
                result = yield from kernel.sys_pread(proc, fd, offset,
                                                     PAGE_SIZE)
                yield from kernel.cpus.run_thread(
                    kernel.cost.user_process_ns)
                _idx, child = search_page(result.data, probe)
                if child is None:
                    break
                offset = child
            else:
                result = yield from kernel.sys_pread(proc, fd, offset,
                                                     PAGE_SIZE)
                yield from kernel.cpus.run_thread(
                    kernel.cost.user_process_ns)
                key, payload = WisckeyStore.parse_record(result.data)
                if key != probe:
                    payload = None
            timings.setdefault(probe, {})["baseline"] = \
                (payload, sim.now - start)

        # Accelerated: one chain does index + log in the kernel.
        yield from bpf.install(proc, fd, program)
        for probe in probes:
            start = sim.now
            result = yield from bpf.read_chain_robust(
                proc, fd, store.tree.meta.root_offset, PAGE_SIZE,
                args=(probe,))
            payload = None
            if result.value2 == 1:
                _key, payload = WisckeyStore.parse_record(result.data)
            timings[probe]["chain"] = (payload, sim.now - start)

    kernel.run_syscall(workload())

    print(f"\n{'key':>8s}  {'result':20s} {'baseline':>10s} {'chain':>10s}"
          f" {'speedup':>8s}")
    for probe in probes:
        base_payload, base_ns = timings[probe]["baseline"]
        chain_payload, chain_ns = timings[probe]["chain"]
        assert base_payload == chain_payload == store.get(probe)
        shown = (base_payload or b"<miss>").decode()
        print(f"{probe:8d}  {shown:20s} {base_ns / 1000:9.2f}u "
              f"{chain_ns / 1000:9.2f}u {base_ns / chain_ns:7.2f}x")

    recycled = kernel.trace.count(source="bpf-recycle")
    print(f"\ndescriptors recycled in the completion interrupt: {recycled} "
          f"(index hops + value-log dereferences)")


if __name__ == "__main__":
    main()
