"""Figure 2, animated: trace the three dispatch paths through the stack.

For one depth-4 B-tree lookup per path, this example prints which layer
handled each I/O and where the reissue decision was made, using the NVMe
device trace and the kernel's accounting — a textual rendering of the
paper's Figure 2 diagram.

Run: ``python examples/dispatch_paths.py``
"""

from repro.bench.runner import NVM2_BENCH
from repro.core import Hook, StorageBpf
from repro.core.library import index_traversal_program
from repro.kernel import Kernel, KernelConfig
from repro.sim import Simulator
from repro.structures import BTree, FsBackend
from repro.structures.pages import PAGE_SIZE, search_page

FANOUT = 4
DEPTH = 4


def fresh_machine():
    sim = Simulator()
    kernel = Kernel(sim, NVM2_BENCH, KernelConfig(trace_device=True))
    bpf = StorageBpf(kernel)
    inode = kernel.fs.create("/index")
    num_keys = BTree.keys_for_depth(DEPTH, FANOUT)
    items = [(i, i) for i in range(num_keys)]
    tree = BTree.build(FsBackend(kernel.fs, inode), items, fanout=FANOUT)
    return sim, kernel, bpf, tree


def describe(kernel, label, elapsed_ns, extra=""):
    hops = [
        f"t+{entry.submit_ns / 1000:6.2f}us lba={entry.lba:<6d} "
        f"[{entry.source}]"
        for entry in kernel.trace
    ]
    print(f"\n{label}  ({elapsed_ns / 1000:.2f} us total{extra})")
    for line in hops:
        print(f"    {line}")


def main():
    key = 37

    # ---- Path 1: user-space dispatch (Figure 2, left) -------------------
    sim, kernel, bpf, tree = fresh_machine()
    proc = kernel.spawn_process()

    def baseline():
        fd = yield from kernel.sys_open(proc, "/index")
        kernel.trace.clear()
        start = sim.now
        offset = tree.meta.root_offset
        for _level in range(DEPTH):
            result = yield from kernel.sys_pread(proc, fd, offset, PAGE_SIZE)
            yield from kernel.cpus.run_thread(kernel.cost.user_process_ns)
            _idx, child = search_page(result.data, key)
            offset = child
        return sim.now - start, kernel.syscall_count

    elapsed, syscalls = kernel.run_syscall(baseline())
    describe(kernel, "user-space dispatch: 4 read() calls, 4 full stack "
             "traversals, 8 boundary crossings", elapsed,
             f", {syscalls - 1} syscalls")

    # ---- Path 2: syscall-dispatch hook (Figure 2, middle) ----------------
    sim, kernel, bpf, tree = fresh_machine()
    program = index_traversal_program(fanout=FANOUT)
    bpf.verify_program(program)
    proc = kernel.spawn_process()

    def syscall_hook():
        fd = yield from kernel.sys_open(proc, "/index")
        yield from bpf.install(proc, fd, program, hook=Hook.SYSCALL)
        kernel.trace.clear()
        start = sim.now
        result = yield from bpf.read_chain(proc, fd, tree.meta.root_offset,
                                           PAGE_SIZE, args=(key,))
        return sim.now - start, result

    elapsed, result = kernel.run_syscall(syscall_hook())
    describe(kernel, "syscall-dispatch hook: 1 read() call, reissues loop "
             "inside the dispatch layer (ext4+BIO still run per hop)",
             elapsed, f", {result.hops} hops")

    # ---- Path 3: NVMe-driver hook (Figure 2, right) ----------------------
    sim, kernel, bpf, tree = fresh_machine()
    program = index_traversal_program(fanout=FANOUT)
    bpf.verify_program(program)
    proc = kernel.spawn_process()

    def nvme_hook():
        fd = yield from kernel.sys_open(proc, "/index")
        yield from bpf.install(proc, fd, program, hook=Hook.NVME)
        kernel.trace.clear()
        start = sim.now
        result = yield from bpf.read_chain(proc, fd, tree.meta.root_offset,
                                           PAGE_SIZE, args=(key,))
        return sim.now - start, result

    elapsed, result = kernel.run_syscall(nvme_hook())
    describe(kernel, "NVMe-driver hook: 1 read() call, descriptor recycled "
             "in the completion interrupt (only driver+device per hop)",
             elapsed, f", {result.hops} hops")
    print(f"\n    found value {result.value} (found flag {result.value2})")


if __name__ == "__main__":
    main()
