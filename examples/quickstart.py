"""Quickstart: accelerate an on-disk B-tree lookup with a storage BPF chain.

Builds a simulated machine (6 cores + gen-2 Optane), bulk-loads a B+-tree
index into the simulated ext4, installs the library's index-traversal BPF
program on the file descriptor via the special ioctl, and compares one
lookup over the three dispatch paths of the paper's Figure 2:

* baseline  — the application reads and parses one page per level;
* syscall   — the syscall-dispatch hook reissues without leaving the kernel;
* nvme      — the NVMe-driver completion hook recycles the command.

Run: ``python examples/quickstart.py``
"""

from repro.bench.runner import NVM2_BENCH
from repro.core import Hook, StorageBpf
from repro.core.library import index_traversal_program
from repro.kernel import Kernel, KernelConfig
from repro.sim import Simulator
from repro.structures import BTree, FsBackend
from repro.structures.pages import PAGE_SIZE, search_page

DEPTH_KEYS = 5000  # ~4 levels at fanout 8
FANOUT = 8
TARGET_KEY = 3 * 1234 + 1


def build_machine():
    sim = Simulator()
    kernel = Kernel(sim, NVM2_BENCH, KernelConfig(cores=6, trace_device=True))
    bpf = StorageBpf(kernel)
    inode = kernel.fs.create("/index")
    items = [(3 * i + 1, i * 10) for i in range(DEPTH_KEYS)]
    tree = BTree.build(FsBackend(kernel.fs, inode), items, fanout=FANOUT)
    return sim, kernel, bpf, tree


def baseline_lookup(sim, kernel, proc, fd, tree, key):
    """One application-level traversal; returns (value, latency_ns)."""
    start = sim.now
    offset = tree.meta.root_offset
    value = None
    for level in range(tree.depth):
        result = yield from kernel.sys_pread(proc, fd, offset, PAGE_SIZE)
        yield from kernel.cpus.run_thread(kernel.cost.user_process_ns)
        index, child = search_page(result.data, key)
        if child is None:
            break
        if level == tree.depth - 1:
            value = child
        offset = child
    return value, sim.now - start


def main():
    sim, kernel, bpf, tree = build_machine()
    program = index_traversal_program(fanout=FANOUT)
    bpf.verify_program(program)
    print(f"B-tree: {tree.meta.num_keys} keys, depth {tree.depth}, "
          f"fanout {FANOUT}; program: {len(program)} verified insns")

    proc = kernel.spawn_process("app")
    report = {}

    def workload():
        fd = yield from kernel.sys_open(proc, "/index")

        value, ns = yield from baseline_lookup(sim, kernel, proc, fd, tree,
                                               TARGET_KEY)
        report["baseline"] = (value, ns)

        # Install on the syscall-dispatch hook, then look up again.
        yield from bpf.install(proc, fd, program, hook=Hook.SYSCALL)
        start = sim.now
        result = yield from bpf.read_chain(proc, fd, tree.meta.root_offset,
                                           PAGE_SIZE, args=(TARGET_KEY,))
        report["syscall"] = (result.value, sim.now - start)

        # Re-install on the NVMe completion hook.
        yield from bpf.install(proc, fd, program, hook=Hook.NVME)
        start = sim.now
        result = yield from bpf.read_chain(proc, fd, tree.meta.root_offset,
                                           PAGE_SIZE, args=(TARGET_KEY,))
        report["nvme"] = (result.value, sim.now - start)
        return result

    result = kernel.run_syscall(workload())
    expected = (TARGET_KEY - 1) // 3 * 10

    print(f"\nlookup key={TARGET_KEY} (expect value {expected}):")
    baseline_ns = report["baseline"][1]
    for path in ("baseline", "syscall", "nvme"):
        value, ns = report[path]
        print(f"  {path:9s} value={value:<8d} latency={ns / 1000:7.2f} us  "
              f"({baseline_ns / ns:4.2f}x)")
        assert value == expected, path

    recycled = kernel.trace.count(source="bpf-recycle")
    print(f"\nNVMe chain: {result.hops} hops, {recycled} of them recycled "
          "inside the driver interrupt handler")
    print("Per-process resubmission accounting:",
          dict(bpf.accounting.totals))


if __name__ == "__main__":
    main()
