"""Sharded, replicated storage cluster with crash failover.

The exokernel argument scaled out: N independent storage targets —
each a full simulated kernel with its own journal, write cache, and
verified BPF chain engine — behind a consistent-hash ring, with
primary/replica replication, crash detection via RPC timeouts, replica
promotion that preserves read-your-writes, and journal-replay rejoin.

* :mod:`~repro.cluster.ring` — :class:`HashRing`, deterministic
  BLAKE2b-based consistent hashing.
* :mod:`~repro.cluster.cluster` — :class:`ClusterTarget` (PUT / GET /
  REPLICATE on top of the base target ops), :class:`StorageCluster`
  (placement, ack-after-replica replication, crash, promotion, rejoin
  with fsck + catch-up), and the one-sector record codec.
* :mod:`~repro.cluster.client` — :class:`ClusterClient`: ring routing,
  bounded failover retry, read-your-writes accounting, and chain
  pushdown that survives promotion.

See ``docs/cluster.md`` for the full protocol and failure arguments.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.cluster import (
    DATA_PATH,
    RECORD_SIZE,
    ClusterTarget,
    RejoinReport,
    StorageCluster,
    decode_record,
    encode_record,
)
from repro.cluster.ring import HashRing, stable_hash

__all__ = [
    "ClusterClient",
    "ClusterTarget",
    "DATA_PATH",
    "HashRing",
    "RECORD_SIZE",
    "RejoinReport",
    "StorageCluster",
    "decode_record",
    "encode_record",
    "stable_hash",
]
