"""Consistent-hash ring: deterministic key -> shard placement.

:class:`HashRing` places ``vnodes`` virtual points per shard on a
64-bit ring and routes each key to the first point clockwise from the
key's own hash.  Hashes come from BLAKE2b, **never** Python's builtin
``hash()``: the builtin is salted per process (``PYTHONHASHSEED``), and
the whole simulation contract is that placement — and therefore every
replicated byte and every trace — is a pure function of the
configuration.

With ``vnodes`` points per shard the load imbalance across shards is
small (tested: under 2x for 8 shards at 64 vnodes over 10k keys), and
adding a shard moves only ~1/N of the keyspace — the classic
consistent-hashing argument, which is why real disaggregated stores
(and this cluster) route this way instead of ``key % N``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.errors import InvalidArgument

__all__ = ["HashRing", "stable_hash"]


def stable_hash(data: bytes) -> int:
    """A process-independent 64-bit hash (BLAKE2b, truncated)."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(),
                          "big")


class HashRing:
    """Consistent-hash routing of integer keys onto shard ids."""

    def __init__(self, shards: Sequence[int], vnodes: int = 64):
        if not shards:
            raise InvalidArgument("ring needs at least one shard")
        if vnodes < 1:
            raise InvalidArgument("vnodes must be >= 1")
        self.shards = list(shards)
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for shard in self.shards:
            for replica in range(vnodes):
                point = stable_hash(f"shard-{shard}/{replica}".encode())
                points.append((point, shard))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def shard_for(self, key: int) -> int:
        """The shard owning ``key``: first ring point clockwise."""
        where = bisect.bisect_right(self._hashes,
                                    stable_hash(f"key-{key}".encode()))
        if where == len(self._points):
            where = 0  # wrap past the top of the ring
        return self._points[where][1]

    def histogram(self, keys: Sequence[int]) -> Dict[int, int]:
        """Keys per shard — placement-balance diagnostics."""
        counts = {shard: 0 for shard in self.shards}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
