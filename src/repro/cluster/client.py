"""The cluster client: ring routing, bounded retry, failover detection.

:class:`ClusterClient` owns one :class:`~repro.net.transport.Connection`
per target and routes each key's PUT/GET to its shard's *current*
primary.  When a primary stops answering, the RPC layer raises
:class:`~repro.errors.RpcTimeout` (carrying the op / request id /
attempt count), the client reports the target to the cluster — which
promotes the replica if the target really is down — and retries the
same operation against the new primary with bounded exponential
backoff.

**Read-your-writes.**  The client remembers the version stamp of every
acked PUT.  A later GET for the same key must come back with at least
that version; anything lower is counted in ``stale_reads`` (the
experiment asserts it stays zero across a mid-run primary crash, which
is exactly the guarantee ack-after-replica replication buys).

**Chains.**  ``install_chains`` ships one traversal program to *every*
target — each re-verifies it server-side and assigns a per-connection
chain id — so ``index_get`` pushdowns keep working no matter which
target currently owns the shard.  After a crashed target rejoins, its
per-connection chain state is gone by design (the fds it referenced
died with the old file system); ``reinstall_chains`` re-ships and
re-verifies on that target alone.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cluster.cluster import StorageCluster
from repro.errors import InvalidArgument, QosRejected, RpcTimeout
from repro.net import Connection, RemoteClient, wire

__all__ = ["ClusterClient"]


class ClusterClient:
    """One application's routed, failover-aware session with a cluster."""

    def __init__(self, cluster: StorageCluster, name: str = "client",
                 window: int = 8, max_failover_retries: int = 4,
                 retry_backoff_ns: int = 100_000,
                 tenant: Optional[str] = None, max_qos_retries: int = 8,
                 **conn_kwargs):
        self.cluster = cluster
        self.max_failover_retries = max_failover_retries
        self.retry_backoff_ns = retry_backoff_ns
        self.max_qos_retries = max_qos_retries
        #: EAGAIN sleeps actually taken across all routed ops.
        self.qos_backoffs = 0
        # One logical client is one tenant on every target it talks to
        # (default: the client name, when any target has QoS armed).
        if tenant is None and any(t.kernel.qos is not None
                                  for t in cluster.targets):
            tenant = name
        self.tenant = tenant
        self.conns: Dict[int, Connection] = {}
        self.remotes: Dict[int, RemoteClient] = {}
        for target in cluster.targets:
            conn = Connection(cluster.fabric,
                              f"{name}-t{target.target_id}",
                              window=window, **conn_kwargs)
            target.attach(conn, tenant=tenant)
            self.conns[target.target_id] = conn
            self.remotes[target.target_id] = RemoteClient(
                conn, max_qos_retries=max_qos_retries)
        #: key -> (version, value) of the latest *acknowledged* PUT:
        #: the read-your-writes obligation.
        self.acked: Dict[int, Tuple[int, int]] = {}
        self.stale_reads = 0
        self.failovers_observed = 0
        #: Simulated time of the first successful op on a crash-affected
        #: shard — ``availability_gap_ns`` measures detection + promotion.
        self.first_ok_after_crash: Optional[int] = None
        self.chain_ids: Dict[int, int] = {}
        self._chain_setup = None

    # -- KV operations -------------------------------------------------

    def put(self, key: int, value: int):
        """Replicated PUT (generator): returns the stamped version."""
        body = yield from self._call_routed(key, wire.OP_PUT,
                                            wire.encode_put(key, value))
        version = wire.decode_put_reply(body)
        self.acked[key] = (version, value)
        return version

    def get(self, key: int):
        """Routed GET (generator): ``(value, version, found)``.

        Checks the reply against the read-your-writes obligation and
        counts violations in ``stale_reads``.
        """
        body = yield from self._call_routed(key, wire.OP_GET,
                                            wire.encode_get(key))
        found, version, value = wire.decode_get_reply(body)
        want = self.acked.get(key)
        if want is not None and (not found or version < want[0]):
            self.stale_reads += 1
        return (value if found else None), version, found

    def _call_routed(self, key: int, op: int, body: bytes):
        """Route to the shard's primary; fail over on timeout (generator).

        Two kinds of retry, both deterministic: a dead primary surfaces
        as :class:`~repro.errors.RpcTimeout` and triggers failover with
        exponential backoff; an over-rate tenant gets a typed ``EAGAIN``
        whose body says exactly how long to sleep before the same
        request will be admitted.
        """
        shard = self.cluster.ring.shard_for(key)
        started = self.cluster.sim.now
        attempt = 0
        qos_waits = 0
        while True:
            target_id = self.cluster.primary[shard]
            try:
                status, reply = yield from self.conns[target_id].call(op,
                                                                      body)
            except RpcTimeout as timeout:
                attempt += 1
                if self.cluster.report_timeout(target_id, cause=timeout):
                    self.failovers_observed += 1
                if attempt > self.max_failover_retries:
                    raise
                yield self.cluster.sim.timeout(
                    self.retry_backoff_ns << (attempt - 1))
                continue
            if status == wire.STATUS_EAGAIN:
                retry_after_ns, reason, tenant = \
                    wire.decode_qos_reject(reply)
                if qos_waits >= self.max_qos_retries:
                    raise QosRejected(reason,
                                      retry_after_ns=retry_after_ns,
                                      tenant=tenant)
                qos_waits += 1
                self.qos_backoffs += 1
                yield self.cluster.sim.timeout(max(1, retry_after_ns))
                continue
            wire.raise_for_status(status, reply.decode("utf-8", "replace"))
            self._note_ok(shard, started)
            return reply

    def _note_ok(self, shard: int, started: int) -> None:
        # Only an op *issued* at/after the cut proves the shard is back:
        # a pre-crash op whose reply was already in flight does not.
        cluster = self.cluster
        if (cluster.crash_ts is not None
                and self.first_ok_after_crash is None
                and started >= cluster.crash_ts
                and shard in cluster.affected_shards):
            self.first_ok_after_crash = cluster.sim.now

    @property
    def availability_gap_ns(self) -> Optional[int]:
        """Crash to first completed op on an affected shard, in sim ns."""
        if self.cluster.crash_ts is None or self.first_ok_after_crash is None:
            return None
        return self.first_ok_after_crash - self.cluster.crash_ts

    # -- chain pushdown across failover --------------------------------

    def install_chains(self, path: str, program, **kwargs):
        """Ship ``program`` to every target (generator).

        Each target re-verifies it and hands back a per-connection
        chain id, so pushdown GETs survive any single failover without
        a reinstall.
        """
        self._chain_setup = (path, program, kwargs)
        for target_id in sorted(self.remotes):
            chain_id = yield from self.remotes[target_id].install_chain(
                path, program, **kwargs)
            self.chain_ids[target_id] = chain_id

    def reinstall_chains(self, target_id: int):
        """Re-ship the program to one rejoined target (generator)."""
        if self._chain_setup is None:
            raise InvalidArgument("no chain program was ever installed")
        path, program, kwargs = self._chain_setup
        chain_id = yield from self.remotes[target_id].install_chain(
            path, program, **kwargs)
        self.chain_ids[target_id] = chain_id
        return chain_id

    def index_get(self, key: int, root_offset: int = 0):
        """Pushdown B-tree GET routed like any other op (generator).

        Returns ``(value, found)``; fails over to the replica's
        (identically installed, independently re-verified) chain when
        the primary is dead.
        """
        shard = self.cluster.ring.shard_for(key)
        started = self.cluster.sim.now
        attempt = 0
        while True:
            target_id = self.cluster.primary[shard]
            try:
                value, found, _rpcs = \
                    yield from self.remotes[target_id].remote_btree_get(
                        key, mode="pushdown",
                        chain_id=self.chain_ids[target_id],
                        root_offset=root_offset)
            except RpcTimeout as timeout:
                attempt += 1
                if self.cluster.report_timeout(target_id, cause=timeout):
                    self.failovers_observed += 1
                if attempt > self.max_failover_retries:
                    raise
                yield self.cluster.sim.timeout(
                    self.retry_backoff_ns << (attempt - 1))
                continue
            self._note_ok(shard, started)
            return value, found
