"""The sharded, replicated storage cluster: targets, shards, failover.

A :class:`StorageCluster` is N :class:`ClusterTarget` s — each a full
:class:`~repro.net.target.StorageTarget` (its own kernel, journal,
write cache, NVMe device, and BPF chain engine) — on one shared
simulator and network fabric, behind a consistent-hash
:class:`~repro.cluster.ring.HashRing`.

**Placement.**  With N targets there are N shards; target ``t`` is the
primary of shard ``t`` and the replica of shard ``t-1`` (mod N), so a
single crash touches exactly two shards: one loses its primary (the
replica is promoted), one loses its replica (the primary serves solo
and the shard's replica lag grows until rejoin).

**Replication.**  A PUT executes on the primary, which stamps the
record with a per-key monotonic version, writes it locally, then
forwards it over an inter-target connection and waits for the
replica's ack *before* acking the client.  That ordering is the whole
consistency argument: every write the client ever saw acknowledged
exists on the replica, so promotion after a crash loses nothing and
the promoted primary's next version stamp (``versions[key] + 1``)
continues the acked sequence — read-your-writes survives failover.

**Crash / failover / rejoin.**  A :class:`~repro.faults.FaultSpec`
with ``target_crash_after_rpcs=k`` arms a power cut on one victim
after it has handled k RPCs; from then on the victim answers nothing
(a dead machine sends no RSTs).  The *client* detects this the only
way a distributed system can — :class:`~repro.errors.RpcTimeout` — and
reports it; the cluster promotes the affected replicas.  Rejoining the
victim replays its journal (:func:`~repro.kernel.recovery.reload_fs`),
audits the recovered file system with fsck, rebuilds the version table
from media (the in-memory table died with the power), discards every
stale per-client fd/chain, then catches up records it missed from the
new primary — forced REPLICATEs that also overwrite any never-acked
write the crash tore out of its write cache.

Records are one 512-byte sector each (magic, key, version, value,
zero padding), so a record write can never tear: the device's
volatile-cache teardown only splits multi-sector writes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.ring import HashRing
from repro.errors import InvalidArgument, RemoteError, RpcTimeout
from repro.faults import FaultPlan, FaultSpec
from repro.kernel import JournalConfig, KernelConfig
from repro.kernel.recovery import fsck
from repro.net import Connection, NetConfig, NetworkFabric, StorageTarget
from repro.net import wire
from repro.obs import events as obs_events
from repro.qos import QosConfig
from repro.sim import Simulator

__all__ = ["ClusterTarget", "DATA_PATH", "RECORD_SIZE", "RejoinReport",
           "StorageCluster", "decode_record", "encode_record"]

#: One record per 512 B sector: single-sector writes never tear.
RECORD_SIZE = 512
RECORD_MAGIC = 0xC10C_0001
_RECORD_HEADER = struct.Struct("!IQQQ")  # magic, key, version, value

#: Every target stores its records in this pre-allocated file.
DATA_PATH = "/shard"


def encode_record(key: int, version: int, value: int) -> bytes:
    """One durable record, padded to exactly one sector."""
    header = _RECORD_HEADER.pack(RECORD_MAGIC, key, version, value)
    return header + bytes(RECORD_SIZE - len(header))


def decode_record(data: bytes) -> Optional[Tuple[int, int, int]]:
    """``(key, version, value)``, or None for an empty/foreign slot."""
    if len(data) < _RECORD_HEADER.size:
        return None
    magic, key, version, value = _RECORD_HEADER.unpack_from(data)
    if magic != RECORD_MAGIC or version == 0:
        return None
    return key, version, value


@dataclass(frozen=True)
class RejoinReport:
    """What bringing a crashed target back involved."""

    target: int
    replayed_txns: int
    discarded_txns: int
    fsck_ok: bool
    rebuilt_versions: int
    caught_up: int


class ClusterTarget(StorageTarget):
    """A storage target that is one member of a :class:`StorageCluster`.

    Adds the KV ops (PUT / GET / REPLICATE) on top of the base target's
    READ / WRITE / INSTALL_CHAIN / EXEC_CHAIN, plus the crash flag: a
    crashed target silently drops every request — replies, refusals and
    all — because a machine without power does not send errors.
    """

    def __init__(self, sim: Simulator, model=None,
                 config: Optional[KernelConfig] = None,
                 target_id: int = 0, cluster: "StorageCluster" = None,
                 capacity_keys: int = 1024, max_chain_hops: int = 64):
        super().__init__(sim, model, config, max_chain_hops)
        self.target_id = target_id
        self.cluster = cluster
        self.capacity_keys = capacity_keys
        self.data_path = DATA_PATH
        self.crashed = False
        self.handled_rpcs = 0
        #: Per-key monotonic version stamps (volatile: dies with power,
        #: rebuilt from media at rejoin).
        self.versions: Dict[int, int] = {}

    # -- request dispatch ---------------------------------------------

    def _handle(self, state, op: int, body: bytes):
        if self.crashed:
            return None
        self.handled_rpcs += 1
        if self.cluster is not None:
            self.cluster._before_rpc(self)
            if self.crashed:  # the fault plan just cut our power
                return None
        result = yield from super()._handle(state, op, body)
        if self.crashed:
            # Power died while this op was in flight: whatever refusal
            # or reply the handler produced, a dead machine sends nothing.
            return None
        return result

    def _handle_extra(self, state, op: int, body: bytes):
        if op == wire.OP_PUT:
            return self._op_put(state, body)
        if op == wire.OP_GET:
            return self._op_get(state, body)
        if op == wire.OP_REPLICATE:
            return self._op_replicate(state, body)
        return None

    # -- KV ops --------------------------------------------------------

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.capacity_keys:
            raise InvalidArgument(
                f"key {key} outside target capacity {self.capacity_keys}")

    def _op_put(self, state, body: bytes):
        key, value = wire.decode_put(body)
        self._check_key(key)
        version = self.versions.get(key, 0) + 1
        record = encode_record(key, version, value)
        fd = yield from self._fd_for(state, self.data_path)
        yield from self.kernel.sys_pwrite(state.proc, fd,
                                          key * RECORD_SIZE, record)
        self.versions[key] = version
        if self.cluster is not None:
            # Ack-after-replica: the client's reply is not sent until
            # the replica has the record (or is known dead).
            yield from self.cluster.replicate(self, key, version, record)
        return wire.encode_put_reply(version)

    def _op_get(self, state, body: bytes):
        key = wire.decode_get(body)
        self._check_key(key)
        fd = yield from self._fd_for(state, self.data_path)
        result = yield from self.kernel.sys_pread(state.proc, fd,
                                                  key * RECORD_SIZE,
                                                  RECORD_SIZE)
        decoded = decode_record(result.data)
        if decoded is None or decoded[0] != key:
            return wire.encode_get_reply(False, 0, 0)
        _key, version, value = decoded
        return wire.encode_get_reply(True, version, value)

    def _op_replicate(self, state, body: bytes):
        key, version, offset, data = wire.decode_replicate(body)
        self._check_key(key)
        fd = yield from self._fd_for(state, self.data_path)
        yield from self.kernel.sys_pwrite(state.proc, fd, offset, data)
        # The sender (primary, or the rejoin catch-up) is authoritative:
        # take its stamp unconditionally, even backwards — a catch-up
        # REPLICATE may overwrite a newer-but-never-acked crash leftover.
        if version > 0:
            self.versions[key] = version
        else:
            self.versions.pop(key, None)
        return wire.encode_replicate_reply(version)

    # -- crash / rejoin plumbing --------------------------------------

    def rebuild_versions(self) -> int:
        """Re-derive the version table from media (post-recovery)."""
        self.versions.clear()
        inode = self.kernel.fs.lookup(self.data_path)
        for key in range(self.capacity_keys):
            decoded = decode_record(self.kernel.fs.read_sync(
                inode, key * RECORD_SIZE, RECORD_SIZE))
            if decoded is not None and decoded[0] == key:
                self.versions[key] = decoded[1]
        return len(self.versions)

    def reset_client_state(self) -> None:
        """Drop per-client fds and chain installs (stale after reload).

        Recovery rebuilds the file system in place, so every cached fd
        references a dead inode and every installed chain a dead fd.
        Clients re-open lazily; chains must be re-shipped and re-verified
        (:meth:`~repro.cluster.client.ClusterClient.reinstall_chains`).
        """
        for state in self._clients.values():
            state.fds.clear()
            state.chains.clear()
            # Accounting rows for the pre-crash incarnation are stale
            # too: without this, every crash/rejoin cycle leaked one
            # pending/total row per client process.
            self.accounting.forget(state.proc)


class StorageCluster:
    """N sharded, replicated :class:`ClusterTarget` s on one fabric."""

    def __init__(self, sim: Simulator, shards: int, model=None,
                 seed: int = 7, cores: int = 2, capacity_keys: int = 1024,
                 rtt_us: int = 10, cache_depth: int = 8,
                 journal_blocks: int = 64,
                 fault_spec: Optional[FaultSpec] = None,
                 crash_victim: int = 0, repl_retries: int = 2,
                 repl_timeout_ns: int = 300_000,
                 qos: Optional[QosConfig] = None):
        if shards < 1:
            raise InvalidArgument("cluster needs at least one shard")
        self.sim = sim
        self.seed = seed
        self.num_shards = shards
        self.capacity_keys = capacity_keys
        self.fabric = NetworkFabric(
            sim, NetConfig(one_way_ns=rtt_us * 1000 // 2, seed=seed))
        self.bus = self.fabric.bus
        self.ring = HashRing(range(shards))
        self.targets: List[ClusterTarget] = []
        for t in range(shards):
            config = KernelConfig(
                cores=cores, seed=seed + t, write_cache_depth=cache_depth,
                journal=JournalConfig(journal_blocks=journal_blocks),
                qos=qos)
            target = ClusterTarget(sim, model=model, config=config,
                                   target_id=t, cluster=self,
                                   capacity_keys=capacity_keys)
            target.create_file(DATA_PATH,
                               bytes(capacity_keys * RECORD_SIZE))
            # Make the untimed setup durable: without a checkpoint, a
            # crash would recover this target to an *empty* file system.
            target.kernel.fs.checkpoint_sync()
            self.targets.append(target)
        #: shard -> current primary / replica target id (replica is None
        #: for a single-target cluster: nothing to replicate to).
        self.primary: Dict[int, int] = {s: s for s in range(shards)}
        self.replica: Dict[int, Optional[int]] = {
            s: ((s + 1) % shards if shards > 1 else None)
            for s in range(shards)}
        #: Shards whose replica is currently unreachable (crashed).
        self._replica_down: Set[int] = set()
        self._repl_conns: Dict[int, Connection] = {}
        self._repl_conn_target: Dict[int, int] = {}
        self._repl_generation = 0
        self._ctl_conns: Dict[int, Connection] = {}
        self._repl_retries = repl_retries
        self._repl_timeout_ns = repl_timeout_ns
        for s in range(shards):
            if self.replica[s] is not None:
                self._make_repl_conn(s)
        #: The armed fault plan (only ``target_crash_after_rpcs`` is
        #: interpreted at cluster level; media/net fields belong to the
        #: per-kernel / fabric plans).
        self.plan = FaultPlan(fault_spec, kernel_seed=seed) \
            if fault_spec is not None else None
        self.crash_victim = crash_victim
        # -- bookkeeping ------------------------------------------------
        self.failovers = 0
        self.rejoins = 0
        self.crash_ts: Optional[int] = None
        self.affected_shards: Set[int] = set()
        self.shard_puts: Dict[int, int] = {}
        self.shard_replicated: Dict[int, int] = {}

    # -- topology ------------------------------------------------------

    def primary_for(self, key: int) -> int:
        return self.primary[self.ring.shard_for(key)]

    def replica_lag(self, shard: int) -> int:
        """Acked primary writes the replica has not applied."""
        return (self.shard_puts.get(shard, 0) -
                self.shard_replicated.get(shard, 0))

    def _make_repl_conn(self, shard: int) -> Connection:
        replica = self.replica[shard]
        conn = Connection(self.fabric,
                          f"repl-s{shard}-g{self._repl_generation}",
                          timeout_ns=self._repl_timeout_ns,
                          max_retries=self._repl_retries)
        self._repl_generation += 1
        # Replication is system traffic: never admission-controlled.
        self.targets[replica].attach(conn, tenant="")
        self._repl_conns[shard] = conn
        self._repl_conn_target[shard] = replica
        return conn

    def _ctl_conn(self, target_id: int) -> Connection:
        """A cluster-owned control connection to ``target_id`` (lazy)."""
        conn = self._ctl_conns.get(target_id)
        if conn is None:
            conn = Connection(self.fabric, f"ctl-t{target_id}")
            self.targets[target_id].attach(conn, tenant="")
            self._ctl_conns[target_id] = conn
        return conn

    # -- replication (called from the primary's PUT handler) -----------

    def replicate(self, source: ClusterTarget, key: int, version: int,
                  record: bytes):
        """Forward one stamped record to the shard's replica (generator).

        A replica that stops answering is marked down — the primary
        keeps serving solo rather than stalling every PUT on a dead
        machine's retransmission budget.
        """
        shard = self.ring.shard_for(key)
        self.shard_puts[shard] = self.shard_puts.get(shard, 0) + 1
        conn = None
        if (self.primary.get(shard) == source.target_id
                and self.replica.get(shard) is not None
                and shard not in self._replica_down):
            conn = self._repl_conns.get(shard)
        if conn is not None:
            try:
                status, body = yield from conn.call(
                    wire.OP_REPLICATE,
                    wire.encode_replicate(key, version, key * RECORD_SIZE,
                                          record))
                wire.raise_for_status(status,
                                      body.decode("utf-8", "replace"))
                self.shard_replicated[shard] = \
                    self.shard_replicated.get(shard, 0) + 1
            except (RpcTimeout, RemoteError):
                self._replica_down.add(shard)
        if self.bus.enabled:
            self.bus.emit(obs_events.CLUSTER_REPLICATE, self.sim.now,
                          shard=shard, key=key, version=version,
                          lag=self.replica_lag(shard))

    # -- crash ---------------------------------------------------------

    def _before_rpc(self, target: ClusterTarget) -> None:
        """Fault hook: maybe cut the victim's power before this RPC."""
        if (self.plan is not None and target.target_id == self.crash_victim
                and self.plan.target_crash_due(target.handled_rpcs)):
            self.crash_target(target.target_id)

    def crash_target(self, target_id: int, tear: bool = False) -> None:
        """Cut one target's power: volatile cache gone, requests dark."""
        target = self.targets[target_id]
        if target.crashed:
            return
        target.crashed = True
        target.kernel.crash(tear=tear)
        self.crash_ts = self.sim.now
        self.affected_shards = {s for s, p in self.primary.items()
                                if p == target_id}
        for s, replica in self.replica.items():
            if replica == target_id:
                self._replica_down.add(s)

    def report_timeout(self, target_id: int,
                       cause: Optional[RpcTimeout] = None) -> List[int]:
        """A client's crash detector: promote the dead primary's shards.

        Returns the promoted shard ids ([] for a spurious timeout — a
        slow-but-alive target keeps its shards, the client just
        retries).  Promotion is safe because every *acked* version
        already lives on the replica; the promoted primary continues
        each key's version sequence from its own table.
        """
        target = self.targets[target_id]
        if not target.crashed:
            return []
        promoted = []
        for shard in sorted(self.primary):
            if (self.primary[shard] == target_id
                    and self.replica[shard] is not None):
                self.primary[shard] = self.replica[shard]
                self.replica[shard] = target_id
                self._replica_down.add(shard)
                promoted.append(shard)
        if promoted:
            self.failovers += 1
            if self.bus.enabled:
                self.bus.emit(obs_events.CLUSTER_FAILOVER, self.sim.now,
                              target=target_id, shards=promoted,
                              op=cause.op if cause else "?",
                              attempts=cause.attempts if cause else 0)
        return promoted

    # -- rejoin --------------------------------------------------------

    def rejoin(self, target_id: int):
        """Bring a crashed target back as a replica (generator).

        Journal replay + fsck first (a target that cannot mount cleanly
        must not rejoin), then rebuild the version table from media,
        drop stale per-client state, and catch up: for every shard this
        target now backs, pull the authoritative record for each key
        from the current primary (a GET through the primary's kernel,
        so write-cache-resident records are included) and force-apply
        it.  Never-acked divergent leftovers are overwritten — correct,
        because no client was ever told they happened.
        """
        target = self.targets[target_id]
        if not target.crashed:
            raise InvalidArgument(f"target {target_id} is not crashed")
        report = target.kernel.recover()
        fsck_report = fsck(target.kernel.fs)
        rebuilt = target.rebuild_versions()
        target.reset_client_state()
        target.crashed = False
        caught_up = 0
        if fsck_report.ok:
            for shard in sorted(self.replica):
                if (self.replica[shard] != target_id
                        or self.primary[shard] == target_id):
                    continue
                caught_up += yield from self._catch_up(shard, target_id)
                self._replica_down.discard(shard)
                if self._repl_conn_target.get(shard) != target_id:
                    self._make_repl_conn(shard)
                # The replica is caught up to every acked write.
                self.shard_replicated[shard] = self.shard_puts.get(shard, 0)
        self.rejoins += 1
        if self.bus.enabled:
            self.bus.emit(obs_events.CLUSTER_REJOIN, self.sim.now,
                          target=target_id,
                          replayed_txns=report.replayed_txns,
                          discarded_txns=report.discarded_txns,
                          fsck_ok=fsck_report.ok, caught_up=caught_up)
        return RejoinReport(target=target_id,
                            replayed_txns=report.replayed_txns,
                            discarded_txns=report.discarded_txns,
                            fsck_ok=fsck_report.ok,
                            rebuilt_versions=rebuilt,
                            caught_up=caught_up)

    def _catch_up(self, shard: int, target_id: int):
        """Replay every record of ``shard`` from its primary (generator)."""
        primary = self.targets[self.primary[shard]]
        src = self._ctl_conn(primary.target_id)
        dst = self._ctl_conn(target_id)
        copied = 0
        for key in sorted(primary.versions):
            if self.ring.shard_for(key) != shard:
                continue
            status, body = yield from src.call(wire.OP_GET,
                                               wire.encode_get(key))
            wire.raise_for_status(status, body.decode("utf-8", "replace"))
            found, version, value = wire.decode_get_reply(body)
            if not found:
                continue
            record = encode_record(key, version, value)
            status, body = yield from dst.call(
                wire.OP_REPLICATE,
                wire.encode_replicate(key, version, key * RECORD_SIZE,
                                      record))
            wire.raise_for_status(status, body.decode("utf-8", "replace"))
            copied += 1
        return copied

    # -- setup helpers -------------------------------------------------

    def preload(self, items: Sequence[Tuple[int, int]]) -> None:
        """Untimed bulk load: version-1 records on primary *and* replica.

        Setup-phase data, so it lands directly on media (no journal or
        write-cache traffic) — the steady state a long-running cluster
        would have reached anyway.
        """
        for key, value in items:
            shard = self.ring.shard_for(key)
            record = encode_record(key, 1, value)
            for target_id in (self.primary[shard], self.replica[shard]):
                if target_id is None:
                    continue
                target = self.targets[target_id]
                target._check_key(key)
                inode = target.kernel.fs.lookup(DATA_PATH)
                target.kernel.fs.write_sync(inode, key * RECORD_SIZE,
                                            record)
                target.versions[key] = 1

    def build_index(self, path: str, items: Sequence[Tuple[int, int]],
                    fanout: int = 16):
        """Build the same B-tree on every target (for chain pushdown).

        Returns the (identical) root offset.  Called before traffic, so
        the trees land in each target's setup checkpoint and survive a
        crash; chains against them are installed per connection by the
        client.
        """
        from repro.structures import BTree, FsBackend

        root = None
        for target in self.targets:
            inode = target.kernel.fs.create(path)
            tree = BTree.build(FsBackend(target.kernel.fs, inode),
                               list(items), fanout=fanout)
            target.kernel.fs.checkpoint_sync()
            if root is None:
                root = tree.meta.root_offset
            elif root != tree.meta.root_offset:
                raise InvalidArgument("index build diverged across targets")
        return root
