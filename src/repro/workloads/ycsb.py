"""YCSB-style operation streams.

``WORKLOAD_MIXES`` includes the standard YCSB A/B/C mixes plus ``"paper"``,
the exact 40 % read / 40 % update / 20 % insert zipf(0.7) configuration the
paper ran for 24 hours against MariaDB/TokuDB to measure extent stability
(§4, Translation & Security).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterator

from repro.errors import InvalidArgument
from repro.workloads.keys import UniformGenerator, ZipfianGenerator

__all__ = ["OpType", "Operation", "WORKLOAD_MIXES", "YcsbWorkload"]


class OpType(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"


@dataclass(frozen=True)
class Operation:
    op: OpType
    key: int
    value: int = 0
    scan_length: int = 0


#: (read, update, insert, scan) fractions.
WORKLOAD_MIXES: Dict[str, Dict[str, float]] = {
    "a": {"read": 0.5, "update": 0.5, "insert": 0.0, "scan": 0.0},
    "b": {"read": 0.95, "update": 0.05, "insert": 0.0, "scan": 0.0},
    "c": {"read": 1.0, "update": 0.0, "insert": 0.0, "scan": 0.0},
    "e": {"read": 0.0, "update": 0.0, "insert": 0.05, "scan": 0.95},
    #: The paper's TokuDB experiment: 40R/40U/20I, zipfian 0.7.
    "paper": {"read": 0.4, "update": 0.4, "insert": 0.2, "scan": 0.0},
}


class YcsbWorkload:
    """An endless operation stream over a growing keyspace."""

    def __init__(self, initial_keys: int, rng: random.Random,
                 mix: str = "paper", theta: float = 0.7,
                 distribution: str = "zipfian", scan_length: int = 16):
        if mix not in WORKLOAD_MIXES:
            raise InvalidArgument(f"unknown mix {mix!r}")
        if initial_keys < 1:
            raise InvalidArgument("initial_keys must be >= 1")
        self.mix = WORKLOAD_MIXES[mix]
        self.rng = rng
        self.scan_length = scan_length
        self.next_insert_key = initial_keys
        if distribution == "zipfian":
            self.keys = ZipfianGenerator(initial_keys, rng, theta=theta)
        elif distribution == "uniform":
            self.keys = UniformGenerator(initial_keys, rng)
        else:
            raise InvalidArgument(f"unknown distribution {distribution!r}")
        self.counts: Dict[OpType, int] = {op: 0 for op in OpType}

    def _draw_op(self) -> OpType:
        u = self.rng.random()
        acc = 0.0
        for name, fraction in self.mix.items():
            acc += fraction
            if u < acc:
                return OpType(name)
        return OpType.READ

    def next_operation(self) -> Operation:
        op = self._draw_op()
        self.counts[op] += 1
        if op is OpType.INSERT:
            key = self.next_insert_key
            self.next_insert_key += 1
            self.keys.grow(self.next_insert_key)
            return Operation(op, key, value=self.rng.getrandbits(32))
        key = self.keys.next_key()
        if op is OpType.UPDATE:
            return Operation(op, key, value=self.rng.getrandbits(32))
        if op is OpType.SCAN:
            return Operation(op, key, scan_length=self.scan_length)
        return Operation(op, key)

    def operations(self, count: int) -> Iterator[Operation]:
        for _ in range(count):
            yield self.next_operation()
