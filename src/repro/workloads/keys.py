"""Key-popularity distributions.

The zipfian generator uses the standard YCSB/Gray et al. rejection-free
construction (precomputed harmonic constants), so ``theta=0.7`` here means
the same skew the paper's YCSB configuration means.
"""

from __future__ import annotations

import random

from repro.errors import InvalidArgument

__all__ = ["LatestGenerator", "UniformGenerator", "ZipfianGenerator"]


class UniformGenerator:
    """Uniform keys over [0, item_count)."""

    def __init__(self, item_count: int, rng: random.Random):
        if item_count < 1:
            raise InvalidArgument("item_count must be >= 1")
        self.item_count = item_count
        self.rng = rng

    def next_key(self) -> int:
        return self.rng.randrange(self.item_count)

    def grow(self, new_count: int) -> None:
        if new_count < self.item_count:
            raise InvalidArgument("item_count cannot shrink")
        self.item_count = new_count


class ZipfianGenerator:
    """Zipf-distributed keys over [0, item_count) (YCSB construction).

    Popularity rank is scrambled by a multiplicative hash so that hot keys
    are spread across the keyspace rather than clustered at 0, matching
    YCSB's ScrambledZipfian behaviour.
    """

    def __init__(self, item_count: int, rng: random.Random,
                 theta: float = 0.99, scrambled: bool = True):
        if item_count < 1:
            raise InvalidArgument("item_count must be >= 1")
        if not 0.0 < theta < 1.0:
            raise InvalidArgument("theta must be in (0, 1)")
        self.rng = rng
        self.theta = theta
        self.scrambled = scrambled
        self._set_count(item_count)

    def _set_count(self, item_count: int) -> None:
        self.item_count = item_count
        self._zetan = self._zeta(item_count, self.theta)
        self._zeta2 = self._zeta(2, self.theta)
        self._alpha = 1.0 / (1.0 - self.theta)
        self._eta = (1 - (2.0 / item_count) ** (1 - self.theta)) / \
                    (1 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(count: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, count + 1))

    def next_rank(self) -> int:
        """A popularity rank in [0, item_count); rank 0 is hottest."""
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count *
                   (self._eta * u - self._eta + 1) ** self._alpha)

    def next_key(self) -> int:
        rank = min(self.next_rank(), self.item_count - 1)
        if not self.scrambled:
            return rank
        return (rank * 0x9E3779B97F4A7C15 % (2**64)) % self.item_count

    def grow(self, new_count: int) -> None:
        """Extend the keyspace (YCSB does this as inserts land).

        Recomputing zeta exactly is O(n); use the incremental update.
        """
        if new_count < self.item_count:
            raise InvalidArgument("item_count cannot shrink")
        if new_count == self.item_count:
            return
        extra = sum(1.0 / (i ** self.theta)
                    for i in range(self.item_count + 1, new_count + 1))
        self._zetan += extra
        self.item_count = new_count
        self._eta = (1 - (2.0 / new_count) ** (1 - self.theta)) / \
                    (1 - self._zeta2 / self._zetan)


class LatestGenerator:
    """Skewed toward recently inserted keys (YCSB's 'latest')."""

    def __init__(self, item_count: int, rng: random.Random,
                 theta: float = 0.99):
        self._zipf = ZipfianGenerator(item_count, rng, theta,
                                      scrambled=False)

    @property
    def item_count(self) -> int:
        return self._zipf.item_count

    def next_key(self) -> int:
        rank = min(self._zipf.next_rank(), self.item_count - 1)
        return self.item_count - 1 - rank

    def grow(self, new_count: int) -> None:
        self._zipf.grow(new_count)
