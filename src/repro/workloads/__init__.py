"""Workload generators for the experiments.

* :mod:`~repro.workloads.keys` — key-popularity distributions (uniform,
  zipfian with the YCSB parameterisation, latest).
* :mod:`~repro.workloads.ycsb` — YCSB-style mixed operation streams,
  including the exact 40 % read / 40 % update / 20 % insert zipf(0.7) mix
  the paper runs against TokuDB for its extent-stability measurement.
"""

from repro.workloads.keys import LatestGenerator, UniformGenerator, ZipfianGenerator
from repro.workloads.ycsb import Operation, OpType, YcsbWorkload, WORKLOAD_MIXES

__all__ = [
    "LatestGenerator",
    "Operation",
    "OpType",
    "UniformGenerator",
    "WORKLOAD_MIXES",
    "YcsbWorkload",
    "ZipfianGenerator",
]
