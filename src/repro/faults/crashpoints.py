"""Crash-point enumeration: crash everywhere, recover, verify.

The ALICE/CrashMonkey idea applied to the simulated stack: run a scripted
workload against a machine with a volatile write cache and a metadata
journal, crash it at *every* interesting point, mount-after-crash, and
check the result against an independently computed shadow model.

Two enumeration axes:

* ``at="flush"`` — arm ``FaultSpec(power_loss_after_flushes=k)`` for every
  flush boundary k of the workload.  The cut fires the instant the k-th
  FLUSH completes, i.e. inside fsync #k *after* the data flush but
  *before* the journal commit — the exact window the write-ahead protocol
  exists for.
* ``at="op"`` — run the first j ops to completion, then cut power
  manually (:meth:`Kernel.crash`), for every j.  Here the cache is dirty,
  so dropped and torn volatile writes are exercised.

The verdict for every crash point is the same strong statement: the
recovered file system must equal the shadow state at the **last commit
point** before the crash (the last completed fsync — or the last
completed op when the journal runs in ``sync_commit`` mode on a
write-through device, the configuration in which a crash loses nothing).
That single equality implies prefix durability ("fsync'd bytes survive")
and rollback of every uncommitted txn; :func:`~repro.kernel.recovery.fsck`
then audits the structural invariants independently.

Workloads must not overwrite already-fsynced byte ranges in place
(``mixed_workload`` obeys this): the stack, like any O_DIRECT path without
data journaling, makes no atomicity promise for such overwrites.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidArgument, PowerLossError
from repro.faults.plan import FaultSpec

__all__ = ["CrashPointResult", "WorkloadOp", "count_flush_boundaries",
           "enumerate_crash_points", "mixed_workload"]


@dataclass(frozen=True)
class WorkloadOp:
    """One scripted operation; ``kind`` selects which fields matter."""

    kind: str          # create | write | fsync | rename | unlink | truncate
    path: str
    offset: int = 0    # write: byte offset (sector aligned)
    length: int = 0    # write: byte count (sector aligned)
    new_path: str = "" # rename target
    size: int = 0      # truncate target size

    _KINDS = ("create", "write", "fsync", "rename", "unlink", "truncate")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise InvalidArgument(f"unknown workload op kind {self.kind!r}")
        if self.kind == "write" and (self.offset % 512 or
                                     self.length % 512 or self.length <= 0):
            raise InvalidArgument("write ops must be sector aligned")


def mixed_workload(seed: int = 0) -> List[WorkloadOp]:
    """A representative crash-test script: creates, multi-block writes,
    appends-after-fsync, a rename commit pattern, truncate, and unlink —
    never overwriting an fsynced range in place.  ``seed`` varies the
    write payloads (via :func:`op_data`), not the op sequence, so the
    flush-boundary count is seed-independent.
    """
    del seed  # payloads are derived per (seed, index) at run time
    return [
        WorkloadOp("create", "/a"),
        WorkloadOp("write", "/a", offset=0, length=8192),
        WorkloadOp("fsync", "/a"),                        # boundary 1
        WorkloadOp("write", "/a", offset=8192, length=4096),
        WorkloadOp("create", "/b"),
        WorkloadOp("write", "/b", offset=0, length=12288),
        WorkloadOp("fsync", "/b"),                        # boundary 2
        WorkloadOp("rename", "/b", new_path="/b2"),
        WorkloadOp("create", "/c"),
        WorkloadOp("write", "/c", offset=0, length=4096),
        WorkloadOp("fsync", "/c"),                        # boundary 3
        WorkloadOp("truncate", "/a", size=4096),
        WorkloadOp("unlink", "/c"),
        WorkloadOp("create", "/d"),
        WorkloadOp("write", "/d", offset=0, length=4096),
        WorkloadOp("write", "/b2", offset=12288, length=8192),
        WorkloadOp("fsync", "/b2"),                       # boundary 4
    ]


def op_data(seed: int, index: int, length: int) -> bytes:
    """The deterministic payload of write op ``index`` under ``seed``."""
    return random.Random((seed << 20) ^ (index + 1)).randbytes(length)


# ---------------------------------------------------------------------------
# Shadow model
# ---------------------------------------------------------------------------

def _apply_shadow(state: Dict[str, bytearray], op: WorkloadOp,
                  data: bytes) -> None:
    if op.kind == "create":
        state[op.path] = bytearray()
    elif op.kind == "write":
        buf = state[op.path]
        if len(buf) < op.offset + op.length:
            buf.extend(bytes(op.offset + op.length - len(buf)))
        buf[op.offset : op.offset + op.length] = data
    elif op.kind == "rename":
        state[op.new_path] = state.pop(op.path)
    elif op.kind == "unlink":
        del state[op.path]
    elif op.kind == "truncate":
        buf = state[op.path]
        if op.size <= len(buf):
            del buf[op.size:]
        else:
            buf.extend(bytes(op.size - len(buf)))
    # fsync: no logical-content change


def _snapshot(state: Dict[str, bytearray]) -> Dict[str, bytes]:
    return {path: bytes(buf) for path, buf in state.items()}


# ---------------------------------------------------------------------------
# Machine driver
# ---------------------------------------------------------------------------

def _build_machine(seed: int, cache_depth: int, journal,
                   spec: Optional[FaultSpec], capacity_sectors: int):
    from repro.device import NVM_GEN2
    from repro.kernel.kernel import Kernel, KernelConfig
    from repro.sim import Simulator

    sim = Simulator()
    kernel = Kernel(sim, NVM_GEN2, KernelConfig(
        seed=seed, capacity_sectors=capacity_sectors,
        write_cache_depth=cache_depth, journal=journal, fault_plan=spec))
    return kernel


class _WorkloadRun:
    """Outcome of driving a workload until completion or power loss."""

    __slots__ = ("kernel", "completed", "crashed", "commit_index",
                 "committed_state", "snapshots")

    def __init__(self, kernel):
        self.kernel = kernel
        self.completed = -1      # index of the last fully completed op
        self.crashed = False
        self.commit_index = -1   # op index of the last durable commit
        self.committed_state: Dict[str, bytes] = {}
        self.snapshots: List[Dict[str, bytes]] = []


def _run_ops(kernel, ops: List[WorkloadOp], seed: int,
             stop_after: Optional[int] = None) -> _WorkloadRun:
    sync_commit = (kernel.fs.journal is not None and
                   kernel.fs.journal.config.sync_commit and
                   kernel.config.write_cache_depth == 0)
    run = _WorkloadRun(kernel)
    proc = kernel.spawn_process("crashpoint")
    fds: Dict[str, int] = {}
    shadow: Dict[str, bytearray] = {}
    try:
        for index, op in enumerate(ops):
            if stop_after is not None and index > stop_after:
                break
            data = b""
            if op.kind == "create":
                fds[op.path] = kernel.run_syscall(
                    kernel.sys_open(proc, op.path, create=True))
            elif op.kind == "write":
                data = op_data(seed, index, op.length)
                kernel.run_syscall(
                    kernel.sys_pwrite(proc, fds[op.path], op.offset, data))
            elif op.kind == "fsync":
                kernel.run_syscall(kernel.sys_fsync(proc, fds[op.path]))
            elif op.kind == "rename":
                kernel.run_syscall(
                    kernel.sys_rename(proc, op.path, op.new_path))
                fds[op.new_path] = fds.pop(op.path)
            elif op.kind == "unlink":
                kernel.run_syscall(kernel.sys_unlink(proc, op.path))
                fds.pop(op.path, None)
            elif op.kind == "truncate":
                kernel.run_syscall(
                    kernel.sys_ftruncate(proc, fds[op.path], op.size))
            _apply_shadow(shadow, op, data)
            run.completed = index
            run.snapshots.append(_snapshot(shadow))
            if op.kind == "fsync" or sync_commit:
                # fsync flushes the whole device cache and commits every
                # pending txn, so the *entire* shadow state is durable.
                run.commit_index = index
                run.committed_state = run.snapshots[-1]
    except PowerLossError:
        run.crashed = True
    if kernel.device.powered_off:
        # The cut can land on the workload's final fsync with nothing
        # left to submit — no op observes it, but the machine is down.
        run.crashed = True
    return run


def _read_back(fs) -> Dict[str, bytes]:
    """Every file on the (recovered) fs as path -> bytes."""
    out: Dict[str, bytes] = {}
    stack = [("", fs.root)]
    while stack:
        prefix, inode = stack.pop()
        for name, child in inode.entries.items():
            path = f"{prefix}/{name}"
            if child.is_dir:
                stack.append((path, child))
            else:
                out[path] = fs.read_sync(child, 0, child.size)
    return out


def count_flush_boundaries(ops: List[WorkloadOp], seed: int = 0,
                           cache_depth: int = 8, journal=None,
                           capacity_sectors: int = 262144) -> int:
    """Dry-run the workload fault-free and count completed NVMe flushes."""
    from repro.kernel.journal import JournalConfig

    kernel = _build_machine(seed, cache_depth,
                            journal or JournalConfig(), None,
                            capacity_sectors)
    run = _run_ops(kernel, ops, seed)
    if run.crashed or run.completed != len(ops) - 1:
        raise InvalidArgument("workload dry run did not complete")
    return kernel.device.flushes


@dataclass
class CrashPointResult:
    """Verdict for one enumerated crash point."""

    mode: str                 # "flush" or "op"
    boundary: int             # flush index k, or op index j
    ops_completed: int
    commit_index: int         # op index the recovered state must match
    crashed: bool
    replayed_txns: int = 0
    discarded_txns: int = 0
    dropped_writes: int = 0
    torn_sectors: int = 0
    fsck_ok: bool = False
    state_matches: bool = False
    mismatches: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.crashed and self.fsck_ok and self.state_matches

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (f"[{status}] {self.mode}-boundary {self.boundary}: "
                f"{self.ops_completed + 1} ops, recovered to commit "
                f"#{self.commit_index}, replayed {self.replayed_txns} "
                f"(discarded {self.discarded_txns}), dropped "
                f"{self.dropped_writes} cached writes"
                + (f"; mismatches: {self.mismatches}"
                   if self.mismatches else "")
                + (f"; fsck: {self.violations}" if self.violations else ""))


def _compare(expected: Dict[str, bytes],
             recovered: Dict[str, bytes]) -> List[str]:
    problems = []
    for path in sorted(set(expected) | set(recovered)):
        if path not in recovered:
            problems.append(f"{path} lost (was durable)")
        elif path not in expected:
            problems.append(f"{path} resurrected (never committed)")
        elif expected[path] != recovered[path]:
            want, got = expected[path], recovered[path]
            diff = next((i for i in range(min(len(want), len(got)))
                         if want[i] != got[i]), min(len(want), len(got)))
            problems.append(f"{path} differs at byte {diff} "
                            f"(want {len(want)}B, got {len(got)}B)")
    return problems


def enumerate_crash_points(ops: Optional[List[WorkloadOp]] = None,
                           seed: int = 0, cache_depth: int = 8,
                           journal=None, tear: bool = False,
                           at: str = "flush",
                           capacity_sectors: int = 262144
                           ) -> List[CrashPointResult]:
    """Crash at every boundary, recover, fsck, verify; returns verdicts.

    Each crash point gets a *fresh* machine with the same kernel seed, so
    the pre-crash history is identical across the sweep and only the cut
    location varies.  Callers assert ``all(r.ok for r in results)``.
    """
    from repro.kernel.journal import JournalConfig
    from repro.kernel.recovery import fsck

    if at not in ("flush", "op"):
        raise InvalidArgument(f"bad enumeration axis {at!r}")
    if ops is None:
        ops = mixed_workload(seed)
    journal = journal or JournalConfig()
    if at == "flush":
        boundaries = range(1, count_flush_boundaries(
            ops, seed=seed, cache_depth=cache_depth, journal=journal,
            capacity_sectors=capacity_sectors) + 1)
    else:
        boundaries = range(len(ops))

    results: List[CrashPointResult] = []
    for boundary in boundaries:
        if at == "flush":
            spec = FaultSpec(seed=seed, power_loss_after_flushes=boundary,
                             torn_write=int(tear))
            kernel = _build_machine(seed, cache_depth, journal, spec,
                                    capacity_sectors)
            run = _run_ops(kernel, ops, seed)
            crash_info = {"dropped": 0, "torn_sectors": 0}
            crashed = run.crashed
        else:
            kernel = _build_machine(seed, cache_depth, journal, None,
                                    capacity_sectors)
            run = _run_ops(kernel, ops, seed, stop_after=boundary)
            crash_info = kernel.crash(tear=tear)
            crashed = True
        result = CrashPointResult(
            mode=at, boundary=boundary, ops_completed=run.completed,
            commit_index=run.commit_index, crashed=crashed,
            dropped_writes=crash_info.get("dropped", 0),
            torn_sectors=crash_info.get("torn_sectors", 0))
        if not crashed:
            # The armed boundary was never reached (harness bug).
            results.append(result)
            continue
        report = kernel.recover()
        result.replayed_txns = report.replayed_txns
        result.discarded_txns = report.discarded_txns
        audit = fsck(kernel.fs)
        result.fsck_ok = audit.ok
        result.violations = list(audit.violations)
        expected = run.committed_state
        recovered = _read_back(kernel.fs)
        result.mismatches = _compare(expected, recovered)
        result.state_matches = not result.mismatches
        results.append(result)
    return results
