"""Seed-deterministic fault plans for the simulated storage stack.

A :class:`FaultSpec` is a declarative description of *what* can go wrong:
transient media errors (fail-N-times-then-succeed), completion timeouts,
service-latency spikes, and extent-cache staleness, each at a configurable
rate and confined to an optional simulated-time window.  A
:class:`FaultPlan` binds a spec to one kernel instance and makes the
per-command decisions.

Two properties drive the design:

* **Determinism.**  The plan draws from its *own* named RNG streams
  (derived from ``spec.seed`` and the kernel seed), never from the device
  jitter stream, so arming a plan does not perturb any other stochastic
  choice, and the same seed + same spec yields a byte-identical trace —
  including every retry and backoff.
* **Guaranteed recoverability of transients.**  A drawn media error opens
  an *episode*: the target LBA fails ``error_burst`` consecutive times and
  is then placed in a one-shot cooldown that guarantees the next service
  succeeds.  Even at ``read_error_rate=1.0`` a bounded retry loop
  therefore always makes progress.

The plan is consumed by :class:`~repro.device.nvme.NvmeDevice` (media
errors, timeouts, spikes) and by the chain engine (staleness); the NVMe
driver's retry policy in :mod:`repro.kernel.kernel` is armed automatically
whenever a kernel is built with a plan.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

from repro.errors import InvalidArgument
from repro.sim.rng import RandomStreams

__all__ = [
    "FAULT_NET_DELAY",
    "FAULT_NET_DROP",
    "FAULT_POWER_LOSS",
    "FAULT_TARGET_CRASH",
    "FAULT_SPIKE",
    "FAULT_STALE",
    "FAULT_TIMEOUT",
    "FAULT_TRANSIENT",
    "FaultPlan",
    "FaultSpec",
    "fault_injection",
    "get_default_fault_spec",
    "parse_fault_spec",
    "set_default_fault_spec",
]

#: Fault kinds, as reported in ``fault_inject`` events and plan counters.
FAULT_TRANSIENT = "transient"
FAULT_TIMEOUT = "timeout"
FAULT_SPIKE = "spike"
FAULT_STALE = "stale"
FAULT_POWER_LOSS = "power_loss"
FAULT_NET_DROP = "net_drop"
FAULT_NET_DELAY = "net_delay"
FAULT_TARGET_CRASH = "target_crash"


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault-injection knobs (all rates are per command)."""

    #: Extra seed mixed into the plan's RNG streams, so two plans with the
    #: same rates can still draw independent fault sequences.
    seed: int = 0
    #: Probability that a read draws a transient media-error episode.
    read_error_rate: float = 0.0
    #: Probability that a write draws a transient media-error episode.
    write_error_rate: float = 0.0
    #: Consecutive failures per transient episode before the LBA recovers.
    error_burst: int = 1
    #: Probability that a command is swallowed until the controller
    #: watchdog fires (completes with a timeout status, no data).
    timeout_rate: float = 0.0
    #: Probability that a command's service latency is multiplied by
    #: ``spike_factor`` (capped at the command timeout when one is armed).
    spike_rate: float = 0.0
    spike_factor: float = 8.0
    #: Simulated ns between forced extent-cache invalidations (0 = off).
    stale_interval_ns: int = 0
    #: Injection window in simulated ns; ``window_end_ns == 0`` is open.
    window_start_ns: int = 0
    window_end_ns: int = 0
    #: Cut device power immediately after the k-th completed NVMe FLUSH
    #: (0 = off).  One-shot: the crash-point harness sweeps k over every
    #: flush boundary of a workload.
    power_loss_after_flushes: int = 0
    #: At the power cut, tear the oldest volatile write at a seed-chosen
    #: sector boundary instead of dropping it whole (0/1).
    torn_write: int = 0
    #: Probability that a network frame draws a drop episode: the frame
    #: (and ``net_drop_burst - 1`` retransmissions of it) vanish on the
    #: wire, then a one-shot cooldown guarantees the next send arrives.
    net_drop_rate: float = 0.0
    #: Consecutive losses per drop episode before the frame gets through.
    net_drop_burst: int = 1
    #: Probability that a delivered frame is held ``net_delay_ns`` extra.
    net_delay_rate: float = 0.0
    net_delay_ns: int = 50_000
    #: Power-cut one storage target immediately before it handles its
    #: k-th RPC (0 = off).  Consumed by :class:`repro.cluster.
    #: StorageCluster`, which counts handled RPCs cluster-wide: the
    #: target that would serve RPC k crashes instead, goes silent on the
    #: wire, and the client's :class:`~repro.errors.RpcTimeout` drives
    #: replica promotion.  One-shot, like ``power_loss_after_flushes``.
    target_crash_after_rpcs: int = 0

    def __post_init__(self) -> None:
        for name in ("read_error_rate", "write_error_rate", "timeout_rate",
                     "spike_rate", "net_drop_rate", "net_delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise InvalidArgument(f"{name} must be in [0, 1], got {rate}")
        total = (self.read_error_rate + self.timeout_rate + self.spike_rate)
        total_w = (self.write_error_rate + self.timeout_rate +
                   self.spike_rate)
        if total > 1.0 or total_w > 1.0:
            raise InvalidArgument("fault rates must sum to <= 1 per opcode")
        if self.net_drop_rate + self.net_delay_rate > 1.0:
            raise InvalidArgument("net fault rates must sum to <= 1")
        if self.error_burst < 1:
            raise InvalidArgument("error_burst must be >= 1")
        if self.net_drop_burst < 1:
            raise InvalidArgument("net_drop_burst must be >= 1")
        if self.net_delay_ns < 0:
            raise InvalidArgument("net_delay_ns must be >= 0")
        if self.spike_factor < 1.0:
            raise InvalidArgument("spike_factor must be >= 1")
        if self.stale_interval_ns < 0 or self.window_start_ns < 0 or \
                self.window_end_ns < 0:
            raise InvalidArgument("intervals/windows must be >= 0")
        if self.power_loss_after_flushes < 0:
            raise InvalidArgument("power_loss_after_flushes must be >= 0")
        if self.target_crash_after_rpcs < 0:
            raise InvalidArgument("target_crash_after_rpcs must be >= 0")
        if self.torn_write not in (0, 1):
            raise InvalidArgument("torn_write must be 0 or 1")

    def active(self, now: int) -> bool:
        """Is the injection window open at simulated time ``now``?"""
        if now < self.window_start_ns:
            return False
        return self.window_end_ns == 0 or now < self.window_end_ns

    def any_faults(self) -> bool:
        return (self.read_error_rate > 0 or self.write_error_rate > 0 or
                self.timeout_rate > 0 or self.spike_rate > 0 or
                self.stale_interval_ns > 0 or
                self.power_loss_after_flushes > 0 or
                self.target_crash_after_rpcs > 0 or
                self.any_net_faults())

    def any_net_faults(self) -> bool:
        return self.net_drop_rate > 0 or self.net_delay_rate > 0


_INT_FIELDS = {"seed", "error_burst", "stale_interval_ns",
               "window_start_ns", "window_end_ns",
               "power_loss_after_flushes", "torn_write",
               "net_drop_burst", "net_delay_ns",
               "target_crash_after_rpcs"}


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the CLI ``--fault-plan`` syntax: ``key=value[,key=value...]``.

    Keys are :class:`FaultSpec` field names, e.g.
    ``read_error_rate=0.01,error_burst=2,timeout_rate=0.001``.
    """
    known = {f.name for f in fields(FaultSpec)}
    kwargs: Dict[str, object] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise InvalidArgument(
                f"bad fault-plan entry {part!r} (want key=value)")
        key, _, value = part.partition("=")
        key = key.strip()
        if key not in known:
            raise InvalidArgument(
                f"unknown fault-plan key {key!r} "
                f"(known: {', '.join(sorted(known))})")
        try:
            kwargs[key] = (int(value) if key in _INT_FIELDS
                           else float(value))
        except ValueError:
            raise InvalidArgument(
                f"bad fault-plan value for {key!r}: {value!r}")
    return FaultSpec(**kwargs)


class FaultPlan:
    """One kernel's bound fault plan: spec + RNG streams + episode state."""

    def __init__(self, spec: FaultSpec, kernel_seed: int = 0):
        self.spec = spec
        streams = RandomStreams(spec.seed).fork(f"faults/{kernel_seed}")
        self._media_rng = streams.stream("media")
        #: Dedicated stream for the power cut (torn-write boundary choice),
        #: so arming power loss perturbs no other fault decision.
        self.power_rng = streams.stream("power")
        #: Dedicated stream for network-frame fates, so arming net faults
        #: perturbs no media/power decision (and vice versa).
        self._net_rng = streams.stream("net")
        #: (opcode, lba) -> (kind, remaining failures) for open episodes.
        self._episodes: Dict[Tuple[str, int], Tuple[str, int]] = {}
        #: Targets whose next service is guaranteed to succeed.
        self._cooldown: set = set()
        #: (link, request_id) -> remaining losses for open drop episodes.
        self._net_episodes: Dict[Tuple[str, int], int] = {}
        #: Frames whose next transmission is guaranteed to arrive.
        self._net_cooldown: set = set()
        #: Injected-fault counters by kind, for metrics reconciliation.
        self.injected: Dict[str, int] = {FAULT_TRANSIENT: 0, FAULT_TIMEOUT: 0,
                                         FAULT_SPIKE: 0, FAULT_STALE: 0,
                                         FAULT_POWER_LOSS: 0,
                                         FAULT_NET_DROP: 0,
                                         FAULT_NET_DELAY: 0,
                                         FAULT_TARGET_CRASH: 0}
        self._next_stale = spec.window_start_ns + spec.stale_interval_ns
        self._power_loss_fired = False
        self._target_crash_fired = False

    # -- media-path faults (consumed by NvmeDevice) ---------------------

    def inject(self, lba: int, kind: str = FAULT_TRANSIENT, times: int = 1,
               opcode: str = "read") -> None:
        """Deterministically fail the next ``times`` services of ``lba``.

        Programmatic counterpart of the random draw, for tests: opens an
        episode directly, bypassing the rates (and the window).
        """
        if kind not in (FAULT_TRANSIENT, FAULT_TIMEOUT):
            raise InvalidArgument(f"cannot pre-inject fault kind {kind!r}")
        if times < 1:
            raise InvalidArgument("times must be >= 1")
        self._episodes[(opcode, lba)] = (kind, times)

    def media_decision(self, command, now: int) -> Optional[str]:
        """Decide this command's fate; returns a fault kind or ``None``.

        Called once by the device as the command enters a service slot.
        Open episodes are consumed first (no RNG draw); otherwise a single
        uniform draw is partitioned across the configured fault classes so
        decisions stay deterministic regardless of which are enabled.
        """
        key = (command.opcode, command.lba)
        episode = self._episodes.get(key)
        if episode is not None:
            kind, remaining = episode
            if remaining <= 1:
                del self._episodes[key]
                self._cooldown.add(key)
            else:
                self._episodes[key] = (kind, remaining - 1)
            self.injected[kind] += 1
            return kind
        if key in self._cooldown:
            self._cooldown.discard(key)
            return None
        spec = self.spec
        if not spec.active(now):
            return None
        error_rate = (spec.read_error_rate if command.opcode == "read"
                      else spec.write_error_rate)
        if error_rate == 0 and spec.timeout_rate == 0 and \
                spec.spike_rate == 0:
            return None
        draw = self._media_rng.random()
        if draw < error_rate:
            if spec.error_burst > 1:
                self._episodes[key] = (FAULT_TRANSIENT, spec.error_burst - 1)
            else:
                self._cooldown.add(key)
            self.injected[FAULT_TRANSIENT] += 1
            return FAULT_TRANSIENT
        draw -= error_rate
        if draw < spec.timeout_rate:
            self.injected[FAULT_TIMEOUT] += 1
            return FAULT_TIMEOUT
        draw -= spec.timeout_rate
        if draw < spec.spike_rate:
            self.injected[FAULT_SPIKE] += 1
            return FAULT_SPIKE
        return None

    # -- network faults (consumed by repro.net.fabric) ------------------

    def net_decision(self, key: Tuple[str, int], now: int) -> Optional[str]:
        """Decide one frame's fate; returns a fault kind or ``None``.

        ``key`` identifies the retransmittable unit — ``(link name,
        request id)`` — so a drawn drop opens an *episode* against that
        frame: it and its next ``net_drop_burst - 1`` retransmissions are
        lost, then a one-shot cooldown guarantees delivery.  Bounded
        client retries therefore always make progress, exactly like the
        media-error episodes, and the draws come from a dedicated RNG
        stream so arming net faults never perturbs media decisions.
        """
        remaining = self._net_episodes.get(key)
        if remaining is not None:
            if remaining <= 1:
                del self._net_episodes[key]
                self._net_cooldown.add(key)
            else:
                self._net_episodes[key] = remaining - 1
            self.injected[FAULT_NET_DROP] += 1
            return FAULT_NET_DROP
        if key in self._net_cooldown:
            self._net_cooldown.discard(key)
            return None
        spec = self.spec
        if not spec.active(now) or not spec.any_net_faults():
            return None
        draw = self._net_rng.random()
        if draw < spec.net_drop_rate:
            if spec.net_drop_burst > 1:
                self._net_episodes[key] = spec.net_drop_burst - 1
            else:
                self._net_cooldown.add(key)
            self.injected[FAULT_NET_DROP] += 1
            return FAULT_NET_DROP
        draw -= spec.net_drop_rate
        if draw < spec.net_delay_rate:
            self.injected[FAULT_NET_DELAY] += 1
            return FAULT_NET_DELAY
        return None

    # -- extent-cache staleness (consumed by the chain engine) ----------

    def stale_due(self, now: int) -> bool:
        """Has a staleness deadline elapsed since the last check?

        Event-driven rather than timer-driven: deadlines advance in fixed
        ``stale_interval_ns`` steps from the window start, and the *next
        observer* (a chain hop consulting its snapshot) takes the hit.
        This keeps the simulator's event heap free of perpetual timers.
        """
        spec = self.spec
        if spec.stale_interval_ns == 0 or not spec.active(now):
            return False
        if now < self._next_stale:
            return False
        while self._next_stale <= now:
            self._next_stale += spec.stale_interval_ns
        self.injected[FAULT_STALE] += 1
        return True

    # -- power loss (consumed by NvmeDevice at flush completion) --------

    def power_loss_due(self, completed_flushes: int) -> bool:
        """One-shot: has the armed flush boundary just been crossed?

        The device asks after every completed FLUSH; the cut fires exactly
        once, when ``completed_flushes`` reaches the configured k.
        """
        spec = self.spec
        if spec.power_loss_after_flushes == 0 or self._power_loss_fired:
            return False
        if completed_flushes < spec.power_loss_after_flushes:
            return False
        self._power_loss_fired = True
        self.injected[FAULT_POWER_LOSS] += 1
        return True

    # -- target crash (consumed by repro.cluster per handled RPC) -------

    def target_crash_due(self, handled_rpcs: int) -> bool:
        """One-shot: has the armed RPC count just been reached?

        The cluster asks before every RPC a target handles, passing the
        cluster-wide handled-RPC count; the crash fires exactly once,
        when the count reaches the configured k — so which *target* dies
        is a deterministic function of workload routing, not of a
        separate draw.
        """
        spec = self.spec
        if spec.target_crash_after_rpcs == 0 or self._target_crash_fired:
            return False
        if handled_rpcs < spec.target_crash_after_rpcs:
            return False
        self._target_crash_fired = True
        self.injected[FAULT_TARGET_CRASH] += 1
        return True

    def total_injected(self) -> int:
        return sum(self.injected.values())


# ---------------------------------------------------------------------------
# Process-default plumbing (mirrors repro.obs.bus.get/set_default_bus), so
# ``--fault-plan`` on the CLI reaches kernels built deep inside experiment
# runners without threading a parameter through every constructor.
# ---------------------------------------------------------------------------

_default_spec: Optional[FaultSpec] = None


def get_default_fault_spec() -> Optional[FaultSpec]:
    """The process-wide default fault spec (None unless installed)."""
    return _default_spec


def set_default_fault_spec(spec: Optional[FaultSpec]) -> Optional[FaultSpec]:
    """Install ``spec`` as the default; returns the previous default."""
    global _default_spec
    previous = _default_spec
    _default_spec = spec
    return previous


@contextlib.contextmanager
def fault_injection(spec: FaultSpec):
    """Context manager: every kernel built inside picks up ``spec``."""
    previous = set_default_fault_spec(spec)
    try:
        yield spec
    finally:
        set_default_fault_spec(previous)
