"""Fault injection: deterministic fault plans for resilience experiments.

See :mod:`repro.faults.plan` for the model, :mod:`repro.faults.crashpoints`
for the ALICE/CrashMonkey-style crash-point enumeration harness, and
``docs/faults.md`` / ``docs/crash_consistency.md`` for the full story
(fault classes, the NVMe retry policy, chain degradation, power loss,
and the observability additions).
"""

from repro.faults.crashpoints import (
    CrashPointResult,
    WorkloadOp,
    count_flush_boundaries,
    enumerate_crash_points,
    mixed_workload,
)
from repro.faults.plan import (
    FAULT_NET_DELAY,
    FAULT_NET_DROP,
    FAULT_POWER_LOSS,
    FAULT_SPIKE,
    FAULT_STALE,
    FAULT_TARGET_CRASH,
    FAULT_TIMEOUT,
    FAULT_TRANSIENT,
    FaultPlan,
    FaultSpec,
    fault_injection,
    get_default_fault_spec,
    parse_fault_spec,
    set_default_fault_spec,
)

__all__ = [
    "CrashPointResult",
    "FAULT_NET_DELAY",
    "FAULT_NET_DROP",
    "FAULT_POWER_LOSS",
    "FAULT_SPIKE",
    "FAULT_STALE",
    "FAULT_TARGET_CRASH",
    "FAULT_TIMEOUT",
    "FAULT_TRANSIENT",
    "FaultPlan",
    "FaultSpec",
    "WorkloadOp",
    "count_flush_boundaries",
    "enumerate_crash_points",
    "fault_injection",
    "get_default_fault_spec",
    "mixed_workload",
    "parse_fault_spec",
    "set_default_fault_spec",
]
