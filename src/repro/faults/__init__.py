"""Fault injection: deterministic fault plans for resilience experiments.

See :mod:`repro.faults.plan` for the model, ``docs/faults.md`` for the
full story (fault classes, the NVMe retry policy, chain degradation, and
the observability additions).
"""

from repro.faults.plan import (
    FAULT_SPIKE,
    FAULT_STALE,
    FAULT_TIMEOUT,
    FAULT_TRANSIENT,
    FaultPlan,
    FaultSpec,
    fault_injection,
    get_default_fault_spec,
    parse_fault_spec,
    set_default_fault_spec,
)

__all__ = [
    "FAULT_SPIKE",
    "FAULT_STALE",
    "FAULT_TIMEOUT",
    "FAULT_TRANSIENT",
    "FaultPlan",
    "FaultSpec",
    "fault_injection",
    "get_default_fault_spec",
    "parse_fault_spec",
    "set_default_fault_spec",
]
