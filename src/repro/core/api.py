"""The user-facing BPF-for-storage library (the "library" of §4).

:class:`StorageBpf` attaches the whole mechanism to a simulated kernel and
exposes it the way the paper envisions applications consuming it:

* ``install`` — the special ioctl: verify-once, snapshot the file's extents
  into the NVMe-layer cache, tag the descriptor;
* ``read_chain`` — issue a tagged read whose dependent hops are resubmitted
  from the installed hook;
* ``read_chain_robust`` — the full recovery protocol: on ``EEXTENT`` it
  re-runs the ioctl and retries, on a split fallback it executes the very
  same program in user space over the returned buffer (charging user-side
  CPU) and restarts the chain at the next hop, exactly as §4 prescribes.

All methods that consume simulated time are generators meant to run inside
a simulated thread.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, Optional, Tuple

from repro.ebpf.maps import BpfMap
from repro.ebpf.program import Program
from repro.ebpf.verifier import verify
from repro.ebpf.vm import VmEnvironment
from repro.errors import ChainLimitExceeded, ExtentInvalidated, InvalidArgument
from repro.kernel import Kernel, ReadResult
from repro.kernel.process import File, Process
from repro.core.accounting import ChainAccounting
from repro.core.chains import ChainEngine, ChainState
from repro.core.extent_cache import NvmeExtentCache
from repro.core.hooks import (
    ACTION_RESUBMIT,
    ACTION_RETURN_BUFFER,
    ACTION_RETURN_VALUE,
    Hook,
    storage_helpers,
)
from repro.core.handle import ChainHandle
from repro.core.install import (
    IOCTL_INSTALL_BPF,
    IOCTL_REFRESH_EXTENTS,
    IOCTL_UNINSTALL_BPF,
    BpfInstallation,
)
from repro.obs import events as obs_events

__all__ = ["InstallRequest", "StorageBpf"]


@dataclasses.dataclass(frozen=True)
class InstallRequest:
    """The argument struct handed to the install ioctl.

    Frozen: a request is a value handed across the syscall boundary, so
    mutating it after submission would be meaningless.  Construction
    validates the fields the kernel would reject anyway and raises
    :class:`InvalidArgument` naming the offending field, so callers fail
    at the call site rather than deep inside the ioctl handler.
    """

    program: Program
    hook: Hook = Hook.NVME
    block_size: int = 4096
    scratch_size: int = 256
    args: Tuple[int, ...] = ()
    maps: Optional[Dict[int, BpfMap]] = None
    #: DEPRECATED — use ``vm_mode``.  Accepted one more release: an
    #: explicit True/False warns and maps to "block"/"interp"; leaving
    #: it ``None`` (the default) is the supported path.
    jit: Optional[bool] = None
    #: Execution tier ("interp" | "jit" | "block"); "block" by default.
    vm_mode: Optional[str] = None

    def __post_init__(self):
        if not isinstance(self.program, Program):
            raise InvalidArgument("program: expected a Program, got "
                                  f"{type(self.program).__name__}")
        if not isinstance(self.hook, Hook):
            raise InvalidArgument(f"hook: unknown hook {self.hook!r}")
        if self.block_size <= 0:
            raise InvalidArgument(
                f"block_size: must be positive, got {self.block_size}")
        if self.scratch_size <= 0:
            raise InvalidArgument(
                f"scratch_size: must be positive, got {self.scratch_size}")
        object.__setattr__(self, "args", tuple(self.args))
        if len(self.args) > 4:
            raise InvalidArgument(
                f"args: at most 4 install args, got {len(self.args)}")
        object.__setattr__(self, "maps", dict(self.maps or {}))
        if self.vm_mode is not None and \
                self.vm_mode not in ("interp", "jit", "block"):
            raise InvalidArgument(
                f"vm_mode: unknown execution tier {self.vm_mode!r}")
        if self.jit is not None:
            warnings.warn(
                "InstallRequest.jit is deprecated; pass "
                "vm_mode='block'/'jit' (jit=True) or vm_mode='interp' "
                "(jit=False) instead", DeprecationWarning, stacklevel=3)
            if self.jit and self.vm_mode == "interp":
                raise InvalidArgument(
                    "jit: jit=True contradicts vm_mode='interp'")
            if not self.jit and self.vm_mode in ("jit", "block"):
                raise InvalidArgument(
                    f"jit: jit=False contradicts vm_mode={self.vm_mode!r}")

    @property
    def mode(self) -> str:
        """The resolved execution tier ("interp" | "jit" | "block")."""
        if self.vm_mode is not None:
            return self.vm_mode
        if self.jit is not None:
            return "block" if self.jit else "interp"
        return "block"


class StorageBpf:
    """Glue object: one per simulated kernel."""

    def __init__(self, kernel: Kernel, max_chain_hops: int = 64):
        self.kernel = kernel
        self.helpers = storage_helpers()
        clock = lambda: kernel.sim.now  # noqa: E731
        self.cache = NvmeExtentCache(kernel.fs, bus=kernel.bus, clock=clock)
        self.accounting = ChainAccounting(max_chain_hops)
        self.accounting.bus = kernel.bus
        self.accounting.clock = clock
        self.engine = ChainEngine(kernel, self.cache, self.accounting)
        kernel.tagged_read_handler = self._tagged_read
        kernel.syscall_read_hook = self.engine.syscall_hook
        kernel.ioctl_handlers[IOCTL_INSTALL_BPF] = self._ioctl_install
        kernel.ioctl_handlers[IOCTL_UNINSTALL_BPF] = self._ioctl_uninstall
        kernel.ioctl_handlers[IOCTL_REFRESH_EXTENTS] = self._ioctl_refresh

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify_program(self, program: Program,
                       maps: Optional[Dict[int, BpfMap]] = None) -> Program:
        """Run the static verifier with the storage helper set."""
        verify(program, self.helpers, maps=maps)
        return program

    # ------------------------------------------------------------------
    # ioctl handlers (run with syscall entry already charged)
    # ------------------------------------------------------------------

    def _ioctl_install(self, proc: Process, file: File, arg):
        if not isinstance(arg, InstallRequest):
            raise InvalidArgument("install ioctl needs an InstallRequest")
        program = arg.program
        if not program.verified:
            verify(program, self.helpers, maps=arg.maps)
        env = VmEnvironment(self.helpers, maps=arg.maps,
                            clock=lambda: self.kernel.sim.now)
        # Let helpers (e.g. trace_offset) publish onto the kernel's bus.
        env.trace_bus = self.kernel.bus
        installation = BpfInstallation(
            program, arg.hook, arg.block_size, arg.scratch_size, env,
            default_args=arg.args, vm_mode=arg.mode)
        # Propagate the file's extents to the NVMe layer (paper §4).
        yield from self.kernel.cpus.run_thread(
            self.kernel.cost.ioctl_install_ns)
        if arg.hook is Hook.NVME:
            installation.cache_entry = self.cache.install(file.inode)
        file.bpf_install = installation
        return 0

    def _ioctl_uninstall(self, proc: Process, file: File, arg):
        yield from self.kernel.cpus.run_thread(self.kernel.cost.syscall_ns)
        if file.bpf_install is not None:
            self.cache.drop(file.inode)
            file.bpf_install = None
        return 0

    def _ioctl_refresh(self, proc: Process, file: File, arg):
        """Re-push the file's extents after an EEXTENT error."""
        installation = file.bpf_install
        if installation is None:
            raise InvalidArgument("refresh ioctl on a plain descriptor")
        yield from self.kernel.cpus.run_thread(
            self.kernel.cost.ioctl_install_ns)
        installation.cache_entry = self.cache.install(file.inode)
        return 0

    # ------------------------------------------------------------------
    # Syscall-style entry points (generators)
    # ------------------------------------------------------------------

    def install(self, proc: Process, fd: int, program: Program,
                hook: Hook = Hook.NVME, block_size: int = 4096,
                scratch_size: int = 256, args: Tuple[int, ...] = (),
                maps: Optional[Dict[int, BpfMap]] = None,
                jit: Optional[bool] = None,
                vm_mode: Optional[str] = None):
        """Install a program on ``fd`` via the special ioctl.

        Field validation (positive sizes, at most four args) happens in
        :class:`InstallRequest`, which raises :class:`InvalidArgument`
        naming the offending field.  ``jit`` is deprecated — select the
        execution tier with ``vm_mode`` instead.
        """
        request = InstallRequest(program, hook=hook, block_size=block_size,
                                 scratch_size=scratch_size, args=args,
                                 maps=maps, jit=jit, vm_mode=vm_mode)
        result = yield from self.kernel.sys_ioctl(proc, fd,
                                                  IOCTL_INSTALL_BPF, request)
        return result

    def open_chain(self, proc: Process, path: str, program: Program,
                   hook: Hook = Hook.NVME, block_size: int = 4096,
                   scratch_size: int = 256, args: Tuple[int, ...] = (),
                   maps: Optional[Dict[int, BpfMap]] = None,
                   jit: Optional[bool] = None,
                   vm_mode: Optional[str] = None,
                   create: bool = False):
        """Open ``path`` and install ``program`` in one step.

        Generator returning a :class:`~repro.core.handle.ChainHandle`
        that owns the descriptor and the installation; use it as a
        context manager (or call its ``close`` generator) to tear both
        down.  If the install ioctl fails, the freshly opened fd is
        released before the error propagates, so no descriptor leaks.
        """
        fd = yield from self.kernel.sys_open(proc, path, create=create)
        try:
            yield from self.install(proc, fd, program, hook=hook,
                                    block_size=block_size,
                                    scratch_size=scratch_size, args=args,
                                    maps=maps, jit=jit, vm_mode=vm_mode)
        except Exception:
            proc.close_fd(fd)
            raise
        return ChainHandle(self, proc, fd)

    def refresh(self, proc: Process, fd: int):
        result = yield from self.kernel.sys_ioctl(proc, fd,
                                                  IOCTL_REFRESH_EXTENTS, None)
        return result

    def uninstall(self, proc: Process, fd: int):
        result = yield from self.kernel.sys_ioctl(proc, fd,
                                                  IOCTL_UNINSTALL_BPF, None)
        return result

    def read_chain(self, proc: Process, fd: int, offset: int, length: int,
                   args: Tuple[int, ...] = (), scratch_init: bytes = b""):
        """One tagged read: a full syscall driving the installed hook."""
        if len(args) > 4:
            raise InvalidArgument("at most 4 per-read args")
        kernel = self.kernel
        file = proc.file(fd)
        installation: Optional[BpfInstallation] = file.bpf_install
        if installation is None:
            from repro.errors import NotInstalled

            raise NotInstalled(f"fd {fd} has no installed program")
        if length != installation.block_size:
            raise InvalidArgument(
                f"chain reads recycle one descriptor: length {length} must "
                f"equal the installed block size {installation.block_size}")
        kernel.syscall_count += 1
        if installation.hook is Hook.NVME:
            yield from kernel.cpus.run_thread(kernel.cost.kernel_crossing_ns +
                                              kernel.cost.syscall_ns)
            if kernel.bus.enabled:
                # The chain root span opens inside start_chain; this event
                # attributes the boundary-crossing cost to the chain path.
                kernel.bus.emit(
                    obs_events.SYSCALL_ENTER, kernel.sim.now,
                    op="chain_entry",
                    pid=proc.pid,
                    crossing_ns=kernel.cost.kernel_crossing_ns,
                    syscall_ns=kernel.cost.syscall_ns, path="chain", span=0)
            result = yield from self.engine.start_chain(
                proc, file, offset, length, args, scratch_init)
            return result
        # Syscall-dispatch hook: reuse the kernel's reissue loop, seeding
        # the per-call hook state with our args.
        kernel.syscall_count -= 1  # sys_pread counts itself
        hook_state = {"args": tuple(args) +
                      installation.default_args[len(args):],
                      "scratch_init": scratch_init}
        result = yield from kernel.sys_pread(proc, fd, offset, length,
                                             tagged=True,
                                             hook_state=hook_state)
        return result

    def _tagged_read(self, proc: Process, file: File, offset: int,
                     length: int):
        """Registered as kernel.tagged_read_handler for plain sys_pread."""
        result = yield from self.engine.start_chain(proc, file, offset,
                                                    length)
        return result

    # ------------------------------------------------------------------
    # The robust protocol (EEXTENT retry + split fallback restart)
    # ------------------------------------------------------------------

    def read_chain_robust(self, proc: Process, fd: int, offset: int,
                          length: int, args: Tuple[int, ...] = (),
                          scratch_init: bytes = b"",
                          max_retries: int = 8,
                          continue_on_limit: bool = True):
        """A chain read that survives invalidations, split fallbacks, and
        (optionally) the fairness bound.

        * ``EEXTENT`` → re-run the ioctl (refresh) and retry from scratch;
        * ``SPLIT_FALLBACK`` → execute the program in user space over the
          buffer the kernel fetched, then restart the chain at the next hop;
        * ``FAULT_FALLBACK`` → a faulted hop exhausted the in-kernel retry
          budget and the kernel degraded gracefully: restart a fresh
          bounded chain from the faulted hop (the transient episode
          recovers under the fault plan's burst semantics);
        * ``CHAIN_LIMIT`` → with ``continue_on_limit``, start a fresh
          bounded chain from where the killed one stopped (each kernel
          chain stays within the fairness bound); otherwise raise
          :class:`ChainLimitExceeded`.

        Returns the final OK ReadResult or raises after ``max_retries``
        recovery attempts.
        """
        kernel = self.kernel
        file = proc.file(fd)
        current_offset = offset
        current_scratch = scratch_init
        total_hops = 0
        last_status = None
        for _attempt in range(max_retries):
            result = yield from self.read_chain(proc, fd, current_offset,
                                                length, args,
                                                current_scratch)
            total_hops += result.hops
            last_status = result.status
            if result.ok:
                result.hops = total_hops
                return result
            if result.status == ReadResult.EXTENT_INVALIDATED:
                # §4: re-run the ioctl to reset the NVMe-layer extents,
                # then reissue.
                yield from self.refresh(proc, fd)
                current_offset = offset
                current_scratch = scratch_init
                total_hops = 0
                continue
            if result.status == ReadResult.SPLIT_FALLBACK:
                # Run the program *in user space* over the returned buffer
                # and restart the kernel chain at the next hop.
                step = yield from self._user_space_step(
                    file, result, args, current_offset)
                if step is None:
                    result.hops = total_hops
                    result.status = ReadResult.OK
                    return result
                current_offset, current_scratch = step
                continue
            if result.status == ReadResult.EIO:
                from repro.errors import IoError

                raise IoError(
                    f"media error during chain at offset "
                    f"{result.final_offset}")
            if result.status == ReadResult.FAULT_FALLBACK:
                # The kernel degraded a faulted chain; restart a fresh
                # bounded chain from the hop that faulted, keeping the
                # scratch continuation.
                current_offset = result.final_offset
                current_scratch = result.scratch or b""
                continue
            if result.status == ReadResult.CHAIN_LIMIT:
                if not continue_on_limit:
                    raise ChainLimitExceeded(
                        f"chain exceeded {self.accounting.max_chain_hops} "
                        "hops")
                current_offset = result.final_offset
                current_scratch = result.scratch or b""
                continue
            raise InvalidArgument(f"unexpected chain status {result.status}")
        if last_status == ReadResult.FAULT_FALLBACK:
            from repro.errors import IoError

            raise IoError(
                f"chain did not recover from injected faults after "
                f"{max_retries} attempts (offset {current_offset})")
        raise ExtentInvalidated(
            f"chain did not settle after {max_retries} retries")

    def _user_space_step(self, file: File, result: ReadResult,
                         args: Tuple[int, ...], offset: int):
        """Execute one hop of the program in user space (fallback path).

        ``result`` is a SPLIT_FALLBACK whose data is the block at
        ``result.final_offset`` that the kernel fetched as a normal BIO but
        did not run the program on.  Returns (next_offset, scratch bytes)
        to restart the chain, or None if the program finished here.
        """
        kernel = self.kernel
        installation: BpfInstallation = file.bpf_install
        scratch = bytearray(installation.scratch_size)
        if result.scratch:
            scratch[: len(result.scratch)] = result.scratch
        state = ChainState(None, file, installation, result.final_offset,
                           len(result.data) or installation.block_size,
                           tuple(args) + installation.default_args[len(args):],
                           bytes(scratch), deliver=lambda _res: None)
        state.hops = result.hops
        data = result.data[: installation.block_size]
        outputs, instructions = self.engine._run_program(state, data)
        yield from kernel.cpus.run_thread(
            kernel.cost.user_process_ns +
            kernel.cost.bpf_run_ns(instructions, installation.jit))
        if kernel.bus.enabled:
            kernel.bus.emit(obs_events.APP_PROCESS, kernel.sim.now,
                            cpu_ns=kernel.cost.user_process_ns, path="chain")
            kernel.bus.emit(
                obs_events.BPF_HOOK_DISPATCH, kernel.sim.now, hook="user",
                cpu_ns=kernel.cost.bpf_run_ns(instructions,
                                              installation.jit),
                instructions=instructions, action=outputs["action"],
                span=0, path="chain")
        if outputs["action"] == ACTION_RESUBMIT:
            return outputs["next_offset"], bytes(state.scratch)
        if outputs["action"] == ACTION_RETURN_VALUE:
            result.value = outputs["result"]
            result.value2 = outputs["result2"]
            result.data = b""
            return None
        if outputs["action"] == ACTION_RETURN_BUFFER:
            return None
        raise InvalidArgument(f"unknown action {outputs['action']}")
