"""Per-tenant chained-resubmission accounting (paper §4, Fairness).

The NVMe layer cannot enforce fairness through the block scheduler (BPF
reissues never pass through it), so the paper proposes a per-process counter
of chained submissions with a hard bound per chain, periodically drained to
the BIO layer for accounting.  Both pieces are implemented here.

Accounting keys on the *tenant* when the charged process carries one
(:attr:`~repro.kernel.process.Process.tenant`), falling back to the pid
for untenanted processes — so a tenant's counters survive its processes.
Per-connection target processes are torn down and respawned across
cluster rejoins; pid-keyed entries leaked one row per incarnation, while
a tenant key is reused and :meth:`ChainAccounting.forget` clears what a
teardown leaves behind.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from repro.errors import InvalidArgument
from repro.obs import events as obs_events
from repro.obs.bus import NULL_BUS

__all__ = ["ChainAccounting"]

#: An accounting key: a tenant name, or a pid for untenanted processes.
Owner = Union[int, str]


def _sort_key(key: Owner):
    """Order int pids numerically before str tenant names (stable)."""
    return (isinstance(key, str), key if isinstance(key, int) else 0,
            str(key))


class ChainAccounting:
    """Tracks chained resubmissions per tenant and bounds chain depth."""

    def __init__(self, max_chain_hops: int = 64):
        if max_chain_hops < 1:
            raise InvalidArgument("max_chain_hops must be >= 1")
        self.max_chain_hops = max_chain_hops
        #: Observability: the owning StorageBpf points these at the
        #: kernel's bus/clock; standalone instances keep disabled defaults.
        self.bus = NULL_BUS
        self.clock: Callable[[], int] = lambda: 0
        #: Cumulative resubmissions per owner since the last drain.
        self._pending: Dict[Owner, int] = {}
        #: Lifetime totals per owner (never reset; for tests/metrics).
        self.totals: Dict[Owner, int] = {}
        #: Chains killed by the bound, per owner.
        self.chains_killed: Dict[Owner, int] = {}

    @staticmethod
    def key_for(owner) -> Owner:
        """The accounting key: tenant name if the owner has one, else pid.

        Accepts a :class:`~repro.kernel.process.Process` or an already-
        resolved key (pid or tenant name), so call sites and tests can
        pass whichever they hold.
        """
        tenant = getattr(owner, "tenant", None)
        if tenant is not None:
            return tenant.name
        pid = getattr(owner, "pid", None)
        return pid if pid is not None else owner

    def may_resubmit(self, owner, hops_completed: int) -> bool:
        """True if a chain with ``hops_completed`` hops may issue another."""
        return hops_completed < self.max_chain_hops

    def budget_remaining(self, hops_completed: int) -> int:
        return max(0, self.max_chain_hops - hops_completed)

    def charge(self, owner) -> None:
        """Record one chained resubmission for ``owner``'s tenant/pid."""
        key = self.key_for(owner)
        self._pending[key] = self._pending.get(key, 0) + 1
        self.totals[key] = self.totals.get(key, 0) + 1

    def record_kill(self, owner) -> None:
        key = self.key_for(owner)
        self.chains_killed[key] = self.chains_killed.get(key, 0) + 1

    def drain_to_bio(self) -> Dict[Owner, int]:
        """Hand the per-tenant counts to the BIO layer (paper §4).

        Returns and clears the pending counters; the caller (the BIO
        accounting tick) can feed them into whatever fairness policy it
        runs.
        """
        drained, self._pending = self._pending, {}
        if self.bus.enabled:
            self.bus.emit(obs_events.RESUBMIT_DRAIN, self.clock(),
                          pids={str(key): count
                                for key, count in sorted(drained.items(),
                                                         key=_sort_key)},
                          total=sum(drained.values()))
        return drained

    def pending(self, owner) -> int:
        return self._pending.get(self.key_for(owner), 0)

    def forget(self, owner) -> None:
        """Drop all state for ``owner`` (process/tenant teardown).

        Called when a target tears down per-connection processes (detach,
        crash, rejoin) so a departed owner cannot leak pending/total/kill
        entries across incarnations.
        """
        key = self.key_for(owner)
        self._pending.pop(key, None)
        self.totals.pop(key, None)
        self.chains_killed.pop(key, None)
