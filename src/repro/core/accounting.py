"""Per-process chained-resubmission accounting (paper §4, Fairness).

The NVMe layer cannot enforce fairness through the block scheduler (BPF
reissues never pass through it), so the paper proposes a per-process counter
of chained submissions with a hard bound per chain, periodically drained to
the BIO layer for accounting.  Both pieces are implemented here.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import InvalidArgument
from repro.obs import events as obs_events
from repro.obs.bus import NULL_BUS

__all__ = ["ChainAccounting"]


class ChainAccounting:
    """Tracks chained resubmissions per process and bounds chain depth."""

    def __init__(self, max_chain_hops: int = 64):
        if max_chain_hops < 1:
            raise InvalidArgument("max_chain_hops must be >= 1")
        self.max_chain_hops = max_chain_hops
        #: Observability: the owning StorageBpf points these at the
        #: kernel's bus/clock; standalone instances keep disabled defaults.
        self.bus = NULL_BUS
        self.clock: Callable[[], int] = lambda: 0
        #: Cumulative resubmissions per pid since the last drain.
        self._pending: Dict[int, int] = {}
        #: Lifetime totals per pid (never reset; for tests/metrics).
        self.totals: Dict[int, int] = {}
        #: Chains killed by the bound, per pid.
        self.chains_killed: Dict[int, int] = {}

    def may_resubmit(self, pid: int, hops_completed: int) -> bool:
        """True if a chain with ``hops_completed`` hops may issue another."""
        return hops_completed < self.max_chain_hops

    def budget_remaining(self, hops_completed: int) -> int:
        return max(0, self.max_chain_hops - hops_completed)

    def charge(self, pid: int) -> None:
        """Record one chained resubmission for ``pid``."""
        self._pending[pid] = self._pending.get(pid, 0) + 1
        self.totals[pid] = self.totals.get(pid, 0) + 1

    def record_kill(self, pid: int) -> None:
        self.chains_killed[pid] = self.chains_killed.get(pid, 0) + 1

    def drain_to_bio(self) -> Dict[int, int]:
        """Hand the per-process counts to the BIO layer (paper §4).

        Returns and clears the pending counters; the caller (the BIO
        accounting tick) can feed them into whatever fairness policy it
        runs.
        """
        drained, self._pending = self._pending, {}
        if self.bus.enabled:
            self.bus.emit(obs_events.RESUBMIT_DRAIN, self.clock(),
                          pids={str(pid): count
                                for pid, count in sorted(drained.items())},
                          total=sum(drained.values()))
        return drained

    def pending(self, pid: int) -> int:
        return self._pending.get(pid, 0)
