"""The NVMe-layer soft-state extent cache (paper §4, Translation & Security).

When the install ioctl attaches a function to a file, the file's extents are
snapshotted into this cache.  Chained resubmissions translate file offsets
to LBAs against the snapshot **without any file-system call** — the whole
point of the design — and can only ever reach blocks belonging to that file
(the security property).

The file system publishes extent-change events; an *unmap* (blocks removed
or moved) invalidates the snapshot, ongoing chains are aborted with
``EEXTENT``, and the application must re-run the ioctl.  Pure growth keeps
cached translations valid, although offsets beyond the snapshot miss and
also require a refresh — the heavy-handed-but-simple protocol of the paper.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.device.blockdev import SECTOR_SIZE
from repro.kernel.extfs import BLOCK_SIZE, ExtFs, Inode, SECTORS_PER_BLOCK
from repro.obs import events as obs_events
from repro.obs.bus import NULL_BUS, TraceBus

__all__ = ["CacheEntry", "NvmeExtentCache", "Translation"]


@dataclass(frozen=True)
class Translation:
    """Outcome of translating (offset, length) against a snapshot."""

    MISS = "miss"          # not covered by the snapshot -> EEXTENT
    SPLIT = "split"        # crosses discontiguous extents -> BIO fallback
    OK = "ok"

    status: str
    lba: int = -1
    sectors: int = 0


class CacheEntry:
    """One file's snapshotted extents, valid while ``valid`` is True."""

    __slots__ = ("ino", "extents", "epoch", "valid", "bus", "clock",
                 "_starts")

    def __init__(self, ino: int, extents: List[Tuple[int, int, int]],
                 epoch: int, bus: TraceBus = NULL_BUS,
                 clock: Callable[[], int] = lambda: 0):
        self.ino = ino
        # (file_block, phys_block, count), sorted by file_block.
        self.extents = sorted(extents)
        self.epoch = epoch
        self.valid = True
        self.bus = bus
        self.clock = clock
        # Extent starts, for O(log n) block lookups on fragmented files.
        self._starts = [extent[0] for extent in self.extents]

    def lookup_block(self, file_block: int) -> Optional[int]:
        index = bisect.bisect_right(self._starts, file_block) - 1
        if index < 0:
            return None
        start, phys, count = self.extents[index]
        if file_block < start + count:
            return phys + (file_block - start)
        return None

    def translate(self, offset: int, length: int,
                  span: int = 0) -> Translation:
        """Map a byte range to one contiguous LBA run, else SPLIT/MISS."""
        result = self._translate(offset, length)
        if self.bus.enabled:
            etype = {
                Translation.OK: obs_events.EXTENT_CACHE_HIT,
                Translation.MISS: obs_events.EXTENT_CACHE_MISS,
                Translation.SPLIT: obs_events.EXTENT_CACHE_SPLIT,
            }[result.status]
            self.bus.emit(etype, self.clock(), ino=self.ino, offset=offset,
                          length=length, span=span, path="chain")
        return result

    def _translate(self, offset: int, length: int) -> Translation:
        if offset % SECTOR_SIZE or length % SECTOR_SIZE or length <= 0:
            return Translation(Translation.MISS)
        first_block = offset // BLOCK_SIZE
        last_block = (offset + length - 1) // BLOCK_SIZE
        first_phys = self.lookup_block(first_block)
        if first_phys is None:
            return Translation(Translation.MISS)
        expected = first_phys
        for block in range(first_block, last_block + 1):
            phys = self.lookup_block(block)
            if phys is None:
                return Translation(Translation.MISS)
            if phys != expected:
                return Translation(Translation.SPLIT)
            expected = phys + 1
        within = offset % BLOCK_SIZE
        lba = first_phys * SECTORS_PER_BLOCK + within // SECTOR_SIZE
        return Translation(Translation.OK, lba=lba,
                           sectors=length // SECTOR_SIZE)


class NvmeExtentCache:
    """All snapshots held at the (simulated) NVMe layer, keyed by inode."""

    def __init__(self, fs: ExtFs, bus: Optional[TraceBus] = None,
                 clock: Optional[Callable[[], int]] = None):
        self.fs = fs
        self.bus = bus if bus is not None else NULL_BUS
        self.clock = clock if clock is not None else (lambda: 0)
        self._entries: Dict[int, CacheEntry] = {}
        self._epoch = 0
        self.invalidations = 0
        self.refreshes = 0
        fs.extent_change_listeners.append(self._on_extent_change)
        fs.recovery_listeners.append(self._on_recovery)

    def install(self, inode: Inode) -> CacheEntry:
        """(Re)snapshot the inode's extents; called by the install ioctl."""
        self._epoch += 1
        snapshot = [
            (extent.file_block, extent.phys_block, extent.count)
            for extent in inode.extents
        ]
        entry = CacheEntry(inode.number, snapshot, self._epoch,
                           bus=self.bus, clock=self.clock)
        self._entries[inode.number] = entry
        self.refreshes += 1
        if self.bus.enabled:
            self.bus.emit(obs_events.EXTENT_CACHE_INSTALL, self.clock(),
                          ino=inode.number, extents=len(snapshot),
                          epoch=self._epoch)
        return entry

    def entry(self, inode: Inode) -> Optional[CacheEntry]:
        return self._entries.get(inode.number)

    def _on_extent_change(self, inode: Inode, kind: str) -> None:
        """The new file-system hook of §4: unmaps invalidate the snapshot."""
        if kind != "unmap":
            return
        entry = self._entries.get(inode.number)
        if entry is not None and entry.valid:
            self.force_invalidate(entry, reason="unmap")

    def _on_recovery(self) -> None:
        """Crash recovery replaced the file system: every snapshot is
        derived from dead in-memory state and must go.  Chains in flight
        afterwards miss (EEXTENT) and re-run the install protocol."""
        for entry in list(self._entries.values()):
            self.force_invalidate(entry, reason="power_loss")
        self._entries.clear()

    def force_invalidate(self, entry: CacheEntry,
                         reason: str = "forced") -> None:
        """Invalidate one snapshot (unmap hook, or fault-plan staleness)."""
        if not entry.valid:
            return
        entry.valid = False
        self.invalidations += 1
        if self.bus.enabled:
            self.bus.emit(obs_events.EXTENT_CACHE_INVALIDATE,
                          self.clock(), ino=entry.ino, epoch=entry.epoch,
                          reason=reason)

    def drop(self, inode: Inode) -> None:
        self._entries.pop(inode.number, None)
