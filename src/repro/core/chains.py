"""The chain engine: dependent I/Os resubmitted from kernel hooks.

This is the mechanism of §4.  A *chain* starts as an ordinary tagged read
that walks the full stack once (syscall → ext4 → BIO → driver).  Every
completion of a chain command is handed to :meth:`ChainEngine.handle_completion`
by the NVMe driver, which runs — in interrupt context, charging only IRQ +
BPF + driver costs — the installed program over the fetched block and either:

* **resubmits**: translates the program's ``next_offset`` through the
  NVMe-layer extent cache (never the file system), recycles the very same
  NVMe descriptor, and rings the doorbell again;
* **completes**: wakes the blocked reader (or posts an io_uring CQE) with
  the buffer or with scalar results;
* **aborts**: extent-cache invalidation (``EEXTENT``), the per-process
  resubmission bound (``ECHAINLIM``), or a split translation, which falls
  back to the application exactly as §4's granularity-mismatch rule
  prescribes (buffer + ``SPLIT_FALLBACK`` status, app restarts the chain at
  the next hop).

The same engine also implements the syscall-dispatch hook: the program runs
in thread context after each completed read and asks the dispatch layer to
reissue, which skips boundary crossings and app-side processing but still
pays the file system and BIO layers per hop — reproducing the modest
Figure 3a speedup against the large Figure 3b one.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Optional, Tuple

from repro.device import NvmeCommand, STATUS_TIMEOUT
from repro.errors import IoError
from repro.kernel import Kernel, ReadResult
from repro.kernel.kernel import IoCookie
from repro.kernel.process import File, Process
from repro.core.accounting import ChainAccounting
from repro.core.extent_cache import NvmeExtentCache, Translation
from repro.core.hooks import (
    ACTION_RESUBMIT,
    ACTION_RETURN_BUFFER,
    ACTION_RETURN_VALUE,
    CTX_ACTION,
    CTX_ARG0,
    CTX_CHAIN_DEPTH,
    CTX_DATA_LEN,
    CTX_FILE_OFFSET,
    CTX_NEXT_OFFSET,
    CTX_RESULT,
    CTX_RESULT2,
    CTX_SIZE,
    Hook,
)
from repro.core.install import BpfInstallation
from repro.obs import events as obs_events

__all__ = ["ChainEngine", "ChainState"]

_U64 = struct.Struct("<Q")


class ChainState:
    """Mutable state of one in-flight chain."""

    __slots__ = ("proc", "file", "install", "offset", "length", "scratch",
                 "args", "hops", "attempts", "deliver", "done", "span",
                 "queue")

    def __init__(self, proc: Process, file: File, install: BpfInstallation,
                 offset: int, length: int, args: Tuple[int, ...],
                 scratch_init: bytes,
                 deliver: Callable[[ReadResult], None]):
        self.proc = proc
        self.file = file
        self.install = install
        self.offset = offset
        self.length = length
        self.scratch = bytearray(install.scratch_size)
        self.scratch[: len(scratch_init)] = scratch_init
        self.args = args
        self.hops = 0
        #: Consecutive retries of the current hop's read (reset on success).
        self.attempts = 0
        self.deliver = deliver
        self.done = False
        #: Root span id of this chain (0 when tracing is disabled).
        self.span = 0
        #: NVMe queue pair the chain was started on.  Every resubmitted
        #: hop reuses it, so the whole chain's completion work stays on
        #: the core owning that pair (never crossing the CpuSet).
        self.queue = 0

    def finish(self, result: ReadResult) -> None:
        if self.done:
            raise IoError("chain delivered twice")
        self.done = True
        self.deliver(result)


class ChainEngine:
    """Wires the chain machinery into one kernel instance."""

    def __init__(self, kernel: Kernel, cache: NvmeExtentCache,
                 accounting: ChainAccounting):
        self.kernel = kernel
        self.cache = cache
        self.accounting = accounting
        kernel.chain_completion_handler = self.handle_completion
        # Statistics.
        self.chains_started = 0
        self.chains_completed = 0
        self.split_fallbacks = 0
        self.extent_aborts = 0
        self.fault_retries = 0
        self.fault_fallbacks = 0

    # ------------------------------------------------------------------
    # Program execution (shared by both hooks)
    # ------------------------------------------------------------------

    def _run_program(self, state: ChainState, data: bytes) -> "tuple[dict, int]":
        """Run the installed program over ``data``; returns (outputs, insns).

        Pure execution — the caller charges the CPU cost in its own context
        (IRQ for the NVMe hook, thread for the syscall hook).
        """
        install = state.install
        ctx = bytearray(CTX_SIZE)
        ctx[CTX_DATA_LEN : CTX_DATA_LEN + 8] = _U64.pack(len(data))
        ctx[CTX_FILE_OFFSET : CTX_FILE_OFFSET + 8] = _U64.pack(state.offset)
        ctx[CTX_CHAIN_DEPTH : CTX_CHAIN_DEPTH + 8] = _U64.pack(state.hops)
        for index, arg in enumerate(state.args):
            base = CTX_ARG0 + 8 * index
            ctx[base : base + 8] = _U64.pack(arg & 0xFFFFFFFFFFFFFFFF)
        block = bytearray(install.block_size)
        block[: len(data)] = data
        install.vm.chain_budget = self.accounting.budget_remaining(state.hops)
        result = install.vm.run(ctx, {"data": block, "scratch": state.scratch})
        install.invocations += 1
        outputs = {
            "action": _U64.unpack_from(ctx, CTX_ACTION)[0],
            "next_offset": _U64.unpack_from(ctx, CTX_NEXT_OFFSET)[0],
            "result": _U64.unpack_from(ctx, CTX_RESULT)[0],
            "result2": _U64.unpack_from(ctx, CTX_RESULT2)[0],
        }
        return outputs, result.instructions

    # ------------------------------------------------------------------
    # NVMe-hook chains
    # ------------------------------------------------------------------

    def start_chain(self, proc: Process, file: File, offset: int,
                    length: int, args: Tuple[int, ...] = (),
                    scratch_init: bytes = b""):
        """Generator (thread context, syscall entry already charged).

        Runs the first hop through the full stack, then blocks while the
        chain progresses in interrupt context.  Returns a ReadResult.
        """
        kernel = self.kernel
        cost = kernel.cost
        bus = kernel.bus
        install: BpfInstallation = file.bpf_install
        full_args = tuple(args) + install.default_args[len(args):]
        self.chains_started += 1
        span = 0
        if bus.enabled:
            span = bus.span_start("read_chain", kernel.sim.now,
                                  pid=proc.pid, path="chain")
            bus.emit(obs_events.SYSCALL_ENTER, kernel.sim.now,
                     op="read_chain", pid=proc.pid, crossing_ns=0,
                     syscall_ns=0, path="chain", span=span)

        yield from kernel.cpus.run_thread(cost.filesystem_ns)
        segments = kernel.fs.map_range(file.inode, offset, length,
                                       span=span, path="chain")
        yield from kernel.cpus.run_thread(cost.bio_ns)
        if bus.enabled:
            bus.emit(obs_events.BIO_SUBMIT, kernel.sim.now,
                     cpu_ns=cost.bio_ns, segments=len(segments),
                     span=span, path="chain")

        waiter = kernel.sim.event()
        state = ChainState(proc, file, install, offset, length, full_args,
                           scratch_init, deliver=waiter.succeed)
        state.span = span
        queue = kernel.queue_for(proc)
        state.queue = queue

        if len(segments) > 1:
            # First hop already spans discontiguous extents: do it as a
            # normal BIO and let the application restart the chain (§4).
            if bus.enabled:
                bus.emit(obs_events.BIO_SPLIT, kernel.sim.now,
                         segments=len(segments), span=span, path="chain")
            chunks = []
            failed = False
            for lba, sectors in segments:
                if kernel.retry_enabled:
                    try:
                        completed = yield from kernel._nvme_rw_retry(
                            "read", lba, sectors, None, span, "chain",
                            queue=queue)
                    except IoError:
                        failed = True
                        break
                else:
                    yield from kernel.cpus.run_thread(cost.nvme_driver_ns)
                    event = kernel.sim.event()
                    command = NvmeCommand("read", lba, sectors,
                                          cookie=IoCookie("irq", event=event),
                                          queue=queue)
                    command.tenant = kernel.tenant_of(proc)
                    if bus.enabled:
                        command.span = span
                        command.path = "chain"
                        command.driver_ns = cost.nvme_driver_ns
                    kernel.device.submit(command)
                    completed = yield event
                    if completed.status != 0:
                        failed = True
                        break
                chunks.append(completed.data)
            yield from kernel.cpus.run_thread(cost.context_switch_ns)
            status = ReadResult.EIO if failed else ReadResult.SPLIT_FALLBACK
            if not failed:
                self.split_fallbacks += 1
            if bus.enabled:
                bus.emit(obs_events.CONTEXT_SWITCH, kernel.sim.now,
                         cpu_ns=cost.context_switch_ns, span=span,
                         path="chain")
                bus.emit(obs_events.CHAIN_COMPLETE, kernel.sim.now,
                         hops=1, status=status, pid=proc.pid, span=span)
                bus.span_end(span, kernel.sim.now, status=status, hops=1)
            return ReadResult(b"" if failed else b"".join(chunks),
                              status=status, hops=1, final_offset=offset,
                              scratch=bytes(state.scratch))

        lba, sectors = segments[0]
        command = NvmeCommand("read", lba, sectors,
                              cookie=IoCookie("chain", chain=state),
                              queue=queue)
        command.tenant = kernel.tenant_of(proc)
        if bus.enabled:
            command.span = span
            command.path = "chain"
        yield from kernel.submit_chain_command(command)

        result = yield waiter
        yield from kernel.cpus.run_thread(cost.context_switch_ns)
        if bus.enabled:
            bus.emit(obs_events.CONTEXT_SWITCH, kernel.sim.now,
                     cpu_ns=cost.context_switch_ns, span=span, path="chain")
            bus.emit(obs_events.CHAIN_COMPLETE, kernel.sim.now,
                     hops=result.hops, status=result.status, pid=proc.pid,
                     span=span)
            bus.span_end(span, kernel.sim.now, status=result.status,
                         hops=result.hops)
        return result

    def submit_uring_chain(self, proc: Process, file: File, sqe,
                           post_cqe: Callable[[Any, ReadResult], None]):
        """Generator used as the io_uring chain submitter (thread context)."""
        kernel = self.kernel
        cost = kernel.cost
        bus = kernel.bus
        install: BpfInstallation = file.bpf_install
        full_args = tuple(sqe.args) + install.default_args[len(sqe.args):]
        self.chains_started += 1
        span = 0
        if bus.enabled:
            span = bus.span_start("read_chain", kernel.sim.now,
                                  pid=proc.pid, path="chain", uring=True)
            bus.emit(obs_events.SYSCALL_ENTER, kernel.sim.now,
                     op="read_chain", pid=proc.pid, crossing_ns=0,
                     syscall_ns=0, path="chain", span=span)

        yield from kernel.cpus.run_thread(cost.filesystem_ns)
        segments = kernel.fs.map_range(file.inode, sqe.offset, sqe.length,
                                       span=span, path="chain")
        yield from kernel.cpus.run_thread(cost.bio_ns)
        if bus.enabled:
            bus.emit(obs_events.BIO_SUBMIT, kernel.sim.now,
                     cpu_ns=cost.bio_ns, segments=len(segments),
                     span=span, path="chain")

        def deliver(result: ReadResult) -> None:
            if bus.enabled:
                bus.emit(obs_events.CHAIN_COMPLETE, kernel.sim.now,
                         hops=result.hops, status=result.status,
                         pid=proc.pid, span=span)
                bus.span_end(span, kernel.sim.now, status=result.status,
                             hops=result.hops)
            post_cqe(sqe.user_data, result)

        state = ChainState(proc, file, install, sqe.offset, sqe.length,
                           full_args, sqe.scratch_init, deliver=deliver)
        state.span = span
        queue = kernel.queue_for(proc)
        state.queue = queue

        if len(segments) > 1:
            # Split first hop: complete as a normal read with fallback status.
            if bus.enabled:
                bus.emit(obs_events.BIO_SPLIT, kernel.sim.now,
                         segments=len(segments), span=span, path="chain")
            collector = _SplitCollector(state, len(segments))
            for lba, sectors in segments:
                yield from kernel.cpus.run_thread(cost.nvme_driver_ns)
                event = kernel.sim.event()
                event.add_callback(collector.segment_done)
                command = NvmeCommand("read", lba, sectors,
                                      cookie=IoCookie("irq", event=event),
                                      queue=queue)
                command.tenant = kernel.tenant_of(proc)
                if bus.enabled:
                    command.span = span
                    command.path = "chain"
                    command.driver_ns = cost.nvme_driver_ns
                kernel.device.submit(command)
            self.split_fallbacks += 1
            return

        lba, sectors = segments[0]
        command = NvmeCommand("read", lba, sectors,
                              cookie=IoCookie("chain", chain=state),
                              queue=queue)
        command.tenant = kernel.tenant_of(proc)
        if bus.enabled:
            command.span = span
            command.path = "chain"
        yield from kernel.submit_chain_command(command)

    # -- completion side ---------------------------------------------------

    def handle_completion(self, command: NvmeCommand) -> None:
        """Registered as the kernel's chain completion handler."""
        self.kernel.sim.spawn(self._irq_chain_step(command), name="chain-irq")

    def _irq_chain_step(self, command: NvmeCommand):
        kernel = self.kernel
        cost = kernel.cost
        bus = kernel.bus
        state: ChainState = command.cookie.chain
        install = state.install
        state.hops += 1
        kernel.irq_count += 1
        queue = state.queue
        hop_span = 0
        if bus.enabled:
            hop_span = bus.span_start("chain_hop", kernel.sim.now,
                                      parent=state.span, hop=state.hops,
                                      path="chain")
            bus.emit(obs_events.CHAIN_HOP, kernel.sim.now, hop=state.hops,
                     offset=state.offset, pid=state.proc.pid,
                     span=hop_span, parent=state.span, path="chain")
        try:
            yield from kernel.run_irq(cost.irq_entry_ns, queue)
            if bus.enabled:
                bus.emit(obs_events.IRQ_ENTRY, kernel.sim.now,
                         cpu_ns=cost.irq_entry_ns, span=hop_span,
                         path="chain")

            if command.status != 0:
                policy = kernel.retry_policy
                if policy is not None and policy.enabled:
                    yield from self._handle_faulted_hop(state, command,
                                                        hop_span)
                    return
                # No retry policy: surface it, do not run the program.
                state.finish(ReadResult(b"", status=ReadResult.EIO,
                                        hops=state.hops,
                                        final_offset=state.offset))
                return
            state.attempts = 0

            entry = install.cache_entry
            plan = kernel.fault_plan
            if plan is not None and entry is not None and entry.valid and \
                    plan.stale_due(kernel.sim.now):
                # Fault-plan staleness: the snapshot silently expired; the
                # hop observes the invalidation and aborts with EEXTENT,
                # exercising the refresh protocol.
                self.cache.force_invalidate(entry, reason="fault")
                if bus.enabled:
                    bus.emit(obs_events.FAULT_INJECT, kernel.sim.now,
                             kind="stale", ino=entry.ino, span=hop_span,
                             path="chain")
            if entry is None or not entry.valid:
                # Invalidated mid-chain: discard the recycled I/O, error out.
                self.extent_aborts += 1
                state.finish(ReadResult(b"",
                                        status=ReadResult.EXTENT_INVALIDATED,
                                        hops=state.hops,
                                        final_offset=state.offset))
                return

            outputs, instructions = self._run_program(state, command.data)
            bpf_ns = cost.bpf_run_ns(instructions, install.jit)
            yield from kernel.run_irq(bpf_ns, queue)
            action = outputs["action"]
            if bus.enabled:
                bus.emit(obs_events.BPF_HOOK_DISPATCH, kernel.sim.now,
                         hook="nvme", cpu_ns=bpf_ns,
                         instructions=instructions, action=action,
                         span=hop_span, path="chain")

            if action == ACTION_RESUBMIT:
                next_offset = outputs["next_offset"]
                if not self.accounting.may_resubmit(state.proc,
                                                    state.hops):
                    # Kill the chain for fairness.  The result carries the
                    # next offset and the scratch so the application can
                    # continue with a fresh (bounded) chain from where this
                    # one stopped.
                    self.accounting.record_kill(state.proc)
                    if bus.enabled:
                        bus.emit(obs_events.CHAIN_KILL, kernel.sim.now,
                                 pid=state.proc.pid, hops=state.hops,
                                 span=hop_span, path="chain")
                    state.finish(ReadResult(b"",
                                            status=ReadResult.CHAIN_LIMIT,
                                            hops=state.hops,
                                            final_offset=next_offset,
                                            scratch=bytes(state.scratch)))
                    return
                translation = entry.translate(next_offset, state.length,
                                              span=hop_span)
                if translation.status == Translation.MISS:
                    self.extent_aborts += 1
                    state.finish(
                        ReadResult(b"",
                                   status=ReadResult.EXTENT_INVALIDATED,
                                   hops=state.hops,
                                   final_offset=next_offset))
                    return
                if translation.status == Translation.SPLIT:
                    # Granularity mismatch (§4): perform the split I/O as a
                    # normal BIO from the completion path and hand the *new*
                    # buffer to the application, which runs the function
                    # itself and restarts the chain at the next hop.
                    self.split_fallbacks += 1
                    yield from kernel.run_irq(cost.bio_ns, queue)
                    segments = kernel.fs.map_range(state.file.inode,
                                                   next_offset, state.length,
                                                   span=hop_span,
                                                   path="chain",
                                                   resolve_ns=0)
                    if bus.enabled:
                        bus.emit(obs_events.BIO_SUBMIT, kernel.sim.now,
                                 cpu_ns=cost.bio_ns, segments=len(segments),
                                 span=hop_span, path="chain")
                        bus.emit(obs_events.BIO_SPLIT, kernel.sim.now,
                                 segments=len(segments), span=hop_span,
                                 path="chain")
                    state.offset = next_offset
                    finisher = _SplitReadFinisher(state, len(segments))
                    for lba, sectors in segments:
                        yield from kernel.run_irq(cost.nvme_driver_ns, queue)
                        event = kernel.sim.event()
                        event.add_callback(finisher.segment_done)
                        split_cmd = NvmeCommand(
                            "read", lba, sectors,
                            cookie=IoCookie("irq", event=event),
                            queue=queue)
                        split_cmd.tenant = kernel.tenant_of(state.proc)
                        if bus.enabled:
                            split_cmd.span = hop_span
                            split_cmd.path = "chain"
                            split_cmd.driver_ns = cost.nvme_driver_ns
                        kernel.device.submit(split_cmd)
                    return
                self.accounting.charge(state.proc)
                install.resubmissions += 1
                qos = kernel.qos
                if qos is not None:
                    # Pace this tenant's chain storm: the resubmission
                    # still happens, but beyond the configured rate it
                    # waits out a deterministic delay first, so the IRQ
                    # path cannot be monopolised by one tenant.
                    delay = qos.chain_pace(qos.tenant_of(state.proc))
                    if delay:
                        yield kernel.sim.timeout(delay)
                state.offset = next_offset
                # retarget() preserves command.queue, so the recycled hop
                # goes back out on the pair it arrived on and its next
                # completion fires on the same core's vector (core-local,
                # never crossing the CpuSet contention point).
                command.retarget(translation.lba, translation.sectors)
                command.source = "bpf-recycle"
                # The recycled command belongs to this hop's span: the next
                # completion charges its device time here, making "which
                # layers did this hop touch" directly readable.
                if bus.enabled:
                    command.span = hop_span
                    command.driver_ns = cost.nvme_driver_ns
                yield from kernel.run_irq(cost.nvme_driver_ns, queue)
                kernel.device.submit(command)
                return

            if action == ACTION_RETURN_BUFFER:
                self.chains_completed += 1
                state.finish(ReadResult(command.data, hops=state.hops,
                                        final_offset=state.offset,
                                        value=outputs["result"],
                                        value2=outputs["result2"]))
                return
            if action == ACTION_RETURN_VALUE:
                self.chains_completed += 1
                state.finish(ReadResult(b"", hops=state.hops,
                                        final_offset=state.offset,
                                        value=outputs["result"],
                                        value2=outputs["result2"]))
                return
            raise IoError(f"program returned unknown action {action}")
        finally:
            if hop_span:
                bus.span_end(hop_span, kernel.sim.now)

    def _handle_faulted_hop(self, state: ChainState, command: NvmeCommand,
                            hop_span: int):
        """Recover a failed chain read in IRQ context (policy enabled).

        Retries recycle the same descriptor with backoff, each retry
        charged against the per-process resubmission bound exactly like a
        program-driven hop.  When the bound or the retry budget runs out,
        the chain degrades gracefully: it is handed back to the
        application (``FAULT_FALLBACK``, like the split fallback) instead
        of killing the request with a hard error.
        """
        kernel = self.kernel
        cost = kernel.cost
        bus = kernel.bus
        policy = kernel.retry_policy
        reason = ("timeout" if command.status == STATUS_TIMEOUT
                  else "media")
        if command.status == STATUS_TIMEOUT:
            kernel.nvme_timeouts += 1
            if bus.enabled:
                bus.emit(obs_events.NVME_TIMEOUT, kernel.sim.now,
                         opcode="read", lba=command.lba,
                         timeout_ns=kernel.device.command_timeout_ns,
                         attempt=state.attempts + 1, span=hop_span,
                         path="chain")
        if state.attempts < policy.max_retries and \
                self.accounting.may_resubmit(state.proc, state.hops):
            state.attempts += 1
            self.accounting.charge(state.proc)
            self.fault_retries += 1
            kernel.nvme_retries += 1
            backoff = policy.backoff_ns(state.attempts)
            if bus.enabled:
                bus.emit(obs_events.NVME_RETRY, kernel.sim.now,
                         opcode="read", lba=command.lba, reason=reason,
                         attempt=state.attempts, backoff_ns=backoff,
                         span=hop_span, path="chain")
            if backoff:
                yield kernel.sim.timeout(backoff)
            command.retarget(command.lba, command.sectors)
            command.source = "chain-retry"
            if bus.enabled:
                command.span = hop_span
                command.driver_ns = cost.nvme_driver_ns
            yield from kernel.run_irq(cost.nvme_driver_ns, state.queue)
            kernel.device.submit(command)
            return
        # Budget exhausted: degrade to user space with the continuation
        # (offset + scratch) so a robust caller restarts a fresh bounded
        # chain from the faulted hop.
        self.fault_fallbacks += 1
        if bus.enabled:
            bus.emit(obs_events.CHAIN_FALLBACK, kernel.sim.now,
                     pid=state.proc.pid, hops=state.hops,
                     offset=state.offset, reason=reason, span=hop_span,
                     path="chain")
        state.finish(ReadResult(b"", status=ReadResult.FAULT_FALLBACK,
                                hops=state.hops, final_offset=state.offset,
                                scratch=bytes(state.scratch)))

    # ------------------------------------------------------------------
    # Syscall-dispatch hook
    # ------------------------------------------------------------------

    def syscall_hook(self, proc: Process, file: File, offset: int,
                     result: ReadResult, hook_state: dict):
        """Generator registered as the kernel's syscall_read_hook.

        Runs the program in thread context over the completed read and asks
        the dispatch layer to reissue without returning to user space.
        """
        kernel = self.kernel
        cost = kernel.cost
        install: BpfInstallation = file.bpf_install
        if install is None or install.hook is not Hook.SYSCALL:
            return "return", result

        state = hook_state.get("chain")
        if state is None:
            state = ChainState(proc, file, install, offset,
                               len(result.data),
                               hook_state.get("args",
                                              install.default_args),
                               hook_state.get("scratch_init", b""),
                               deliver=lambda _res: None)
            hook_state["chain"] = state
        state.offset = offset
        state.hops += 1

        bus = kernel.bus
        span = hook_state.get("span", 0)
        outputs, instructions = self._run_program(state, result.data)
        bpf_ns = cost.bpf_run_ns(instructions, install.jit)
        yield from kernel.cpus.run_thread(bpf_ns)

        action = outputs["action"]
        if bus.enabled:
            bus.emit(obs_events.BPF_HOOK_DISPATCH, kernel.sim.now,
                     hook="syscall", cpu_ns=bpf_ns,
                     instructions=instructions, action=action,
                     span=span, path="syscall")
        if action == ACTION_RESUBMIT:
            if not self.accounting.may_resubmit(proc, state.hops):
                self.accounting.record_kill(proc)
                if bus.enabled:
                    bus.emit(obs_events.CHAIN_KILL, kernel.sim.now,
                             pid=proc.pid, hops=state.hops, span=span,
                             path="syscall")
                return "return", ReadResult(result.data,
                                            status=ReadResult.CHAIN_LIMIT,
                                            hops=state.hops,
                                            final_offset=state.offset)
            self.accounting.charge(proc)
            install.resubmissions += 1
            if bus.enabled:
                bus.emit(obs_events.CHAIN_HOP, kernel.sim.now,
                         hop=state.hops, offset=outputs["next_offset"],
                         pid=proc.pid, span=span, parent=span,
                         path="syscall")
            return "reissue", outputs["next_offset"]
        if action == ACTION_RETURN_VALUE:
            return "return", ReadResult(b"", hops=state.hops,
                                        final_offset=state.offset,
                                        value=outputs["result"],
                                        value2=outputs["result2"])
        return "return", ReadResult(result.data, hops=state.hops,
                                    final_offset=state.offset,
                                    value=outputs["result"],
                                    value2=outputs["result2"])


class _SplitReadFinisher:
    """Gathers the BIO segments of a mid-chain split read, then hands the
    freshly fetched buffer back to the application as SPLIT_FALLBACK."""

    def __init__(self, state: ChainState, segment_count: int):
        self.state = state
        self.remaining = segment_count
        self.chunks = []

    def segment_done(self, event) -> None:
        state = self.state
        if state.done:
            return  # an earlier failed segment already delivered
        command = event.value
        if command.status != 0:
            state.hops += 1
            state.finish(ReadResult(b"", status=ReadResult.EIO,
                                    hops=state.hops,
                                    final_offset=state.offset))
            return
        self.chunks.append(command.data)
        self.remaining -= 1
        if self.remaining == 0:
            state.hops += 1
            state.finish(ReadResult(b"".join(self.chunks),
                                    status=ReadResult.SPLIT_FALLBACK,
                                    hops=state.hops,
                                    final_offset=state.offset,
                                    scratch=bytes(state.scratch)))


class _SplitCollector:
    """Gathers the segments of a split first hop for an io_uring chain."""

    def __init__(self, state: ChainState, segment_count: int):
        self.state = state
        self.remaining = segment_count
        self.chunks = []

    def segment_done(self, event) -> None:
        state = self.state
        if state.done:
            return  # an earlier failed segment already delivered
        command = event.value
        if command.status != 0:
            state.finish(ReadResult(b"", status=ReadResult.EIO, hops=1,
                                    final_offset=state.offset))
            return
        self.chunks.append(command.data)
        self.remaining -= 1
        if self.remaining == 0:
            state.finish(
                ReadResult(b"".join(self.chunks),
                           status=ReadResult.SPLIT_FALLBACK, hops=1,
                           final_offset=state.offset,
                           scratch=bytes(state.scratch)))
