"""The storage BPF context struct, chain actions, and storage helpers.

The context a storage program receives (in ``r1``) mirrors XRP's
``struct bpf_xrp``: a pointer to the raw block buffer just fetched, its
length, the file offset it came from, how deep the chain is, a scratch area
that persists across chained hops, four install/user arguments, and output
fields through which the program requests its next action::

    offset  field         meaning
    ------  ------------  -------------------------------------------------
      0     data          pointer to the completed block buffer (read-only)
      8     data_len      buffer length in bytes
     16     file_offset   file offset this buffer was read from
     24     chain_depth   completed hops in this chain so far
     32     scratch       pointer to the persistent per-chain scratch area
     40     arg0..arg3    four u64 parameters set at install/issue time
     72     action        OUT: RETURN_BUFFER (0), RESUBMIT (1), RETURN_VALUE (2)
     80     next_offset   OUT: file offset to reissue when action=RESUBMIT
     88     result        OUT: scalar result when action=RETURN_VALUE
     96     result2       OUT: secondary scalar result

The layout is parameterised by the block size and scratch size fixed at
install time, so the verifier statically bounds every buffer access.
"""

from __future__ import annotations

import enum

from repro.ebpf.helpers import ArgKind, HelperRegistry, HelperSpec, RetKind
from repro.ebpf.program import CtxField, CtxLayout, FieldKind

__all__ = [
    "ACTION_RESUBMIT",
    "ACTION_RETURN_BUFFER",
    "ACTION_RETURN_VALUE",
    "CTX_ACTION",
    "CTX_ARG0",
    "CTX_CHAIN_DEPTH",
    "CTX_DATA",
    "CTX_DATA_LEN",
    "CTX_FILE_OFFSET",
    "CTX_NEXT_OFFSET",
    "CTX_RESULT",
    "CTX_RESULT2",
    "CTX_SCRATCH",
    "Hook",
    "storage_ctx_layout",
    "storage_helpers",
]

#: The program wants the (whole) fetched buffer returned to the application.
ACTION_RETURN_BUFFER = 0
#: Recycle the NVMe descriptor and reissue at ``next_offset`` (paper §4).
ACTION_RESUBMIT = 1
#: Complete with the scalar ``result``/``result2`` and no buffer (the
#: selection/projection/aggregation case of §4).
ACTION_RETURN_VALUE = 2

# Field offsets (also usable from raw assembly).
CTX_DATA = 0
CTX_DATA_LEN = 8
CTX_FILE_OFFSET = 16
CTX_CHAIN_DEPTH = 24
CTX_SCRATCH = 32
CTX_ARG0 = 40
CTX_ARG1 = 48
CTX_ARG2 = 56
CTX_ARG3 = 64
CTX_ACTION = 72
CTX_NEXT_OFFSET = 80
CTX_RESULT = 88
CTX_RESULT2 = 96
CTX_SIZE = 104


class Hook(enum.Enum):
    """Where the function is attached (the two hooks of Figure 2)."""

    #: Re-dispatch from the syscall dispatch layer: saves boundary
    #: crossings and app-side processing, still pays fs + BIO per hop.
    SYSCALL = "syscall"
    #: Re-dispatch from the NVMe driver completion (interrupt) path: pays
    #: only driver + device per hop.
    NVME = "nvme"


def storage_ctx_layout(block_size: int = 4096,
                       scratch_size: int = 256) -> CtxLayout:
    """The context layout for a given block/scratch size."""
    return CtxLayout(
        [
            CtxField("data", CTX_DATA, 8, FieldKind.POINTER, region="data",
                     region_size=block_size),
            CtxField("data_len", CTX_DATA_LEN, 8),
            CtxField("file_offset", CTX_FILE_OFFSET, 8),
            CtxField("chain_depth", CTX_CHAIN_DEPTH, 8),
            CtxField("scratch", CTX_SCRATCH, 8, FieldKind.POINTER,
                     region="scratch", region_size=scratch_size,
                     writable=True),
            CtxField("arg0", CTX_ARG0, 8),
            CtxField("arg1", CTX_ARG1, 8),
            CtxField("arg2", CTX_ARG2, 8),
            CtxField("arg3", CTX_ARG3, 8),
            CtxField("action", CTX_ACTION, 8, writable=True),
            CtxField("next_offset", CTX_NEXT_OFFSET, 8, writable=True),
            CtxField("result", CTX_RESULT, 8, writable=True),
            CtxField("result2", CTX_RESULT2, 8, writable=True),
        ]
    )


def storage_helpers() -> HelperRegistry:
    """Base helpers plus the storage-specific ones (ids 16+).

    ``get_chain_budget`` lets a program learn how many further
    resubmissions the per-process bound still allows, so well-behaved
    programs can bail out gracefully before the kernel kills the chain.
    """
    from repro.ebpf.helpers import base_registry

    registry = base_registry()

    def get_chain_budget(vm) -> int:
        budget = getattr(vm, "chain_budget", None)
        return budget if budget is not None else 0

    registry.register(
        HelperSpec(16, "get_chain_budget", (), RetKind.SCALAR),
        get_chain_budget,
    )

    def trace_offset(vm, offset: int) -> int:
        vm.trace_append(offset & 0xFFFFFFFFFFFFFFFF)
        bus = getattr(vm.env, "trace_bus", None)
        if bus is not None and bus.enabled:
            from repro.obs import events as obs_events  # lazy: hot path
            bus.emit(obs_events.BPF_HELPER_TRACE, vm.env.now(),
                     offset=offset & 0xFFFFFFFFFFFFFFFF)
        return 0

    registry.register(
        HelperSpec(17, "trace_offset", (ArgKind.SCALAR,), RetKind.VOID),
        trace_offset,
    )

    # Compaction helpers (repro.compact).  A merge program streams the
    # entries of each scanned data page into a kernel-side merge sink
    # (``vm.compact_sink``, set by the CompactionEngine on the chain's
    # installation): ``compact_emit`` upserts a live entry, while
    # ``compact_drop`` retires a tombstoned key at the bottom level.
    # Both return the sink's running count so the program can surface
    # progress through result/result2 without the entries themselves
    # ever crossing the kernel boundary.

    def compact_emit(vm, key: int, value: int) -> int:
        sink = getattr(vm, "compact_sink", None)
        if sink is None:
            return 0
        return sink.emit(key & 0xFFFFFFFFFFFFFFFF,
                         value & 0xFFFFFFFFFFFFFFFF)

    registry.register(
        HelperSpec(18, "compact_emit", (ArgKind.SCALAR, ArgKind.SCALAR),
                   RetKind.SCALAR),
        compact_emit,
    )

    def compact_drop(vm, key: int) -> int:
        sink = getattr(vm, "compact_sink", None)
        if sink is None:
            return 0
        return sink.drop(key & 0xFFFFFFFFFFFFFFFF)

    registry.register(
        HelperSpec(19, "compact_drop", (ArgKind.SCALAR,), RetKind.SCALAR),
        compact_drop,
    )

    return registry
