"""Per-descriptor BPF attachment state (what the install ioctl creates).

An installation binds a *verified* program to an open file description,
fixes the chain read size (one block buffer is recycled hop to hop, so all
hops read the same length), snapshots the file's extents into the NVMe-layer
cache, and pre-instantiates the VM so per-invocation cost is just execution.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ebpf.maps import BpfMap
from repro.ebpf.program import Program
from repro.ebpf.vm import Vm, VmEnvironment
from repro.errors import InvalidArgument, VerifierError
from repro.core.extent_cache import CacheEntry
from repro.core.hooks import CTX_SIZE, Hook, storage_ctx_layout

__all__ = ["BpfInstallation", "IOCTL_INSTALL_BPF", "IOCTL_REFRESH_EXTENTS",
           "IOCTL_UNINSTALL_BPF"]

# ioctl opcodes for the special install ioctl of §4.
IOCTL_INSTALL_BPF = 0xB7F0
IOCTL_UNINSTALL_BPF = 0xB7F1
IOCTL_REFRESH_EXTENTS = 0xB7F2


class BpfInstallation:
    """One attached program plus its runtime state."""

    def __init__(self, program: Program, hook: Hook, block_size: int,
                 scratch_size: int, env: VmEnvironment,
                 default_args: Tuple[int, ...] = (),
                 jit: bool = True, vm_mode: Optional[str] = None):
        if not program.verified:
            raise VerifierError("install of unverified program")
        if block_size % 512 != 0 or block_size < 512:
            raise InvalidArgument("block_size must be a multiple of 512")
        if len(default_args) > 4:
            raise InvalidArgument("at most 4 default args")
        expected = storage_ctx_layout(block_size, scratch_size)
        if program.ctx_layout.size != CTX_SIZE or \
                program.ctx_layout.size != expected.size:
            raise InvalidArgument(
                "program context layout is not the storage layout")
        data_field = program.ctx_layout.by_name.get("data")
        if data_field is None or data_field.region_size != block_size:
            raise InvalidArgument(
                f"program expects {data_field.region_size if data_field else '?'}B "
                f"blocks but installation uses {block_size}B")
        scratch_field = program.ctx_layout.by_name.get("scratch")
        if scratch_field is None or scratch_field.region_size != scratch_size:
            raise InvalidArgument("scratch size mismatch with program layout")
        self.program = program
        self.hook = hook
        self.block_size = block_size
        self.scratch_size = scratch_size
        self.default_args = tuple(default_args) + (0,) * (4 - len(default_args))
        # Execution tier: explicit vm_mode wins; otherwise the legacy jit
        # flag maps False -> interp and True -> block (the default tier).
        # The simulated cost model only distinguishes compiled vs
        # interpreted, so self.jit stays the cost-model switch.
        mode = vm_mode if vm_mode is not None else ("block" if jit else "interp")
        self.vm_mode = mode
        self.jit = mode != "interp"
        self.vm = Vm(program, env, mode=mode)
        #: Set by the install ioctl (NVMe hook installs snapshot extents).
        self.cache_entry: Optional[CacheEntry] = None
        # Statistics.
        self.invocations = 0
        self.resubmissions = 0

    @property
    def hook_kind(self) -> str:
        """Duck-typed contract with the kernel's dispatch check."""
        return self.hook.value

    def __repr__(self) -> str:
        return (f"BpfInstallation({self.program.name!r}, {self.hook.value}, "
                f"block={self.block_size})")


def pack_maps(maps: Optional[Dict[int, BpfMap]]) -> Dict[int, BpfMap]:
    return dict(maps or {})
