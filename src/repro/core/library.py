"""Prebuilt, verifier-friendly BPF programs for common on-disk structures.

This is the "library of BPF functions to accelerate access to popular data
structures" the paper envisions (§4).  Programs are generated with
:class:`~repro.ebpf.builder.ProgramBuilder` against the storage context
layout and the page formats of :mod:`repro.structures.pages`:

* :func:`index_traversal_program` — walks any paged index whose pages are
  ``(magic, level, nkeys, entries[(key, value)])``: interior pages resubmit
  the child offset, leaf pages return (value, found).  Used for both the
  B+-tree and the SSTable two-level index; the in-page search is a bounded
  binary search, written with the explicit clamps the verifier needs to
  prove every access in bounds.
* :func:`scan_aggregate_program` — the iterator/aggregation pushdown case:
  scans ``arg2`` consecutive leaf pages, counting and summing values whose
  keys fall in ``[arg0, arg1]``, keeping accumulators in the scratch area
  and returning (sum, count) without ever surfacing a page to user space.

Because the chain fallback path re-runs these exact programs in user space
(see :meth:`repro.core.api.StorageBpf.read_chain_robust`), no separate
"user-space equivalent" is needed — the program *is* the structure
definition, which is the exokernel point of the paper.
"""

from __future__ import annotations

from repro.ebpf.builder import ProgramBuilder
from repro.ebpf.program import Program
from repro.errors import InvalidArgument
from repro.core.hooks import (
    ACTION_RESUBMIT,
    ACTION_RETURN_BUFFER,
    ACTION_RETURN_VALUE,
    CTX_ACTION,
    CTX_ARG0,
    CTX_ARG1,
    CTX_ARG2,
    CTX_DATA,
    CTX_FILE_OFFSET,
    CTX_NEXT_OFFSET,
    CTX_RESULT,
    CTX_RESULT2,
    CTX_SCRATCH,
    storage_ctx_layout,
)
from repro.structures.pages import FANOUT_MAX, PAGE_HEADER_SIZE

__all__ = [
    "index_traversal_program",
    "linked_list_program",
    "scan_aggregate_program",
    "wisckey_get_program",
]

# Register conventions used by the generators below.
R_CTX = 1
R_DATA = 2
R_KEY = 3
R_LO = 4
R_HI = 5
R_NKEYS = 6
R_MID = 7
R_TMP = 8
R_ADDR = 9
R_VAL = 0


def _search_iterations(fanout: int) -> int:
    iterations = 1
    while (1 << iterations) <= fanout:
        iterations += 1
    return iterations


def _emit_page_search(b: ProgramBuilder, fanout: int, miss):
    """Emit the bounded in-page search shared by the traversal programs.

    Expects the page pointer in ``R_DATA`` and the target key in ``R_KEY``.
    Jumps to ``miss`` when every entry key exceeds the target; otherwise
    falls through with ``R_VAL`` = entries[index].value, ``R_TMP`` =
    entries[index].key, and ``R_HI`` = the page header's level field.
    Every pointer offset is explicitly clamped so the verifier can bound
    the accesses statically.
    """
    iterations = _search_iterations(fanout)
    max_index = fanout - 1

    b.ldx("h", R_NKEYS, R_DATA, 6)     # header.nkeys
    clamp_ok = b.label("nkeys_ok")
    b.branch("jle", R_NKEYS, clamp_ok, imm=fanout)
    b.mov(R_NKEYS, fanout)
    b.place(clamp_ok)

    # Binary search for the largest entry with key <= target.
    b.mov(R_LO, 0)
    b.mov_reg(R_HI, R_NKEYS)
    for _round in range(iterations):
        skip = b.label()
        b.branch("jge", R_LO, skip, src=R_HI)       # lo >= hi: settled
        b.mov_reg(R_MID, R_LO)
        b.alu("add", R_MID, src=R_HI)
        b.alu("rsh", R_MID, imm=1)                  # mid = (lo+hi)/2
        clamped = b.label()
        b.branch("jle", R_MID, clamped, imm=max_index)
        b.mov(R_MID, max_index)                     # verifier clamp
        b.place(clamped)
        b.mov_reg(R_ADDR, R_MID)
        b.alu("lsh", R_ADDR, imm=4)                 # mid * 16
        b.alu("add", R_ADDR, imm=PAGE_HEADER_SIZE)
        b.mov_reg(R_TMP, R_DATA)
        b.alu("add", R_TMP, src=R_ADDR)
        b.ldx("dw", R_TMP, R_TMP, 0)                # entries[mid].key
        greater = b.label()
        b.branch("jgt", R_TMP, greater, src=R_KEY)
        b.mov_reg(R_LO, R_MID)
        b.alu("add", R_LO, imm=1)                   # lo = mid + 1
        b.jump(skip)
        b.place(greater)
        b.mov_reg(R_HI, R_MID)                      # hi = mid
        b.place(skip)

    b.branch("jeq", R_LO, miss, imm=0)              # every key > target
    b.mov_reg(R_MID, R_LO)
    b.alu("sub", R_MID, imm=1)                      # index = lo - 1
    clamped = b.label()
    b.branch("jle", R_MID, clamped, imm=max_index)
    b.mov(R_MID, max_index)
    b.place(clamped)
    b.mov_reg(R_ADDR, R_MID)
    b.alu("lsh", R_ADDR, imm=4)
    b.alu("add", R_ADDR, imm=PAGE_HEADER_SIZE)
    b.mov_reg(R_TMP, R_DATA)
    b.alu("add", R_TMP, src=R_ADDR)
    b.ldx("dw", R_VAL, R_TMP, 8)                    # entries[index].value
    b.ldx("dw", R_TMP, R_TMP, 0)                    # entries[index].key
    b.ldx("h", R_HI, R_DATA, 4)                     # header.level


def index_traversal_program(block_size: int = 4096,
                            scratch_size: int = 256,
                            fanout: int = FANOUT_MAX,
                            name: str = "index-traversal") -> Program:
    """One hop of a paged-index lookup: search, then descend or answer.

    Contract: ``arg0`` holds the target key.  On interior pages (header
    ``level > 0``) the program requests a resubmission at the child's file
    offset; on leaves it returns ``result = value`` and ``result2 = 1`` on
    an exact match, ``result2 = 0`` otherwise.
    """
    if not 2 <= fanout <= FANOUT_MAX:
        raise InvalidArgument(f"fanout must be in [2, {FANOUT_MAX}]")
    layout = storage_ctx_layout(block_size, scratch_size)
    b = ProgramBuilder(layout, name=name)

    b.ldx("dw", R_DATA, R_CTX, CTX_DATA)
    b.ldx("dw", R_KEY, R_CTX, CTX_ARG0)
    miss = b.label("miss")
    _emit_page_search(b, fanout, miss)

    leaf = b.label("leaf")
    b.branch("jeq", R_HI, leaf, imm=0)
    # Interior page: recycle the descriptor at the child's offset.
    b.mov(R_LO, ACTION_RESUBMIT)
    b.stx("dw", R_CTX, CTX_ACTION, R_LO)
    b.stx("dw", R_CTX, CTX_NEXT_OFFSET, R_VAL)
    b.mov(R_VAL, 0)
    b.exit()

    b.place(leaf)
    found = b.label("found")
    b.branch("jeq", R_TMP, found, src=R_KEY)
    b.place(miss)
    b.mov(R_LO, ACTION_RETURN_VALUE)
    b.stx("dw", R_CTX, CTX_ACTION, R_LO)
    b.mov(R_LO, 0)
    b.stx("dw", R_CTX, CTX_RESULT, R_LO)
    b.stx("dw", R_CTX, CTX_RESULT2, R_LO)           # result2 = 0: not found
    b.mov(R_VAL, 0)
    b.exit()

    b.place(found)
    b.mov(R_LO, ACTION_RETURN_VALUE)
    b.stx("dw", R_CTX, CTX_ACTION, R_LO)
    b.stx("dw", R_CTX, CTX_RESULT, R_VAL)
    b.mov(R_LO, 1)
    b.stx("dw", R_CTX, CTX_RESULT2, R_LO)           # result2 = 1: found
    b.mov(R_VAL, 0)
    b.exit()
    return b.build()


def scan_aggregate_program(block_size: int = 4096,
                           scratch_size: int = 256,
                           fanout: int = FANOUT_MAX,
                           name: str = "scan-aggregate") -> Program:
    """Filtered aggregation pushdown over consecutive data pages.

    Contract: ``arg0``/``arg1`` bound the key predicate (inclusive),
    ``arg2`` is the number of consecutive pages to scan.  Scratch layout:
    pages scanned at offset 0, matching-entry count at 8, value sum at 16.
    On the last page the program returns ``result = sum``,
    ``result2 = count``.  No page data ever reaches user space.
    """
    if not 2 <= fanout <= FANOUT_MAX:
        raise InvalidArgument(f"fanout must be in [2, {FANOUT_MAX}]")
    if scratch_size < 24:
        raise InvalidArgument("scan program needs >= 24 scratch bytes")
    layout = storage_ctx_layout(block_size, scratch_size)
    b = ProgramBuilder(layout, name=name)
    max_index = fanout - 1

    R_SCR = 3       # scratch pointer
    R_LOW = 4       # predicate low
    R_HIGH = 5      # predicate high
    R_I = 6         # entry index
    R_N = 7         # nkeys (clamped)
    R_ENT = 8       # entry pointer / key
    R_T = 9         # temp value

    b.ldx("dw", R_DATA, R_CTX, CTX_DATA)
    b.ldx("dw", R_SCR, R_CTX, CTX_SCRATCH)
    b.ldx("dw", R_LOW, R_CTX, CTX_ARG0)
    b.ldx("dw", R_HIGH, R_CTX, CTX_ARG1)

    b.ldx("h", R_N, R_DATA, 6)                       # header.nkeys
    clamp = b.label()
    b.branch("jle", R_N, clamp, imm=fanout)
    b.mov(R_N, fanout)
    b.place(clamp)

    # Entry loop.  Accumulators live in scratch so both predicate outcomes
    # rejoin with identical register state (keeps verification linear).
    b.mov(R_I, 0)
    loop = b.label("loop")
    done = b.label("done")
    b.place(loop)
    b.branch("jge", R_I, done, src=R_N)
    clamped = b.label()
    b.branch("jle", R_I, clamped, imm=max_index)
    b.mov(R_I, max_index)
    b.place(clamped)
    b.mov_reg(R_ENT, R_I)
    b.alu("lsh", R_ENT, imm=4)
    b.alu("add", R_ENT, imm=PAGE_HEADER_SIZE)
    b.alu("add", R_ENT, src=R_DATA)                  # &entries[i]
    b.ldx("dw", R_T, R_ENT, 0)                       # key
    skip_entry = b.label()
    b.branch("jlt", R_T, skip_entry, src=R_LOW)
    b.branch("jgt", R_T, skip_entry, src=R_HIGH)
    # Matching entry: count += 1, sum += value (in scratch).
    b.ldx("dw", R_T, R_SCR, 8)
    b.alu("add", R_T, imm=1)
    b.stx("dw", R_SCR, 8, R_T)
    b.ldx("dw", R_T, R_ENT, 8)                       # value
    b.ldx("dw", R_ENT, R_SCR, 16)
    b.alu("add", R_ENT, src=R_T)
    b.stx("dw", R_SCR, 16, R_ENT)
    b.place(skip_entry)
    # Normalise temps so both paths rejoin identically.
    b.mov(R_ENT, 0)
    b.mov(R_T, 0)
    b.alu("add", R_I, imm=1)
    b.jump(loop)
    b.place(done)

    # Page accounting: scratch[0] += 1; done when it reaches arg2.
    b.ldx("dw", R_T, R_SCR, 0)
    b.alu("add", R_T, imm=1)
    b.stx("dw", R_SCR, 0, R_T)
    b.ldx("dw", R_ENT, R_CTX, CTX_ARG2)
    finish = b.label("finish")
    b.branch("jge", R_T, finish, src=R_ENT)
    # More pages: resubmit at the next consecutive page.
    b.ldx("dw", R_T, R_CTX, CTX_FILE_OFFSET)
    b.alu("add", R_T, imm=block_size)
    b.mov(R_ENT, ACTION_RESUBMIT)
    b.stx("dw", R_CTX, CTX_ACTION, R_ENT)
    b.stx("dw", R_CTX, CTX_NEXT_OFFSET, R_T)
    b.mov(R_VAL, 0)
    b.exit()

    b.place(finish)
    b.mov(R_ENT, ACTION_RETURN_VALUE)
    b.stx("dw", R_CTX, CTX_ACTION, R_ENT)
    b.ldx("dw", R_T, R_SCR, 16)
    b.stx("dw", R_CTX, CTX_RESULT, R_T)              # result = sum
    b.ldx("dw", R_T, R_SCR, 8)
    b.stx("dw", R_CTX, CTX_RESULT2, R_T)             # result2 = count
    b.mov(R_VAL, 0)
    b.exit()
    return b.build()


def wisckey_get_program(block_size: int = 4096, scratch_size: int = 256,
                        fanout: int = FANOUT_MAX,
                        name: str = "wisckey-get") -> Program:
    """Index traversal plus a value-log dereference (WiscKey layout).

    Contract: ``arg0`` holds the target key.  Phase lives in scratch[0]:
    phase 0 walks the B-tree exactly like :func:`index_traversal_program`,
    but a leaf hit resubmits once more at the *log record offset* stored in
    the leaf; phase 1 validates the record's key and returns the record
    block to the application (``result = value_len``, ``result2 = 1``).
    A miss at either phase returns ``result2 = 0``.
    """
    if not 2 <= fanout <= FANOUT_MAX:
        raise InvalidArgument(f"fanout must be in [2, {FANOUT_MAX}]")
    layout = storage_ctx_layout(block_size, scratch_size)
    b = ProgramBuilder(layout, name=name)

    b.ldx("dw", R_DATA, R_CTX, CTX_DATA)
    b.ldx("dw", R_KEY, R_CTX, CTX_ARG0)
    b.ldx("dw", R_ADDR, R_CTX, CTX_SCRATCH)
    b.ldx("dw", R_TMP, R_ADDR, 0)                   # phase
    log_phase = b.label("log_phase")
    b.branch("jeq", R_TMP, log_phase, imm=1)

    # ---- phase 0: index traversal -------------------------------------
    miss = b.label("miss")
    _emit_page_search(b, fanout, miss)
    leaf = b.label("leaf")
    b.branch("jeq", R_HI, leaf, imm=0)
    # Interior page: descend.
    b.mov(R_LO, ACTION_RESUBMIT)
    b.stx("dw", R_CTX, CTX_ACTION, R_LO)
    b.stx("dw", R_CTX, CTX_NEXT_OFFSET, R_VAL)
    b.mov(R_VAL, 0)
    b.exit()

    b.place(leaf)
    found = b.label("leaf_found")
    b.branch("jeq", R_TMP, found, src=R_KEY)
    b.place(miss)
    b.mov(R_LO, ACTION_RETURN_VALUE)
    b.stx("dw", R_CTX, CTX_ACTION, R_LO)
    b.mov(R_LO, 0)
    b.stx("dw", R_CTX, CTX_RESULT, R_LO)
    b.stx("dw", R_CTX, CTX_RESULT2, R_LO)           # not found
    b.mov(R_VAL, 0)
    b.exit()

    b.place(found)
    # Leaf hit: R_VAL holds the log record offset.  Flip to phase 1 and
    # chain one more hop into the value log.
    b.ldx("dw", R_ADDR, R_CTX, CTX_SCRATCH)
    b.mov(R_LO, 1)
    b.stx("dw", R_ADDR, 0, R_LO)                    # scratch.phase = 1
    b.mov(R_LO, ACTION_RESUBMIT)
    b.stx("dw", R_CTX, CTX_ACTION, R_LO)
    b.stx("dw", R_CTX, CTX_NEXT_OFFSET, R_VAL)
    b.mov(R_VAL, 0)
    b.exit()

    # ---- phase 1: the value-log record --------------------------------
    b.place(log_phase)
    b.ldx("dw", R_TMP, R_DATA, 0)                   # record key
    record_ok = b.label("record_ok")
    b.branch("jeq", R_TMP, record_ok, src=R_KEY)
    b.mov(R_LO, ACTION_RETURN_VALUE)                # corrupt/missing record
    b.stx("dw", R_CTX, CTX_ACTION, R_LO)
    b.mov(R_LO, 0)
    b.stx("dw", R_CTX, CTX_RESULT, R_LO)
    b.stx("dw", R_CTX, CTX_RESULT2, R_LO)
    b.mov(R_VAL, 0)
    b.exit()

    b.place(record_ok)
    b.mov(R_LO, ACTION_RETURN_BUFFER)               # hand the block back
    b.stx("dw", R_CTX, CTX_ACTION, R_LO)
    b.ldx("dw", R_TMP, R_DATA, 8)                   # value length
    b.stx("dw", R_CTX, CTX_RESULT, R_TMP)
    b.mov(R_LO, 1)
    b.stx("dw", R_CTX, CTX_RESULT2, R_LO)
    b.mov(R_VAL, 0)
    b.exit()
    return b.build()


def linked_list_program(block_size: int = 4096, scratch_size: int = 256,
                        name: str = "linked-list") -> Program:
    """Walk blocks whose first 8 bytes point at the next block.

    The minimal dependent-I/O structure (used by tests and the quickstart):
    a terminator of all-ones returns the payload at byte 8.
    """
    layout = storage_ctx_layout(block_size, scratch_size)
    b = ProgramBuilder(layout, name=name)
    b.ldx("dw", R_DATA, R_CTX, CTX_DATA)
    b.ldx("dw", R_TMP, R_DATA, 0)                    # next offset
    b.mov(R_MID, -1)                                 # 0xffff... terminator
    done = b.label("done")
    b.branch("jeq", R_TMP, done, src=R_MID)
    b.mov(R_LO, ACTION_RESUBMIT)
    b.stx("dw", R_CTX, CTX_ACTION, R_LO)
    b.stx("dw", R_CTX, CTX_NEXT_OFFSET, R_TMP)
    b.mov(R_VAL, 0)
    b.exit()
    b.place(done)
    b.ldx("dw", R_TMP, R_DATA, 8)                    # payload
    b.mov(R_LO, ACTION_RETURN_VALUE)
    b.stx("dw", R_CTX, CTX_ACTION, R_LO)
    b.stx("dw", R_CTX, CTX_RESULT, R_TMP)
    b.mov(R_LO, 1)
    b.stx("dw", R_CTX, CTX_RESULT2, R_LO)
    b.mov(R_VAL, 0)
    b.exit()
    return b.build()
