"""BPF for storage: the paper's contribution.

This package implements §4 of the paper on top of the simulated kernel:

* :mod:`~repro.core.hooks` — the storage BPF context struct (what the NVMe
  completion hook hands to a program), the chain actions, and the
  storage-specific helper functions.
* :mod:`~repro.core.extent_cache` — the NVMe-layer soft-state extent cache
  with file-system-triggered invalidation.
* :mod:`~repro.core.accounting` — the per-process chained-resubmission
  counter and bound.
* :mod:`~repro.core.install` — the install ioctl and per-descriptor
  attachment state.
* :mod:`~repro.core.chains` — the chain engine: first-hop dispatch, the
  NVMe-completion hook that runs the program in IRQ context and recycles the
  command, the syscall-dispatch hook, split-I/O fallback.
* :mod:`~repro.core.api` — :class:`~repro.core.api.StorageBpf`, the
  user-facing facade ("the library" of §4).
* :mod:`~repro.core.handle` — :class:`~repro.core.handle.ChainHandle`,
  the first-class handle returned by ``StorageBpf.open_chain`` owning
  fd + installation with read/read_robust/refresh/close methods.
* :mod:`~repro.core.library` — prebuilt, verified programs for common
  on-disk structures (B-tree lookup, linked blocks, SSTable search, scan
  filters) plus user-space equivalents for the fallback path.
"""

from repro.core.accounting import ChainAccounting
from repro.core.api import InstallRequest, StorageBpf
from repro.core.extent_cache import NvmeExtentCache
from repro.core.handle import ChainHandle
from repro.core.hooks import (
    ACTION_RESUBMIT,
    ACTION_RETURN_BUFFER,
    ACTION_RETURN_VALUE,
    Hook,
    storage_ctx_layout,
    storage_helpers,
)
from repro.core.install import BpfInstallation

__all__ = [
    "ACTION_RESUBMIT",
    "ACTION_RETURN_BUFFER",
    "ACTION_RETURN_VALUE",
    "BpfInstallation",
    "ChainAccounting",
    "ChainHandle",
    "Hook",
    "InstallRequest",
    "NvmeExtentCache",
    "StorageBpf",
    "storage_ctx_layout",
    "storage_helpers",
]
