"""First-class chain handles: one object owning fd + installation.

The raw :class:`~repro.core.api.StorageBpf` facade mirrors the syscall
surface of §4 — open, install ioctl, tagged reads — but applications end
up threading ``(proc, fd)`` pairs through every call and re-implementing
teardown.  :class:`ChainHandle` packages that lifecycle: it is created by
:meth:`StorageBpf.open_chain`, remembers the process, descriptor, and
installed program, and exposes the chain operations as methods whose
block size defaults to the installation's.

Methods that consume simulated time (``read``, ``read_robust``,
``refresh``, ``close``) are generators meant to run inside a simulated
thread, exactly like the facade methods they delegate to.  ``close`` is
idempotent.  The context-manager protocol performs an *untimed* teardown
(drop the extent-cache entry, detach the program, release the fd) so a
``with`` block can guarantee cleanup even outside a running simulation.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import BadFileDescriptor

__all__ = ["ChainHandle"]


class ChainHandle:
    """Owns the fd and BPF installation behind one chain-read endpoint."""

    def __init__(self, bpf, proc, fd: int):
        self.bpf = bpf
        self.proc = proc
        self.fd = fd
        self.closed = False

    # -- introspection ---------------------------------------------------

    @property
    def installation(self):
        """The live :class:`BpfInstallation`, or None after close."""
        if self.closed:
            return None
        try:
            return self.proc.file(self.fd).bpf_install
        except BadFileDescriptor:
            return None

    @property
    def block_size(self) -> int:
        """The installed block size (chain reads must use it)."""
        installation = self.installation
        if installation is None:
            raise BadFileDescriptor(f"handle fd {self.fd} is closed")
        return installation.block_size

    # -- chain operations (generators) -----------------------------------

    def read(self, offset: int, length: Optional[int] = None,
             args: Tuple[int, ...] = (), scratch_init: bytes = b""):
        """One tagged read; ``length`` defaults to the installed block."""
        if length is None:
            length = self.block_size
        result = yield from self.bpf.read_chain(self.proc, self.fd, offset,
                                                length, args, scratch_init)
        return result

    def read_robust(self, offset: int, length: Optional[int] = None,
                    args: Tuple[int, ...] = (), scratch_init: bytes = b"",
                    max_retries: int = 8, continue_on_limit: bool = True):
        """The §4 recovery protocol (refresh on EEXTENT, user-space
        fallback on splits) over this handle's descriptor."""
        if length is None:
            length = self.block_size
        result = yield from self.bpf.read_chain_robust(
            self.proc, self.fd, offset, length, args, scratch_init,
            max_retries=max_retries, continue_on_limit=continue_on_limit)
        return result

    def refresh(self):
        """Re-push the file's extents after an EEXTENT invalidation."""
        result = yield from self.bpf.refresh(self.proc, self.fd)
        return result

    def close(self):
        """Uninstall the program and close the fd (idempotent)."""
        if self.closed:
            return 0
        self.closed = True
        yield from self.bpf.uninstall(self.proc, self.fd)
        yield from self.bpf.kernel.sys_close(self.proc, self.fd)
        return 0

    # -- context manager (untimed teardown) -------------------------------

    def __enter__(self) -> "ChainHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            file = self.proc.file(self.fd)
        except BadFileDescriptor:
            return
        if file.bpf_install is not None:
            self.bpf.cache.drop(file.inode)
            file.bpf_install = None
        self.proc.close_fd(self.fd)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"ChainHandle(fd={self.fd}, pid={self.proc.pid}, {state})"
