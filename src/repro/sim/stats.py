"""Latency and throughput statistics for experiments.

All recorders are pure accumulation — they never touch wall-clock time, so
results are a deterministic function of the simulation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

__all__ = ["LatencyRecorder", "ThroughputMeter", "percentile"]


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of ``samples`` (``fraction`` in [0, 1])."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class LatencyRecorder:
    """Accumulates latency samples (ns) and reports summary statistics.

    Keeps every sample up to ``max_samples``, after which it switches to a
    deterministic stride-based thinning so memory stays bounded while the
    distribution shape is preserved for percentile queries.
    """

    def __init__(self, name: str = "latency", max_samples: int = 200_000):
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._samples: List[int] = []
        self._max_samples = max_samples
        self._stride = 1

    def record(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative latency sample: {value}")
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if (self.count - 1) % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) >= self._max_samples:
                # Keep every other retained sample and double the stride.
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"no samples recorded in {self.name!r}")
        return self.total / self.count

    def percentile(self, fraction: float) -> float:
        """Percentile of the retained samples.

        An empty recorder reports ``0.0``, consistent with ``summary()``
        (the module-level :func:`percentile` still rejects empty input —
        callers there passed an explicit sample set).
        """
        if not self._samples:
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(
                    f"fraction must be within [0, 1], got {fraction}")
            return 0.0
        return percentile(self._samples, fraction)

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def summary(self) -> Dict[str, float]:
        """A dict of the headline statistics (all in nanoseconds).

        An empty recorder yields a well-formed all-zero summary rather
        than raising, so callers can serialise results of experiments
        whose measurement window completed no operations.
        """
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": float(self.min),
            "max": float(self.max),
            "p50": self.p50,
            "p99": self.p99,
        }


class ThroughputMeter:
    """Counts completed operations over a simulated time window."""

    def __init__(self, name: str = "throughput"):
        self.name = name
        self.completed = 0
        self._start = None
        self._end = None

    def start(self, now: int) -> None:
        """Begin the measurement window at simulated time ``now``."""
        self._start = now
        self._end = now
        self.completed = 0

    def record(self, now: int, operations: int = 1) -> None:
        if self._start is None:
            raise ValueError(f"{self.name!r} not started")
        self.completed += operations
        if now > self._end:
            self._end = now

    def stop(self, now: int) -> None:
        """Close the window (e.g. when the experiment's run time elapses)."""
        if self._start is None:
            raise ValueError(f"{self.name!r} not started")
        if now > self._end:
            self._end = now

    @property
    def elapsed_ns(self) -> int:
        if self._start is None:
            raise ValueError(f"{self.name!r} not started")
        return self._end - self._start

    def ops_per_sec(self) -> float:
        """Completed operations per simulated second.

        A zero-length (or never-started) window reports ``0.0`` instead
        of raising: an experiment that finished before any simulated
        time elapsed simply has no throughput.
        """
        if self._start is None:
            return 0.0
        elapsed = self.elapsed_ns
        if elapsed <= 0:
            return 0.0
        return self.completed * 1e9 / elapsed
