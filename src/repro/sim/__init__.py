"""Deterministic discrete-event simulation kernel.

Everything in the repro library that models time — kernel layer costs, device
service latency, CPU contention — runs on this engine.  Time is an integer
number of **nanoseconds**; the engine is fully deterministic (ties broken by
schedule order) so experiments reproduce exactly.

Public surface:

* :class:`~repro.sim.engine.Simulator` — event loop and process spawner.
* :class:`~repro.sim.engine.Event` / :class:`~repro.sim.engine.Process` —
  awaitable primitives for generator-based processes.
* :class:`~repro.sim.resources.Resource` — capacity-limited resource with
  priorities (used for CPU cores, device service units).
* :class:`~repro.sim.resources.Store` — FIFO queue of items (used for NVMe
  submission/completion queues).
* :mod:`~repro.sim.stats` — latency recorders and throughput meters.
* :mod:`~repro.sim.rng` — named deterministic random streams.
"""

from repro.sim.engine import Event, Process, Simulator, Timeout
from repro.sim.resources import CpuSet, Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.stats import LatencyRecorder, ThroughputMeter

__all__ = [
    "CpuSet",
    "Event",
    "LatencyRecorder",
    "Process",
    "RandomStreams",
    "Resource",
    "Simulator",
    "Store",
    "ThroughputMeter",
    "Timeout",
]
