"""Generator-based discrete-event simulation engine.

Processes are plain Python generators that ``yield`` awaitable
:class:`Event` objects.  The engine resumes a process when the event it is
waiting on triggers.  Example::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(100)          # advance simulated time by 100 ns
        return "done"

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == "done"
    assert sim.now == 100

Determinism: events scheduled for the same timestamp trigger in schedule
order; there is no wall-clock or hash-order dependence anywhere.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError
from repro.perf.profiler import get_default_profiler

__all__ = ["AllOf", "AnyOf", "Event", "Process", "Simulator", "Timeout"]

PENDING = object()


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` schedules it to
    trigger at the current simulation time (after events already queued for
    that time), at which point all registered callbacks run in registration
    order.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = PENDING
        self._exception: Optional[BaseException] = None
        self._scheduled = False

    # -- state --------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has fired (successfully or not)."""
        return self._value is not PENDING

    @property
    def ok(self) -> bool:
        """True if the event fired without an exception."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's payload; raises if the event failed or is pending."""
        if self._value is PENDING:
            raise SimulationError("event value read before it triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Schedule this event to fire successfully at the current time."""
        self._set(value, None)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule this event to fire with an exception at the current time."""
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._set(PENDING, exception)
        return self

    def _set(self, value: Any, exception: Optional[BaseException]) -> None:
        if self._scheduled or self.triggered:
            raise SimulationError("event triggered twice")
        self._scheduled = True
        self._pending_value = value
        self._pending_exception = exception
        self.sim._schedule(0, self)

    def _fire(self) -> None:
        """Called by the simulator when this event comes off the queue."""
        if self._pending_exception is not None:
            self._exception = self._pending_exception
            self._value = None
        else:
            self._value = self._pending_value
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def _fire_profiled(self, profiler) -> None:
        """`_fire` with each callback attributed to its call site.

        Identical control flow to :meth:`_fire` — same value/exception
        handling, same callback order — plus a profiler frame around
        each callback.  The pop sits in a ``finally`` because a
        callback may legitimately raise (unwaited process crashes
        propagate through here).
        """
        if self._pending_exception is not None:
            self._exception = self._pending_exception
            self._value = None
        else:
            self._value = self._pending_value
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            profiler.push(profiler.site_for_callback(callback))
            try:
                callback(self)
            finally:
                profiler.pop()

    # -- composition ----------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires (immediately if fired)."""
        if self.triggered:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed delay.  Created via ``sim.timeout``."""

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        # Coerce here, not just in Simulator.timeout: a float delay on a
        # directly constructed Timeout would drift sim.now off integer
        # nanoseconds for every event scheduled after it.
        try:
            delay = int(delay)
        except (TypeError, ValueError):
            raise SimulationError(f"non-numeric timeout delay: {delay!r}")
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._scheduled = True
        self._pending_value = value
        self._pending_exception = None
        sim._schedule(delay, self)


class Process(Event):
    """A running generator; also an event that fires when the generator returns.

    The generator's ``return`` value becomes the process's :attr:`value`; an
    uncaught exception inside the generator fails the process event (and
    propagates to anything waiting on it).
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the process at the current time.
        starter = Event(sim)
        starter.add_callback(self._resume)
        starter.succeed()

    def _resume(self, event: Event) -> None:
        while True:
            try:
                if event is not None and event._exception is not None:
                    target = self._generator.throw(event._exception)
                else:
                    target = self._generator.send(
                        event._value if event is not None else None
                    )
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate to waiters
                if not self.callbacks and not self.sim.suppress_crashes:
                    raise
                self.fail(exc)
                return
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}, not an Event"
                )
            if target.triggered:
                event = target
                continue
            target.callbacks.append(self._resume)
            return


class AllOf(Event):
    """Fires when every event in ``events`` has fired; value is their values."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered or self._scheduled:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self._events])


class AnyOf(Event):
    """Fires when the first of ``events`` fires; value is ``(index, value)``."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(self._events):
            event.add_callback(lambda ev, i=index: self._on_child(i, ev))

    def _on_child(self, index: int, event: Event) -> None:
        if self.triggered or self._scheduled:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed((index, event._value))


class Simulator:
    """The event loop: a priority queue of (time, sequence, event).

    Delay-0 schedules (``succeed``/``fail``, zero timeouts) dominate real
    workloads, so they bypass the heap entirely and go to a FIFO deque.
    Order is provably identical to the single-heap design: the clock only
    moves forward, so every heap entry due at time T was pushed (with a
    smaller sequence number) before any delay-0 event could be scheduled
    *at* T — draining heap entries due now before the deque, each side in
    push order, reproduces the old (time, sequence) order exactly.
    """

    def __init__(self, suppress_crashes: bool = False):
        self._now = 0
        self._heap: List = []
        self._immediate: deque = deque()
        self._sequence = 0
        #: If True, a crashing process fails silently even with no waiters.
        self.suppress_crashes = suppress_crashes
        # Captured at construction, like Kernel does with the obs bus:
        # when profiling is off this costs one attribute check per step.
        self._profiler = get_default_profiler()

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------

    def _schedule(self, delay: int, event: Event) -> None:
        if delay == 0:
            self._immediate.append(event)
        else:
            self._sequence += 1
            heapq.heappush(self._heap, (self._now + delay, self._sequence, event))

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event that fires ``delay`` nanoseconds from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A fresh pending event (trigger it with ``succeed``/``fail``)."""
        return Event(self)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a generator as a process; returns its Process event."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- running --------------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event."""
        heap = self._heap
        immediate = self._immediate
        # Heap entries due *now* were scheduled before anything in the
        # immediate deque could have been (see class docstring).
        if heap and (not immediate or heap[0][0] <= self._now):
            when, _seq, event = heapq.heappop(heap)
            if when < self._now:
                raise SimulationError("event scheduled in the past")
            self._now = when
        elif immediate:
            event = immediate.popleft()
        else:
            raise SimulationError("step() with an empty event queue")
        profiler = self._profiler
        if profiler.enabled:
            profiler.on_step(event, len(heap) + len(immediate))
            try:
                event._fire_profiled(profiler)
            finally:
                profiler.end_step()
        else:
            event._fire()

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains, or until simulated time ``until``.

        With ``until`` set, the clock is left exactly at ``until`` even if
        the next event lies beyond it.  This is ``step()`` unrolled into a
        tight loop: queue heads are re-read from locals and every event due
        at the current timestamp fires without a per-callback heap pop.
        """
        heap = self._heap
        immediate = self._immediate
        profiler = self._profiler
        pop = heapq.heappop
        while heap or immediate:
            if immediate and (not heap or heap[0][0] > self._now):
                event = immediate.popleft()
            else:
                when = heap[0][0]
                if until is not None and when > until:
                    self._now = until
                    return
                when, _seq, event = pop(heap)
                if when < self._now:
                    raise SimulationError("event scheduled in the past")
                self._now = when
            if profiler.enabled:
                profiler.on_step(event, len(heap) + len(immediate))
                try:
                    event._fire_profiled(profiler)
                finally:
                    profiler.end_step()
            else:
                event._fire()
        if until is not None and self._now < until:
            self._now = until

    def run_process(self, generator: Generator, until: Optional[int] = None) -> Any:
        """Spawn ``generator``, run the simulation, and return its value."""
        process = self.spawn(generator)
        self.run(until=until)
        if not process.triggered:
            raise SimulationError(
                f"process {process.name!r} did not finish by t={self._now}"
            )
        return process.value
