"""Capacity-limited resources and FIFO stores for the simulation engine.

:class:`Resource` models anything with a fixed number of slots — CPU cores,
device service units.  Requests carry a priority so interrupt work can jump
ahead of thread work (lower number = more urgent), matching the way the
simulated NVMe completion path preempts application threads for dispatch.

:class:`Store` models an unbounded FIFO queue of items — NVMe submission and
completion queues.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Generator, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator

__all__ = ["CpuSet", "Request", "Resource", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Fires when the slot is granted.  The holder must eventually pass it back
    to :meth:`Resource.release`.
    """

    def __init__(self, sim: Simulator, resource: "Resource", priority: int):
        super().__init__(sim)
        self.resource = resource
        self.priority = priority
        self.granted = False


class Resource:
    """A resource with ``capacity`` identical slots and a priority wait queue."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: List = []
        self._sequence = 0
        # Utilisation accounting: integral of busy slots over time.
        self._busy_time = 0
        self._last_change = sim.now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiting)

    def busy_time(self) -> int:
        """Total busy slot-nanoseconds accumulated so far."""
        return self._busy_time + self._in_use * (self.sim.now - self._last_change)

    def _account(self) -> None:
        # Grant/release pairs at the same timestamp are the common case
        # (uncontended resources); they contribute nothing to the busy-time
        # integral, so skip the arithmetic entirely.
        now = self.sim._now
        if now != self._last_change:
            self._busy_time += self._in_use * (now - self._last_change)
            self._last_change = now

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self.sim, self, priority)
        if self._in_use < self.capacity and not self._waiting:
            self._grant(req)
        else:
            self._sequence += 1
            heapq.heappush(self._waiting, (priority, self._sequence, req))
        return req

    def _grant(self, req: Request) -> None:
        self._account()
        self._in_use += 1
        req.granted = True
        req.succeed(req)

    def release(self, req: Request) -> None:
        """Return a previously granted slot."""
        if not req.granted:
            raise SimulationError(f"release of ungranted request on {self.name}")
        req.granted = False
        self._account()
        self._in_use -= 1
        while self._waiting and self._in_use < self.capacity:
            _prio, _seq, waiter = heapq.heappop(self._waiting)
            self._grant(waiter)

    def execute(self, cost: int, priority: int = 0) -> Generator:
        """Hold one slot for ``cost`` nanoseconds (generator helper).

        Usage inside a process: ``yield from resource.execute(350)``.
        """
        req = self.request(priority)
        yield req
        try:
            if cost > 0:
                yield self.sim.timeout(cost)
        finally:
            self.release(req)


class CpuSet(Resource):
    """A pool of CPU cores.

    Thread work runs at :data:`PRIORITY_THREAD`; interrupt/dispatch work runs
    at :data:`PRIORITY_IRQ` so it is scheduled ahead of queued thread work,
    approximating hardware interrupt priority on a non-preemptive simulator.
    """

    PRIORITY_IRQ = 0
    PRIORITY_THREAD = 10

    def __init__(self, sim: Simulator, cores: int):
        super().__init__(sim, capacity=cores, name=f"cpu{cores}")
        self.cores = cores

    def run_thread(self, cost: int) -> Generator:
        """Charge ``cost`` ns of thread-priority CPU time."""
        yield from self.execute(cost, priority=self.PRIORITY_THREAD)

    def run_irq(self, cost: int) -> Generator:
        """Charge ``cost`` ns of interrupt-priority CPU time."""
        yield from self.execute(cost, priority=self.PRIORITY_IRQ)

    def utilisation(self) -> float:
        """Mean fraction of cores busy since the simulation started."""
        elapsed = self.sim.now
        if elapsed == 0:
            return 0.0
        return self.busy_time() / (elapsed * self.cores)


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event that fires with the next
    item (immediately if one is queued).  Items are delivered in put order and
    waiters are served in get order.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: deque = deque()
        self._getters: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None if the store is empty."""
        if self._items:
            return self._items.popleft()
        return None
