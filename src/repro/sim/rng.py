"""Named deterministic random streams.

Every stochastic choice in the library (device latency jitter, workload key
draws, extent churn timing) pulls from a stream obtained here, so two runs of
the same experiment with the same seed are bit-identical, and adding a new
consumer of randomness does not perturb existing streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, reproducible ``random.Random`` streams.

    Each named stream is seeded from a SHA-256 of ``(seed, name)`` so streams
    are decorrelated and stable across Python versions (no reliance on
    ``hash()`` randomisation).
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """A derived stream family, e.g. one per simulated thread."""
        digest = hashlib.sha256(f"{self.seed}/fork/{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
