"""I/O trace recording.

A trace captures every command the NVMe device serviced, with submit and
complete timestamps and the *source* of the submission — the BIO layer or a
BPF recycle from the completion hook — which is how tests assert that
chained reissues really bypassed the kernel stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["IoTrace", "TraceEntry"]


@dataclass(frozen=True)
class TraceEntry:
    """One serviced command."""

    submit_ns: int
    complete_ns: int
    opcode: str
    lba: int
    sectors: int
    source: str  # "bio" | "bpf-recycle" | ...

    @property
    def service_ns(self) -> int:
        return self.complete_ns - self.submit_ns


class IoTrace:
    """An append-only list of trace entries with simple query helpers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.entries: List[TraceEntry] = []

    def record(self, entry: TraceEntry) -> None:
        if self.enabled:
            self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def count(self, opcode: Optional[str] = None,
              source: Optional[str] = None) -> int:
        return sum(
            1
            for entry in self.entries
            if (opcode is None or entry.opcode == opcode)
            and (source is None or entry.source == source)
        )

    def clear(self) -> None:
        self.entries.clear()
