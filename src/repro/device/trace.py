"""I/O trace recording.

A trace captures every command the NVMe device serviced, with submit and
complete timestamps and the *source* of the submission — the BIO layer or a
BPF recycle from the completion hook — which is how tests assert that
chained reissues really bypassed the kernel stack.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, Optional

__all__ = ["IoTrace", "TraceEntry"]


@dataclass(frozen=True)
class TraceEntry:
    """One serviced command."""

    submit_ns: int
    complete_ns: int
    opcode: str
    lba: int
    sectors: int
    source: str  # "bio" | "bpf-recycle" | ...

    @property
    def service_ns(self) -> int:
        return self.complete_ns - self.submit_ns


class IoTrace:
    """An append-only log of trace entries with simple query helpers.

    With ``max_entries`` set the trace becomes a ring buffer retaining
    only the newest ``max_entries`` records, so long-running experiments
    keep memory bounded.  Queries (``count``, iteration, ``len``) see the
    retained window only; ``recorded_total`` keeps the lifetime count.
    """

    def __init__(self, enabled: bool = True,
                 max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.enabled = enabled
        self.max_entries = max_entries
        self.entries: Deque[TraceEntry] = deque(maxlen=max_entries)
        #: Lifetime number of records, including any evicted from the ring.
        self.recorded_total = 0

    def record(self, entry: TraceEntry) -> None:
        if self.enabled:
            self.entries.append(entry)
            self.recorded_total += 1

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def count(self, opcode: Optional[str] = None,
              source: Optional[str] = None) -> int:
        """Matching entries in the retained window."""
        return sum(
            1
            for entry in self.entries
            if (opcode is None or entry.opcode == opcode)
            and (source is None or entry.source == source)
        )

    def clear(self) -> None:
        self.entries.clear()
