"""The device's volatile write cache (the crash-consistency adversary).

Real NVMe drives acknowledge writes once the data reaches on-controller
DRAM; the data only becomes durable when the controller destages it —
either on its own (here: FIFO eviction when the cache is full), on an
explicit FLUSH, or for writes marked FUA (force unit access), which bypass
the cache entirely.  A power loss drops everything still volatile, and may
leave one in-flight multi-sector write *torn* at a sector boundary.

The cache deliberately does **not** coalesce: records destage to media in
exact submission order, so the set of persisted writes after a crash is
always a prefix of the acknowledged writes — the property the crash-point
harness checks against its shadow states.  Reads are served through the
cache (media overlaid with pending records, applied in order), so cached
data is visible before it is durable, just like a real drive.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.device.blockdev import SECTOR_SIZE, BlockDevice
from repro.errors import InvalidArgument

__all__ = ["CachedWrite", "WriteCache"]


class CachedWrite:
    """One acknowledged-but-volatile write."""

    __slots__ = ("lba", "sectors", "data")

    def __init__(self, lba: int, data: bytes):
        self.lba = lba
        self.sectors = len(data) // SECTOR_SIZE
        self.data = data

    def __repr__(self) -> str:
        return f"CachedWrite(lba={self.lba}, sectors={self.sectors})"


class WriteCache:
    """FIFO volatile write cache of at most ``depth`` write records."""

    def __init__(self, media: BlockDevice, depth: int):
        if depth < 1:
            raise InvalidArgument("write cache depth must be >= 1")
        self.media = media
        self.depth = depth
        self._records: List[CachedWrite] = []
        self.evictions = 0
        self.flushed_records = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def dirty_sectors(self) -> int:
        return sum(record.sectors for record in self._records)

    def write(self, lba: int, data: bytes) -> None:
        """Acknowledge a write into the cache, destaging FIFO on overflow."""
        self._records.append(CachedWrite(lba, data))
        while len(self._records) > self.depth:
            oldest = self._records.pop(0)
            self.media.write(oldest.lba, oldest.data)
            self.evictions += 1

    def read(self, lba: int, count: int) -> bytes:
        """Media contents overlaid with pending records, in write order."""
        buffer = bytearray(self.media.read(lba, count))
        start = lba * SECTOR_SIZE
        end = (lba + count) * SECTOR_SIZE
        for record in self._records:
            rec_start = record.lba * SECTOR_SIZE
            rec_end = rec_start + len(record.data)
            lo = max(start, rec_start)
            hi = min(end, rec_end)
            if lo < hi:
                buffer[lo - start : hi - start] = \
                    record.data[lo - rec_start : hi - rec_start]
        return bytes(buffer)

    def flush(self) -> int:
        """Destage every pending record to media, in order."""
        flushed = len(self._records)
        for record in self._records:
            self.media.write(record.lba, record.data)
        self._records.clear()
        self.flushed_records += flushed
        return flushed

    def power_loss(self, rng: Optional[random.Random] = None,
                   tear: bool = False) -> Dict[str, int]:
        """Drop all volatile records; optionally tear the oldest one.

        Everything older than the cache contents already reached media
        (FIFO destage), so the oldest pending record is exactly "the next
        write after the durable prefix".  With ``tear=True`` and a
        multi-sector record at the head, a seed-chosen sector-aligned
        prefix of it is persisted — modelling a write caught mid-transfer
        by the power cut.  Single sectors never tear (sector writes are
        atomic), which is what makes the single-sector superblock safe.
        """
        info = {"dropped": len(self._records), "torn_sectors": 0,
                "torn_lba": -1}
        if tear and rng is not None and self._records:
            head = self._records[0]
            if head.sectors > 1:
                cut = rng.randrange(1, head.sectors)
                self.media.write(head.lba,
                                 head.data[: cut * SECTOR_SIZE])
                info["torn_sectors"] = cut
                info["torn_lba"] = head.lba
        self._records.clear()
        return info
