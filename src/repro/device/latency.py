"""Per-generation device latency profiles (the devices of Figure 1).

The paper's Figure 1 breaks down 512 B random-read latency into device time
and kernel software time for four device generations.  The kernel software
cost is (nearly) constant, so the software *fraction* is set by the device
service latency.  Profile values are chosen so the reproduced fractions land
in the bands the paper reports:

========  ================  =========================  ==================
profile   paper's device    service latency (read)     software fraction
========  ================  =========================  ==================
HDD       Seagate Exos X16  4 ms                       ~0.1 %
NAND      TLC NAND SSD      80 µs                      ~4 %
NVM-1     Optane SSD 900P   20 µs (effective)          10–15 %
NVM-2     Optane P5800X     3.224 µs (Table 1)         ~50 %
========  ================  =========================  ==================

``parallelism`` bounds how many commands the device services concurrently,
which sets its IOPS ceiling (parallelism / latency); the P5800X prototype
ceiling of ~2.5 M IOPS is what caps the NVMe-hook speedup in Figure 3b at
about 2.5x.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import InvalidArgument

__all__ = [
    "DEVICE_PROFILES",
    "HDD",
    "LatencyModel",
    "NAND_SSD",
    "NVM_GEN1",
    "NVM_GEN2",
]


@dataclass(frozen=True)
class LatencyModel:
    """Service-time model for one device generation."""

    name: str
    read_ns: int
    write_ns: int
    #: Concurrent commands the device services internally.
    parallelism: int
    #: Uniform jitter applied to each service time (fraction of the mean).
    jitter: float = 0.02
    #: NVMe FLUSH service time (draining the volatile write cache to
    #: media); 0 derives ``2 * write_ns``, the usual cache-drain cost.
    flush_ns: int = 0

    def __post_init__(self):
        if self.read_ns <= 0 or self.write_ns <= 0:
            raise InvalidArgument("latencies must be positive")
        if self.parallelism < 1:
            raise InvalidArgument("parallelism must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise InvalidArgument("jitter must be in [0, 1)")
        if self.flush_ns < 0:
            raise InvalidArgument("flush_ns must be >= 0")

    def sample_read(self, rng: random.Random) -> int:
        return self._sample(self.read_ns, rng)

    def sample_write(self, rng: random.Random) -> int:
        return self._sample(self.write_ns, rng)

    def sample_flush(self, rng: random.Random) -> int:
        return self._sample(self.flush_ns or 2 * self.write_ns, rng)

    def _sample(self, mean: int, rng: random.Random) -> int:
        if self.jitter == 0.0:
            return mean
        spread = mean * self.jitter
        return max(1, int(mean + spread * (2.0 * rng.random() - 1.0)))

    def max_iops(self) -> float:
        """The device's theoretical read IOPS ceiling."""
        return self.parallelism * 1e9 / self.read_ns


HDD = LatencyModel("HDD", read_ns=4_000_000, write_ns=4_000_000,
                   parallelism=1)
NAND_SSD = LatencyModel("NAND", read_ns=80_000, write_ns=90_000,
                        parallelism=16)
NVM_GEN1 = LatencyModel("NVM-1", read_ns=20_000, write_ns=20_000,
                        parallelism=8)
#: Table 1 measures the P5800X device portion of a 512 B read at 3224 ns.
NVM_GEN2 = LatencyModel("NVM-2", read_ns=3_224, write_ns=3_600,
                        parallelism=7)

DEVICE_PROFILES = {
    "hdd": HDD,
    "nand": NAND_SSD,
    "nvm1": NVM_GEN1,
    "nvm2": NVM_GEN2,
}
