"""Sector-addressed sparse in-memory block store.

This is the "media" behind the NVMe device model: a flat array of 512-byte
sectors, stored sparsely so multi-gigabyte devices cost memory only for the
sectors actually written.  It has no timing — service latency lives in
:mod:`repro.device.nvme`.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import InvalidArgument, IoError
from repro.obs import events as obs_events
from repro.obs.bus import NULL_BUS

__all__ = ["BlockDevice", "SECTOR_SIZE"]

SECTOR_SIZE = 512


class BlockDevice:
    """A sparse array of ``capacity_sectors`` sectors of 512 bytes."""

    def __init__(self, capacity_sectors: int):
        if capacity_sectors < 1:
            raise InvalidArgument("device needs at least one sector")
        self.capacity_sectors = capacity_sectors
        self._sectors: Dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0
        self.discards = 0
        #: Observability: the owning kernel points these at its bus/clock.
        #: Only ``discard`` emits (TRIM is rare and never on the read path,
        #: so read-path traces stay byte-identical); read/write sector
        #: counts are derived from ``nvme_complete`` events instead.
        self.bus = NULL_BUS
        self.clock: Callable[[], int] = lambda: 0

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_sectors * SECTOR_SIZE

    def _check_range(self, lba: int, count: int) -> None:
        if count < 1:
            raise InvalidArgument(f"sector count must be positive, got {count}")
        if lba < 0 or lba + count > self.capacity_sectors:
            raise IoError(
                f"access [{lba}, {lba + count}) beyond device end "
                f"({self.capacity_sectors} sectors)"
            )

    def read(self, lba: int, count: int) -> bytes:
        """Read ``count`` sectors starting at ``lba``; unwritten reads zeros."""
        self._check_range(lba, count)
        self.reads += count
        zero = bytes(SECTOR_SIZE)
        return b"".join(
            self._sectors.get(sector, zero) for sector in range(lba, lba + count)
        )

    def write(self, lba: int, data: bytes) -> None:
        """Write whole sectors starting at ``lba``."""
        if len(data) % SECTOR_SIZE != 0:
            raise InvalidArgument(
                f"write length {len(data)} is not sector-aligned"
            )
        count = len(data) // SECTOR_SIZE
        self._check_range(lba, count)
        self.writes += count
        for index in range(count):
            chunk = bytes(data[index * SECTOR_SIZE : (index + 1) * SECTOR_SIZE])
            self._sectors[lba + index] = chunk

    def discard(self, lba: int, count: int) -> None:
        """TRIM: drop sectors back to zeroes (frees memory)."""
        self._check_range(lba, count)
        self.discards += count
        for sector in range(lba, lba + count):
            self._sectors.pop(sector, None)
        if self.bus.enabled:
            self.bus.emit(obs_events.BLOCKDEV_DISCARD, self.clock(),
                          lba=lba, sectors=count)

    def image(self) -> Dict[int, bytes]:
        """A snapshot of every written sector (for determinism tests)."""
        return dict(self._sectors)

    def written_sectors(self) -> int:
        """Number of sectors currently holding data (for tests)."""
        return len(self._sectors)
