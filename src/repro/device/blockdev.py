"""Sector-addressed sparse in-memory block store.

This is the "media" behind the NVMe device model: a flat array of 512-byte
sectors, stored sparsely so multi-gigabyte devices cost memory only for the
sectors actually written.  It has no timing — service latency lives in
:mod:`repro.device.nvme`.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import InvalidArgument, IoError

__all__ = ["BlockDevice", "SECTOR_SIZE"]

SECTOR_SIZE = 512


class BlockDevice:
    """A sparse array of ``capacity_sectors`` sectors of 512 bytes."""

    def __init__(self, capacity_sectors: int):
        if capacity_sectors < 1:
            raise InvalidArgument("device needs at least one sector")
        self.capacity_sectors = capacity_sectors
        self._sectors: Dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_sectors * SECTOR_SIZE

    def _check_range(self, lba: int, count: int) -> None:
        if count < 1:
            raise InvalidArgument(f"sector count must be positive, got {count}")
        if lba < 0 or lba + count > self.capacity_sectors:
            raise IoError(
                f"access [{lba}, {lba + count}) beyond device end "
                f"({self.capacity_sectors} sectors)"
            )

    def read(self, lba: int, count: int) -> bytes:
        """Read ``count`` sectors starting at ``lba``; unwritten reads zeros."""
        self._check_range(lba, count)
        self.reads += count
        zero = bytes(SECTOR_SIZE)
        return b"".join(
            self._sectors.get(sector, zero) for sector in range(lba, lba + count)
        )

    def write(self, lba: int, data: bytes) -> None:
        """Write whole sectors starting at ``lba``."""
        if len(data) % SECTOR_SIZE != 0:
            raise InvalidArgument(
                f"write length {len(data)} is not sector-aligned"
            )
        count = len(data) // SECTOR_SIZE
        self._check_range(lba, count)
        self.writes += count
        for index in range(count):
            chunk = bytes(data[index * SECTOR_SIZE : (index + 1) * SECTOR_SIZE])
            self._sectors[lba + index] = chunk

    def discard(self, lba: int, count: int) -> None:
        """TRIM: drop sectors back to zeroes (frees memory)."""
        self._check_range(lba, count)
        for sector in range(lba, lba + count):
            self._sectors.pop(sector, None)

    def written_sectors(self) -> int:
        """Number of sectors currently holding data (for tests)."""
        return len(self._sectors)
