"""The NVMe device model: queue pairs, bounded parallelism, interrupts.

The device exposes ``queues`` submission/completion queue pairs (per-core
queue pairs are how real NVMe scales past a single dispatcher).  Each pair
pulls commands from its own submission queue into service slots; all pairs
share the device's internal bandwidth — at most ``model.parallelism``
commands are in media service at once, regardless of how many queues they
arrived on.  A serviced command spends the sampled media latency, moves the
data, and then raises a *completion interrupt* on its queue pair by
invoking the handler the NVMe driver registered.  Everything after that
point — interrupt CPU cost, the BPF completion hook, walking the completion
back up the stack — belongs to the kernel layers, not the device.

With ``queues=1`` (the default) the device runs the original single-pair
code path: no bandwidth arbitration resource exists and the service loops
consume the one queue directly, keeping event streams and RNG draw order
byte-identical to builds that predate multi-queue.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional

from repro.errors import InvalidArgument, IoError, PowerLossError
from repro.device.blockdev import SECTOR_SIZE, BlockDevice
from repro.device.latency import LatencyModel
from repro.device.trace import IoTrace, TraceEntry
from repro.device.writecache import WriteCache
from repro.obs import events as obs_events
from repro.obs.bus import NULL_BUS, TraceBus
from repro.sim import Resource, Simulator, Store

__all__ = ["NvmeCommand", "NvmeDevice", "STATUS_MEDIA_ERROR", "STATUS_OK",
           "STATUS_POWER_FAIL", "STATUS_TIMEOUT"]

#: NVMe completion statuses.  Error completions (anything non-zero) carry
#: ``data=None`` — never a short buffer — so the length invariant
#: ``len(data) == sectors * 512`` holds exactly when ``status == 0``.
STATUS_OK = 0
STATUS_MEDIA_ERROR = 1
STATUS_TIMEOUT = 2
#: Power was cut while the command was in flight; media was not touched.
STATUS_POWER_FAIL = 3

#: Submission-queue marker under WFQ: the Store carries one placeholder
#: per queued command (preserving its wakeup semantics) while the real
#: commands wait in the per-tenant fair queue.
_WFQ_PLACEHOLDER = object()


class NvmeCommand:
    """One NVMe command.

    For reads, ``data`` is filled by the device at completion.  ``cookie``
    is opaque driver context (the simulated kernel hangs its per-I/O state
    off it).  ``source`` records who enqueued the command ("bio" for the
    normal stack, "bpf-recycle" for a descriptor recycled by the completion
    hook), which traces and tests rely on.
    """

    __slots__ = ("opcode", "lba", "sectors", "data", "cookie", "source",
                 "submit_ns", "complete_ns", "status", "span", "path",
                 "driver_ns", "fua", "queue", "tenant")

    def __init__(self, opcode: str, lba: int, sectors: int,
                 data: Optional[bytes] = None, cookie: Any = None,
                 source: str = "bio", fua: bool = False, queue: int = 0):
        if opcode not in ("read", "write", "flush"):
            raise InvalidArgument(f"bad NVMe opcode {opcode!r}")
        if opcode == "write" and data is None:
            raise InvalidArgument("write command needs data")
        if opcode == "write" and data is not None and \
                len(data) != sectors * SECTOR_SIZE:
            raise InvalidArgument("write data length != sectors * 512")
        if opcode == "flush" and (sectors != 0 or data is not None):
            raise InvalidArgument("flush carries no sectors or data")
        if fua and opcode != "write":
            raise InvalidArgument("FUA applies to writes only")
        self.opcode = opcode
        self.lba = lba
        self.sectors = sectors
        self.data = data
        self.cookie = cookie
        self.source = source
        #: Force unit access: this write bypasses the volatile cache and
        #: is durable at completion (how the journal commits without a
        #: full cache drain).
        self.fua = fua
        #: Queue pair this command is posted to.  Like ``span``/``path``
        #: it survives :meth:`retarget`, so a chain's recycled hops stay
        #: on the queue (and therefore the CPU core) they started on.
        self.queue = queue
        #: Tenant charged for this I/O (a name, or None for kernel-internal
        #: traffic).  Caller-owned context like ``span``/``queue``: it
        #: survives :meth:`retarget`, so a chain's recycled hops keep
        #: billing the tenant that started the chain.  The device only
        #: consults it under QoS weighted-fair queueing.
        self.tenant: Optional[str] = None
        self.submit_ns = -1
        self.complete_ns = -1
        self.status = 0
        #: Observability context: owning span id, I/O path taxonomy, and
        #: the driver-side submission cost charged for this command.
        self.span = 0
        self.path = "normal"
        self.driver_ns = 0

    def retarget(self, lba: int, sectors: int) -> None:
        """Recycle this descriptor for a new read (the paper's §4 recycle).

        Clears everything the previous service stamped — payload, status,
        and the submit/complete/driver timings — so traces and events for
        the new hop cannot carry the previous hop's attribution.  ``span``,
        ``path``, and ``queue`` are caller-owned context and are left for
        the caller to reassign (keeping ``queue`` is what pins a chain's
        recycled hops to their originating queue pair).
        """
        self.lba = lba
        self.sectors = sectors
        self.data = None
        self.status = STATUS_OK
        self.submit_ns = -1
        self.complete_ns = -1
        self.driver_ns = 0

    def __repr__(self) -> str:
        return (f"NvmeCommand({self.opcode} lba={self.lba} "
                f"sectors={self.sectors} source={self.source})")


class NvmeDevice:
    """Queue pairs + shared parallel service bandwidth + completion IRQs."""

    def __init__(self, sim: Simulator, model: LatencyModel,
                 media: BlockDevice, rng: random.Random,
                 trace: Optional[IoTrace] = None,
                 bus: Optional[TraceBus] = None,
                 cache_depth: int = 0, queues: int = 1, qos=None):
        if queues < 1:
            raise InvalidArgument(f"need at least one queue pair, got {queues}")
        self.sim = sim
        self.model = model
        self.media = media
        self.rng = rng
        self.trace = trace if trace is not None else IoTrace(enabled=False)
        self.bus = bus if bus is not None else NULL_BUS
        self.queues = queues
        self.submission_queues: List[Store] = [
            Store(sim, name="nvme-sq" if index == 0 else f"nvme-sq{index}")
            for index in range(queues)]
        #: The device's internal media bandwidth, shared by every queue
        #: pair: at most ``model.parallelism`` commands in service at once.
        #: Only materialised for multi-queue devices — a single pair is
        #: bounded by its own service loops exactly as before, so the
        #: ``queues=1`` event stream stays byte-identical.
        self.bandwidth: Optional[Resource] = (
            Resource(sim, model.parallelism, name="nvme-bandwidth")
            if queues > 1 else None)
        #: QoS manager (a :class:`repro.qos.QosManager`) and per-queue
        #: weighted-fair schedulers.  Only materialised when the kernel
        #: was built with a QosConfig that arms WFQ; otherwise submission
        #: queues stay strict FIFO and behaviour is byte-identical to a
        #: device predating QoS.
        self.qos = qos
        self._wfq = None
        if qos is not None and qos.config.wfq:
            from repro.qos.shapers import WfqScheduler
            self._wfq = [WfqScheduler(qos.weight_of) for _ in range(queues)]
        #: Registered by the NVMe driver; invoked once per completion at the
        #: simulated completion instant.
        self.completion_handler: Optional[Callable[[NvmeCommand], None]] = None
        self.in_flight = 0
        self.completed = 0
        self.queue_in_flight: List[int] = [0] * queues
        self.queue_completed: List[int] = [0] * queues
        self.media_errors = 0
        self.timeouts = 0
        #: Volatile write cache; depth 0 keeps the device write-through
        #: and its behaviour byte-identical to a build without the cache.
        self.write_cache: Optional[WriteCache] = (
            WriteCache(media, cache_depth) if cache_depth > 0 else None)
        self.flushes = 0
        #: True after :meth:`power_loss`; submissions then raise
        #: :class:`PowerLossError` and in-flight commands complete with
        #: ``STATUS_POWER_FAIL`` without touching media.
        self.powered_off = False
        self.power_cycles = 0
        #: Optional :class:`repro.faults.FaultPlan` consulted once per
        #: command as it enters a service slot (transients/timeouts/spikes).
        self.fault_plan = None
        #: Controller watchdog, programmed by the driver (0 = disarmed):
        #: a command whose service would exceed this completes with
        #: ``STATUS_TIMEOUT`` after exactly ``command_timeout_ns``.
        self.command_timeout_ns = 0
        #: Fault injection: commands touching these LBAs complete with a
        #: non-zero status (media error) instead of moving data.
        self._failing_lbas: set = set()
        # One pair: parallelism service loops on the single queue (the
        # historical layout).  Multi-queue: every pair gets its own full
        # complement of loops so any one queue can use the whole device,
        # with the shared bandwidth resource enforcing the global bound.
        for queue in range(queues):
            for slot in range(model.parallelism):
                sim.spawn(self._service_loop(queue),
                          name=(f"nvme-slot-{slot}" if queues == 1
                                else f"nvme-q{queue}-slot-{slot}"))

    @property
    def submission_queue(self) -> Store:
        """The first (and, pre-multi-queue, only) submission queue."""
        return self.submission_queues[0]

    # -- fault injection -----------------------------------------------------

    def inject_media_error(self, lba: int, sectors: int = 1) -> None:
        """Make reads/writes touching [lba, lba+sectors) fail."""
        self._failing_lbas.update(range(lba, lba + sectors))

    def clear_media_errors(self) -> None:
        self._failing_lbas.clear()

    def _command_fails(self, command: NvmeCommand) -> bool:
        if not self._failing_lbas:
            return False
        return any(lba in self._failing_lbas
                   for lba in range(command.lba,
                                    command.lba + command.sectors))

    def submit(self, command: NvmeCommand) -> None:
        """Post a command to the submission queue (no CPU cost here; the
        driver charges its own submission cost)."""
        if self.powered_off:
            raise PowerLossError(
                f"submit to powered-off device: {command!r}")
        if command.complete_ns != -1:
            raise IoError(
                f"stale NVMe descriptor resubmitted without retarget: "
                f"{command!r}")
        queue = command.queue % self.queues
        command.queue = queue
        command.submit_ns = self.sim.now
        self.in_flight += 1
        self.queue_in_flight[queue] += 1
        if self.bus.enabled:
            self.bus.emit(obs_events.NVME_SUBMIT, self.sim.now,
                          opcode=command.opcode, lba=command.lba,
                          sectors=command.sectors, source=command.source,
                          driver_ns=command.driver_ns, span=command.span,
                          path=command.path, queue_depth=self.in_flight,
                          queue=queue)
        if self._wfq is not None:
            # WFQ arbitration: the command parks in the per-tenant fair
            # queue and a placeholder keeps the Store's wakeup semantics;
            # each freed service slot then dequeues the globally fairest
            # command rather than the oldest one.
            depth = self._wfq[queue].push(command.tenant, command,
                                          cost=max(1, command.sectors))
            self.qos.note_depth(queue, command.tenant, depth)
            self.submission_queues[queue].put(_WFQ_PLACEHOLDER)
        else:
            self.submission_queues[queue].put(command)

    @property
    def queue_depth(self) -> int:
        return self.in_flight

    def _service_loop(self, queue: int = 0):
        sq = self.submission_queues[queue]
        while True:
            command = yield sq.get()
            if command is _WFQ_PLACEHOLDER:
                # Pushes and placeholders are 1:1, so the fair queue is
                # never empty here.
                _tenant, command = self._wfq[queue].pop()
            grant = None
            if self.bandwidth is not None:
                # Multi-queue: admission to media is arbitrated across all
                # queue pairs; this pair's command waits for one of the
                # device's shared service units.
                grant = self.bandwidth.request()
                yield grant
            if command.opcode == "read":
                latency = self.model.sample_read(self.rng)
            elif command.opcode == "flush":
                latency = self.model.sample_flush(self.rng)
            else:
                latency = self.model.sample_write(self.rng)
            fault = None
            plan = self.fault_plan
            # Flushes are exempt from transient/timeout/spike draws; their
            # failure mode is the power cut checked at completion below.
            if plan is not None and command.opcode != "flush":
                fault = plan.media_decision(command, self.sim.now)
                if fault == "spike":
                    latency = max(1, int(latency * plan.spec.spike_factor))
                if self.command_timeout_ns and \
                        (fault == "timeout" or
                         latency >= self.command_timeout_ns):
                    # Timeout-faulted (or pathologically slow) commands
                    # hold their service slot until the watchdog fires,
                    # then complete with a timeout status and no data.
                    fault = "timeout"
                    latency = self.command_timeout_ns
                if fault is not None and self.bus.enabled:
                    self.bus.emit(obs_events.FAULT_INJECT, self.sim.now,
                                  kind=fault, opcode=command.opcode,
                                  lba=command.lba, sectors=command.sectors,
                                  source=command.source, span=command.span,
                                  path=command.path)
            yield self.sim.timeout(latency)
            if self.powered_off:
                # Power was cut while this command was in its service
                # slot: it never reached media.
                command.status = STATUS_POWER_FAIL
                command.data = None
            elif fault == "timeout":
                command.status = STATUS_TIMEOUT
                command.data = None
                self.timeouts += 1
            elif fault == "transient":
                command.status = STATUS_MEDIA_ERROR
                command.data = None
                self.media_errors += 1
            else:
                self._do_media(command)
            if grant is not None:
                self.bandwidth.release(grant)
            command.complete_ns = self.sim.now
            self.in_flight -= 1
            self.completed += 1
            self.queue_in_flight[queue] -= 1
            self.queue_completed[queue] += 1
            self.trace.record(
                TraceEntry(command.submit_ns, command.complete_ns,
                           command.opcode, command.lba, command.sectors,
                           command.source)
            )
            if self.bus.enabled:
                # service_ns is the sampled media time, excluding queue
                # wait, so layer attribution stays exact under queueing.
                self.bus.emit(
                    obs_events.NVME_COMPLETE, self.sim.now,
                    opcode=command.opcode, lba=command.lba,
                    sectors=command.sectors, source=command.source,
                    service_ns=latency,
                    queue_ns=command.complete_ns - command.submit_ns - latency,
                    status=command.status, span=command.span,
                    path=command.path, queue=queue)
            if command.opcode == "flush" and command.status == STATUS_OK:
                # The fault plan may schedule a power cut "right after the
                # k-th flush": flushed data is durable, everything written
                # to the cache afterwards is lost, and the handler below
                # resumes a workload that will trip over the dead device.
                if plan is not None and plan.power_loss_due(self.flushes):
                    self.power_loss(rng=plan.power_rng,
                                    tear=plan.spec.torn_write > 0)
            handler = self.completion_handler
            if handler is None:
                raise IoError("NVMe completion with no handler registered")
            handler(command)

    def _do_media(self, command: NvmeCommand) -> None:
        if command.opcode == "flush":
            flushed = self.write_cache.flush() \
                if self.write_cache is not None else 0
            self.flushes += 1
            if self.bus.enabled:
                self.bus.emit(obs_events.NVME_FLUSH, self.sim.now,
                              records=flushed, span=command.span,
                              path=command.path)
            return
        if self._command_fails(command):
            command.status = STATUS_MEDIA_ERROR
            command.data = None
            self.media_errors += 1
            return
        if command.opcode == "read":
            if self.write_cache is not None:
                data = self.write_cache.read(command.lba, command.sectors)
            else:
                data = self.media.read(command.lba, command.sectors)
            if len(data) != command.sectors * SECTOR_SIZE:
                raise IoError(
                    f"media returned {len(data)}B for "
                    f"{command.sectors}-sector read")
            command.data = data
        elif self.write_cache is not None and not command.fua:
            self.write_cache.write(command.lba, command.data)
        else:
            # FUA (or write-through device): straight to media.  The
            # journal only FUA-writes its own region, which data writes
            # never touch, so ordering against cached records is moot.
            self.media.write(command.lba, command.data)

    # -- power lifecycle -----------------------------------------------------

    def power_loss(self, rng: Optional[random.Random] = None,
                   tear: bool = False) -> dict:
        """Cut power: drop volatile cache contents (optionally tearing the
        oldest record) and refuse all further submissions."""
        info = {"dropped": 0, "torn_sectors": 0, "torn_lba": -1}
        if self.write_cache is not None:
            info = self.write_cache.power_loss(rng=rng, tear=tear)
        self.powered_off = True
        self.power_cycles += 1
        if self.bus.enabled:
            self.bus.emit(obs_events.POWER_LOSS, self.sim.now,
                          dropped=info["dropped"],
                          torn_sectors=info["torn_sectors"],
                          torn_lba=info["torn_lba"],
                          flushes=self.flushes)
        return info

    def power_on(self) -> None:
        """Bring the device back after a crash (cache is already empty)."""
        self.powered_off = False
