"""Storage device models.

* :mod:`~repro.device.blockdev` — the backing store: a sector-addressed,
  sparse in-memory block device.
* :mod:`~repro.device.latency` — per-generation service latency profiles for
  the four devices of the paper's Figure 1 (HDD, NAND SSD, first- and
  second-generation Optane).
* :mod:`~repro.device.nvme` — the NVMe device: submission/completion queues,
  bounded internal parallelism, interrupt delivery into the simulated kernel.
* :mod:`~repro.device.trace` — I/O trace recording for tests and debugging.
* :mod:`~repro.device.writecache` — the volatile write cache behind NVMe
  FLUSH/FUA semantics and power-loss injection.
"""

from repro.device.blockdev import BlockDevice
from repro.device.latency import (
    DEVICE_PROFILES,
    HDD,
    NAND_SSD,
    NVM_GEN1,
    NVM_GEN2,
    LatencyModel,
)
from repro.device.nvme import (
    NvmeCommand,
    NvmeDevice,
    STATUS_MEDIA_ERROR,
    STATUS_OK,
    STATUS_POWER_FAIL,
    STATUS_TIMEOUT,
)
from repro.device.trace import IoTrace, TraceEntry
from repro.device.writecache import CachedWrite, WriteCache

__all__ = [
    "BlockDevice",
    "CachedWrite",
    "DEVICE_PROFILES",
    "HDD",
    "IoTrace",
    "LatencyModel",
    "NAND_SSD",
    "NVM_GEN1",
    "NVM_GEN2",
    "NvmeCommand",
    "NvmeDevice",
    "STATUS_MEDIA_ERROR",
    "STATUS_OK",
    "STATUS_POWER_FAIL",
    "STATUS_TIMEOUT",
    "TraceEntry",
    "WriteCache",
]
