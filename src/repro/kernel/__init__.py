"""The simulated Linux storage stack.

Layer costs come from the paper's Table 1; the layers themselves really move
bytes: the extent file system maps file offsets to physical blocks, the BIO
layer splits I/Os across discontiguous extents, and the NVMe driver talks to
the device model and handles completion interrupts.  Hook points for the
paper's BPF-for-storage mechanism (`nvme_completion_hook`,
`syscall_read_hook`, ioctl handlers) are declared here and filled in by
:mod:`repro.core`, keeping the kernel ignorant of BPF exactly as the layering
in the paper prescribes.

Crash consistency lives in :mod:`repro.kernel.journal` (write-ahead
metadata journal + checkpoints) and :mod:`repro.kernel.recovery`
(mount-after-crash replay and the fsck invariant checker); the kernel's
``sys_fsync`` and ``crash``/``recover`` lifecycle tie them to the NVMe
device's volatile write cache.
"""

from repro.kernel.extent import Extent, ExtentTree
from repro.kernel.extfs import ExtFs
from repro.kernel.iouring import IoUring
from repro.kernel.journal import Journal, JournalConfig, serialize_fs
from repro.kernel.kernel import (
    ChainStatus,
    Kernel,
    KernelConfig,
    NvmeRetryPolicy,
    ReadResult,
)
from repro.kernel.layers import CostModel
from repro.kernel.process import File, Process
from repro.kernel.recovery import FsckReport, RecoveryReport, fsck, reload_fs

__all__ = [
    "ChainStatus",
    "CostModel",
    "Extent",
    "ExtentTree",
    "ExtFs",
    "File",
    "FsckReport",
    "IoUring",
    "Journal",
    "JournalConfig",
    "Kernel",
    "KernelConfig",
    "NvmeRetryPolicy",
    "Process",
    "ReadResult",
    "RecoveryReport",
    "fsck",
    "reload_fs",
    "serialize_fs",
]
