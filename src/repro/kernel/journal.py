"""Write-ahead metadata journal + on-media checkpoint for ExtFs.

Before this module, ExtFs metadata (namespace, inodes, extent trees) lived
only in Python objects: a crash lost everything.  The journal gives the
simulated file system the same durability contract ext4's jbd2 gives the
real one, in ordered mode:

* every metadata mutation appends logical **records** to an open
  transaction (create/mkdir/unlink/rename/alloc/punch/size);
* ``fsync`` makes transactions durable: FLUSH the device's volatile write
  cache first (so committed metadata never references non-durable data),
  then append each pending txn to the on-media journal region as one
  checksummed, FUA-written **frame**;
* recovery (:mod:`repro.kernel.recovery`) loads the last checkpoint and
  replays committed frames in sequence order, discarding anything torn or
  uncommitted.

On-media layout (all inside the region the allocator reserves)::

    block 0, sector 0   superblock — one sector, so it can never tear
    blocks [1, 1+J)     journal region: sequential txn frames
    blocks [1+J, +C)    checkpoint slot A
    blocks [1+J+C, +C)  checkpoint slot B
    blocks >= 1+J+2C    file data

A txn frame is sector-padded: a 20-byte header (magic ``JTXN``, seq u64,
payload length u32, payload CRC u32), the JSON-encoded records, zero
padding, and an 8-byte commit marker (magic ``JCMT`` + CRC over
seq/payload-CRC) occupying the frame's final bytes.  A frame torn at any
sector boundary loses its commit marker, so replay discards the txn —
write-ahead atomicity from sector-write atomicity.

Checkpoints serialise the whole metadata state into the inactive slot,
flip ``active_slot`` in the superblock (written last), truncate the
journal, and TRIM the freed frames — the TRIM is what makes checkpoints
observable through :class:`~repro.device.blockdev.BlockDevice` discard
counters.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.device.blockdev import SECTOR_SIZE, BlockDevice
from repro.errors import InvalidArgument, JournalCorrupt, NoSpace
from repro.obs import events as obs_events
from repro.obs.bus import NULL_BUS

__all__ = ["Journal", "JournalConfig", "serialize_fs"]

SECTORS_PER_BLOCK = 4096 // SECTOR_SIZE

TXN_MAGIC = b"JTXN"
COMMIT_MAGIC = b"JCMT"
SUPER_MAGIC = b"XSB1"
TXN_HEADER_LEN = 20   # magic + seq u64 + payload_len u32 + payload_crc u32
COMMIT_LEN = 8        # magic + crc u32


@dataclass(frozen=True)
class JournalConfig:
    """Sizing and commit-policy knobs for the metadata journal."""

    #: File-system blocks reserved for the txn log.
    journal_blocks: int = 64
    #: Blocks per checkpoint slot (two slots are reserved).
    checkpoint_blocks: int = 64
    #: Checkpoint after this many committed txns (0 = only when the log
    #: fills or on an explicit ``ExtFs.checkpoint_sync``).
    checkpoint_every_txns: int = 0
    #: Commit pending txns at the end of every mutating syscall instead of
    #: batching until fsync.  Meant for write-through devices (cache depth
    #: 0), where it makes every completed operation fully durable — the
    #: "a crash loses nothing" configuration.
    sync_commit: bool = False

    def __post_init__(self) -> None:
        if self.journal_blocks < 1 or self.checkpoint_blocks < 1:
            raise InvalidArgument("journal/checkpoint need >= 1 block each")
        if self.checkpoint_every_txns < 0:
            raise InvalidArgument("checkpoint_every_txns must be >= 0")


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _encode_json(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def serialize_fs(fs) -> Dict[str, Any]:
    """Serialise an ExtFs's metadata (namespace + inodes + extents).

    Duck-typed so this module needs no import of :mod:`repro.kernel.extfs`.
    """
    inodes: List[Dict[str, Any]] = []
    tree: List[List[Any]] = []
    stack = [fs.root]
    while stack:
        inode = stack.pop()
        inodes.append({
            "ino": inode.number,
            "dir": 1 if inode.is_dir else 0,
            "size": inode.size,
            "extents": [[e.file_block, e.phys_block, e.count]
                        for e in inode.extents],
        })
        if inode.is_dir:
            for name in sorted(inode.entries):
                child = inode.entries[name]
                tree.append([inode.number, name, child.number])
                stack.append(child)
    inodes.sort(key=lambda row: row["ino"])
    return {"version": 1, "next_ino": fs._next_ino, "inodes": inodes,
            "tree": tree}


class Journal:
    """The txn log bound to one media device, plus checkpoint plumbing."""

    def __init__(self, media: BlockDevice, config: JournalConfig):
        self.media = media
        self.config = config
        self.journal_start = SECTORS_PER_BLOCK  # sector after superblock
        self.journal_sectors = config.journal_blocks * SECTORS_PER_BLOCK
        self.ckpt_sectors = config.checkpoint_blocks * SECTORS_PER_BLOCK
        self.slot_start = (
            self.journal_start + self.journal_sectors,
            self.journal_start + self.journal_sectors + self.ckpt_sectors,
        )
        #: Blocks the allocator must keep away from file data.
        self.reserved_blocks = (1 + config.journal_blocks +
                                2 * config.checkpoint_blocks)
        if self.reserved_blocks * SECTORS_PER_BLOCK >= media.capacity_sectors:
            raise InvalidArgument("device too small for the journal layout")
        # -- volatile state -------------------------------------------------
        self.next_seq = 1
        self.head_sector = 0          # next free sector within the region
        self.active_slot = 0
        self.ckpt_seq = 0
        self._pending: List[Tuple[int, List[Dict[str, Any]]]] = []
        self._txn_depth = 0
        self._txn_records: List[Dict[str, Any]] = []
        self._txns_since_checkpoint = 0
        # -- counters / observability --------------------------------------
        self.txns_committed = 0
        self.checkpoints = 0
        self.bytes_written = 0
        self.bus = NULL_BUS
        self.clock: Callable[[], int] = lambda: 0
        #: Called (no arguments) after pending txns become durable — by
        #: commit or by checkpoint absorption.  ExtFs hooks this to
        #: release punched blocks back to the allocator: freed blocks must
        #: never be reused before the txn that freed them is durable, or a
        #: rolled-back truncate would recover pointing at reused blocks.
        self.commit_listeners: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Transaction accumulation (called by ExtFs mutations)
    # ------------------------------------------------------------------

    @property
    def in_txn(self) -> bool:
        return self._txn_depth > 0

    @property
    def pending_txns(self) -> int:
        return len(self._pending)

    def begin(self) -> None:
        self._txn_depth += 1

    def log(self, record: Dict[str, Any]) -> None:
        if self._txn_depth == 0:
            raise InvalidArgument("journal record outside a transaction")
        self._txn_records.append(record)

    def end(self) -> None:
        if self._txn_depth == 0:
            raise InvalidArgument("journal txn end without begin")
        self._txn_depth -= 1
        if self._txn_depth == 0 and self._txn_records:
            self._pending.append((self.next_seq, self._txn_records))
            self.next_seq += 1
            self._txn_records = []

    # ------------------------------------------------------------------
    # Commit: pending txns -> on-media frames
    # ------------------------------------------------------------------

    @staticmethod
    def _frame_sectors(payload_len: int) -> int:
        raw = TXN_HEADER_LEN + payload_len + COMMIT_LEN
        return (raw + SECTOR_SIZE - 1) // SECTOR_SIZE

    def encode_txn(self, seq: int, records: List[Dict[str, Any]]) -> bytes:
        payload = _encode_json(records)
        payload_crc = _crc(payload)
        sectors = self._frame_sectors(len(payload))
        frame = bytearray(sectors * SECTOR_SIZE)
        frame[0:4] = TXN_MAGIC
        frame[4:12] = seq.to_bytes(8, "little")
        frame[12:16] = len(payload).to_bytes(4, "little")
        frame[16:20] = payload_crc.to_bytes(4, "little")
        frame[TXN_HEADER_LEN : TXN_HEADER_LEN + len(payload)] = payload
        marker = COMMIT_MAGIC + _crc(
            seq.to_bytes(8, "little") +
            payload_crc.to_bytes(4, "little")).to_bytes(4, "little")
        frame[-COMMIT_LEN:] = marker
        return bytes(frame)

    def encode_pending(self) -> List[Tuple[int, bytes]]:
        """Pending txns as ``(lba, frame)`` writes at the current head.

        Pure: commits nothing — the kernel issues the FUA writes (timed)
        and then calls :meth:`note_committed`; ``commit_sync`` does both
        untimed.  Raises :class:`NoSpace` when the frames do not fit (the
        caller checkpoints first, which empties the log).
        """
        frames: List[Tuple[int, bytes]] = []
        head = self.head_sector
        for seq, records in self._pending:
            frame = self.encode_txn(seq, records)
            sectors = len(frame) // SECTOR_SIZE
            if head + sectors > self.journal_sectors:
                raise NoSpace("journal region full; checkpoint required")
            frames.append((self.journal_start + head, frame))
            head += sectors
        return frames

    def fits_pending(self) -> bool:
        head = self.head_sector
        for _seq, records in self._pending:
            head += self._frame_sectors(len(_encode_json(records)))
        return head <= self.journal_sectors

    def checkpoint_due(self) -> bool:
        every = self.config.checkpoint_every_txns
        return every > 0 and self._txns_since_checkpoint >= every

    def note_committed(self, frames: List[Tuple[int, bytes]]) -> None:
        """Bookkeeping after the frames reached media durably."""
        if not self._pending:
            return
        committed = len(self._pending)
        last_seq = self._pending[-1][0]
        total = sum(len(frame) for _lba, frame in frames)
        self.head_sector += total // SECTOR_SIZE
        self.txns_committed += committed
        self._txns_since_checkpoint += committed
        self.bytes_written += total
        self._pending.clear()
        if self.bus.enabled:
            self.bus.emit(obs_events.JOURNAL_COMMIT, self.clock(),
                          txns=committed, frames=len(frames),
                          bytes=total, seq=last_seq)
        for listener in self.commit_listeners:
            listener()

    def commit_sync(self) -> int:
        """Commit pending txns straight to media (untimed setup paths)."""
        if not self._pending:
            return 0
        frames = self.encode_pending()
        for lba, frame in frames:
            self.media.write(lba, frame)
        committed = len(self._pending)
        self.note_committed(frames)
        return committed

    # ------------------------------------------------------------------
    # Superblock + checkpoint
    # ------------------------------------------------------------------

    def _superblock_payload(self, ckpt_len: int, ckpt_crc: int) -> bytes:
        return _encode_json({
            "version": 1,
            "journal_blocks": self.config.journal_blocks,
            "checkpoint_blocks": self.config.checkpoint_blocks,
            "active_slot": self.active_slot,
            "ckpt_len": ckpt_len,
            "ckpt_crc": ckpt_crc,
            "ckpt_seq": self.ckpt_seq,
        })

    def write_superblock(self, ckpt_len: int, ckpt_crc: int) -> None:
        payload = self._superblock_payload(ckpt_len, ckpt_crc)
        if len(payload) + 12 > SECTOR_SIZE:
            raise NoSpace("superblock payload exceeds one sector")
        sector = bytearray(SECTOR_SIZE)
        sector[0:4] = SUPER_MAGIC
        sector[4:8] = len(payload).to_bytes(4, "little")
        sector[8:12] = _crc(payload).to_bytes(4, "little")
        sector[12 : 12 + len(payload)] = payload
        self.media.write(0, bytes(sector))

    def read_superblock(self) -> Dict[str, Any]:
        sector = self.media.read(0, 1)
        if sector[0:4] != SUPER_MAGIC:
            raise JournalCorrupt("superblock magic missing")
        length = int.from_bytes(sector[4:8], "little")
        crc = int.from_bytes(sector[8:12], "little")
        payload = sector[12 : 12 + length]
        if len(payload) != length or _crc(payload) != crc:
            raise JournalCorrupt("superblock checksum mismatch")
        return json.loads(payload.decode("utf-8"))

    def checkpoint_sync(self, state: Dict[str, Any]) -> None:
        """Serialise ``state`` to the inactive slot and truncate the log.

        Untimed maintenance (the kjournald analogue): runs atomically at a
        simulation instant, so no crash point falls inside it; the slot
        flip + superblock-written-last ordering is kept anyway, as the
        protocol recovery relies on.  Pending (never-committed) txns are
        absorbed by the checkpoint — their effects are in ``state``.
        """
        payload = _encode_json(state)
        if len(payload) > self.ckpt_sectors * SECTOR_SIZE:
            raise NoSpace(
                f"checkpoint needs {len(payload)}B, slot holds "
                f"{self.ckpt_sectors * SECTOR_SIZE}B")
        target = 1 - self.active_slot
        padded_len = ((len(payload) + SECTOR_SIZE - 1)
                      // SECTOR_SIZE) * SECTOR_SIZE
        self.media.write(self.slot_start[target],
                         payload.ljust(padded_len, b"\x00"))
        # The checkpoint covers everything assigned so far, including
        # still-pending txns, which are dropped rather than committed.
        self.active_slot = target
        self.ckpt_seq = self.next_seq - 1
        self._pending.clear()
        self.write_superblock(len(payload), _crc(payload))
        if self.head_sector:
            self.media.discard(self.journal_start, self.head_sector)
        trimmed = self.head_sector
        self.head_sector = 0
        self._txns_since_checkpoint = 0
        self.checkpoints += 1
        if self.bus.enabled:
            self.bus.emit(obs_events.JOURNAL_CHECKPOINT, self.clock(),
                          seq=self.ckpt_seq, bytes=len(payload),
                          trimmed_sectors=trimmed)
        for listener in self.commit_listeners:
            listener()

    def read_checkpoint(self, superblock: Dict[str, Any]) -> Dict[str, Any]:
        slot = superblock["active_slot"]
        length = superblock["ckpt_len"]
        sectors = max(1, (length + SECTOR_SIZE - 1) // SECTOR_SIZE)
        raw = self.media.read(self.slot_start[slot], sectors)[:length]
        if len(raw) != length or _crc(raw) != superblock["ckpt_crc"]:
            raise JournalCorrupt("checkpoint checksum mismatch")
        return json.loads(raw.decode("utf-8"))

    # ------------------------------------------------------------------
    # Scan (recovery + fsck)
    # ------------------------------------------------------------------

    def scan(self) -> Tuple[List[Tuple[int, List[Dict[str, Any]]]],
                            int, int]:
        """Parse committed txns from the on-media log.

        Returns ``(txns, discarded, end_sector)``: txns as
        ``(seq, records)`` in log order, the count of trailing
        torn/uncommitted frames dropped, and the region-relative sector
        just past the last valid frame (the post-recovery log head).
        The scan stops at the first sector that is not a valid frame head
        (TRIMmed space reads as zeroes), at a bad checksum, at a missing
        commit marker, or at a non-monotonic sequence number.
        """
        txns: List[Tuple[int, List[Dict[str, Any]]]] = []
        discarded = 0
        sector = 0
        last_seq = self.ckpt_seq
        while sector < self.journal_sectors:
            head = self.media.read(self.journal_start + sector, 1)
            if head[0:4] != TXN_MAGIC:
                break
            seq = int.from_bytes(head[4:12], "little")
            payload_len = int.from_bytes(head[12:16], "little")
            payload_crc = int.from_bytes(head[16:20], "little")
            sectors = self._frame_sectors(payload_len)
            if sector + sectors > self.journal_sectors or seq <= last_seq:
                discarded += 1
                break
            frame = self.media.read(self.journal_start + sector, sectors)
            marker = COMMIT_MAGIC + _crc(
                seq.to_bytes(8, "little") +
                payload_crc.to_bytes(4, "little")).to_bytes(4, "little")
            payload = frame[TXN_HEADER_LEN : TXN_HEADER_LEN + payload_len]
            if frame[-COMMIT_LEN:] != marker or _crc(payload) != payload_crc:
                discarded += 1       # torn or corrupt: never committed
                break
            try:
                records = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                discarded += 1
                break
            txns.append((seq, records))
            last_seq = seq
            sector += sectors
        return txns, discarded, sector
