"""Extent trees: the file-block → physical-block mapping.

An extent maps a contiguous run of logical file blocks to a contiguous run
of physical blocks, exactly like ext4 extents.  The tree keeps extents
sorted and merged; every mutation bumps a version counter and reports
whether any previously mapped block was *unmapped or moved* — the event
class the paper's §4 invalidation protocol cares about (growing a file
without moving blocks does not invalidate the NVMe-layer cache, because the
cached translations remain valid).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import InvalidArgument

__all__ = ["Extent", "ExtentTree"]


@dataclass(frozen=True)
class Extent:
    """``count`` file blocks starting at ``file_block`` live at ``phys_block``."""

    file_block: int
    phys_block: int
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise InvalidArgument("extent count must be >= 1")
        if self.file_block < 0 or self.phys_block < 0:
            raise InvalidArgument("extent blocks must be non-negative")

    @property
    def file_end(self) -> int:
        return self.file_block + self.count

    def covers(self, file_block: int) -> bool:
        return self.file_block <= file_block < self.file_end

    def translate(self, file_block: int) -> int:
        if not self.covers(file_block):
            raise InvalidArgument(
                f"block {file_block} outside extent [{self.file_block}, "
                f"{self.file_end})"
            )
        return self.phys_block + (file_block - self.file_block)


class ExtentTree:
    """A sorted, merged collection of non-overlapping extents."""

    def __init__(self):
        self._extents: List[Extent] = []
        #: Bumped on every mapping mutation.
        self.version = 0
        #: Count of mutations that unmapped or moved an existing block.
        self.unmap_events = 0

    def __len__(self) -> int:
        return len(self._extents)

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._extents)

    def extents(self) -> List[Extent]:
        return list(self._extents)

    def mapped_blocks(self) -> int:
        return sum(extent.count for extent in self._extents)

    def _find(self, file_block: int) -> Optional[int]:
        """Index of the extent covering ``file_block``, or None."""
        index = bisect.bisect_right(
            [extent.file_block for extent in self._extents], file_block
        ) - 1
        if index >= 0 and self._extents[index].covers(file_block):
            return index
        return None

    def lookup(self, file_block: int) -> Optional[int]:
        """Physical block for ``file_block``, or None if unmapped (a hole)."""
        index = self._find(file_block)
        if index is None:
            return None
        return self._extents[index].translate(file_block)

    def add(self, extent: Extent) -> None:
        """Map new blocks; the range must currently be unmapped."""
        for block in (extent.file_block, extent.file_end - 1):
            if self._find(block) is not None:
                raise InvalidArgument(
                    f"extent overlaps existing mapping at block {block}"
                )
        for existing in self._extents:
            if (existing.file_block < extent.file_end and
                    extent.file_block < existing.file_end):
                raise InvalidArgument("extent overlaps existing mapping")
        index = bisect.bisect_right(
            [existing.file_block for existing in self._extents],
            extent.file_block,
        )
        self._extents.insert(index, extent)
        self._merge_around(extent.file_block)
        self.version += 1

    def _merge_around(self, file_block: int) -> None:
        """Coalesce physically contiguous neighbours."""
        merged: List[Extent] = []
        for extent in self._extents:
            if merged:
                last = merged[-1]
                if (last.file_end == extent.file_block and
                        last.phys_block + last.count == extent.phys_block):
                    merged[-1] = Extent(last.file_block, last.phys_block,
                                        last.count + extent.count)
                    continue
            merged.append(extent)
        self._extents = merged

    def punch(self, file_block: int, count: int) -> List[Extent]:
        """Unmap ``count`` blocks from ``file_block``; returns freed pieces.

        This is the §4 invalidation trigger: any successful punch is an
        unmap event.
        """
        if count < 1:
            raise InvalidArgument("punch count must be >= 1")
        punched: List[Extent] = []
        remaining: List[Extent] = []
        lo, hi = file_block, file_block + count
        for extent in self._extents:
            if extent.file_end <= lo or extent.file_block >= hi:
                remaining.append(extent)
                continue
            cut_lo = max(extent.file_block, lo)
            cut_hi = min(extent.file_end, hi)
            punched.append(
                Extent(cut_lo, extent.translate(cut_lo), cut_hi - cut_lo)
            )
            if extent.file_block < cut_lo:
                remaining.append(
                    Extent(extent.file_block, extent.phys_block,
                           cut_lo - extent.file_block)
                )
            if cut_hi < extent.file_end:
                remaining.append(
                    Extent(cut_hi, extent.translate(cut_hi),
                           extent.file_end - cut_hi)
                )
        if punched:
            self._extents = sorted(remaining, key=lambda e: e.file_block)
            self.version += 1
            self.unmap_events += 1
        return punched

    def map_range(self, file_block: int, count: int
                  ) -> List[Tuple[int, int]]:
        """Translate a block range into ``(phys_block, count)`` segments.

        Raises if any block in the range is a hole.  Adjacent physical
        segments are coalesced, so the result length is the number of
        discontiguous pieces — the BIO layer splits when it exceeds 1.
        """
        if count < 1:
            raise InvalidArgument("map_range count must be >= 1")
        segments: List[Tuple[int, int]] = []
        block = file_block
        end = file_block + count
        while block < end:
            index = self._find(block)
            if index is None:
                raise InvalidArgument(f"file block {block} is unmapped")
            extent = self._extents[index]
            take = min(end, extent.file_end) - block
            phys = extent.translate(block)
            if segments and segments[-1][0] + segments[-1][1] == phys:
                segments[-1] = (segments[-1][0], segments[-1][1] + take)
            else:
                segments.append((phys, take))
            block += take
        return segments
