"""Process contexts and open-file descriptions.

A :class:`Process` owns a file-descriptor table; simulated application
threads run syscalls against the kernel under a process identity, which is
also what the per-process chained-resubmission accounting of §4 keys on.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import BadFileDescriptor
from repro.kernel.extfs import Inode

__all__ = ["File", "Process"]


class File:
    """An open file description (what an fd points at).

    ``bpf_install`` is the per-descriptor BPF attachment slot used by the
    storage hooks (populated by :mod:`repro.core` through the install
    ioctl); the kernel itself never interprets it.
    """

    def __init__(self, inode: Inode, flags: int = 0, path: str = ""):
        self.inode = inode
        self.flags = flags
        self.path = path
        self.bpf_install: Optional[Any] = None

    def __repr__(self) -> str:
        return f"File({self.path!r}, ino={self.inode.number})"


class Process:
    """A process: pid, name, descriptor table, and tenant identity.

    ``tenant`` (a :class:`repro.qos.Tenant`, or ``None`` for untenanted
    processes) is the isolation domain the process charges its I/O to:
    fairness accounting, WFQ arbitration, and admission control all key
    on it.  Processes of one tenant come and go — per-connection target
    processes especially — while the tenant's accounting persists.
    """

    def __init__(self, pid: int, name: str = "", tenant: Optional[Any] = None):
        self.pid = pid
        self.name = name or f"proc-{pid}"
        self.tenant = tenant
        self._fds: Dict[int, File] = {}
        self._next_fd = 3  # 0-2 reserved, as tradition demands

    def install_fd(self, file: File) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = file
        return fd

    def file(self, fd: int) -> File:
        if fd not in self._fds:
            raise BadFileDescriptor(f"fd {fd} in {self.name}")
        return self._fds[fd]

    def close_fd(self, fd: int) -> File:
        if fd not in self._fds:
            raise BadFileDescriptor(f"fd {fd} in {self.name}")
        return self._fds.pop(fd)

    def open_fds(self) -> int:
        return len(self._fds)
