"""io_uring: batched asynchronous submission/completion rings.

Models the essentials the paper leans on in Figure 3d: one
``io_uring_enter`` call submits a batch of SQEs, paying the user/kernel
crossing once, but **every** submitted I/O still walks the file system, BIO,
and driver layers (this is the paper's point — io_uring amortises crossings,
not the stack).  Completions arrive over interrupts into the CQ; the
reaping thread blocks until ``wait_nr`` CQEs are available.

Tagged SQEs (BPF chains) are dispatched through the chain submitter that
:mod:`repro.core` installs; their CQE is posted only when the chain finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.device import NvmeCommand
from repro.errors import InvalidArgument, IoError
from repro.kernel.kernel import IoCookie, Kernel, ReadResult
from repro.kernel.process import Process
from repro.obs import events as obs_events

__all__ = ["Cqe", "IoUring", "Sqe"]


@dataclass
class Sqe:
    """One submission-queue entry (reads only; that is all the paper uses).

    ``args`` and ``scratch_init`` parameterise a tagged BPF chain per
    submission (e.g. the lookup key), mirroring XRP's per-call context.
    """

    fd: int
    offset: int
    length: int
    user_data: Any = None
    tagged: bool = False
    args: tuple = ()
    scratch_init: bytes = b""


@dataclass
class Cqe:
    """One completion-queue entry."""

    user_data: Any
    result: ReadResult


class IoUring:
    """A per-process ring pair bound to one kernel."""

    def __init__(self, kernel: Kernel, proc: Process, queue_depth: int = 256):
        if queue_depth < 1:
            raise InvalidArgument("queue depth must be >= 1")
        self.kernel = kernel
        self.proc = proc
        self.queue_depth = queue_depth
        self._sq: List[Sqe] = []
        self._cq: List[Cqe] = []
        self._waiter = None
        self._in_flight = 0
        #: Chain submitter installed by repro.core: generator
        #: fn(proc, file, sqe, post_cqe) scheduling a tagged chain.
        self.chain_submitter: Optional[Callable] = None

    # -- user-space side -------------------------------------------------

    def prep_read(self, fd: int, offset: int, length: int,
                  user_data: Any = None, tagged: bool = False,
                  args: tuple = (), scratch_init: bytes = b"") -> None:
        """Queue an SQE (no kernel involvement until enter())."""
        if len(self._sq) + self._in_flight >= self.queue_depth:
            raise InvalidArgument("submission queue full")
        self._sq.append(Sqe(fd, offset, length, user_data, tagged, args,
                            scratch_init))

    def sq_pending(self) -> int:
        return len(self._sq)

    def cq_ready(self) -> int:
        return len(self._cq)

    def enter(self, wait_nr: int = 0):
        """Submit all queued SQEs and wait for ``wait_nr`` completions.

        Generator (run inside a simulated thread).  Returns the list of
        reaped CQEs (everything available once ``wait_nr`` was reached).
        """
        kernel = self.kernel
        cost = kernel.cost
        sim = kernel.sim
        bus = kernel.bus
        submitted, self._sq = self._sq, []
        kernel.syscall_count += 1

        # One boundary crossing + ring bookkeeping for the whole batch.
        yield from kernel.cpus.run_thread(cost.kernel_crossing_ns +
                                          cost.iouring_enter_ns)
        if bus.enabled:
            bus.emit(obs_events.SYSCALL_ENTER, sim.now, op="io_uring_enter",
                     pid=self.proc.pid, crossing_ns=cost.kernel_crossing_ns,
                     syscall_ns=0, uring_ns=cost.iouring_enter_ns,
                     path="uring", span=0, batch=len(submitted))

        for sqe in submitted:
            file = self.proc.file(sqe.fd)
            yield from kernel.cpus.run_thread(cost.iouring_sqe_ns)
            if sqe.tagged and self.chain_submitter is not None and \
                    file.bpf_install is not None:
                if bus.enabled:
                    bus.emit(obs_events.SYSCALL_ENTER, sim.now,
                             op="uring_sqe", pid=self.proc.pid,
                             crossing_ns=0, syscall_ns=0,
                             uring_ns=cost.iouring_sqe_ns, path="chain",
                             span=0)
                self._in_flight += 1
                yield from self.chain_submitter(self.proc, file, sqe,
                                                self._post_cqe)
                continue
            # Normal async path: fs -> bio -> driver, completion by IRQ.
            span = 0
            if bus.enabled:
                span = bus.span_start("uring_sqe", sim.now,
                                      pid=self.proc.pid, path="uring")
                bus.emit(obs_events.SYSCALL_ENTER, sim.now, op="uring_sqe",
                         pid=self.proc.pid, crossing_ns=0, syscall_ns=0,
                         uring_ns=cost.iouring_sqe_ns, path="uring",
                         span=span)
            yield from kernel.cpus.run_thread(cost.filesystem_ns)
            segments = kernel.fs.map_range(file.inode, sqe.offset, sqe.length,
                                           span=span, path="uring")
            yield from kernel.cpus.run_thread(cost.bio_ns)
            if bus.enabled:
                bus.emit(obs_events.BIO_SUBMIT, sim.now, cpu_ns=cost.bio_ns,
                         segments=len(segments), span=span, path="uring")
                if len(segments) > 1:
                    bus.emit(obs_events.BIO_SPLIT, sim.now,
                             segments=len(segments), span=span, path="uring")
            self._in_flight += 1
            state = _SqeState(self, sqe, len(segments), span=span)
            # All of this ring's plain I/O rides the submitter's queue
            # pair; tagged chains pick the same pair inside the chain
            # engine (both key off the owning process).
            queue = kernel.queue_for(self.proc)
            for lba, sectors in segments:
                yield from kernel.cpus.run_thread(cost.nvme_driver_ns)
                event = sim.event()
                event.add_callback(state.segment_done)
                command = NvmeCommand("read", lba, sectors,
                                      cookie=IoCookie("irq", event=event),
                                      queue=queue)
                if bus.enabled:
                    command.span = span
                    command.path = "uring"
                    command.driver_ns = cost.nvme_driver_ns
                kernel.device.submit(command)

        if wait_nr > len(self._cq) + self._in_flight:
            raise IoError(
                f"waiting for {wait_nr} completions but only "
                f"{len(self._cq) + self._in_flight} outstanding")

        while len(self._cq) < wait_nr:
            self._waiter = sim.event()
            yield self._waiter
            self._waiter = None
        if wait_nr > 0:
            # Woken by the completion IRQ: pay the schedule-in cost, then
            # the (batched) reap cost per CQE.
            yield from kernel.cpus.run_thread(cost.context_switch_ns)
            if bus.enabled:
                bus.emit(obs_events.CONTEXT_SWITCH, sim.now,
                         cpu_ns=cost.context_switch_ns, span=0, path="uring")
        reaped, self._cq = self._cq, []
        if reaped:
            yield from kernel.cpus.run_thread(cost.iouring_reap_ns *
                                              len(reaped))
            if bus.enabled:
                bus.emit(obs_events.SYSCALL_ENTER, sim.now, op="uring_reap",
                         pid=self.proc.pid, crossing_ns=0, syscall_ns=0,
                         uring_ns=cost.iouring_reap_ns * len(reaped),
                         path="uring", span=0, batch=len(reaped))
        return reaped

    # -- kernel side -------------------------------------------------------

    def _post_cqe(self, user_data: Any, result: ReadResult) -> None:
        """Called (in IRQ context) when an I/O or chain finishes."""
        self._cq.append(Cqe(user_data, result))
        self._in_flight -= 1
        if self._waiter is not None and not self._waiter.triggered:
            waiter, self._waiter = self._waiter, None
            waiter.succeed()


class _SqeState:
    """Tracks a (possibly split) normal SQE until all segments complete."""

    def __init__(self, ring: IoUring, sqe: Sqe, segment_count: int,
                 span: int = 0):
        self.ring = ring
        self.sqe = sqe
        self.remaining = segment_count
        self.chunks: List[bytes] = []
        self.failed = False
        self.span = span

    def _close_span(self, status: str) -> None:
        if self.span:
            kernel = self.ring.kernel
            kernel.bus.span_end(self.span, kernel.sim.now, status=status)

    def segment_done(self, event) -> None:
        command = event.value
        if command.status != 0:
            self.failed = True
        self.chunks.append(command.data)
        self.remaining -= 1
        if self.remaining == 0:
            if self.failed:
                self._close_span(ReadResult.EIO)
                self.ring._post_cqe(self.sqe.user_data,
                                    ReadResult(b"", status=ReadResult.EIO,
                                               final_offset=self.sqe.offset))
                return
            data = b"".join(self.chunks)
            self._close_span(ReadResult.OK)
            self.ring._post_cqe(self.sqe.user_data,
                                ReadResult(data,
                                           final_offset=self.sqe.offset))
