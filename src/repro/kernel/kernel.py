"""The kernel proper: syscall layer, read/write data paths, IRQ handling.

The kernel wires the pieces together — CPU cores, cost model, file system,
NVMe device — and implements the three dispatch paths of the paper's
Figure 2:

* the **normal path**: ``sys_pread`` descends syscall → ext4 → BIO → driver,
  then either polls (microsecond devices; the thread burns its core for the
  whole round trip, which is why the Figure 3 baseline saturates six cores
  with six threads) or blocks and is woken by the completion IRQ;
* the **syscall-dispatch hook**: after each completed read, a registered
  hook may ask for a reissue at a new offset without returning to user
  space (saves the boundary crossing and the app-side processing per hop);
* the **NVMe-driver hook**: tagged reads hand their completions to a chain
  handler that runs in interrupt context (installed by :mod:`repro.core`),
  which can recycle the command straight back to the device.

The kernel knows nothing about BPF: it only exposes the two hook slots and
an ioctl-handler registry that :mod:`repro.core` fills in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.device import (
    BlockDevice,
    IoTrace,
    LatencyModel,
    NvmeCommand,
    NvmeDevice,
    STATUS_POWER_FAIL,
    STATUS_TIMEOUT,
)
from repro.errors import InvalidArgument, IoError, PowerLossError
from repro.faults import FaultPlan, FaultSpec, get_default_fault_spec
from repro.kernel.extfs import ExtFs
from repro.kernel.journal import JournalConfig
from repro.kernel.layers import CostModel
from repro.kernel.process import File, Process
from repro.obs import events as obs_events
from repro.obs.bus import TraceBus, get_default_bus
from repro.qos import QosConfig, QosManager, Tenant
from repro.sim import CpuSet, RandomStreams, Resource, Simulator

__all__ = ["ChainStatus", "IoCookie", "Kernel", "KernelConfig",
           "NvmeRetryPolicy", "ReadResult"]


@dataclass(frozen=True)
class NvmeRetryPolicy:
    """The NVMe driver's error-recovery policy.

    Armed automatically when a kernel is built with a fault plan (and
    configurable independently).  The driver resubmits a failed command up
    to ``max_retries`` times, sleeping an exponentially growing backoff
    (charged as *simulated* time) between attempts; the per-command
    timeout is programmed into the device's controller watchdog so a
    swallowed command still completes — with ``STATUS_TIMEOUT`` — instead
    of hanging the stack.
    """

    max_retries: int = 4
    #: Controller watchdog; None derives ~20x the device read latency.
    timeout_ns: Optional[int] = None
    backoff_base_ns: int = 2_000
    backoff_multiplier: float = 2.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise InvalidArgument("max_retries must be >= 0")
        if self.backoff_base_ns < 0 or self.backoff_multiplier < 1.0:
            raise InvalidArgument("bad backoff parameters")

    def backoff_ns(self, attempt: int) -> int:
        """Backoff before retry ``attempt`` (1-based), exponential."""
        return int(self.backoff_base_ns *
                   self.backoff_multiplier ** (attempt - 1))

    def resolve_timeout_ns(self, model: LatencyModel) -> int:
        if self.timeout_ns is not None:
            return self.timeout_ns
        return 20 * max(model.read_ns, model.write_ns)


@dataclass
class KernelConfig:
    """Knobs for building a simulated machine."""

    cores: int = 6
    cost_model: CostModel = field(default_factory=CostModel)
    capacity_sectors: int = 4 * 1024 * 1024  # 2 GiB
    seed: int = 0
    trace_device: bool = False
    #: Blocks per extent cap for the allocator (small values force
    #: fragmented files and exercise the BIO split fallback).
    max_extent_blocks: int = 32768
    #: Scatter allocations randomly across free runs (fragmentation knob).
    scatter_allocations: bool = False
    #: Tracepoint bus; None picks up the process default (NULL_BUS unless
    #: an ObsSession is active), keeping tracing off-by-default-cheap.
    bus: Optional[TraceBus] = None
    #: Fault plan spec; None picks up the process default installed by
    #: ``repro.faults.fault_injection`` (no plan unless one is active).
    fault_plan: Optional[FaultSpec] = None
    #: NVMe driver retry policy; None arms the default policy exactly
    #: when a fault plan is present, leaving the fault-free fast path
    #: byte-identical to a build without this subsystem.
    retry: Optional[NvmeRetryPolicy] = None
    #: Volatile write-cache depth (records) on the NVMe device.  0 keeps
    #: the pre-crash-consistency write-through behaviour — and the
    #: byte-identical traces that go with it.
    write_cache_depth: int = 0
    #: Metadata journal configuration; None runs the file system without
    #: durability (crash recovery then being impossible, as before).
    journal: Optional[JournalConfig] = None
    #: NVMe submission/completion queue pairs.  1 (the default) keeps the
    #: historical single-pair device and its byte-identical traces; N > 1
    #: gives each pair its own service loops sharing the device bandwidth,
    #: with I/Os steered by submitter pid (``Kernel.queue_for``).
    queue_pairs: int = 1
    #: Steer each queue pair's completion interrupts to the CPU core that
    #: owns the pair (core ``queue % cores``), serialising that pair's
    #: completion-side work on its core the way a bound IRQ vector does.
    #: None (default) enables steering exactly when ``queue_pairs > 1``;
    #: pass True to model a bound vector even for a single pair (all
    #: completion work then funnels through one core — the contention the
    #: ``scale`` experiment measures), or False to keep completions on the
    #: shared run queue.
    irq_steering: Optional[bool] = None
    #: Multi-tenant QoS policy (:class:`repro.qos.QosConfig`).  None — the
    #: default — builds no QoS machinery at all: no manager, no WFQ
    #: arbitration, no admission buckets, and byte-identical behaviour to
    #: a kernel predating the subsystem.
    qos: Optional[QosConfig] = None


class ChainStatus(str, enum.Enum):
    """Typed status of a (possibly chained) read.

    Values are the historical status strings, and the class mixes in
    ``str``, so comparisons against both the old ``ReadResult.OK``-style
    aliases and bare literals (``result.status == "eextent"``) keep
    working, and statuses serialise to the same bytes in ``--json`` rows,
    trace events, and metrics labels as before the enum existed.  (The
    mixin is why this is a string enum rather than an ``IntEnum`` — int
    values would have changed every serialised artefact.)
    """

    OK = "ok"
    EXTENT_INVALIDATED = "eextent"
    SPLIT_FALLBACK = "split-fallback"
    #: A faulted hop exhausted the in-kernel retry budget; the chain was
    #: handed back (with its scratch) to finish in user space.
    FAULT_FALLBACK = "fault-fallback"
    CHAIN_LIMIT = "echainlim"
    EIO = "eio"

    # Render as the bare value ("ok", not "ChainStatus.OK") on every
    # supported Python version, so tables, f-strings, and label keys are
    # stable.
    __str__ = str.__str__
    __format__ = str.__format__


class ReadResult:
    """What a read (possibly a BPF chain) returned to the application."""

    #: Backwards-compatible aliases for the :class:`ChainStatus` members
    #: (these used to be bare strings; the enum values are those strings).
    OK = ChainStatus.OK
    EXTENT_INVALIDATED = ChainStatus.EXTENT_INVALIDATED
    CHAIN_LIMIT = ChainStatus.CHAIN_LIMIT
    SPLIT_FALLBACK = ChainStatus.SPLIT_FALLBACK
    FAULT_FALLBACK = ChainStatus.FAULT_FALLBACK
    EIO = ChainStatus.EIO

    __slots__ = ("data", "status", "hops", "final_offset", "value", "value2",
                 "scratch")

    def __init__(self, data: bytes, status: str = ChainStatus.OK,
                 hops: int = 1,
                 final_offset: int = 0, value: Optional[int] = None,
                 value2: Optional[int] = None,
                 scratch: Optional[bytes] = None):
        self.data = data
        try:
            self.status = ChainStatus(status)
        except ValueError:
            # Unknown/caller-defined status strings pass through untyped.
            self.status = status
        self.hops = hops
        self.final_offset = final_offset
        #: Scalar results a BPF chain chose to return instead of a buffer.
        self.value = value
        self.value2 = value2
        #: Opaque continuation payload for fallback restarts (the chain's
        #: scratch area at the moment it was handed back to the app).
        self.scratch = scratch

    @property
    def ok(self) -> bool:
        return self.status == self.OK

    def __repr__(self) -> str:
        return (f"ReadResult({self.status}, {len(self.data)}B, "
                f"hops={self.hops})")


class IoCookie:
    """Driver-side per-command state hung off ``NvmeCommand.cookie``.

    ``kind`` selects the completion discipline: ``"poll"`` (the submitting
    thread is spinning and reaps the completion itself), ``"irq"`` (the
    kernel runs an interrupt handler which wakes the waiter), or
    ``"chain"`` (the completion belongs to a BPF chain and is handed to the
    chain handler registered by repro.core).
    """

    __slots__ = ("kind", "event", "chain")

    def __init__(self, kind: str, event: Any = None, chain: Any = None):
        if kind not in ("poll", "irq", "chain"):
            raise InvalidArgument(f"bad cookie kind {kind!r}")
        self.kind = kind
        self.event = event
        self.chain = chain


class Kernel:
    """One simulated machine: cores + kernel + file system + NVMe device."""

    def __init__(self, sim: Simulator, device_model: LatencyModel,
                 config: Optional[KernelConfig] = None):
        self.sim = sim
        self.config = config or KernelConfig()
        self.cost = self.config.cost_model
        self.cpus = CpuSet(sim, self.config.cores)
        self.streams = RandomStreams(self.config.seed)
        self.media = BlockDevice(self.config.capacity_sectors)
        self.trace = IoTrace(enabled=self.config.trace_device)
        self.bus = (self.config.bus if self.config.bus is not None
                    else get_default_bus())
        if self.config.queue_pairs < 1:
            raise InvalidArgument(
                f"queue_pairs must be >= 1, got {self.config.queue_pairs}")
        #: The QoS authority; exists exactly when a QosConfig was given.
        self.qos: Optional[QosManager] = (
            QosManager(self.config.qos, bus=self.bus,
                       clock=lambda: sim.now)
            if self.config.qos is not None else None)
        self.device = NvmeDevice(sim, device_model, self.media,
                                 self.streams.stream("nvme"), trace=self.trace,
                                 bus=self.bus,
                                 cache_depth=self.config.write_cache_depth,
                                 queues=self.config.queue_pairs,
                                 qos=self.qos)
        # Per-core IRQ steering: each queue pair's completion vector is
        # bound to core ``queue % cores``, so all completion-side work of
        # one pair (IRQ entry, the BPF hook, resubmission) serialises on
        # that core instead of spreading over the run queue.  Lanes model
        # the interrupt context of their core: hardware IRQs preempt
        # whatever thread the core is running, which a non-preemptive
        # simulator cannot express, so the lane bounds completion-path
        # *concurrency* (the scaling-relevant contention) rather than
        # stealing the thread scheduler's cycles.
        steer = self.config.irq_steering
        if steer is None:
            steer = self.config.queue_pairs > 1
        self.irq_lanes: Optional[List[Resource]] = (
            [Resource(sim, 1, name=f"irq-core{core}")
             for core in range(self.config.cores)] if steer else None)
        self.media.bus = self.bus
        self.media.clock = lambda: sim.now
        self.device.completion_handler = self._on_device_completion
        # --- fault plan + driver retry policy ----------------------------
        spec = (self.config.fault_plan if self.config.fault_plan is not None
                else get_default_fault_spec())
        self.fault_plan: Optional[FaultPlan] = (
            FaultPlan(spec, kernel_seed=self.config.seed)
            if spec is not None else None)
        if self.config.retry is not None:
            self.retry_policy: Optional[NvmeRetryPolicy] = self.config.retry
        elif self.fault_plan is not None:
            self.retry_policy = NvmeRetryPolicy()
        else:
            self.retry_policy = None
        if self.fault_plan is not None:
            self.device.fault_plan = self.fault_plan
        if self.retry_policy is not None and self.retry_policy.enabled:
            self.device.command_timeout_ns = \
                self.retry_policy.resolve_timeout_ns(device_model)
        scatter = (self.streams.stream("alloc")
                   if self.config.scatter_allocations else None)
        self.fs = ExtFs(self.media,
                        max_extent_blocks=self.config.max_extent_blocks,
                        scatter_rng=scatter,
                        journal_config=self.config.journal)
        self.fs.bus = self.bus
        self.fs.clock = lambda: sim.now
        self.fs.resolve_cost_ns = self.cost.filesystem_ns
        if self.fs.journal is not None:
            self.fs.journal.bus = self.bus
            self.fs.journal.clock = lambda: sim.now
        self.model = device_model
        self._next_pid = 1

        # --- hook slots filled in by repro.core --------------------------
        #: Handles completions whose cookie.kind == "chain"; called in
        #: device-completion context, must schedule its own CPU work.
        self.chain_completion_handler: Optional[
            Callable[[NvmeCommand], None]] = None
        #: Generator hook run at the syscall dispatch layer after a read
        #: completes: fn(proc, file, offset, result, hook_state) ->
        #: (action, payload) where action is "return" or "reissue"
        #: (payload = next offset).  ``hook_state`` is a dict scoped to one
        #: sys_pread call so the hook can keep loop state across reissues.
        self.syscall_read_hook: Optional[Callable] = None
        #: Generator run instead of the normal data path for tagged reads:
        #: fn(proc, file, offset, length) -> ReadResult.
        self.tagged_read_handler: Optional[Callable] = None
        #: ioctl dispatch: op code -> generator fn(proc, file, arg) -> int.
        self.ioctl_handlers: Dict[int, Callable] = {}

        # Statistics.
        self.syscall_count = 0
        self.irq_count = 0
        self.nvme_retries = 0
        self.nvme_timeouts = 0
        self.fsyncs = 0
        self.recoveries = 0

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------

    def spawn_process(self, name: str = "",
                      tenant: Optional[Any] = None) -> Process:
        """Create a process, optionally bound to a tenant.

        ``tenant`` is a :class:`repro.qos.Tenant` or a bare tenant name;
        a name resolves through the QoS config (picking up its declared
        weight) when one is active.  Untenanted processes account by pid,
        exactly as before tenants existed.
        """
        if isinstance(tenant, str):
            tenant = (self.qos.tenant(tenant) if self.qos is not None
                      else Tenant(tenant))
        proc = Process(self._next_pid, name, tenant=tenant)
        self._next_pid += 1
        return proc

    def tenant_of(self, proc: Process) -> Optional[str]:
        """The tenant name charged for ``proc``'s I/O (None = untenanted)."""
        return proc.tenant.name if proc.tenant is not None else None

    # ------------------------------------------------------------------
    # Syscalls (each is a generator run inside a simulated thread)
    # ------------------------------------------------------------------

    def _emit_syscall(self, op: str, pid: int, path: str = "ctl",
                      crossing_ns: Optional[int] = None,
                      syscall_ns: Optional[int] = None, span: int = 0) -> None:
        """Publish one ``syscall_enter`` event (bus must be enabled)."""
        self.bus.emit(
            obs_events.SYSCALL_ENTER, self.sim.now, op=op, pid=pid,
            crossing_ns=(self.cost.kernel_crossing_ns if crossing_ns is None
                         else crossing_ns),
            syscall_ns=(self.cost.syscall_ns if syscall_ns is None
                        else syscall_ns),
            path=path, span=span)

    def sys_open(self, proc: Process, path: str, create: bool = False):
        """Open (optionally creating) a file; returns an fd."""
        yield from self.cpus.run_thread(self.cost.kernel_crossing_ns +
                                        self.cost.syscall_ns)
        self.syscall_count += 1
        if self.bus.enabled:
            self._emit_syscall("open", proc.pid)
        if create and not self.fs.exists(path):
            inode = self.fs.create(path)
            yield from self._maybe_sync_commit(0, "write")
        else:
            inode = self.fs.lookup(path)
        return proc.install_fd(File(inode, path=path))

    def sys_unlink(self, proc: Process, path: str):
        """Remove a file name (and free its blocks)."""
        yield from self.cpus.run_thread(self.cost.kernel_crossing_ns +
                                        self.cost.syscall_ns +
                                        self.cost.filesystem_ns)
        self.syscall_count += 1
        if self.bus.enabled:
            self._emit_syscall("unlink", proc.pid)
        self.fs.unlink(path)
        yield from self._maybe_sync_commit(0, "write")
        return 0

    def sys_rename(self, proc: Process, old_path: str, new_path: str):
        """Atomically rename (the write-new-then-rename commit pattern)."""
        yield from self.cpus.run_thread(self.cost.kernel_crossing_ns +
                                        self.cost.syscall_ns +
                                        self.cost.filesystem_ns)
        self.syscall_count += 1
        if self.bus.enabled:
            self._emit_syscall("rename", proc.pid)
        self.fs.rename(old_path, new_path)
        yield from self._maybe_sync_commit(0, "write")
        return 0

    def sys_close(self, proc: Process, fd: int):
        yield from self.cpus.run_thread(self.cost.kernel_crossing_ns +
                                        self.cost.syscall_ns)
        self.syscall_count += 1
        if self.bus.enabled:
            self._emit_syscall("close", proc.pid)
        proc.close_fd(fd)
        return 0

    def sys_ioctl(self, proc: Process, fd: int, op: int, arg: Any = None):
        """Dispatch to a registered ioctl handler (e.g. the BPF install)."""
        yield from self.cpus.run_thread(self.cost.kernel_crossing_ns +
                                        self.cost.syscall_ns)
        self.syscall_count += 1
        if self.bus.enabled:
            self._emit_syscall("ioctl", proc.pid)
        if op not in self.ioctl_handlers:
            raise InvalidArgument(f"unknown ioctl op {op:#x}")
        file = proc.file(fd)
        result = yield from self.ioctl_handlers[op](proc, file, arg)
        return result

    def sys_ftruncate(self, proc: Process, fd: int, size: int):
        yield from self.cpus.run_thread(self.cost.kernel_crossing_ns +
                                        self.cost.syscall_ns +
                                        self.cost.filesystem_ns)
        self.syscall_count += 1
        if self.bus.enabled:
            self._emit_syscall("ftruncate", proc.pid)
        self.fs.truncate(proc.file(fd).inode, size)
        yield from self._maybe_sync_commit(0, "write")
        return 0

    def sys_pread(self, proc: Process, fd: int, offset: int, length: int,
                  tagged: bool = False,
                  hook_state: Optional[Dict[str, Any]] = None):
        """A synchronous O_DIRECT positional read.

        With ``tagged=True`` and a chain handler installed, the read is
        dispatched down the tagged path (the paper's NVMe-hook chain); the
        returned :class:`ReadResult` then reports chain status and hops.
        """
        if length < 0:
            raise InvalidArgument("read length must be >= 0")
        file = proc.file(fd)
        self.syscall_count += 1
        yield from self.cpus.run_thread(self.cost.kernel_crossing_ns +
                                        self.cost.syscall_ns)
        if length == 0:
            # POSIX pread: zero-length reads succeed with no data and
            # never reach the device.
            return ReadResult(b"", final_offset=offset)

        nvme_tagged = (tagged and self.tagged_read_handler is not None and
                       file.bpf_install is not None and
                       getattr(file.bpf_install, "hook_kind", None) == "nvme")
        syscall_hooked = (tagged and not nvme_tagged and
                          self.syscall_read_hook is not None and
                          file.bpf_install is not None)
        io_path = ("chain" if nvme_tagged
                   else "syscall" if syscall_hooked else "normal")
        span = 0
        if self.bus.enabled:
            if not nvme_tagged:
                # NVMe-hook chains get their root span from the chain
                # engine; everything else roots at the syscall boundary.
                span = self.bus.span_start("sys_pread", self.sim.now,
                                           pid=proc.pid, path=io_path)
            self._emit_syscall("pread", proc.pid, path=io_path, span=span)

        if nvme_tagged:
            result = yield from self.tagged_read_handler(proc, file, offset,
                                                         length)
            return result

        if hook_state is None:
            hook_state = {}
        hook_state["span"] = span
        queue = self.queue_for(proc)
        tenant = self.tenant_of(proc)
        try:
            while True:  # syscall-dispatch hook reissue loop
                data = yield from self._normal_read_path(file, offset, length,
                                                         span=span,
                                                         path=io_path,
                                                         queue=queue,
                                                         tenant=tenant)
                result = ReadResult(data, final_offset=offset)
                if syscall_hooked:
                    action, payload = yield from self.syscall_read_hook(
                        proc, file, offset, result, hook_state)
                    if action == "reissue":
                        offset = payload
                        # Re-enter the dispatch layer without a boundary
                        # crossing or app-side processing.
                        yield from self.cpus.run_thread(self.cost.syscall_ns)
                        if self.bus.enabled:
                            self._emit_syscall("reissue", proc.pid,
                                               path=io_path, crossing_ns=0,
                                               span=span)
                        continue
                    if action == "return":
                        return payload
                    raise IoError(f"bad syscall hook action {action!r}")
                return result
        finally:
            if span:
                self.bus.span_end(span, self.sim.now)

    def sys_pwrite(self, proc: Process, fd: int, offset: int, data: bytes):
        """A synchronous O_DIRECT positional write (sector aligned)."""
        file = proc.file(fd)
        self.syscall_count += 1
        cost = self.cost
        yield from self.cpus.run_thread(cost.kernel_crossing_ns +
                                        cost.syscall_ns)
        if not data:
            return 0
        span = 0
        if self.bus.enabled:
            span = self.bus.span_start("sys_pwrite", self.sim.now,
                                       pid=proc.pid, path="write")
            self._emit_syscall("pwrite", proc.pid, path="write", span=span)
        yield from self.cpus.run_thread(cost.filesystem_ns)
        # Allocation and the size update land in ONE journal transaction,
        # so replay can never leave blocks mapped past EOF.
        with self.fs.txn():
            self.fs.ensure_allocated(file.inode, offset, len(data))
            self.fs.set_size(file.inode,
                             max(file.inode.size, offset + len(data)))
        segments = self.fs.map_range(file.inode, offset, len(data),
                                     span=span, path="write")
        yield from self.cpus.run_thread(cost.bio_ns)
        if self.bus.enabled:
            self.bus.emit(obs_events.BIO_SUBMIT, self.sim.now,
                          cpu_ns=cost.bio_ns, segments=len(segments),
                          span=span, path="write")
        queue = self.queue_for(proc)
        tenant = self.tenant_of(proc)
        if self.retry_enabled:
            consumed = 0
            for lba, sectors in segments:
                chunk = data[consumed : consumed + sectors * 512]
                consumed += sectors * 512
                yield from self._nvme_rw_retry("write", lba, sectors,
                                               chunk, span, "write",
                                               queue=queue, tenant=tenant)
        else:
            events = []
            consumed = 0
            for lba, sectors in segments:
                yield from self.cpus.run_thread(cost.nvme_driver_ns)
                chunk = data[consumed : consumed + sectors * 512]
                consumed += sectors * 512
                event = self.sim.event()
                command = NvmeCommand("write", lba, sectors, data=chunk,
                                      cookie=IoCookie("irq", event=event),
                                      queue=queue)
                command.tenant = tenant
                if span:
                    command.span = span
                    command.path = "write"
                    command.driver_ns = cost.nvme_driver_ns
                self.device.submit(command)
                events.append(event)
            for event in events:
                completed = yield event
                if completed.status == STATUS_POWER_FAIL:
                    raise PowerLossError(
                        f"power lost during write at lba {completed.lba}")
                if completed.status != 0:
                    raise IoError(f"media error at lba {completed.lba}")
        yield from self._maybe_sync_commit(span, "write")
        yield from self.cpus.run_thread(cost.context_switch_ns)
        if self.bus.enabled:
            self.bus.emit(obs_events.CONTEXT_SWITCH, self.sim.now,
                          cpu_ns=cost.context_switch_ns, span=span,
                          path="write")
            self.bus.span_end(span, self.sim.now)
        return len(data)

    def sys_fsync(self, proc: Process, fd: int):
        """Make the file's data *and* metadata durable.

        The crash-consistency contract: FLUSH the device's volatile write
        cache first (data), then FUA-append every pending metadata
        transaction to the journal.  A power cut between the two loses the
        metadata txns but never commits metadata describing non-durable
        data — ext4's ordered mode.
        """
        proc.file(fd)  # validate the descriptor
        self.syscall_count += 1
        self.fsyncs += 1
        cost = self.cost
        yield from self.cpus.run_thread(cost.kernel_crossing_ns +
                                        cost.syscall_ns)
        span = 0
        if self.bus.enabled:
            span = self.bus.span_start("sys_fsync", self.sim.now,
                                       pid=proc.pid, path="write")
            self._emit_syscall("fsync", proc.pid, path="write", span=span)
        queue = self.queue_for(proc)
        try:
            yield from self._device_flush(span, "write", queue=queue)
            journal = self.fs.journal
            if journal is not None and journal.pending_txns:
                yield from self._commit_journal(span, "write", queue=queue)
            yield from self.cpus.run_thread(cost.context_switch_ns)
            if self.bus.enabled:
                self.bus.emit(obs_events.CONTEXT_SWITCH, self.sim.now,
                              cpu_ns=cost.context_switch_ns, span=span,
                              path="write")
        finally:
            if span:
                self.bus.span_end(span, self.sim.now)
        return 0

    def _device_flush(self, span: int, path: str, queue: int = 0):
        """Issue an NVMe FLUSH and wait for it (timed).

        The flush drains the device-wide volatile cache whatever queue it
        arrives on; ``queue`` only selects the pair (and completion
        vector) carrying the command.
        """
        cost = self.cost
        yield from self.cpus.run_thread(cost.nvme_driver_ns)
        event = self.sim.event()
        command = NvmeCommand("flush", 0, 0,
                              cookie=IoCookie("irq", event=event),
                              queue=queue)
        if self.bus.enabled:
            command.span = span
            command.path = path
            command.driver_ns = cost.nvme_driver_ns
        self.device.submit(command)
        completed = yield event
        if completed.status == STATUS_POWER_FAIL:
            raise PowerLossError("power lost during flush")
        if completed.status != 0:
            raise IoError("flush failed")

    def _commit_journal(self, span: int, path: str, queue: int = 0):
        """FUA-write every pending journal txn frame, in order (timed)."""
        journal = self.fs.journal
        cost = self.cost
        yield from self.cpus.run_thread(cost.filesystem_ns)
        if journal.checkpoint_due() or not journal.fits_pending():
            # Untimed maintenance, the kjournald/background-writeback
            # analogue: serialise metadata, truncate + TRIM the log.
            # Pending txns are absorbed by the checkpoint.
            self.fs.checkpoint_sync()
        if not journal.pending_txns:
            return
        frames = journal.encode_pending()
        for lba, frame in frames:
            yield from self.cpus.run_thread(cost.nvme_driver_ns)
            event = self.sim.event()
            command = NvmeCommand("write", lba, len(frame) // 512,
                                  data=frame, fua=True, source="journal",
                                  cookie=IoCookie("irq", event=event),
                                  queue=queue)
            if self.bus.enabled:
                command.span = span
                command.path = path
                command.driver_ns = cost.nvme_driver_ns
            self.device.submit(command)
            completed = yield event
            if completed.status == STATUS_POWER_FAIL:
                raise PowerLossError("power lost during journal commit")
            if completed.status != 0:
                raise IoError(f"journal write failed at lba {completed.lba}")
        journal.note_committed(frames)

    def _maybe_sync_commit(self, span: int, path: str):
        """In ``sync_commit`` journal mode, commit at the op boundary.

        Meant for write-through devices (cache depth 0), where the data a
        txn describes is already durable when the op completes — making
        every completed operation crash-proof.
        """
        journal = self.fs.journal
        if journal is None or not journal.config.sync_commit or \
                not journal.pending_txns:
            return
        yield from self._commit_journal(span, path)

    # ------------------------------------------------------------------
    # Data path internals (also used by repro.core)
    # ------------------------------------------------------------------

    def should_poll(self) -> bool:
        """Hybrid polling: spin for completions on microsecond devices."""
        return self.model.read_ns < self.cost.poll_threshold_ns

    def queue_for(self, proc: Process) -> int:
        """The NVMe queue pair owning ``proc``'s I/O (pid-steered)."""
        pairs = self.config.queue_pairs
        if pairs == 1:
            return 0
        return proc.pid % pairs

    def run_irq(self, cost: int, queue: int = 0):
        """Charge interrupt-context CPU for ``queue``'s completion vector.

        Without steering this is the historical shared run queue at IRQ
        priority; with steering the work serialises on the IRQ lane of the
        core owning the queue pair.
        """
        if self.irq_lanes is None:
            yield from self.cpus.run_irq(cost)
        else:
            yield from self.irq_lanes[queue % len(self.irq_lanes)].execute(
                cost)

    @property
    def retry_enabled(self) -> bool:
        return self.retry_policy is not None and self.retry_policy.enabled

    def _nvme_rw_retry(self, opcode: str, lba: int, sectors: int,
                       data: Optional[bytes], span: int, path: str,
                       held: bool = False, queue: int = 0,
                       tenant: Optional[str] = None):
        """Submit one command with the driver retry policy; returns the
        successful completion or raises :class:`IoError`.

        ``held=True`` means the caller is polling and already holds a core
        (driver cost is charged as held time); otherwise driver cost runs
        as thread work and the completion arrives via IRQ wake.  Backoff
        is simulated sleep, not CPU work.  Each attempt uses a fresh
        descriptor — recycling is the chain engine's job.
        """
        policy = self.retry_policy
        cost = self.cost
        attempt = 0
        while True:
            attempt += 1
            if held:
                yield self.sim.timeout(cost.nvme_driver_ns)
            else:
                yield from self.cpus.run_thread(cost.nvme_driver_ns)
            event = self.sim.event()
            command = NvmeCommand(
                opcode, lba, sectors, data=data,
                cookie=IoCookie("poll" if held else "irq", event=event),
                queue=queue)
            command.tenant = tenant
            if attempt > 1:
                command.source = "retry"
            if self.bus.enabled:
                command.span = span
                command.path = path
                command.driver_ns = cost.nvme_driver_ns
            self.device.submit(command)
            completed = yield event
            if completed.status == 0:
                return completed
            if completed.status == STATUS_POWER_FAIL:
                # Not a media error: the device is gone, retrying is
                # pointless.
                raise PowerLossError(
                    f"power lost during {opcode} at lba {lba}")
            reason = ("timeout" if completed.status == STATUS_TIMEOUT
                      else "media")
            if completed.status == STATUS_TIMEOUT:
                self.nvme_timeouts += 1
                if self.bus.enabled:
                    self.bus.emit(obs_events.NVME_TIMEOUT, self.sim.now,
                                  opcode=opcode, lba=lba,
                                  timeout_ns=self.device.command_timeout_ns,
                                  attempt=attempt, span=span, path=path)
            if attempt > policy.max_retries:
                raise IoError(
                    f"nvme {opcode} at lba {lba} failed after "
                    f"{attempt} attempts ({reason})")
            self.nvme_retries += 1
            backoff = policy.backoff_ns(attempt)
            if self.bus.enabled:
                self.bus.emit(obs_events.NVME_RETRY, self.sim.now,
                              opcode=opcode, lba=lba, reason=reason,
                              attempt=attempt, backoff_ns=backoff,
                              span=span, path=path)
            if backoff:
                yield self.sim.timeout(backoff)

    def _normal_read_path(self, file: File, offset: int, length: int,
                          span: int = 0, path: str = "normal",
                          queue: int = 0, tenant: Optional[str] = None):
        """ext4 -> BIO -> driver -> device for one read; returns bytes."""
        cost = self.cost
        yield from self.cpus.run_thread(cost.filesystem_ns)
        segments = self.fs.map_range(file.inode, offset, length,
                                     span=span, path=path)
        yield from self.cpus.run_thread(cost.bio_ns)
        if self.bus.enabled:
            self.bus.emit(obs_events.BIO_SUBMIT, self.sim.now,
                          cpu_ns=cost.bio_ns, segments=len(segments),
                          span=span, path=path)
            if len(segments) > 1:
                self.bus.emit(obs_events.BIO_SPLIT, self.sim.now,
                              segments=len(segments), span=span, path=path)

        if self.should_poll():
            # The thread holds a core across submission and the device
            # round trip (hybrid polling).
            request = self.cpus.request(CpuSet.PRIORITY_THREAD)
            yield request
            try:
                if self.retry_enabled:
                    # Error-recovering path: one command at a time so a
                    # failure can be retried with backoff before the next
                    # segment is issued.
                    chunks = []
                    for lba, sectors in segments:
                        completed = yield from self._nvme_rw_retry(
                            "read", lba, sectors, None, span, path,
                            held=True, queue=queue, tenant=tenant)
                        chunks.append(completed.data)
                else:
                    events = []
                    for lba, sectors in segments:
                        yield self.sim.timeout(cost.nvme_driver_ns)
                        event = self.sim.event()
                        command = NvmeCommand(
                            "read", lba, sectors,
                            cookie=IoCookie("poll", event=event),
                            queue=queue)
                        command.tenant = tenant
                        if self.bus.enabled:
                            command.span = span
                            command.path = path
                            command.driver_ns = cost.nvme_driver_ns
                        self.device.submit(command)
                        events.append(event)
                    chunks = []
                    for event in events:
                        completed = yield event
                        if completed.status != 0:
                            raise IoError(
                                f"media error at lba {completed.lba}")
                        chunks.append(completed.data)
            finally:
                self.cpus.release(request)
            return b"".join(chunks)

        # Interrupt-driven: submit, sleep, get woken by the IRQ handler.
        if self.retry_enabled:
            chunks = []
            for lba, sectors in segments:
                completed = yield from self._nvme_rw_retry(
                    "read", lba, sectors, None, span, path, queue=queue,
                    tenant=tenant)
                chunks.append(completed.data)
        else:
            events = []
            for lba, sectors in segments:
                yield from self.cpus.run_thread(cost.nvme_driver_ns)
                event = self.sim.event()
                command = NvmeCommand("read", lba, sectors,
                                      cookie=IoCookie("irq", event=event),
                                      queue=queue)
                command.tenant = tenant
                if self.bus.enabled:
                    command.span = span
                    command.path = path
                    command.driver_ns = cost.nvme_driver_ns
                self.device.submit(command)
                events.append(event)
            chunks = []
            for event in events:
                completed = yield event
                if completed.status != 0:
                    raise IoError(f"media error at lba {completed.lba}")
                chunks.append(completed.data)
        yield from self.cpus.run_thread(cost.context_switch_ns)
        if self.bus.enabled:
            self.bus.emit(obs_events.CONTEXT_SWITCH, self.sim.now,
                          cpu_ns=cost.context_switch_ns, span=span, path=path)
        return b"".join(chunks)

    def submit_chain_command(self, command: NvmeCommand):
        """Charge driver submission cost and post a chain command.

        Used by repro.core both for the first hop (thread context) and for
        recycled resubmissions (IRQ context charges its own cost).
        """
        yield from self.cpus.run_thread(self.cost.nvme_driver_ns)
        if self.bus.enabled:
            command.driver_ns = self.cost.nvme_driver_ns
        self.device.submit(command)

    # ------------------------------------------------------------------
    # Completion side
    # ------------------------------------------------------------------

    def _on_device_completion(self, command: NvmeCommand) -> None:
        cookie = command.cookie
        if not isinstance(cookie, IoCookie):
            raise IoError(f"completion with foreign cookie: {command!r}")
        if cookie.kind == "poll":
            # The polling thread reaps this itself; no interrupt is raised.
            cookie.event.succeed(command)
            return
        if cookie.kind == "chain":
            if self.chain_completion_handler is None:
                raise IoError("chain completion but no handler installed")
            self.chain_completion_handler(command)
            return
        self.sim.spawn(self._irq_complete(command), name="irq")

    def _irq_complete(self, command: NvmeCommand):
        """The plain completion interrupt: bookkeeping, then wake the waiter."""
        self.irq_count += 1
        yield from self.run_irq(self.cost.irq_entry_ns, command.queue)
        if self.bus.enabled:
            self.bus.emit(obs_events.IRQ_ENTRY, self.sim.now,
                          cpu_ns=self.cost.irq_entry_ns, span=command.span,
                          path=command.path)
        command.cookie.event.succeed(command)

    # ------------------------------------------------------------------
    # Convenience (setup helpers used by tests/examples/benchmarks)
    # ------------------------------------------------------------------

    def create_file(self, path: str, data: bytes) -> None:
        """Create ``path`` with ``data``, without simulated time."""
        inode = self.fs.create(path)
        if data:
            self.fs.write_sync(inode, 0, data)

    def run_syscall(self, generator) -> Any:
        """Run one syscall generator to completion (drives the simulator)."""
        return self.sim.run_process(generator)

    # ------------------------------------------------------------------
    # Crash / recovery lifecycle
    # ------------------------------------------------------------------

    def crash(self, tear: bool = False) -> Dict[str, int]:
        """Cut power immediately (outside any fault plan).

        Drops the device's volatile write cache — optionally tearing the
        oldest un-flushed multi-sector write — and powers the device off;
        every subsequent submission raises
        :class:`~repro.errors.PowerLossError` until :meth:`recover`.
        """
        rng = (self.fault_plan.power_rng if self.fault_plan is not None
               else self.streams.stream("power"))
        return self.device.power_loss(rng=rng, tear=tear)

    def recover(self):
        """Power the device back on and mount: rebuild the file system
        purely from media via journal replay, then notify derived caches
        (dropping every NVMe-layer extent-cache snapshot, so BPF chains
        must take the EEXTENT reinstall path).  Returns the
        :class:`~repro.kernel.recovery.RecoveryReport`.
        """
        from repro.kernel.recovery import reload_fs
        self.device.power_on()
        report = reload_fs(self.fs)
        self.recoveries += 1
        return report
