"""Crash recovery and fsck for the journaled file system.

After a simulated power cut (:meth:`~repro.device.nvme.NvmeDevice.
power_loss`) everything volatile is gone: the device's write cache, the
in-memory namespace, inode table, extent trees, allocator, and every
NVMe-layer extent-cache snapshot.  :func:`reload_fs` rebuilds an
:class:`~repro.kernel.extfs.ExtFs` **purely from media**, the way a real
journaling file system mounts after a crash:

1. read + checksum the superblock (sector 0, atomic by construction);
2. load the active checkpoint slot it points at;
3. scan the journal region and replay committed transactions in sequence
   order, discarding the torn or uncommitted tail;
4. rebuild the block allocator from the surviving extent trees;
5. notify ``fs.recovery_listeners`` so derived caches (the NVMe-layer
   extent cache of §4) drop every snapshot — forcing chains through the
   EEXTENT reinstall protocol afterwards.

:func:`fsck` is the independent auditor: it re-derives the crash-consistency
invariants from the recovered structures (no overlapping or out-of-bounds
extents, no extent past EOF, clean directory tree, allocator accounting,
well-formed journal) and reports violations instead of trusting replay.
The crash-point harness (:mod:`repro.faults.crashpoints`) runs it after
every enumerated crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.errors import InvalidArgument, JournalCorrupt
from repro.kernel.extent import Extent, ExtentTree
from repro.kernel.extfs import BLOCK_SIZE, ExtFs, Inode, _Allocator
from repro.obs import events as obs_events

__all__ = ["FsckReport", "RecoveryReport", "fsck", "reload_fs"]


@dataclass
class RecoveryReport:
    """What one journal-replay mount did."""

    checkpoint_seq: int
    replayed_txns: int
    discarded_txns: int
    files: int
    dirs: int

    def as_dict(self) -> Dict[str, int]:
        return {"checkpoint_seq": self.checkpoint_seq,
                "replayed_txns": self.replayed_txns,
                "discarded_txns": self.discarded_txns,
                "files": self.files, "dirs": self.dirs}


@dataclass
class FsckReport:
    """Invariant-checker result: ``ok`` iff no violation was found."""

    checks: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


# ---------------------------------------------------------------------------
# Checkpoint restore + record replay
# ---------------------------------------------------------------------------

def _restore_checkpoint(fs: ExtFs,
                        state: Dict[str, Any]) -> Dict[int, Inode]:
    by_ino: Dict[int, Inode] = {}
    for row in state["inodes"]:
        inode = Inode(row["ino"], is_dir=bool(row["dir"]))
        inode.size = row["size"]
        for file_block, phys_block, count in row["extents"]:
            inode.extents.add(Extent(file_block, phys_block, count))
        by_ino[inode.number] = inode
    for parent_ino, name, child_ino in state["tree"]:
        by_ino[parent_ino].entries[name] = by_ino[child_ino]
    fs.root = by_ino[1]
    fs._next_ino = state["next_ino"]
    return by_ino


def _resolve_parent(fs: ExtFs, path: str) -> Tuple[Inode, str]:
    parts = fs._split(path)
    if not parts:
        raise JournalCorrupt(f"journal record targets the root: {path!r}")
    node = fs.root
    for part in parts[:-1]:
        node = node.entries[part]
    return node, parts[-1]


def _clear_inode(inode: Inode) -> None:
    inode.extents = ExtentTree()
    inode.size = 0


def _apply_record(fs: ExtFs, by_ino: Dict[int, Inode],
                  record: Dict[str, Any]) -> None:
    """Re-apply one logical journal record to the in-memory structures.

    Replay bypasses the ExtFs mutation methods: those would journal again
    and touch the allocator, but replay's job is only to reproduce the
    post-txn metadata; the allocator is rebuilt afterwards from the
    surviving extents.
    """
    op = record["op"]
    try:
        if op in ("create", "mkdir"):
            parent, name = _resolve_parent(fs, record["path"])
            inode = Inode(record["ino"], is_dir=(op == "mkdir"))
            parent.entries[name] = inode
            by_ino[inode.number] = inode
            fs._next_ino = max(fs._next_ino, inode.number + 1)
        elif op == "unlink":
            parent, name = _resolve_parent(fs, record["path"])
            _clear_inode(parent.entries.pop(name))
        elif op == "rename":
            old_parent, old_name = _resolve_parent(fs, record["old"])
            inode = old_parent.entries.pop(old_name)
            new_parent, new_name = _resolve_parent(fs, record["new"])
            displaced = new_parent.entries.get(new_name)
            if displaced is not None:
                _clear_inode(displaced)
            new_parent.entries[new_name] = inode
        elif op == "alloc":
            inode = by_ino[record["ino"]]
            for file_block, phys_block, count in record["extents"]:
                inode.extents.add(Extent(file_block, phys_block, count))
        elif op == "punch":
            by_ino[record["ino"]].extents.punch(record["file_block"],
                                                record["count"])
        elif op == "size":
            by_ino[record["ino"]].size = record["size"]
        else:
            raise JournalCorrupt(f"unknown journal record op {op!r}")
    except (KeyError, AttributeError) as exc:
        raise JournalCorrupt(
            f"journal record {record!r} does not apply: {exc!r}")


def _walk_inodes(fs: ExtFs) -> List[Inode]:
    out: List[Inode] = []
    stack = [fs.root]
    while stack:
        inode = stack.pop()
        out.append(inode)
        if inode.is_dir:
            stack.extend(inode.entries.values())
    return out


def reload_fs(fs: ExtFs) -> RecoveryReport:
    """Rebuild ``fs`` in place from its media (mount-after-crash).

    Raises :class:`JournalCorrupt` when the superblock, checkpoint, or a
    committed record is unusable; torn/uncommitted journal tails are
    expected and silently discarded.
    """
    journal = fs.journal
    if journal is None:
        raise InvalidArgument("cannot recover a file system with no journal")
    superblock = journal.read_superblock()
    journal.active_slot = superblock["active_slot"]
    journal.ckpt_seq = superblock["ckpt_seq"]
    state = journal.read_checkpoint(superblock)
    by_ino = _restore_checkpoint(fs, state)
    txns, discarded, end_sector = journal.scan()
    for _seq, records in txns:
        for record in records:
            _apply_record(fs, by_ino, record)
    # Reset the journal's volatile head to match what survived on media.
    journal.next_seq = (txns[-1][0] if txns else journal.ckpt_seq) + 1
    journal.head_sector = end_sector
    journal._pending.clear()
    journal._txn_records = []
    journal._txn_depth = 0
    # Rebuild the allocator from the extents that survived; overlap here
    # means the metadata itself is corrupt.
    allocator = _Allocator(fs.total_blocks,
                           reserved=journal.reserved_blocks)
    files = dirs = 0
    for inode in _walk_inodes(fs):
        if inode.is_dir:
            dirs += 1
            continue
        files += 1
        for extent in inode.extents.extents():
            try:
                allocator.reserve_run(extent.phys_block, extent.count)
            except InvalidArgument as exc:
                raise JournalCorrupt(
                    f"ino {inode.number}: extent at block "
                    f"{extent.phys_block} unusable: {exc}")
    fs._allocator = allocator
    fs._pending_frees.clear()
    fs._pending_zeroes.clear()
    fs.notify_recovery()
    report = RecoveryReport(checkpoint_seq=superblock["ckpt_seq"],
                            replayed_txns=len(txns),
                            discarded_txns=discarded,
                            files=files, dirs=dirs)
    if fs.bus.enabled:
        fs.bus.emit(obs_events.JOURNAL_REPLAY, fs.clock(),
                    replayed=report.replayed_txns,
                    discarded=report.discarded_txns,
                    seq=journal.next_seq - 1)
    return report


# ---------------------------------------------------------------------------
# fsck
# ---------------------------------------------------------------------------

def fsck(fs: ExtFs) -> FsckReport:
    """Audit the crash-consistency invariants of a (recovered) ExtFs."""
    report = FsckReport()

    def check(name: str, problems: List[str]) -> None:
        report.checks += 1
        report.violations.extend(f"{name}: {p}" for p in problems)

    reserved = (fs.journal.reserved_blocks if fs.journal is not None else 1)
    inodes = _walk_inodes(fs)

    # 1. unique inode numbers, each inode linked exactly once.
    problems: List[str] = []
    seen: Dict[int, int] = {}
    for inode in inodes:
        seen[inode.number] = seen.get(inode.number, 0) + 1
    for number, links in seen.items():
        if links > 1:
            problems.append(f"ino {number} linked {links} times")
    check("namespace", problems)

    # 2. extents within the data region and not overlapping each other.
    problems = []
    runs: List[Tuple[int, int, int]] = []
    for inode in inodes:
        if inode.is_dir:
            continue
        for extent in inode.extents.extents():
            if extent.phys_block < reserved or \
                    extent.phys_block + extent.count > fs.total_blocks:
                problems.append(
                    f"ino {inode.number}: extent [{extent.phys_block}, "
                    f"{extent.phys_block + extent.count}) outside data "
                    f"region [{reserved}, {fs.total_blocks})")
            runs.append((extent.phys_block, extent.count, inode.number))
    runs.sort()
    for (a_start, a_count, a_ino), (b_start, _b, b_ino) in \
            zip(runs, runs[1:]):
        if a_start + a_count > b_start:
            problems.append(f"extents of ino {a_ino} and ino {b_ino} "
                            f"overlap at block {b_start}")
    check("extents", problems)

    # 3. sizes consistent: no file block mapped at or past ceil(size/4K).
    problems = []
    for inode in inodes:
        if inode.is_dir:
            continue
        limit = (inode.size + BLOCK_SIZE - 1) // BLOCK_SIZE
        for extent in inode.extents.extents():
            if extent.file_block + extent.count > limit:
                problems.append(
                    f"ino {inode.number}: block "
                    f"{extent.file_block + extent.count - 1} mapped past "
                    f"EOF (size {inode.size})")
    check("sizes", problems)

    # 4. directories carry no data.
    problems = []
    for inode in inodes:
        if inode.is_dir and (inode.size or len(inode.extents)):
            problems.append(f"dir ino {inode.number} has data")
    check("directories", problems)

    # 5. allocator accounting matches the extent trees (blocks punched by
    # uncommitted txns are parked in _pending_frees, neither mapped nor
    # free, so a live-fs audit must count them too).
    problems = []
    used = sum(count for _start, count, _ino in runs)
    parked = sum(count for _start, count in fs._pending_frees)
    expected_free = fs.total_blocks - reserved - used - parked
    actual_free = fs._allocator.free_blocks()
    if actual_free != expected_free:
        problems.append(f"allocator reports {actual_free} free blocks, "
                        f"extents imply {expected_free}")
    check("allocator", problems)

    # 6. on-media journal structures are well-formed.
    if fs.journal is not None:
        problems = []
        try:
            superblock = fs.journal.read_superblock()
            fs.journal.read_checkpoint(superblock)
        except JournalCorrupt as exc:
            problems.append(str(exc))
        check("journal", problems)

    if fs.bus.enabled:
        fs.bus.emit(obs_events.FSCK_REPORT, fs.clock(),
                    checks=report.checks,
                    violations=len(report.violations))
    return report
