"""Per-layer CPU cost model (Table 1 plus calibrated constants).

The paper's Table 1 measures the average latency a 512 B random ``read()``
spends in each kernel layer on the Optane gen-2 testbed::

    kernel crossing   351 ns
    read syscall      199 ns
    ext4             2006 ns
    bio               379 ns
    NVMe driver       113 ns
    storage device   3224 ns

Those are the defaults here.  A handful of constants the paper's experiments
imply but Table 1 does not list (application-side per-lookup processing, IRQ
entry/exit, the blocked-thread wakeup path, io_uring submission costs, BPF
hook dispatch) are calibrated so the reproduced figures land in the paper's
reported bands; every one of them is a single field an ablation can perturb.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import InvalidArgument

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """CPU nanoseconds charged by each software layer."""

    # --- Table 1 ----------------------------------------------------------
    #: User/kernel boundary crossing, both directions combined.
    kernel_crossing_ns: int = 351
    #: Syscall dispatch layer (entry bookkeeping, fd lookup).
    syscall_ns: int = 199
    #: File system (ext4): extent lookup, permission checks, DIO setup.
    filesystem_ns: int = 2006
    #: Block layer: bio allocation, splitting, completion bookkeeping.
    bio_ns: int = 379
    #: NVMe driver: command build + doorbell (also per recycled resubmit).
    nvme_driver_ns: int = 113

    # --- calibrated constants (not in Table 1) ----------------------------
    #: Application-side work per dependent lookup: parse the fetched page,
    #: compute the next offset, re-enter the syscall.  Sets the baseline's
    #: user-space share and calibrates Figure 3a's ~1.25x ceiling.
    user_process_ns: int = 1200
    #: Interrupt entry/exit plus completion bookkeeping per completion that
    #: is handled in IRQ context (blocked-thread, io_uring, and BPF-chain
    #: paths).
    irq_entry_ns: int = 250
    #: Fixed cost of dispatching a BPF hook (context setup, tag check).
    bpf_dispatch_ns: int = 80
    #: Per-instruction cost of the BPF interpreter.
    bpf_insn_interp_ns: int = 4
    #: Per-instruction cost of JIT-compiled BPF.
    bpf_insn_jit_ns: int = 1
    #: Blocking a thread and waking it on completion (schedule out + in).
    context_switch_ns: int = 2000
    #: io_uring_enter: one boundary crossing + ring bookkeeping per call.
    iouring_enter_ns: int = 400
    #: Per-SQE submission bookkeeping inside io_uring.
    iouring_sqe_ns: int = 150
    #: Per-CQE reap cost (app side, amortised batch handling).
    iouring_reap_ns: int = 300
    #: Extent-cache install/refresh cost for one ioctl (paper §4).
    ioctl_install_ns: int = 2500
    #: Sync reads spin/poll when device latency is below this (hybrid
    #: polling on low-microsecond devices, as on the paper's testbed; both
    #: Optane generations poll, NAND and HDD block on interrupts).
    poll_threshold_ns: int = 25_000

    def __post_init__(self):
        for name, value in self.__dict__.items():
            if value < 0:
                raise InvalidArgument(f"cost {name} is negative")

    # -- derived ------------------------------------------------------------

    def software_total_ns(self) -> int:
        """Table 1's software layers summed (the 'kernel overhead')."""
        return (self.kernel_crossing_ns + self.syscall_ns +
                self.filesystem_ns + self.bio_ns + self.nvme_driver_ns)

    def submit_path_ns(self) -> int:
        """Cost from syscall entry to doorbell for one read."""
        return (self.kernel_crossing_ns + self.syscall_ns +
                self.filesystem_ns + self.bio_ns + self.nvme_driver_ns)

    def bpf_run_ns(self, instructions: int, jit: bool) -> int:
        """CPU cost of one hook invocation executing ``instructions``."""
        per_insn = self.bpf_insn_jit_ns if jit else self.bpf_insn_interp_ns
        return self.bpf_dispatch_ns + instructions * per_insn

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy with selected costs replaced (for ablations)."""
        return replace(self, **kwargs)

    def table1_rows(self, device_ns: int):
        """(layer, ns) rows in Table 1 order, including the device."""
        return [
            ("kernel crossing", self.kernel_crossing_ns),
            ("read syscall", self.syscall_ns),
            ("ext4", self.filesystem_ns),
            ("bio", self.bio_ns),
            ("NVMe driver", self.nvme_driver_ns),
            ("storage device", device_ns),
        ]
