"""An extent-based file system (the simulated ext4).

Provides the pieces of ext4 the paper's design interacts with:

* hierarchical namespace (create/mkdir/lookup/unlink/rename);
* per-inode extent trees mapping 4 KiB file blocks to physical blocks;
* a block allocator with controllable fragmentation, so experiments can
  force the multi-extent files that trigger the BIO split fallback;
* extent-change notifications — the file-system hook of §4 that drives
  NVMe-layer extent-cache invalidation.  Growing a file (pure allocation)
  reports ``"grow"``; unmapping or moving blocks reports ``"unmap"``, and
  only the latter must invalidate.

Metadata lives in memory (the experiments never measure metadata I/O);
file *data* lives on the backing :class:`~repro.device.blockdev.BlockDevice`.
``read_sync``/``write_sync`` move data without simulated time for test and
workload setup; timed data paths go through the kernel's BIO/NVMe layers.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.device.blockdev import SECTOR_SIZE, BlockDevice
from repro.errors import (
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NoSpace,
    NotADirectory,
)
from repro.kernel.extent import Extent, ExtentTree
from repro.obs import events as obs_events
from repro.obs.bus import NULL_BUS

__all__ = ["BLOCK_SIZE", "ExtFs", "Inode", "SECTORS_PER_BLOCK"]

BLOCK_SIZE = 4096
SECTORS_PER_BLOCK = BLOCK_SIZE // SECTOR_SIZE


class Inode:
    """One file or directory."""

    def __init__(self, number: int, is_dir: bool):
        self.number = number
        self.is_dir = is_dir
        self.size = 0
        self.extents = ExtentTree()
        self.entries: Dict[str, "Inode"] = {} if is_dir else None

    def __repr__(self) -> str:
        kind = "dir" if self.is_dir else "file"
        return f"Inode({self.number}, {kind}, {self.size}B)"


class _Allocator:
    """Free-space manager over whole file-system blocks."""

    def __init__(self, total_blocks: int, reserved: int = 1):
        if total_blocks <= reserved:
            raise InvalidArgument("device too small for a file system")
        # Sorted list of (start, count) free runs.
        self._free: List[Tuple[int, int]] = [(reserved, total_blocks - reserved)]
        self.total_blocks = total_blocks

    def free_blocks(self) -> int:
        return sum(count for _start, count in self._free)

    def allocate(self, blocks: int, max_run: int,
                 rng: Optional[random.Random]) -> List[Tuple[int, int]]:
        """Take ``blocks`` blocks as one or more runs of at most ``max_run``.

        When ``max_run`` truncates a run, a one-block guard gap is skipped
        before the next piece so the resulting extents are genuinely
        discontiguous — the deterministic fragmentation knob that forces the
        BIO layer's multi-extent split path in experiments.
        """
        if blocks < 1:
            raise InvalidArgument("allocation must be >= 1 block")
        if blocks > self.free_blocks():
            raise NoSpace(f"need {blocks} blocks, "
                          f"{self.free_blocks()} free")
        pieces: List[Tuple[int, int]] = []
        need = blocks
        while need > 0:
            index = 0
            if rng is not None and len(self._free) > 1:
                index = rng.randrange(len(self._free))
            start, count = self._free[index]
            take = min(need, count, max_run)
            pieces.append((start, take))
            consumed = take
            if take < need and take == max_run and count > take:
                consumed = min(count, take + 1)  # guard gap
            if consumed == count:
                self._free.pop(index)
            else:
                self._free[index] = (start + consumed, count - consumed)
            need -= take
        return pieces

    def release(self, start: int, count: int) -> None:
        """Return a run to the free list, coalescing neighbours."""
        runs = self._free + [(start, count)]
        runs.sort()
        merged: List[Tuple[int, int]] = []
        for run_start, run_count in runs:
            if merged and merged[-1][0] + merged[-1][1] >= run_start:
                prev_start, prev_count = merged[-1]
                if prev_start + prev_count > run_start:
                    raise InvalidArgument("double free of blocks")
                merged[-1] = (prev_start, prev_count + run_count)
            else:
                merged.append((run_start, run_count))
        self._free = merged


class ExtFs:
    """The file system: namespace + extents + allocator + media access."""

    def __init__(self, media: BlockDevice,
                 max_extent_blocks: int = 32768,
                 scatter_rng: Optional[random.Random] = None):
        self.media = media
        self.total_blocks = media.capacity_sectors // SECTORS_PER_BLOCK
        self._allocator = _Allocator(self.total_blocks)
        self.max_extent_blocks = max_extent_blocks
        self.scatter_rng = scatter_rng
        self._next_ino = 2
        self.root = Inode(1, is_dir=True)
        #: Subscribers notified as ``fn(inode, kind)`` with kind in
        #: {"grow", "unmap"} on every extent mutation.
        self.extent_change_listeners: List[Callable[[Inode, str], None]] = []
        #: Observability: the kernel that owns this fs points these at its
        #: tracepoint bus and simulated clock; standalone ExtFs instances
        #: (unit tests, setup paths) keep the disabled defaults.
        self.bus = NULL_BUS
        self.clock: Callable[[], int] = lambda: 0
        self.resolve_cost_ns = 0

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------

    @staticmethod
    def _split(path: str) -> List[str]:
        if not path.startswith("/"):
            raise InvalidArgument(f"path must be absolute: {path!r}")
        return [part for part in path.split("/") if part]

    def _walk(self, parts: List[str]) -> Inode:
        node = self.root
        for part in parts:
            if not node.is_dir:
                raise NotADirectory("/".join(parts))
            if part not in node.entries:
                raise FileNotFound("/".join(parts))
            node = node.entries[part]
        return node

    def lookup(self, path: str) -> Inode:
        return self._walk(self._split(path))

    def exists(self, path: str) -> bool:
        try:
            self.lookup(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    def _parent_and_name(self, path: str) -> Tuple[Inode, str]:
        parts = self._split(path)
        if not parts:
            raise InvalidArgument("path refers to the root")
        parent = self._walk(parts[:-1])
        if not parent.is_dir:
            raise NotADirectory(path)
        return parent, parts[-1]

    def _new_inode(self, is_dir: bool) -> Inode:
        inode = Inode(self._next_ino, is_dir)
        self._next_ino += 1
        return inode

    def create(self, path: str) -> Inode:
        parent, name = self._parent_and_name(path)
        if name in parent.entries:
            raise FileExists(path)
        inode = self._new_inode(is_dir=False)
        parent.entries[name] = inode
        return inode

    def mkdir(self, path: str) -> Inode:
        parent, name = self._parent_and_name(path)
        if name in parent.entries:
            raise FileExists(path)
        inode = self._new_inode(is_dir=True)
        parent.entries[name] = inode
        return inode

    def unlink(self, path: str) -> None:
        parent, name = self._parent_and_name(path)
        if name not in parent.entries:
            raise FileNotFound(path)
        inode = parent.entries[name]
        if inode.is_dir:
            raise IsADirectory(path)
        del parent.entries[name]
        self._free_all_extents(inode)

    def rename(self, old_path: str, new_path: str) -> None:
        """Atomic namespace swap; replaces an existing plain file at the
        destination (the classic write-new-then-rename pattern)."""
        old_parent, old_name = self._parent_and_name(old_path)
        if old_name not in old_parent.entries:
            raise FileNotFound(old_path)
        inode = old_parent.entries[old_name]
        new_parent, new_name = self._parent_and_name(new_path)
        displaced = new_parent.entries.get(new_name)
        if displaced is not None and displaced.is_dir:
            raise IsADirectory(new_path)
        del old_parent.entries[old_name]
        new_parent.entries[new_name] = inode
        if displaced is not None:
            self._free_all_extents(displaced)

    def listdir(self, path: str) -> List[str]:
        inode = self.lookup(path)
        if not inode.is_dir:
            raise NotADirectory(path)
        return sorted(inode.entries)

    # ------------------------------------------------------------------
    # Extents and allocation
    # ------------------------------------------------------------------

    def _notify(self, inode: Inode, kind: str) -> None:
        if self.bus.enabled:
            self.bus.emit(obs_events.EXTENT_CHANGE, self.clock(),
                          ino=inode.number, kind=kind)
        for listener in self.extent_change_listeners:
            listener(inode, kind)

    def ensure_allocated(self, inode: Inode, offset: int, length: int) -> bool:
        """Allocate blocks so ``[offset, offset+length)`` is fully mapped.

        Returns True if any new extent was added (a "grow" change).
        """
        if inode.is_dir:
            raise IsADirectory(f"inode {inode.number}")
        if length <= 0:
            raise InvalidArgument("length must be positive")
        first = offset // BLOCK_SIZE
        last = (offset + length - 1) // BLOCK_SIZE
        changed = False
        block = first
        while block <= last:
            if inode.extents.lookup(block) is not None:
                block += 1
                continue
            # Find the hole's end within our range to allocate in one go.
            hole_end = block
            while hole_end <= last and \
                    inode.extents.lookup(hole_end) is None:
                hole_end += 1
            need = hole_end - block
            pieces = self._allocator.allocate(
                need, self.max_extent_blocks, self.scatter_rng)
            file_block = block
            for start, count in pieces:
                inode.extents.add(Extent(file_block, start, count))
                file_block += count
            changed = True
            block = hole_end
        if changed:
            self._notify(inode, "grow")
        return changed

    def punch_range(self, inode: Inode, offset: int, length: int) -> None:
        """Unmap and free ``[offset, offset+length)`` (block aligned)."""
        if offset % BLOCK_SIZE or length % BLOCK_SIZE:
            raise InvalidArgument("punch must be block aligned")
        punched = inode.extents.punch(offset // BLOCK_SIZE,
                                      length // BLOCK_SIZE)
        for extent in punched:
            self._allocator.release(extent.phys_block, extent.count)
            self.media.discard(extent.phys_block * SECTORS_PER_BLOCK,
                               extent.count * SECTORS_PER_BLOCK)
        if punched:
            self._notify(inode, "unmap")

    def truncate(self, inode: Inode, new_size: int) -> None:
        if new_size < 0:
            raise InvalidArgument("negative size")
        old_blocks = (inode.size + BLOCK_SIZE - 1) // BLOCK_SIZE
        new_blocks = (new_size + BLOCK_SIZE - 1) // BLOCK_SIZE
        if new_blocks < old_blocks:
            self.punch_range(inode, new_blocks * BLOCK_SIZE,
                             (old_blocks - new_blocks) * BLOCK_SIZE)
        inode.size = new_size

    def _free_all_extents(self, inode: Inode) -> None:
        had_blocks = len(inode.extents) > 0
        for extent in inode.extents.extents():
            inode.extents.punch(extent.file_block, extent.count)
            self._allocator.release(extent.phys_block, extent.count)
            self.media.discard(extent.phys_block * SECTORS_PER_BLOCK,
                               extent.count * SECTORS_PER_BLOCK)
        inode.size = 0
        if had_blocks:
            self._notify(inode, "unmap")

    def map_range(self, inode: Inode, offset: int, length: int,
                  span: int = 0, path: str = "normal",
                  resolve_ns: Optional[int] = None
                  ) -> List[Tuple[int, int]]:
        """Translate a byte range to ``(lba, sectors)`` segments.

        Requires sector alignment (O_DIRECT semantics).  More than one
        segment means the BIO layer must split.  ``span``/``path`` tag the
        emitted ``fs_resolve`` tracepoint; the CPU cost itself is charged
        by the caller, mirrored here as ``cpu_ns`` (``resolve_ns``
        overrides it for call sites that charge a different amount, e.g.
        the IRQ-context split fallback which charges no fs cost).
        """
        if offset % SECTOR_SIZE or length % SECTOR_SIZE or length <= 0:
            raise InvalidArgument(
                f"O_DIRECT range must be 512-aligned: ({offset}, {length})"
            )
        segments: List[Tuple[int, int]] = []
        position = offset
        end = offset + length
        while position < end:
            block = position // BLOCK_SIZE
            phys = inode.extents.lookup(block)
            if phys is None:
                raise InvalidArgument(f"read of unmapped block {block}")
            within = position % BLOCK_SIZE
            take = min(end - position, BLOCK_SIZE - within)
            lba = phys * SECTORS_PER_BLOCK + within // SECTOR_SIZE
            sectors = take // SECTOR_SIZE
            if segments and segments[-1][0] + segments[-1][1] == lba:
                segments[-1] = (segments[-1][0], segments[-1][1] + sectors)
            else:
                segments.append((lba, sectors))
            position += take
        if self.bus.enabled:
            self.bus.emit(obs_events.FS_RESOLVE, self.clock(),
                          ino=inode.number, offset=offset, length=length,
                          segments=len(segments),
                          cpu_ns=(self.resolve_cost_ns if resolve_ns is None
                                  else resolve_ns),
                          span=span, path=path)
        return segments

    def fragmentation_of(self, inode: Inode) -> int:
        """Number of extents backing the inode (1 = fully contiguous)."""
        return len(inode.extents)

    # ------------------------------------------------------------------
    # Untimed media access (setup/verification paths)
    # ------------------------------------------------------------------

    def write_sync(self, inode: Inode, offset: int, data: bytes) -> None:
        """Allocate and write immediately, without simulated time."""
        if not data:
            return
        self.ensure_allocated(inode, offset, len(data))
        position = offset
        remaining = memoryview(bytes(data))
        while remaining:
            block = position // BLOCK_SIZE
            within = position % BLOCK_SIZE
            take = min(len(remaining), BLOCK_SIZE - within)
            phys = inode.extents.lookup(block)
            lba = phys * SECTORS_PER_BLOCK
            if within % SECTOR_SIZE == 0 and take % SECTOR_SIZE == 0:
                self.media.write(lba + within // SECTOR_SIZE,
                                 bytes(remaining[:take]))
            else:
                # Read-modify-write the containing block.
                existing = bytearray(self.media.read(lba, SECTORS_PER_BLOCK))
                existing[within : within + take] = bytes(remaining[:take])
                self.media.write(lba, bytes(existing))
            remaining = remaining[take:]
            position += take
        inode.size = max(inode.size, offset + len(data))

    def read_sync(self, inode: Inode, offset: int, length: int) -> bytes:
        """Read immediately, without simulated time."""
        if length <= 0:
            raise InvalidArgument("length must be positive")
        out = bytearray()
        position = offset
        end = offset + length
        while position < end:
            block = position // BLOCK_SIZE
            within = position % BLOCK_SIZE
            take = min(end - position, BLOCK_SIZE - within)
            phys = inode.extents.lookup(block)
            if phys is None:
                out += bytes(take)
            else:
                chunk = self.media.read(phys * SECTORS_PER_BLOCK,
                                        SECTORS_PER_BLOCK)
                out += chunk[within : within + take]
            position += take
        return bytes(out)
