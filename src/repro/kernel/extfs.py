"""An extent-based file system (the simulated ext4).

Provides the pieces of ext4 the paper's design interacts with:

* hierarchical namespace (create/mkdir/lookup/unlink/rename);
* per-inode extent trees mapping 4 KiB file blocks to physical blocks;
* a block allocator with controllable fragmentation, so experiments can
  force the multi-extent files that trigger the BIO split fallback;
* extent-change notifications — the file-system hook of §4 that drives
  NVMe-layer extent-cache invalidation.  Growing a file (pure allocation)
  reports ``"grow"``; unmapping or moving blocks reports ``"unmap"``, and
  only the latter must invalidate.

Metadata is authoritative in memory for the hot read paths the paper
measures; when a :class:`~repro.kernel.journal.JournalConfig` is supplied it
is *also* made durable through a write-ahead metadata journal plus
checkpoints in a reserved on-media region, so the file system survives a
simulated power cut (see :mod:`repro.kernel.journal` and
:mod:`repro.kernel.recovery`).  Every mutating operation then runs inside a
journal transaction and appends logical records (create/mkdir/unlink/
rename/alloc/punch/size); ``fsync`` through the kernel commits them.

File *data* lives on the backing :class:`~repro.device.blockdev.BlockDevice`.
``read_sync``/``write_sync`` move data without simulated time for test and
workload setup; timed data paths go through the kernel's BIO/NVMe layers.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.device.blockdev import SECTOR_SIZE, BlockDevice
from repro.errors import (
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NoSpace,
    NotADirectory,
)
from repro.kernel.extent import Extent, ExtentTree
from repro.kernel.journal import Journal, JournalConfig, serialize_fs
from repro.obs import events as obs_events
from repro.obs.bus import NULL_BUS

__all__ = ["BLOCK_SIZE", "ExtFs", "Inode", "SECTORS_PER_BLOCK"]

BLOCK_SIZE = 4096
SECTORS_PER_BLOCK = BLOCK_SIZE // SECTOR_SIZE


class Inode:
    """One file or directory."""

    def __init__(self, number: int, is_dir: bool):
        self.number = number
        self.is_dir = is_dir
        self.size = 0
        self.extents = ExtentTree()
        self.entries: Dict[str, "Inode"] = {} if is_dir else None

    def __repr__(self) -> str:
        kind = "dir" if self.is_dir else "file"
        return f"Inode({self.number}, {kind}, {self.size}B)"


class _Allocator:
    """Free-space manager over whole file-system blocks."""

    def __init__(self, total_blocks: int, reserved: int = 1):
        if total_blocks <= reserved:
            raise InvalidArgument("device too small for a file system")
        # Sorted list of (start, count) free runs.
        self._free: List[Tuple[int, int]] = [(reserved, total_blocks - reserved)]
        self.total_blocks = total_blocks

    def free_blocks(self) -> int:
        return sum(count for _start, count in self._free)

    def allocate(self, blocks: int, max_run: int,
                 rng: Optional[random.Random]) -> List[Tuple[int, int]]:
        """Take ``blocks`` blocks as one or more runs of at most ``max_run``.

        When ``max_run`` truncates a run, a one-block guard gap is skipped
        before the next piece so the resulting extents are genuinely
        discontiguous — the deterministic fragmentation knob that forces the
        BIO layer's multi-extent split path in experiments.
        """
        if blocks < 1:
            raise InvalidArgument("allocation must be >= 1 block")
        if blocks > self.free_blocks():
            raise NoSpace(f"need {blocks} blocks, "
                          f"{self.free_blocks()} free")
        pieces: List[Tuple[int, int]] = []
        need = blocks
        while need > 0:
            index = 0
            if rng is not None and len(self._free) > 1:
                index = rng.randrange(len(self._free))
            start, count = self._free[index]
            take = min(need, count, max_run)
            pieces.append((start, take))
            consumed = take
            if take < need and take == max_run and count > take:
                consumed = min(count, take + 1)  # guard gap
            if consumed == count:
                self._free.pop(index)
            else:
                self._free[index] = (start + consumed, count - consumed)
            need -= take
        return pieces

    def release(self, start: int, count: int) -> None:
        """Return a run to the free list, coalescing neighbours."""
        runs = self._free + [(start, count)]
        runs.sort()
        merged: List[Tuple[int, int]] = []
        for run_start, run_count in runs:
            if merged and merged[-1][0] + merged[-1][1] >= run_start:
                prev_start, prev_count = merged[-1]
                if prev_start + prev_count > run_start:
                    raise InvalidArgument("double free of blocks")
                merged[-1] = (prev_start, prev_count + run_count)
            else:
                merged.append((run_start, run_count))
        self._free = merged

    def reserve_run(self, start: int, count: int) -> None:
        """Mark ``[start, start+count)`` as in use (recovery rebuild).

        The run must currently be free; overlap with an already-reserved
        run raises, which is how recovery surfaces extent overlap baked
        into corrupt metadata.
        """
        if count < 1:
            raise InvalidArgument("reserve_run needs count >= 1")
        for index, (run_start, run_count) in enumerate(self._free):
            if run_start <= start and \
                    start + count <= run_start + run_count:
                pieces = []
                if start > run_start:
                    pieces.append((run_start, start - run_start))
                tail = run_start + run_count - (start + count)
                if tail:
                    pieces.append((start + count, tail))
                self._free[index : index + 1] = pieces
                return
        raise InvalidArgument(
            f"blocks [{start}, {start + count}) are not free")


class _TxnScope:
    """Context manager bracketing one journal transaction (no-op when the
    file system has no journal)."""

    __slots__ = ("journal",)

    def __init__(self, journal: Optional[Journal]):
        self.journal = journal

    def __enter__(self) -> "_TxnScope":
        if self.journal is not None:
            self.journal.begin()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.journal is not None:
            self.journal.end()
        return False


class ExtFs:
    """The file system: namespace + extents + allocator + media access."""

    def __init__(self, media: BlockDevice,
                 max_extent_blocks: int = 32768,
                 scatter_rng: Optional[random.Random] = None,
                 journal_config: Optional[JournalConfig] = None,
                 format_media: bool = True):
        self.media = media
        self.total_blocks = media.capacity_sectors // SECTORS_PER_BLOCK
        if journal_config is not None:
            self.journal: Optional[Journal] = Journal(media, journal_config)
            reserved = self.journal.reserved_blocks
        else:
            self.journal = None
            reserved = 1
        self._allocator = _Allocator(self.total_blocks, reserved=reserved)
        self.max_extent_blocks = max_extent_blocks
        self.scatter_rng = scatter_rng
        self._next_ino = 2
        self.root = Inode(1, is_dir=True)
        #: Subscribers notified as ``fn(inode, kind)`` with kind in
        #: {"grow", "unmap"} on every extent mutation.
        self.extent_change_listeners: List[Callable[[Inode, str], None]] = []
        #: Subscribers notified (no arguments) after crash recovery has
        #: rebuilt this file system from media — any layer caching derived
        #: metadata (the NVMe-layer extent cache) must drop it.
        self.recovery_listeners: List[Callable[[], None]] = []
        #: Observability: the kernel that owns this fs points these at its
        #: tracepoint bus and simulated clock; standalone ExtFs instances
        #: (unit tests, setup paths) keep the disabled defaults.
        self.bus = NULL_BUS
        self.clock: Callable[[], int] = lambda: 0
        self.resolve_cost_ns = 0
        #: Blocks punched by not-yet-committed txns.  They leave the
        #: extent trees immediately but rejoin the allocator only when the
        #: freeing txn is durable — reuse before commit would let new data
        #: overwrite blocks a crash rollback still references.
        self._pending_frees: List[Tuple[int, int]] = []
        #: Partial-block tail zeroings owed by not-yet-committed truncates,
        #: as (inode, file_block, lo, hi) byte ranges within the block.
        #: Zeroing in place immediately would destroy committed data if
        #: the truncate rolls back; like ext4's ordered data path, the
        #: zeros reach media only once the shrinking txn is durable.
        self._pending_zeroes: List[Tuple[Inode, int, int, int]] = []
        if self.journal is not None:
            self.journal.commit_listeners.append(self._release_pending_frees)
            self.journal.commit_listeners.append(self._apply_pending_zeroes)
        if self.journal is not None and format_media:
            # mkfs: an empty checkpoint + superblock, so a crash before the
            # first commit still recovers to a valid (empty) file system.
            self.journal.checkpoint_sync(serialize_fs(self))

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------

    def txn(self) -> _TxnScope:
        """Open a journal transaction scope (re-entrant, no-op without a
        journal).  Callers composing several mutations that must land
        atomically — the kernel's write path pairing an allocation with
        its size update — bracket them with this."""
        return _TxnScope(self.journal)

    def _log(self, record: Dict[str, object]) -> None:
        if self.journal is not None:
            self.journal.log(record)

    def checkpoint_sync(self) -> None:
        """Serialise all metadata to the on-media checkpoint, untimed.

        Used after untimed setup (``create_file``/``write_sync``) so that
        a subsequent crash does not roll back to an empty file system, and
        by the kernel's fsync path when the journal region fills.
        """
        if self.journal is None:
            raise InvalidArgument("file system has no journal")
        self.journal.checkpoint_sync(serialize_fs(self))

    def notify_recovery(self) -> None:
        """Tell derived-metadata caches that recovery replaced the fs."""
        for listener in self.recovery_listeners:
            listener()

    def _release_pending_frees(self) -> None:
        for start, count in self._pending_frees:
            self._allocator.release(start, count)
        self._pending_frees.clear()

    def _apply_pending_zeroes(self) -> None:
        pending, self._pending_zeroes = self._pending_zeroes, []
        for inode, file_block, lo, hi in pending:
            phys = inode.extents.lookup(file_block)
            if phys is None or lo >= hi:
                continue  # block punched/unlinked since; nothing kept
            lba = phys * SECTORS_PER_BLOCK
            buffer = bytearray(self.media.read(lba, SECTORS_PER_BLOCK))
            buffer[lo:hi] = bytes(hi - lo)
            self.media.write(lba, bytes(buffer))

    def _zero_block_tail(self, inode: Inode, new_size: int) -> None:
        """Zero ``[new_size, end-of-block)`` of the kept partial block, so
        a later extension past it reads zeros (POSIX).  A data write, not
        a journalled metadata change: immediate without a journal, owed
        until commit with one (see ``_pending_zeroes``)."""
        file_block = new_size // BLOCK_SIZE
        within = new_size % BLOCK_SIZE
        if self.journal is not None:
            self._pending_zeroes.append(
                (inode, file_block, within, BLOCK_SIZE))
            return
        phys = inode.extents.lookup(file_block)
        if phys is None:
            return
        lba = phys * SECTORS_PER_BLOCK
        buffer = bytearray(self.media.read(lba, SECTORS_PER_BLOCK))
        buffer[within:] = bytes(BLOCK_SIZE - within)
        self.media.write(lba, bytes(buffer))

    def _trim_pending_zeroes(self, inode: Inode, offset: int,
                             length: int) -> None:
        """A write into ``[offset, offset+length)`` supersedes any owed
        zeroing there: the newest data must win at commit time."""
        if not self._pending_zeroes:
            return
        kept: List[Tuple[Inode, int, int, int]] = []
        for entry in self._pending_zeroes:
            node, file_block, lo, hi = entry
            base = file_block * BLOCK_SIZE
            if node is not inode or base + hi <= offset or \
                    base + lo >= offset + length:
                kept.append(entry)
                continue
            if base + lo < offset:
                kept.append((node, file_block, lo, offset - base))
            if base + hi > offset + length:
                kept.append((node, file_block, offset + length - base, hi))
        self._pending_zeroes = kept

    def _free_blocks(self, start: int, count: int) -> None:
        """Free a physical run, honouring commit ordering.

        Without a journal: immediate release + TRIM (the old behaviour,
        byte-identical traces).  With one: the run is parked until the
        freeing txn commits, and the data stays on media — an uncommitted
        unlink/punch rolls back at recovery and must still find it.
        """
        if self.journal is None:
            self._allocator.release(start, count)
            self.media.discard(start * SECTORS_PER_BLOCK,
                               count * SECTORS_PER_BLOCK)
        else:
            self._pending_frees.append((start, count))

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------

    @staticmethod
    def _split(path: str) -> List[str]:
        if not path.startswith("/"):
            raise InvalidArgument(f"path must be absolute: {path!r}")
        return [part for part in path.split("/") if part]

    def _walk(self, parts: List[str]) -> Inode:
        node = self.root
        for part in parts:
            if not node.is_dir:
                raise NotADirectory("/".join(parts))
            if part not in node.entries:
                raise FileNotFound("/".join(parts))
            node = node.entries[part]
        return node

    def lookup(self, path: str) -> Inode:
        return self._walk(self._split(path))

    def exists(self, path: str) -> bool:
        try:
            self.lookup(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    def _parent_and_name(self, path: str) -> Tuple[Inode, str]:
        parts = self._split(path)
        if not parts:
            raise InvalidArgument("path refers to the root")
        parent = self._walk(parts[:-1])
        if not parent.is_dir:
            raise NotADirectory(path)
        return parent, parts[-1]

    def _new_inode(self, is_dir: bool) -> Inode:
        inode = Inode(self._next_ino, is_dir)
        self._next_ino += 1
        return inode

    def create(self, path: str) -> Inode:
        parent, name = self._parent_and_name(path)
        if name in parent.entries:
            raise FileExists(path)
        with self.txn():
            inode = self._new_inode(is_dir=False)
            parent.entries[name] = inode
            self._log({"op": "create", "path": path, "ino": inode.number})
        return inode

    def mkdir(self, path: str) -> Inode:
        parent, name = self._parent_and_name(path)
        if name in parent.entries:
            raise FileExists(path)
        with self.txn():
            inode = self._new_inode(is_dir=True)
            parent.entries[name] = inode
            self._log({"op": "mkdir", "path": path, "ino": inode.number})
        return inode

    def unlink(self, path: str) -> None:
        parent, name = self._parent_and_name(path)
        if name not in parent.entries:
            raise FileNotFound(path)
        inode = parent.entries[name]
        if inode.is_dir:
            raise IsADirectory(path)
        with self.txn():
            del parent.entries[name]
            self._free_all_extents(inode)
            self._log({"op": "unlink", "path": path})

    def rename(self, old_path: str, new_path: str) -> None:
        """Atomic namespace swap; replaces an existing plain file at the
        destination (the classic write-new-then-rename pattern)."""
        old_parent, old_name = self._parent_and_name(old_path)
        if old_name not in old_parent.entries:
            raise FileNotFound(old_path)
        inode = old_parent.entries[old_name]
        new_parent, new_name = self._parent_and_name(new_path)
        displaced = new_parent.entries.get(new_name)
        if displaced is not None and displaced.is_dir:
            raise IsADirectory(new_path)
        with self.txn():
            del old_parent.entries[old_name]
            new_parent.entries[new_name] = inode
            if displaced is not None:
                self._free_all_extents(displaced)
            self._log({"op": "rename", "old": old_path, "new": new_path})

    def listdir(self, path: str) -> List[str]:
        inode = self.lookup(path)
        if not inode.is_dir:
            raise NotADirectory(path)
        return sorted(inode.entries)

    # ------------------------------------------------------------------
    # Extents and allocation
    # ------------------------------------------------------------------

    def _notify(self, inode: Inode, kind: str) -> None:
        if self.bus.enabled:
            self.bus.emit(obs_events.EXTENT_CHANGE, self.clock(),
                          ino=inode.number, kind=kind)
        for listener in self.extent_change_listeners:
            listener(inode, kind)

    def ensure_allocated(self, inode: Inode, offset: int, length: int) -> bool:
        """Allocate blocks so ``[offset, offset+length)`` is fully mapped.

        Returns True if any new extent was added (a "grow" change).
        """
        if inode.is_dir:
            raise IsADirectory(f"inode {inode.number}")
        if length <= 0:
            raise InvalidArgument("length must be positive")
        self._trim_pending_zeroes(inode, offset, length)
        first = offset // BLOCK_SIZE
        last = (offset + length - 1) // BLOCK_SIZE
        changed = False
        block = first
        with self.txn():
            logged: List[List[int]] = []
            while block <= last:
                if inode.extents.lookup(block) is not None:
                    block += 1
                    continue
                # Find the hole's end within our range to allocate in one
                # go.
                hole_end = block
                while hole_end <= last and \
                        inode.extents.lookup(hole_end) is None:
                    hole_end += 1
                need = hole_end - block
                pieces = self._allocator.allocate(
                    need, self.max_extent_blocks, self.scatter_rng)
                file_block = block
                for start, count in pieces:
                    inode.extents.add(Extent(file_block, start, count))
                    logged.append([file_block, start, count])
                    file_block += count
                changed = True
                block = hole_end
            if changed and logged:
                # The physical placement is recorded, not re-derived, so
                # replay maps the file onto the data already on media.
                self._log({"op": "alloc", "ino": inode.number,
                           "extents": logged})
        if changed:
            self._notify(inode, "grow")
        return changed

    def punch_range(self, inode: Inode, offset: int, length: int) -> None:
        """Unmap and free ``[offset, offset+length)`` (block aligned)."""
        if offset % BLOCK_SIZE or length % BLOCK_SIZE:
            raise InvalidArgument("punch must be block aligned")
        with self.txn():
            punched = inode.extents.punch(offset // BLOCK_SIZE,
                                          length // BLOCK_SIZE)
            for extent in punched:
                self._free_blocks(extent.phys_block, extent.count)
            if punched:
                self._log({"op": "punch", "ino": inode.number,
                           "file_block": offset // BLOCK_SIZE,
                           "count": length // BLOCK_SIZE})
        if punched:
            self._notify(inode, "unmap")

    def truncate(self, inode: Inode, new_size: int) -> None:
        if new_size < 0:
            raise InvalidArgument("negative size")
        old_size = inode.size
        old_blocks = (old_size + BLOCK_SIZE - 1) // BLOCK_SIZE
        new_blocks = (new_size + BLOCK_SIZE - 1) // BLOCK_SIZE
        with self.txn():
            if new_blocks < old_blocks:
                self.punch_range(inode, new_blocks * BLOCK_SIZE,
                                 (old_blocks - new_blocks) * BLOCK_SIZE)
            self.set_size(inode, new_size)
        if 0 < new_size < old_size and new_size % BLOCK_SIZE:
            self._zero_block_tail(inode, new_size)

    def set_size(self, inode: Inode, new_size: int) -> None:
        """Update ``inode.size``, journalled.

        The kernel's timed write path calls this (instead of assigning
        ``inode.size`` directly) so the size change lands in the same
        transaction as the allocation it completes.
        """
        if new_size == inode.size:
            return
        with self.txn():
            inode.size = new_size
            self._log({"op": "size", "ino": inode.number,
                       "size": new_size})

    def _free_all_extents(self, inode: Inode) -> None:
        had_blocks = len(inode.extents) > 0
        for extent in inode.extents.extents():
            inode.extents.punch(extent.file_block, extent.count)
            self._free_blocks(extent.phys_block, extent.count)
        inode.size = 0
        if had_blocks:
            self._notify(inode, "unmap")

    def map_range(self, inode: Inode, offset: int, length: int,
                  span: int = 0, path: str = "normal",
                  resolve_ns: Optional[int] = None
                  ) -> List[Tuple[int, int]]:
        """Translate a byte range to ``(lba, sectors)`` segments.

        Requires sector alignment (O_DIRECT semantics).  More than one
        segment means the BIO layer must split.  ``span``/``path`` tag the
        emitted ``fs_resolve`` tracepoint; the CPU cost itself is charged
        by the caller, mirrored here as ``cpu_ns`` (``resolve_ns``
        overrides it for call sites that charge a different amount, e.g.
        the IRQ-context split fallback which charges no fs cost).
        """
        if offset % SECTOR_SIZE or length % SECTOR_SIZE or length <= 0:
            raise InvalidArgument(
                f"O_DIRECT range must be 512-aligned: ({offset}, {length})"
            )
        segments: List[Tuple[int, int]] = []
        position = offset
        end = offset + length
        while position < end:
            block = position // BLOCK_SIZE
            phys = inode.extents.lookup(block)
            if phys is None:
                raise InvalidArgument(f"read of unmapped block {block}")
            within = position % BLOCK_SIZE
            take = min(end - position, BLOCK_SIZE - within)
            lba = phys * SECTORS_PER_BLOCK + within // SECTOR_SIZE
            sectors = take // SECTOR_SIZE
            if segments and segments[-1][0] + segments[-1][1] == lba:
                segments[-1] = (segments[-1][0], segments[-1][1] + sectors)
            else:
                segments.append((lba, sectors))
            position += take
        if self.bus.enabled:
            self.bus.emit(obs_events.FS_RESOLVE, self.clock(),
                          ino=inode.number, offset=offset, length=length,
                          segments=len(segments),
                          cpu_ns=(self.resolve_cost_ns if resolve_ns is None
                                  else resolve_ns),
                          span=span, path=path)
        return segments

    def fragmentation_of(self, inode: Inode) -> int:
        """Number of extents backing the inode (1 = fully contiguous)."""
        return len(inode.extents)

    # ------------------------------------------------------------------
    # Untimed media access (setup/verification paths)
    # ------------------------------------------------------------------

    def write_sync(self, inode: Inode, offset: int, data: bytes) -> None:
        """Allocate and write immediately, without simulated time."""
        if not data:
            return
        with self.txn():
            self.ensure_allocated(inode, offset, len(data))
            self.set_size(inode, max(inode.size, offset + len(data)))
        position = offset
        remaining = memoryview(bytes(data))
        while remaining:
            block = position // BLOCK_SIZE
            within = position % BLOCK_SIZE
            take = min(len(remaining), BLOCK_SIZE - within)
            phys = inode.extents.lookup(block)
            lba = phys * SECTORS_PER_BLOCK
            if within % SECTOR_SIZE == 0 and take % SECTOR_SIZE == 0:
                self.media.write(lba + within // SECTOR_SIZE,
                                 bytes(remaining[:take]))
            else:
                # Read-modify-write the containing block.
                existing = bytearray(self.media.read(lba, SECTORS_PER_BLOCK))
                existing[within : within + take] = bytes(remaining[:take])
                self.media.write(lba, bytes(existing))
            remaining = remaining[take:]
            position += take

    def read_sync(self, inode: Inode, offset: int, length: int) -> bytes:
        """Read immediately, without simulated time.

        A zero-length read returns ``b""`` (POSIX ``pread`` semantics);
        only a negative length is an error.
        """
        if length < 0:
            raise InvalidArgument("length must be >= 0")
        if length == 0:
            return b""
        out = bytearray()
        position = offset
        end = offset + length
        while position < end:
            block = position // BLOCK_SIZE
            within = position % BLOCK_SIZE
            take = min(end - position, BLOCK_SIZE - within)
            phys = inode.extents.lookup(block)
            if phys is None:
                out += bytes(take)
            else:
                chunk = bytearray(self.media.read(phys * SECTORS_PER_BLOCK,
                                                  SECTORS_PER_BLOCK))
                # Zeros owed by an uncommitted truncate are already
                # visible to readers, like dirtied-but-unflushed pages.
                for node, file_block, lo, hi in self._pending_zeroes:
                    if node is inode and file_block == block:
                        chunk[lo:hi] = bytes(hi - lo)
                out += chunk[within : within + take]
            position += take
        return bytes(out)
