"""The per-kernel QoS authority: buckets, weights, and QoS tracepoints.

One :class:`QosManager` is built by the kernel when its
:class:`~repro.kernel.kernel.KernelConfig` carries a
:class:`~repro.qos.tenancy.QosConfig`; every enforcement point
(storage-target admission, NVMe WFQ arbitration, chain-engine pacing)
consults it rather than owning policy of its own.  All decisions are
deterministic functions of simulated time, so QoS-enabled runs replay
byte-identically.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.obs import events as obs_events
from repro.obs.bus import NULL_BUS
from repro.qos.shapers import TokenBucket
from repro.qos.tenancy import QosConfig, Tenant

__all__ = ["QosManager"]


class QosManager:
    """Owns per-tenant token buckets and answers QoS policy questions."""

    def __init__(self, config: QosConfig, bus=NULL_BUS,
                 clock: Callable[[], int] = lambda: 0):
        self.config = config
        self.bus = bus
        self.clock = clock
        self._admit_buckets: Dict[str, TokenBucket] = {}
        self._chain_buckets: Dict[str, TokenBucket] = {}
        # -- plain counters (maintained with or without a bus) ----------
        self.admitted: Dict[str, int] = {}
        self.admit_rejected: Dict[str, int] = {}
        self.chain_throttles: Dict[str, int] = {}
        self.chain_throttle_ns: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def tenant(self, name: str) -> Tenant:
        return self.config.tenant(name)

    def weight_of(self, name: Optional[str]) -> int:
        return self.config.weight_of(name)

    @staticmethod
    def tenant_of(proc) -> Optional[str]:
        """The accounting key for a process: tenant name, else ``None``."""
        tenant = getattr(proc, "tenant", None)
        return tenant.name if tenant is not None else None

    # ------------------------------------------------------------------
    # Admission control (storage-target boundary)
    # ------------------------------------------------------------------

    def admit(self, tenant_name: Optional[str], cost: int = 1) -> int:
        """Draw ``cost`` admission tokens for ``tenant_name``.

        Returns 0 when admitted.  When the tenant is over rate, returns
        the exact simulated-time ``retry_after_ns`` after which the same
        request will succeed, emits ``qos_admit_reject``, and consumes
        nothing — the caller turns this into typed ``EAGAIN``
        backpressure.  System traffic (``tenant_name is None``) is never
        refused: admission control exists to protect the kernel's own
        work (journal, replication) from tenants, not the reverse.
        """
        if tenant_name is None:
            return 0
        tenant = self.tenant(tenant_name)
        rate = (tenant.admit_tokens_per_ms
                if tenant.admit_tokens_per_ms is not None
                else self.config.admit_tokens_per_ms)
        if rate <= 0:
            self.admitted[tenant_name] = \
                self.admitted.get(tenant_name, 0) + 1
            return 0
        bucket = self._admit_buckets.get(tenant_name)
        if bucket is None:
            burst = (tenant.admit_burst if tenant.admit_burst is not None
                     else self.config.admit_burst)
            bucket = TokenBucket(rate, burst, now_ns=self.clock())
            self._admit_buckets[tenant_name] = bucket
        retry_after = bucket.take(self.clock(), cost)
        if retry_after == 0:
            self.admitted[tenant_name] = \
                self.admitted.get(tenant_name, 0) + 1
            return 0
        self.admit_rejected[tenant_name] = \
            self.admit_rejected.get(tenant_name, 0) + 1
        if self.bus.enabled:
            self.bus.emit(obs_events.QOS_ADMIT_REJECT, self.clock(),
                          tenant=tenant_name, cost=cost,
                          retry_after_ns=retry_after,
                          rejected=self.admit_rejected[tenant_name])
        return retry_after

    # ------------------------------------------------------------------
    # Chain-engine pacing (IRQ-context resubmissions)
    # ------------------------------------------------------------------

    def chain_pace(self, tenant_name: Optional[str]) -> int:
        """ns a chain resubmission must wait to stay within rate.

        Pacing, not refusal: the resubmission always proceeds, but a
        tenant whose chain storm exceeds ``chain_tokens_per_ms * weight``
        accrues deterministic delay, bounding the IRQ-path bandwidth it
        can take from other tenants.  Untenanted chains are never paced.
        """
        rate = self.config.chain_tokens_per_ms
        if rate <= 0 or tenant_name is None:
            return 0
        bucket = self._chain_buckets.get(tenant_name)
        if bucket is None:
            bucket = TokenBucket(rate * self.weight_of(tenant_name),
                                 self.config.chain_burst,
                                 now_ns=self.clock())
            self._chain_buckets[tenant_name] = bucket
        delay = bucket.pace(self.clock())
        if delay:
            self.chain_throttles[tenant_name] = \
                self.chain_throttles.get(tenant_name, 0) + 1
            self.chain_throttle_ns[tenant_name] = \
                self.chain_throttle_ns.get(tenant_name, 0) + delay
            if self.bus.enabled:
                self.bus.emit(obs_events.QOS_THROTTLE, self.clock(),
                              tenant=tenant_name, delay_ns=delay,
                              throttles=self.chain_throttles[tenant_name])
        return delay

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def note_depth(self, queue: int, tenant_name: Optional[str],
                   depth: int) -> None:
        """Emit ``qos_tenant_depth`` for one WFQ enqueue (bus-gated)."""
        if self.bus.enabled:
            self.bus.emit(obs_events.QOS_TENANT_DEPTH, self.clock(),
                          tenant=tenant_name or "_system", queue=queue,
                          depth=depth)
