"""Deterministic traffic shapers: token buckets and weighted-fair queues.

Both shapers are pure integer arithmetic over *simulated* nanoseconds —
no wall clock, no randomness — so a seeded run with QoS enabled is
byte-identical on every replay.  Rates are fixed-point with one token =
``SCALE`` units; at ``SCALE = 1_000_000`` a rate of "tokens per
millisecond" is exactly "units per nanosecond", which keeps every refill
computation a single multiply.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import InvalidArgument

__all__ = ["SCALE", "TokenBucket", "WfqScheduler"]

#: Fixed-point scale: 1 token = SCALE units; tokens/ms = units/ns.
SCALE = 1_000_000


class TokenBucket:
    """A deterministic token bucket over simulated time.

    ``take`` is admission-style: it either grants (consuming tokens) or
    refuses *without* consuming, returning the exact simulated-time
    delay after which the same request would succeed — the
    ``retry_after_ns`` carried by typed backpressure.  ``pace`` is
    throttle-style: it always consumes (the level may go negative) and
    returns how long the caller must sleep to stay within rate — work is
    delayed, never dropped.
    """

    def __init__(self, tokens_per_ms: int, burst: int, now_ns: int = 0):
        if tokens_per_ms < 1:
            raise InvalidArgument("tokens_per_ms must be >= 1")
        if burst < 1:
            raise InvalidArgument("burst must be >= 1")
        self.rate = tokens_per_ms  # units per nanosecond (see SCALE)
        self.capacity = burst * SCALE
        self.level = self.capacity
        self.last_ns = now_ns

    def _advance(self, now_ns: int) -> None:
        if now_ns > self.last_ns:
            self.level = min(self.capacity,
                             self.level + (now_ns - self.last_ns) * self.rate)
            self.last_ns = now_ns

    def take(self, now_ns: int, tokens: int = 1) -> int:
        """Try to draw ``tokens``; 0 if granted, else ``retry_after_ns``."""
        self._advance(now_ns)
        need = tokens * SCALE
        if self.level >= need:
            self.level -= need
            return 0
        deficit = need - self.level
        return -(-deficit // self.rate)  # ceil division

    def pace(self, now_ns: int, tokens: int = 1) -> int:
        """Draw ``tokens`` unconditionally; ns the caller must sleep."""
        self._advance(now_ns)
        self.level -= tokens * SCALE
        if self.level >= 0:
            return 0
        return -(-(-self.level) // self.rate)  # ceil(-level / rate)


class WfqScheduler:
    """Start-time-fair weighted queueing over opaque items.

    Classic SFQ: each arrival is stamped with a virtual start (the max
    of the scheduler's virtual time and the flow's previous finish) and
    a virtual finish (``start + cost/weight``); dispatch always picks
    the minimum finish tag, and virtual time advances to the dispatched
    item's start.  Backlogged flows therefore share capacity in
    proportion to their weights, while the scheduler stays
    work-conserving — an idle flow's share is redistributed, never
    reserved.  Ties break on a monotone arrival sequence number, so the
    dispatch order is a deterministic function of the arrival order.
    """

    def __init__(self, weight_of: Callable[[Optional[str]], int]):
        self.weight_of = weight_of
        self._heap: List[Tuple[int, int, int, Optional[str], Any]] = []
        self._finish: Dict[Optional[str], int] = {}
        self._vtime = 0
        self._seq = 0
        #: Queued items per flow key (for depth observability).
        self.key_depth: Dict[Optional[str], int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, key: Optional[str], item: Any, cost: int = 1) -> int:
        """Enqueue ``item`` for flow ``key``; returns the flow's depth."""
        weight = max(1, self.weight_of(key))
        start = max(self._vtime, self._finish.get(key, 0))
        finish = start + (max(1, cost) * SCALE) // weight
        self._finish[key] = finish
        self._seq += 1
        heapq.heappush(self._heap, (finish, self._seq, start, key, item))
        depth = self.key_depth.get(key, 0) + 1
        self.key_depth[key] = depth
        return depth

    def pop(self) -> Tuple[Optional[str], Any]:
        """Dequeue the item with the minimum virtual finish tag."""
        finish, _seq, start, key, item = heapq.heappop(self._heap)
        if start > self._vtime:
            self._vtime = start
        depth = self.key_depth.get(key, 1) - 1
        if depth:
            self.key_depth[key] = depth
        else:
            self.key_depth.pop(key, None)
        return key, item
