"""Multi-tenant QoS: tenants, token buckets, WFQ, and admission control.

The subsystem the exokernel story needs at production traffic levels:

* :mod:`~repro.qos.tenancy` — :class:`Tenant` identity and the
  :class:`QosConfig` policy block (default-off; a kernel without one is
  byte-identical to a tree without this package).
* :mod:`~repro.qos.shapers` — deterministic :class:`TokenBucket` and
  start-time-fair :class:`WfqScheduler` primitives.
* :mod:`~repro.qos.manager` — :class:`QosManager`, the per-kernel
  authority consulted by storage-target admission, NVMe submission-queue
  arbitration, and chain-engine pacing.

Backpressure is typed end to end: an admission refusal raises (or is
carried over the wire as) :class:`repro.errors.QosRejected` with errno
``EAGAIN`` and a simulated-time ``retry_after_ns``.
"""

from repro.qos.manager import QosManager
from repro.qos.shapers import SCALE, TokenBucket, WfqScheduler
from repro.qos.tenancy import QosConfig, Tenant

__all__ = [
    "QosConfig",
    "QosManager",
    "SCALE",
    "Tenant",
    "TokenBucket",
    "WfqScheduler",
]
