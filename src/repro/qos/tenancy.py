"""Tenant identities and the QoS configuration surface.

The exokernel pitch of the source paper is that the kernel *safely
multiplexes* raw storage among untrusting applications.  This module
names the parties being multiplexed: a :class:`Tenant` is a first-class
identity (replacing pid-keyed ad-hoc accounting) that owns a weight and
optional rate limits, and :class:`QosConfig` is the single knob block
threaded through :class:`~repro.kernel.kernel.KernelConfig`.

``QosConfig`` is **default-off**: a kernel built without one constructs
no QoS objects, draws no extra randomness, and emits no extra events —
its behaviour is byte-identical to a tree without this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import InvalidArgument

__all__ = ["QosConfig", "Tenant"]


@dataclass(frozen=True)
class Tenant:
    """One isolation domain: a name, a WFQ weight, and optional rates.

    ``weight`` sets the tenant's share of device bandwidth under
    weighted-fair queueing (a weight-3 tenant gets 3x the throughput of
    a weight-1 tenant when both are backlogged).  ``admit_tokens_per_ms``
    / ``admit_burst`` override the config-wide admission rate for this
    tenant; ``None`` inherits the :class:`QosConfig` defaults.
    """

    name: str
    weight: int = 1
    admit_tokens_per_ms: Optional[int] = None
    admit_burst: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidArgument("name: tenant name must be non-empty")
        if self.weight < 1:
            raise InvalidArgument(f"weight: must be >= 1, got {self.weight}")
        if self.admit_tokens_per_ms is not None and \
                self.admit_tokens_per_ms < 1:
            raise InvalidArgument("admit_tokens_per_ms: must be >= 1")
        if self.admit_burst is not None and self.admit_burst < 1:
            raise InvalidArgument("admit_burst: must be >= 1")


@dataclass(frozen=True)
class QosConfig:
    """Per-tenant QoS policy for one kernel (default-off when absent).

    * ``tenants`` declares the known tenants and their weights; traffic
      from an undeclared tenant gets ``default_weight`` and the
      config-wide rates.  Untenanted kernel-internal I/O (journal
      commits, cache flushes) schedules at ``system_weight``.
    * ``admit_tokens_per_ms`` / ``admit_burst`` arm admission control at
      the storage-target boundary: each tenant draws one token per RPC
      from a deterministic bucket, and an empty bucket refuses the op
      with typed ``EAGAIN`` backpressure carrying ``retry_after_ns``.
      ``0`` disables admission (WFQ still applies).
    * ``chain_tokens_per_ms`` / ``chain_burst`` arm the chain-engine
      throttle: BPF resubmissions beyond the rate are *paced* (delayed,
      never dropped) so one tenant's chain storm cannot monopolise the
      IRQ path.  The per-tenant rate scales with the tenant's weight.
      ``0`` disables the throttle.
    * ``wfq`` arms weighted-fair queueing at the NVMe submission queues.
    """

    tenants: Tuple[Tenant, ...] = ()
    default_weight: int = 1
    system_weight: int = 8
    admit_tokens_per_ms: int = 0
    admit_burst: int = 32
    chain_tokens_per_ms: int = 0
    chain_burst: int = 32
    wfq: bool = True

    def __post_init__(self) -> None:
        if self.default_weight < 1 or self.system_weight < 1:
            raise InvalidArgument("default_weight/system_weight: must be >= 1")
        if self.admit_tokens_per_ms < 0 or self.chain_tokens_per_ms < 0:
            raise InvalidArgument("token rates must be >= 0 (0 = disabled)")
        if self.admit_burst < 1 or self.chain_burst < 1:
            raise InvalidArgument("admit_burst/chain_burst: must be >= 1")
        names = [tenant.name for tenant in self.tenants]
        if len(names) != len(set(names)):
            raise InvalidArgument("tenants: duplicate tenant name")

    def tenant(self, name: str) -> Tenant:
        """The declared :class:`Tenant`, or a default-weight one."""
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        return Tenant(name, weight=self.default_weight)

    def weight_of(self, name: Optional[str]) -> int:
        """WFQ weight for a tenant name (``None`` = kernel-internal)."""
        if name is None:
            return self.system_weight
        return self.tenant(name).weight
