"""Zero-dependency pub/sub tracepoint bus.

The :class:`TraceBus` is the spine of the observability layer: every
instrumented call site does ``if bus.enabled: bus.emit(...)`` so a
disabled bus costs a single attribute check (verified by
``benchmarks/bench_obs_overhead.py``).  Subscribers register per event
type or as wildcards and receive :class:`~repro.obs.events.TraceEvent`
records synchronously, in subscription order, which keeps traces
deterministic under the single-threaded simulation engine.

A module-level *default bus* lets the CLI observe experiments that
construct their own :class:`~repro.kernel.kernel.Kernel` instances:
``set_default_bus`` installs an enabled bus for the duration of a run
and every Kernel built without an explicit ``bus`` picks it up.  The
default default is :data:`NULL_BUS`, a permanently disabled bus.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.obs.events import SPAN_END, SPAN_START, TraceEvent

__all__ = ["NULL_BUS", "TraceBus", "get_default_bus", "set_default_bus"]

Handler = Callable[[TraceEvent], None]


class TraceBus:
    """Synchronous pub/sub bus for typed tracepoint events.

    ``enabled`` is a plain attribute so instrumented hot paths can guard
    emission with a single load.  ``emit`` stamps nothing itself — the
    caller passes simulated time — so events are a pure function of the
    workload.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._subs: Dict[str, List[Handler]] = {}
        self._all_subs: List[Handler] = []
        self._next_span = 0
        self.events_emitted = 0

    # -- subscription ------------------------------------------------------

    def subscribe(self, handler: Handler, etype: Optional[str] = None) -> Handler:
        """Register ``handler`` for ``etype`` (or all events when None)."""
        if etype is None:
            self._all_subs.append(handler)
        else:
            self._subs.setdefault(etype, []).append(handler)
        return handler

    def unsubscribe(self, handler: Handler, etype: Optional[str] = None) -> None:
        """Remove a previously registered handler (no-op if absent)."""
        pool = self._all_subs if etype is None else self._subs.get(etype, [])
        try:
            pool.remove(handler)
        except ValueError:
            pass

    # -- emission ----------------------------------------------------------

    def emit(self, etype: str, ts: int, **fields: Any) -> None:
        """Publish one event at simulated time ``ts``.

        Returns immediately when the bus is disabled; otherwise dispatches
        synchronously to type-specific subscribers first, then wildcards.
        """
        if not self.enabled:
            return
        event = TraceEvent(ts, etype, fields)
        self.events_emitted += 1
        for handler in self._subs.get(etype, ()):
            handler(event)
        for handler in self._all_subs:
            handler(event)

    # -- spans -------------------------------------------------------------

    def span_start(self, name: str, ts: int, parent: int = 0, **attrs: Any) -> int:
        """Open a span and return its id (0 when the bus is disabled).

        Span ids come from a per-bus counter, so they are deterministic
        for a given workload and seed.
        """
        if not self.enabled:
            return 0
        self._next_span += 1
        sid = self._next_span
        self.emit(SPAN_START, ts, span=sid, parent=parent, name=name, **attrs)
        return sid

    def span_end(self, sid: int, ts: int, **attrs: Any) -> None:
        """Close span ``sid``; no-op when disabled or ``sid`` is 0."""
        if not self.enabled or sid == 0:
            return
        self.emit(SPAN_END, ts, span=sid, **attrs)


#: Permanently disabled bus used when tracing is off.
NULL_BUS = TraceBus(enabled=False)

_default_bus: TraceBus = NULL_BUS


def get_default_bus() -> TraceBus:
    """Return the process-wide default bus (NULL_BUS unless overridden)."""
    return _default_bus


def set_default_bus(bus: TraceBus) -> TraceBus:
    """Install ``bus`` as the default; returns the previous default."""
    global _default_bus
    previous = _default_bus
    _default_bus = bus
    return previous
