"""One-stop observability session for experiments and the CLI.

``ObsSession`` bundles an enabled :class:`~repro.obs.bus.TraceBus`, a
:class:`~repro.obs.metrics.MetricsRegistry` with the standard
subscribers attached, a :class:`~repro.obs.spans.SpanCollector`, and an
optional JSONL recorder.  Used as a context manager it installs its bus
as the process default, so experiment code that builds Kernels without
an explicit bus is observed transparently::

    with ObsSession(record_jsonl=True) as obs:
        fig3_throughput(quick=True)
    print(obs.render_report())
    obs.write_trace_jsonl("trace.jsonl")
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.bus import TraceBus, set_default_bus
from repro.obs.export import JsonlRecorder, dump_metrics_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanCollector
from repro.obs.subscribers import (
    LayerAttribution,
    attach_standard_metrics,
)

__all__ = ["ObsSession"]


class ObsSession:
    """Enabled bus + registry + attribution + spans, as a context manager."""

    def __init__(self, record_jsonl: bool = False, max_roots: int = 256):
        self.bus = TraceBus(enabled=True)
        self.registry = MetricsRegistry()
        self.attribution = LayerAttribution(self.bus, self.registry)
        attach_standard_metrics(self.bus, self.registry)
        self.spans = SpanCollector(self.bus, max_roots=max_roots)
        self.recorder = JsonlRecorder(self.bus) if record_jsonl else None
        self._previous_bus: Optional[TraceBus] = None

    def __enter__(self) -> "ObsSession":
        self._previous_bus = set_default_bus(self.bus)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._previous_bus is not None:
            set_default_bus(self._previous_bus)
            self._previous_bus = None

    # -- exports -----------------------------------------------------------

    def write_trace_jsonl(self, path: str) -> int:
        if self.recorder is None:
            raise ValueError("session was created with record_jsonl=False")
        return self.recorder.write(path)

    def metrics_jsonl(self) -> str:
        return dump_metrics_jsonl(self.registry)

    # -- reporting ---------------------------------------------------------

    def render_report(self, cost_model=None,
                      device_ns: Optional[int] = None) -> str:
        """Attribution table + chain-bypass summary + counters + spans."""
        from repro.bench.tables import format_table  # local: avoid cycle

        lines: List[str] = []
        rows = self.attribution.table1_comparison(cost_model, device_ns)
        table_rows = []
        for row in rows:
            table_rows.append({
                "layer": row["layer"],
                "table1_ns": ("-" if row["table1_ns"] is None
                              else str(row["table1_ns"])),
                "normal_per_io": f"{row['normal_per_io']:.0f}",
                "delta": ("-" if row["delta"] is None
                          else f"{row['delta']:+.0f}"),
                "chain_per_io": f"{row['chain_per_io']:.0f}",
            })
        lines.append(format_table(
            "Per-layer CPU-ns attribution (per completed I/O)",
            ("layer", "table1_ns", "normal_per_io", "delta", "chain_per_io"),
            table_rows,
        ))
        summary = self.attribution.bypass_summary()
        if summary["chain_ios"]:
            # A layer is "skipped" when recycled hops pay (much) less for
            # it than a normal I/O does — it is charged once per chain at
            # setup, not once per hop.
            skipped = [entry["layer"] for entry in summary["layers"]
                       if entry["normal_per_io"] == 0
                       or entry["chain_per_hop"]
                       < 0.5 * entry["normal_per_io"]]
            lines.append("")
            lines.append(
                f"chain bypass: {summary['chain_ios']} chained I/Os, "
                f"{summary['total_hops']} hops "
                f"({summary['recycled_hops']} recycled in IRQ context); "
                f"recycled hops skip: {', '.join(skipped)}")
        lines.append("")
        lines.append("-- metrics --")
        lines.append(self.registry.render())
        span_text = self._exemplar_spans()
        if span_text:
            lines.append("")
            lines.append("-- exemplar span trees --")
            lines.append(span_text)
        return "\n".join(lines)

    def _exemplar_spans(self) -> str:
        """One chained root (preferring >=2 hops) and one baseline root."""
        chosen = []
        chains = self.spans.find_roots("read_chain")
        deep = [s for s in chains if len(s.children) >= 2]
        if deep:
            chosen.append(deep[0])
        elif chains:
            chosen.append(chains[0])
        normals = self.spans.find_roots("sys_pread")
        if normals:
            chosen.append(normals[0])
        parts = []
        for root in chosen:
            parts.extend(self.spans.render_span(root))
        return "\n".join(parts)
