"""Typed tracepoint events for the simulated storage stack.

Every layer of the stack publishes :class:`TraceEvent` records onto a
:class:`~repro.obs.bus.TraceBus`.  Each event is stamped with *simulated*
time (never wall-clock), so traces are a deterministic function of the
workload and seed.

Event catalogue (all fields are plain JSON-serialisable values):

========================  =====================================================
event type                emitted by / meaning
========================  =====================================================
``syscall_enter``         syscall dispatch layer: one boundary crossing.
                          Fields: ``op`` (pread/open/ioctl/read_chain/
                          io_uring_enter/reissue/...), ``pid``,
                          ``crossing_ns``, ``syscall_ns``, ``path``, ``span``.
``fs_resolve``            ext4 extent resolution (``ExtFs.map_range``):
                          ``ino``, ``offset``, ``length``, ``segments``,
                          ``cpu_ns``, ``span``, ``path``.
``bio_submit``            block layer handed a request; ``cpu_ns``,
                          ``segments``, ``span``, ``path``.
``bio_split``             a request crossed discontiguous extents and the
                          BIO layer split it; ``segments``, ``span``.
``nvme_submit``           a command was posted to the device submission
                          queue; ``opcode``, ``lba``, ``sectors``,
                          ``source``, ``driver_ns``, ``queue_depth``,
                          ``queue`` (owning SQ/CQ pair).
``nvme_complete``         device finished servicing a command;
                          ``service_ns`` (media time, excludes queueing),
                          ``queue_ns`` (time spent queued), ``status``,
                          ``queue`` (owning SQ/CQ pair).
``irq_entry``             completion interrupt entry; ``cpu_ns``.
``context_switch``        a blocked thread was woken; ``cpu_ns``.
``app_process``           application-side per-lookup processing;
                          ``cpu_ns``.
``bpf_hook_dispatch``     a storage BPF program ran at a hook;
                          ``hook`` ("nvme"/"syscall"/"user"), ``cpu_ns``,
                          ``instructions``, ``action``.
``bpf_helper_trace``      the ``trace_offset`` helper fired from inside a
                          program; ``offset``.
``chain_hop``             one completed hop of a resubmission chain;
                          ``hop``, ``offset``, ``span``, ``parent``.
``chain_kill``            the per-process fairness bound killed a chain;
                          ``pid``, ``hops``.
``chain_complete``        a chain delivered its result; ``hops``,
                          ``status``, ``pid``.
``extent_cache_install``  the install/refresh ioctl snapshotted extents;
                          ``ino``, ``extents``, ``epoch``.
``extent_cache_hit``      a chained resubmission translated through the
                          NVMe-layer snapshot; ``ino``, ``offset``.
``extent_cache_miss``     translation fell outside the snapshot (EEXTENT).
``extent_cache_split``    translation crossed discontiguous extents.
``extent_cache_invalidate``  an unmap invalidated a snapshot; ``ino``.
``extent_change``         the file system grew/unmapped extents;
                          ``ino``, ``kind``.
``resubmit_drain``        per-pid chained-resubmission counters drained to
                          the BIO layer; ``pids`` (pid -> count),
                          ``total``.
``fault_inject``          the fault plan fired on a command or snapshot;
                          ``kind`` ("transient"/"timeout"/"spike"/
                          "stale"), plus ``opcode``/``lba``/``sectors``
                          for media faults or ``ino`` for staleness.
``nvme_timeout``          the controller watchdog expired a command;
                          ``opcode``, ``lba``, ``timeout_ns``.
``nvme_retry``            the driver (or chain engine) resubmitted a
                          failed command; ``reason`` ("media"/
                          "timeout"), ``attempt``, ``backoff_ns``,
                          ``lba``.
``chain_fallback``        a faulted chain hop exhausted its retries and
                          the chain was handed back to user space;
                          ``pid``, ``hops``, ``offset``, ``reason``.
``span_start``            a span opened; ``span``, ``parent``, ``name``.
``span_end``              a span closed; ``span`` plus result attributes.
``nvme_flush``            the device drained its volatile write cache;
                          ``records`` (destaged cache records).
``power_loss``            the simulated power cut: ``dropped`` (volatile
                          records lost), ``torn_sectors``/``torn_lba``
                          (partial persistence of one in-flight write),
                          ``flushes`` (completed flushes at the cut).
``blockdev_discard``      media TRIM (journal checkpoint, punch_range);
                          ``lba``, ``sectors``.
``journal_commit``        metadata txns became durable; ``txns``,
                          ``frames``, ``bytes``, ``seq`` (last committed).
``journal_replay``        recovery scanned the journal; ``replayed``,
                          ``discarded`` (torn/uncommitted txns), ``seq``.
``journal_checkpoint``    metadata serialised + journal truncated;
                          ``seq``, ``bytes``, ``trimmed_sectors``.
``fsck_report``           the invariant checker ran; ``checks``,
                          ``violations``.
``net_rpc_send``          a frame entered the network fabric; ``op``,
                          ``request_id``, ``bytes``, ``side``
                          ("client"/"target"), ``attempt``, ``inflight``
                          (client RPCs awaiting replies at emit time).
``net_rpc_recv``          a frame was delivered to an endpoint; ``op``,
                          ``request_id``, ``bytes``, ``side``, ``dup``
                          (the target saw this request id before and
                          re-sent the cached reply).
``net_retry``             a client RPC timed out and was retransmitted
                          with the same request id; ``op``,
                          ``request_id``, ``attempt``, ``backoff_ns``.
``cluster_replicate``     a shard primary's PUT was acknowledged by its
                          replica (or skipped, replica down); ``shard``,
                          ``key``, ``version``, ``lag`` (acked writes
                          the replica has not applied).
``cluster_failover``      a target crash was detected via RPC timeout
                          and its shards promoted their replicas;
                          ``target`` (crashed), ``shards`` (promoted
                          shard ids), ``op``/``attempts`` (from the
                          detecting ``RpcTimeout``).
``cluster_rejoin``        a crashed target replayed its journal, passed
                          fsck, caught up missed records, and rejoined
                          as replica; ``target``, ``replayed_txns``,
                          ``discarded_txns``, ``fsck_ok``,
                          ``caught_up``.
``qos_admit_reject``      admission control refused a tenant's op with
                          typed EAGAIN backpressure; ``tenant``,
                          ``cost``, ``retry_after_ns``, ``rejected``
                          (cumulative refusals for this tenant).
``qos_throttle``          the chain engine paced a tenant's resubmission
                          to stay within rate; ``tenant``, ``delay_ns``,
                          ``throttles`` (cumulative).
``qos_tenant_depth``      a command entered a WFQ submission queue;
                          ``tenant`` ("_system" for kernel-internal
                          I/O), ``queue``, ``depth`` (the tenant's
                          queued commands after the enqueue).
``compact_start``         the compaction engine began executing a plan;
                          ``mode`` ("user"/"offloaded"), ``tables``,
                          ``drop_tombstones``, ``pid``.
``compact_complete``      a compaction finished; ``mode``, ``emitted``,
                          ``dropped``, ``output_entries``,
                          ``user_bytes`` (crossed the syscall
                          boundary), ``kernel_bytes`` (stayed below
                          it), ``chain_hops``, ``pid``.
========================  =====================================================
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = [
    "APP_PROCESS",
    "BIO_SPLIT",
    "BIO_SUBMIT",
    "BLOCKDEV_DISCARD",
    "BPF_HELPER_TRACE",
    "BPF_HOOK_DISPATCH",
    "CHAIN_COMPLETE",
    "CHAIN_FALLBACK",
    "CHAIN_HOP",
    "CHAIN_KILL",
    "CLUSTER_FAILOVER",
    "CLUSTER_REJOIN",
    "CLUSTER_REPLICATE",
    "COMPACT_COMPLETE",
    "COMPACT_START",
    "CONTEXT_SWITCH",
    "EXTENT_CACHE_HIT",
    "EXTENT_CACHE_INSTALL",
    "EXTENT_CACHE_INVALIDATE",
    "EXTENT_CACHE_MISS",
    "EXTENT_CACHE_SPLIT",
    "EXTENT_CHANGE",
    "FAULT_INJECT",
    "FSCK_REPORT",
    "FS_RESOLVE",
    "IRQ_ENTRY",
    "JOURNAL_CHECKPOINT",
    "JOURNAL_COMMIT",
    "JOURNAL_REPLAY",
    "NET_RETRY",
    "NET_RPC_RECV",
    "NET_RPC_SEND",
    "NVME_COMPLETE",
    "NVME_FLUSH",
    "NVME_RETRY",
    "NVME_SUBMIT",
    "NVME_TIMEOUT",
    "POWER_LOSS",
    "QOS_ADMIT_REJECT",
    "QOS_TENANT_DEPTH",
    "QOS_THROTTLE",
    "RESUBMIT_DRAIN",
    "SPAN_END",
    "SPAN_START",
    "SYSCALL_ENTER",
    "TraceEvent",
]

SYSCALL_ENTER = "syscall_enter"
FS_RESOLVE = "fs_resolve"
BIO_SUBMIT = "bio_submit"
BIO_SPLIT = "bio_split"
NVME_SUBMIT = "nvme_submit"
NVME_COMPLETE = "nvme_complete"
IRQ_ENTRY = "irq_entry"
CONTEXT_SWITCH = "context_switch"
APP_PROCESS = "app_process"
BPF_HOOK_DISPATCH = "bpf_hook_dispatch"
BPF_HELPER_TRACE = "bpf_helper_trace"
CHAIN_HOP = "chain_hop"
CHAIN_KILL = "chain_kill"
CHAIN_COMPLETE = "chain_complete"
EXTENT_CACHE_INSTALL = "extent_cache_install"
EXTENT_CACHE_HIT = "extent_cache_hit"
EXTENT_CACHE_MISS = "extent_cache_miss"
EXTENT_CACHE_SPLIT = "extent_cache_split"
EXTENT_CACHE_INVALIDATE = "extent_cache_invalidate"
EXTENT_CHANGE = "extent_change"
RESUBMIT_DRAIN = "resubmit_drain"
FAULT_INJECT = "fault_inject"
NVME_TIMEOUT = "nvme_timeout"
NVME_RETRY = "nvme_retry"
CHAIN_FALLBACK = "chain_fallback"
SPAN_START = "span_start"
SPAN_END = "span_end"
NVME_FLUSH = "nvme_flush"
POWER_LOSS = "power_loss"
BLOCKDEV_DISCARD = "blockdev_discard"
JOURNAL_COMMIT = "journal_commit"
JOURNAL_REPLAY = "journal_replay"
JOURNAL_CHECKPOINT = "journal_checkpoint"
FSCK_REPORT = "fsck_report"
NET_RPC_SEND = "net_rpc_send"
NET_RPC_RECV = "net_rpc_recv"
NET_RETRY = "net_retry"
CLUSTER_REPLICATE = "cluster_replicate"
CLUSTER_FAILOVER = "cluster_failover"
CLUSTER_REJOIN = "cluster_rejoin"
QOS_ADMIT_REJECT = "qos_admit_reject"
QOS_THROTTLE = "qos_throttle"
QOS_TENANT_DEPTH = "qos_tenant_depth"
COMPACT_START = "compact_start"
COMPACT_COMPLETE = "compact_complete"


class TraceEvent:
    """One published tracepoint record.

    ``ts`` is simulated nanoseconds; ``etype`` is one of the module
    constants; ``fields`` holds the event-specific payload.
    """

    __slots__ = ("ts", "etype", "fields")

    def __init__(self, ts: int, etype: str, fields: Dict[str, Any]):
        self.ts = ts
        self.etype = etype
        self.fields = fields

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def __repr__(self) -> str:
        return f"TraceEvent({self.etype} @{self.ts} {self.fields})"
