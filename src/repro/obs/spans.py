"""Per-I/O span trees and flamegraph-style text rendering.

Every request submitted through the instrumented stack carries a span
id.  Chain hops open child spans of the originating request's root
span, so a BPF-recycled B-tree walk becomes a tree:

.. code-block:: text

    read_chain #17 path=chain 0..25936ns  [storage device 9672, NVMe driver 339, ...]
      chain_hop #18 hop=1 3224..6528ns  [irq 250, bpf 80, NVMe driver 113]
      chain_hop #19 hop=2 6528..9832ns  [irq 250, bpf 80, NVMe driver 113]

The :class:`SpanCollector` subscribes to a bus, reconstructs the trees
from ``span_start``/``span_end`` events, and folds every other event
carrying a ``span`` field into that span's per-layer CPU-ns breakdown
using the Table-1 attribution mapping from
:mod:`repro.obs.subscribers`.  The rendering makes layer *bypass*
visible: a chain root span has no ``ext4``/``bio``/``read syscall``
entries after the first hop, exactly the savings the paper's Figure 1
argues for.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.bus import TraceBus
from repro.obs.events import SPAN_END, SPAN_START, TraceEvent

__all__ = ["Span", "SpanCollector"]


class Span:
    """One node of a per-I/O span tree."""

    __slots__ = ("sid", "parent", "name", "start_ns", "end_ns", "attrs",
                 "children", "layers")

    def __init__(self, sid: int, parent: int, name: str, start_ns: int,
                 attrs: Dict[str, Any]):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.attrs = attrs
        self.children: List["Span"] = []
        self.layers: Dict[str, int] = {}

    @property
    def duration_ns(self) -> Optional[int]:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    def charge(self, layer: str, ns: int) -> None:
        """Accumulate ``ns`` of CPU/device time against ``layer``."""
        self.layers[layer] = self.layers.get(layer, 0) + ns

    def total_ns(self) -> int:
        """Sum of charged layer time in this span only (not children)."""
        return sum(self.layers.values())

    def walk(self):
        """Yield this span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class SpanCollector:
    """Reconstructs span trees from bus events.

    Keeps at most ``max_roots`` most-recent root spans (older roots are
    dropped deterministically in arrival order) so long runs stay
    bounded.  Events that carry a ``span`` field but are not
    span_start/span_end are folded into the span's per-layer breakdown
    via the attribution mapping.
    """

    def __init__(self, bus: TraceBus, max_roots: int = 256):
        from repro.obs.subscribers import ATTRIBUTION  # avoid import cycle

        self._fields_by_etype: Dict[str, List] = {}
        for (etype, field), layer in ATTRIBUTION.items():
            self._fields_by_etype.setdefault(etype, []).append((field, layer))
        self.max_roots = max_roots
        self.roots: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self.dropped_roots = 0
        bus.subscribe(self._on_event)

    # -- event handling ----------------------------------------------------

    def _on_event(self, event: TraceEvent) -> None:
        if event.etype == SPAN_START:
            self._start(event)
        elif event.etype == SPAN_END:
            self._end(event)
        else:
            self._charge(event)

    def _start(self, event: TraceEvent) -> None:
        fields = dict(event.fields)
        sid = fields.pop("span")
        parent_id = fields.pop("parent", 0)
        name = fields.pop("name", "span")
        span = Span(sid, parent_id, name, event.ts, fields)
        self._by_id[sid] = span
        parent = self._by_id.get(parent_id) if parent_id else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
            if len(self.roots) > self.max_roots:
                evicted = self.roots.pop(0)
                self.dropped_roots += 1
                for node in evicted.walk():
                    self._by_id.pop(node.sid, None)

    def _end(self, event: TraceEvent) -> None:
        sid = event.get("span", 0)
        span = self._by_id.get(sid)
        if span is None:
            return
        span.end_ns = event.ts
        for key, value in event.fields.items():
            if key != "span":
                span.attrs[key] = value

    def _charge(self, event: TraceEvent) -> None:
        sid = event.get("span", 0)
        if not sid:
            return
        span = self._by_id.get(sid)
        if span is None:
            return
        for field, layer in self._fields_by_etype.get(event.etype, ()):
            ns = event.get(field, 0)
            if ns:
                span.charge(layer, ns)

    # -- queries -----------------------------------------------------------

    def find_roots(self, name: Optional[str] = None) -> List[Span]:
        """Root spans, optionally filtered by span name."""
        if name is None:
            return list(self.roots)
        return [s for s in self.roots if s.name == name]

    def layers_used(self, span: Span) -> List[str]:
        """Sorted set of layers charged anywhere in ``span``'s tree."""
        seen = set()
        for node in span.walk():
            seen.update(node.layers)
        return sorted(seen)

    # -- rendering ---------------------------------------------------------

    def render_span(self, span: Span, indent: int = 0) -> List[str]:
        """Flamegraph-style text lines for one span tree."""
        pad = "  " * indent
        end = span.end_ns if span.end_ns is not None else "?"
        attr_str = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        layer_str = ", ".join(f"{layer} {ns}" for layer, ns in
                              sorted(span.layers.items(),
                                     key=lambda kv: (-kv[1], kv[0])))
        line = f"{pad}{span.name} #{span.sid} {span.start_ns}..{end}ns"
        if attr_str:
            line += f" {attr_str}"
        if layer_str:
            line += f"  [{layer_str}]"
        lines = [line]
        for child in span.children:
            lines.extend(self.render_span(child, indent + 1))
        return lines

    def render(self, name: Optional[str] = None, limit: int = 5) -> str:
        """Render up to ``limit`` root span trees as text."""
        roots = self.find_roots(name)[:limit]
        lines: List[str] = []
        for root in roots:
            lines.extend(self.render_span(root))
        return "\n".join(lines)
