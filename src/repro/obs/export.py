"""Deterministic JSONL export for trace events and metrics snapshots.

Every line is ``json.dumps(..., sort_keys=True, separators=(",", ":"))``
over fields that are pure functions of the simulation (simulated-time
stamps, no wall clock, no ids from ``id()``), so two runs with the same
seed produce byte-identical output — the property the acceptance test
checks.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.bus import TraceBus
from repro.obs.events import TraceEvent
from repro.obs.metrics import MetricsRegistry

__all__ = ["JsonlRecorder", "dump_metrics_jsonl", "load_metrics_jsonl"]

_COMPACT = {"sort_keys": True, "separators": (",", ":")}


def _event_line(event: TraceEvent) -> str:
    record = {"ts": event.ts, "type": event.etype}
    record.update(event.fields)
    return json.dumps(record, **_COMPACT)


class JsonlRecorder:
    """Wildcard subscriber that serialises every event to JSONL lines."""

    def __init__(self, bus: TraceBus):
        self.lines: List[str] = []
        bus.subscribe(self._on_event)

    def _on_event(self, event: TraceEvent) -> None:
        self.lines.append(_event_line(event))

    def text(self) -> str:
        """The full trace as one JSONL string (trailing newline)."""
        return "".join(line + "\n" for line in self.lines)

    def write(self, path: str) -> int:
        """Write the trace to ``path``; returns the number of lines."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.text())
        return len(self.lines)


def dump_metrics_jsonl(registry: MetricsRegistry) -> str:
    """Serialise a metrics snapshot, one metric per JSONL line."""
    return "".join(json.dumps(entry, **_COMPACT) + "\n"
                   for entry in registry.snapshot())


def load_metrics_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse a snapshot produced by :func:`dump_metrics_jsonl`."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]
