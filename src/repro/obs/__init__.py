"""Cross-layer observability: tracepoint bus, metrics, per-I/O spans.

The ``repro.obs`` package gives the simulated storage stack the tools a
real kernel answers performance questions with — tracepoints, counters,
and per-request attribution:

- :mod:`repro.obs.bus` — zero-dependency pub/sub :class:`TraceBus` with
  an off-by-default no-op fast path.
- :mod:`repro.obs.events` — the typed event catalogue.
- :mod:`repro.obs.metrics` — Prometheus-style counters / gauges /
  fixed-bucket histograms and a :class:`MetricsRegistry`.
- :mod:`repro.obs.subscribers` — Table-1 layer attribution and the
  standard stack-health metrics.
- :mod:`repro.obs.spans` — per-I/O span trees with flamegraph-style
  rendering that shows which layers a BPF-recycled I/O bypassed.
- :mod:`repro.obs.export` — deterministic JSONL export.
- :mod:`repro.obs.session` — :class:`ObsSession`, the bundle the CLI
  ``metrics`` subcommand uses.

See ``docs/observability.md`` for the full catalogue and examples.
"""

from repro.obs import events
from repro.obs.bus import NULL_BUS, TraceBus, get_default_bus, set_default_bus
from repro.obs.events import TraceEvent
from repro.obs.export import JsonlRecorder, dump_metrics_jsonl, load_metrics_jsonl
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.session import ObsSession
from repro.obs.spans import Span, SpanCollector
from repro.obs.subscribers import (
    ATTRIBUTION,
    LayerAttribution,
    attach_standard_metrics,
)

__all__ = [
    "ATTRIBUTION",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlRecorder",
    "LayerAttribution",
    "MetricsRegistry",
    "NULL_BUS",
    "ObsSession",
    "Span",
    "SpanCollector",
    "TraceBus",
    "TraceEvent",
    "attach_standard_metrics",
    "dump_metrics_jsonl",
    "events",
    "get_default_bus",
    "load_metrics_jsonl",
    "set_default_bus",
]
