"""Standard bus subscribers: Table-1 attribution and stack metrics.

``ATTRIBUTION`` maps ``(event_type, field)`` pairs to the layer names
used by :meth:`repro.kernel.layers.CostModel.table1_rows`, so per-layer
CPU-ns totals accumulated from the event stream reconcile directly
against the paper's Table 1.  :class:`LayerAttribution` does that
accumulation per I/O path (normal / chain / syscall / uring / ...),
and :func:`attach_standard_metrics` wires the remaining stack health
metrics — chain-depth histograms, extent-cache hit ratios, per-pid
resubmission fairness, kill counts — into a
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs import events as ev
from repro.obs.bus import TraceBus
from repro.obs.events import TraceEvent
from repro.obs.metrics import MetricsRegistry

__all__ = ["ATTRIBUTION", "LayerAttribution", "attach_standard_metrics"]

#: (event type, ns field) -> Table-1 layer name (plus the calibrated
#: layers that Table 1 does not list but the simulation charges).
ATTRIBUTION: Dict[Tuple[str, str], str] = {
    (ev.SYSCALL_ENTER, "crossing_ns"): "kernel crossing",
    (ev.SYSCALL_ENTER, "syscall_ns"): "read syscall",
    (ev.SYSCALL_ENTER, "uring_ns"): "io_uring",
    (ev.FS_RESOLVE, "cpu_ns"): "ext4",
    (ev.BIO_SUBMIT, "cpu_ns"): "bio",
    (ev.NVME_SUBMIT, "driver_ns"): "NVMe driver",
    (ev.NVME_COMPLETE, "service_ns"): "storage device",
    (ev.IRQ_ENTRY, "cpu_ns"): "irq",
    (ev.BPF_HOOK_DISPATCH, "cpu_ns"): "bpf",
    (ev.CONTEXT_SWITCH, "cpu_ns"): "context switch",
    (ev.APP_PROCESS, "cpu_ns"): "application",
}

#: Table-1 layer names in presentation order, then calibrated extras.
LAYER_ORDER: List[str] = [
    "kernel crossing", "read syscall", "ext4", "bio", "NVMe driver",
    "storage device", "io_uring", "irq", "bpf", "context switch",
    "application",
]

#: The software layers a successful NVMe-hook chain hop never touches.
BYPASSED_BY_CHAIN: Tuple[str, ...] = ("kernel crossing", "read syscall",
                                      "ext4", "bio")


class LayerAttribution:
    """Accumulates CPU/device nanoseconds per (path, layer) from the bus.

    ``paths`` follow the taxonomy used by the instrumentation: ``normal``
    (baseline read), ``chain`` (NVMe-hook resubmission), ``syscall``
    (syscall-layer hook reissue loop), ``uring``, ``write``, and ``ctl``
    (open/ioctl/close plumbing, excluded from read-path tables).
    """

    def __init__(self, bus: TraceBus,
                 registry: Optional[MetricsRegistry] = None):
        self.ns: Dict[Tuple[str, str], int] = {}
        self.ops: Dict[str, int] = {}
        self.hops = 0
        self.stack_entries: Dict[str, int] = {}
        self._counter = (registry.counter(
            "layer_cpu_ns_total", "CPU/device ns attributed per layer")
            if registry is not None else None)
        self._fields_by_etype: Dict[str, List[Tuple[str, str]]] = {}
        for (etype, field), layer in ATTRIBUTION.items():
            self._fields_by_etype.setdefault(etype, []).append((field, layer))
        bus.subscribe(self._on_event)

    def _on_event(self, event: TraceEvent) -> None:
        etype = event.etype
        path = event.get("path", "normal")
        fields = self._fields_by_etype.get(etype)
        if fields:
            for field, layer in fields:
                ns = event.get(field, 0)
                if ns:
                    key = (path, layer)
                    self.ns[key] = self.ns.get(key, 0) + ns
                    if self._counter is not None:
                        self._counter.inc(ns, path=path, layer=layer)
        if etype == ev.SYSCALL_ENTER:
            op = event.get("op", "")
            # One completed I/O per chain root or per (non-chain) pread;
            # a chain entered via sys_pread emits both, count it once.
            if op == "read_chain" or (op == "pread" and path != "chain"):
                self.ops[path] = self.ops.get(path, 0) + 1
        elif etype == ev.CHAIN_HOP and path == "chain":
            self.hops += 1
        elif etype == ev.FS_RESOLVE:
            self.stack_entries[path] = self.stack_entries.get(path, 0) + 1

    # -- queries -----------------------------------------------------------

    def layer_ns(self, path: str, layer: str) -> int:
        return self.ns.get((path, layer), 0)

    def path_total_ns(self, path: str) -> int:
        return sum(ns for (p, _), ns in self.ns.items() if p == path)

    def layers_for_path(self, path: str) -> List[str]:
        present = {layer for (p, layer) in self.ns if p == path}
        return [layer for layer in LAYER_ORDER if layer in present]

    def per_io(self, path: str, layer: str) -> float:
        """Average ns per completed I/O on ``path`` for ``layer``."""
        ops = self.ops.get(path, 0)
        if ops == 0:
            return 0.0
        return self.layer_ns(path, layer) / ops

    def per_hop(self, layer: str) -> float:
        """Average ns per chain hop (root submission + recycles)."""
        if self.hops == 0:
            return 0.0
        return self.layer_ns("chain", layer) / self.hops

    def table1_comparison(self, cost_model=None,
                          device_ns: Optional[int] = None) -> List[Dict[str, Any]]:
        """Per-layer rows reconciling observed ns against Table 1.

        ``normal_per_io`` should match the Table-1 column exactly for
        the baseline path; ``chain_per_io`` shows which software layers
        a BPF-recycled I/O amortises over the whole chain (ext4/bio are
        charged once per chain, not once per hop).
        """
        if cost_model is None:
            from repro.kernel.layers import CostModel  # local: avoid cycle
            cost_model = CostModel()
        if device_ns is None:
            from repro.device.latency import NVM_GEN2
            device_ns = NVM_GEN2.read_ns
        expected = dict(cost_model.table1_rows(device_ns))
        rows = []
        chain_ops = self.ops.get("chain", 0)
        for layer in LAYER_ORDER:
            table1_ns = expected.get(layer)
            normal = self.per_io("normal", layer)
            chain = (self.layer_ns("chain", layer) / chain_ops
                     if chain_ops else 0.0)
            if table1_ns is None and normal == 0 and chain == 0:
                continue
            rows.append({
                "layer": layer,
                "table1_ns": table1_ns,
                "normal_per_io": normal,
                "delta": (normal - table1_ns) if table1_ns is not None else None,
                "chain_per_io": chain,
            })
        return rows

    def bypass_summary(self) -> Dict[str, Any]:
        """How much software-layer work the chain path skipped.

        A chain of ``h`` hops charges ext4/bio/syscall once (at setup)
        instead of once per hop; the bypassed layers are those with zero
        incremental cost per recycled hop.
        """
        chain_ops = self.ops.get("chain", 0)
        recycled = self.hops - chain_ops if self.hops > chain_ops else 0
        skipped = []
        for layer in BYPASSED_BY_CHAIN:
            per_io = (self.layer_ns("chain", layer) / chain_ops
                      if chain_ops else 0.0)
            skipped.append({
                "layer": layer,
                "chain_per_io": per_io,
                "chain_per_hop": self.per_hop(layer),
                "normal_per_io": self.per_io("normal", layer),
            })
        return {
            "chain_ios": chain_ops,
            "total_hops": self.hops,
            "recycled_hops": recycled,
            "layers": skipped,
        }


def attach_standard_metrics(bus: TraceBus, registry: MetricsRegistry) -> None:
    """Subscribe the standard stack-health metrics to ``bus``.

    Populates: ``syscalls_total`` (by op), ``chain_hops_total``,
    ``chain_kills_total`` (by pid), ``chain_depth`` histogram,
    ``extent_cache_lookups_total`` (by outcome),
    ``extent_cache_invalidations_total``, ``resubmissions_total``
    (by pid, the fairness drain), ``nvme_commands_total`` (by source),
    ``nvme_service_time_ns`` histogram (device service time per
    completed command, p50/p95/p99 from the recorder),
    ``nvme_queue_depth`` gauge (last observed),
    ``nvme_qpair_commands_total`` (completions by queue pair),
    ``nvme_qpair_depth`` gauge (in-flight per queue pair, tracked from
    the ``queue`` field on submit/complete), and the fault-path
    counters: ``faults_injected_total`` (by kind),
    ``nvme_timeouts_total``, ``nvme_retries_total`` (by reason), and
    ``chain_fallbacks_total`` (by reason).

    Crash-consistency metrics: ``blockdev_sectors_total`` (by op —
    read/write/discard, derived from completions so hot paths emit no new
    events), ``nvme_flushes_total``, ``power_losses_total``,
    ``volatile_writes_dropped_total``, ``journal_commits_total``,
    ``journal_txns_total`` (by outcome: committed/replayed/discarded),
    ``journal_checkpoints_total``, ``fsck_runs_total``, and
    ``fsck_violations_total``.

    Network metrics (from the ``net_*`` tracepoints): ``net_rpcs_total``
    (client-issued RPC frames by op, retransmissions included),
    ``net_bytes_total`` (fabric bytes by direction — ``c2s`` for
    client-sent frames, ``s2c`` for target-sent replies),
    ``net_inflight`` gauge (client RPCs awaiting replies, carried on the
    send/recv events so the subscriber never guesses), and
    ``net_retries_total`` (timed-out RPCs retransmitted, by op).

    Cluster metrics (from the ``cluster_*`` tracepoints):
    ``cluster_failovers_total`` (replica promotions by crashed target),
    ``cluster_rejoins_total`` (recovered targets re-admitted), and
    ``cluster_replica_lag`` gauge (per shard: acked writes the replica
    has not yet applied — 0 in steady state, grows while the primary
    serves solo after its replica died).
    """
    syscalls = registry.counter("syscalls_total", "Syscall entries by op")
    hops = registry.counter("chain_hops_total", "Completed chain hops")
    kills = registry.counter("chain_kills_total", "Fairness chain kills by pid")
    depth = registry.histogram(
        "chain_depth", buckets=[1, 2, 4, 8, 16, 32, 64, 128],
        help="Hops per completed chain")
    cache = registry.counter("extent_cache_lookups_total",
                             "NVMe extent-cache translations by outcome")
    invalidations = registry.counter("extent_cache_invalidations_total",
                                     "Extent-cache snapshot invalidations")
    resub = registry.counter("resubmissions_total",
                             "Chained resubmissions drained to bio, by pid")
    nvme = registry.counter("nvme_commands_total", "NVMe submissions by source")
    service = registry.histogram(
        "nvme_service_time_ns",
        buckets=[500, 1_000, 2_000, 4_000, 8_000, 16_000, 32_000,
                 64_000, 128_000],
        help="Device service time per completed NVMe command")
    qdepth = registry.gauge("nvme_queue_depth", "Last observed queue depth")
    qpair_cmds = registry.counter("nvme_qpair_commands_total",
                                  "NVMe completions by queue pair")
    qpair_depth = registry.gauge("nvme_qpair_depth",
                                 "In-flight commands per queue pair")

    bus.subscribe(lambda e: syscalls.inc(op=e.get("op", "?")), ev.SYSCALL_ENTER)
    bus.subscribe(lambda e: hops.inc(), ev.CHAIN_HOP)
    bus.subscribe(lambda e: kills.inc(pid=e.get("pid", "?")), ev.CHAIN_KILL)
    bus.subscribe(lambda e: depth.observe(e.get("hops", 0)), ev.CHAIN_COMPLETE)
    bus.subscribe(lambda e: cache.inc(outcome="hit"), ev.EXTENT_CACHE_HIT)
    bus.subscribe(lambda e: cache.inc(outcome="miss"), ev.EXTENT_CACHE_MISS)
    bus.subscribe(lambda e: cache.inc(outcome="split"), ev.EXTENT_CACHE_SPLIT)
    bus.subscribe(lambda e: invalidations.inc(), ev.EXTENT_CACHE_INVALIDATE)

    def _on_drain(event: TraceEvent) -> None:
        for pid, count in sorted(event.get("pids", {}).items()):
            resub.inc(count, pid=pid)

    bus.subscribe(_on_drain, ev.RESUBMIT_DRAIN)

    # Per-queue-pair depth is tracked subscriber-side from the ``queue``
    # field on submit/complete, so the device emits no extra events.
    qpair_in_flight: Dict[int, int] = {}

    def _on_nvme_submit(event: TraceEvent) -> None:
        nvme.inc(source=event.get("source", "bio"))
        qdepth.set(event.get("queue_depth", 0))
        queue = event.get("queue", 0)
        qpair_in_flight[queue] = qpair_in_flight.get(queue, 0) + 1
        qpair_depth.set(qpair_in_flight[queue], queue=queue)

    bus.subscribe(_on_nvme_submit, ev.NVME_SUBMIT)

    faults = registry.counter("faults_injected_total",
                              "Fault-plan injections by kind")
    timeouts = registry.counter("nvme_timeouts_total",
                                "Commands expired by the controller watchdog")
    retries = registry.counter("nvme_retries_total",
                               "Driver/chain command resubmissions by reason")
    fallbacks = registry.counter("chain_fallbacks_total",
                                 "Chains degraded to user space by reason")
    bus.subscribe(lambda e: faults.inc(kind=e.get("kind", "?")),
                  ev.FAULT_INJECT)
    bus.subscribe(lambda e: timeouts.inc(), ev.NVME_TIMEOUT)
    bus.subscribe(lambda e: retries.inc(reason=e.get("reason", "?")),
                  ev.NVME_RETRY)
    bus.subscribe(lambda e: fallbacks.inc(reason=e.get("reason", "?")),
                  ev.CHAIN_FALLBACK)

    # -- crash consistency ---------------------------------------------
    # blockdev_sectors_total is derived from existing completion/discard
    # events rather than emitted by the device read/write paths, so the
    # no-journal no-cache trace stream stays byte-identical to before.
    sectors = registry.counter("blockdev_sectors_total",
                               "Media sectors moved, by op")
    flushes = registry.counter("nvme_flushes_total",
                               "Completed NVMe FLUSH commands")
    power = registry.counter("power_losses_total",
                             "Simulated power cuts")
    dropped = registry.counter("volatile_writes_dropped_total",
                               "Cached writes lost to power cuts")
    commits = registry.counter("journal_commits_total",
                               "Journal commit batches")
    txns = registry.counter("journal_txns_total",
                            "Journal transactions by outcome")
    checkpoints = registry.counter("journal_checkpoints_total",
                                   "Checkpoints written")
    fsck_runs = registry.counter("fsck_runs_total", "fsck invocations")
    fsck_viol = registry.counter("fsck_violations_total",
                                 "fsck invariant violations")

    def _on_nvme_complete(event: TraceEvent) -> None:
        service_ns = event.get("service_ns", 0)
        if service_ns:
            service.observe(service_ns)
        if event.get("status", 0) == 0:
            count = event.get("sectors", 0)
            if count:
                sectors.inc(count, op=event.get("opcode", "?"))
        queue = event.get("queue", 0)
        qpair_cmds.inc(queue=queue)
        remaining = qpair_in_flight.get(queue, 0) - 1
        qpair_in_flight[queue] = max(remaining, 0)
        qpair_depth.set(qpair_in_flight[queue], queue=queue)

    bus.subscribe(_on_nvme_complete, ev.NVME_COMPLETE)
    bus.subscribe(lambda e: sectors.inc(e.get("sectors", 0), op="discard"),
                  ev.BLOCKDEV_DISCARD)
    bus.subscribe(lambda e: flushes.inc(), ev.NVME_FLUSH)

    def _on_power_loss(event: TraceEvent) -> None:
        power.inc()
        lost = event.get("dropped", 0)
        if lost:
            dropped.inc(lost)

    bus.subscribe(_on_power_loss, ev.POWER_LOSS)

    def _on_journal_commit(event: TraceEvent) -> None:
        commits.inc()
        txns.inc(event.get("txns", 0), outcome="committed")

    bus.subscribe(_on_journal_commit, ev.JOURNAL_COMMIT)

    def _on_journal_replay(event: TraceEvent) -> None:
        txns.inc(event.get("replayed", 0), outcome="replayed")
        discarded_txns = event.get("discarded", 0)
        if discarded_txns:
            txns.inc(discarded_txns, outcome="discarded")

    bus.subscribe(_on_journal_replay, ev.JOURNAL_REPLAY)
    bus.subscribe(lambda e: checkpoints.inc(), ev.JOURNAL_CHECKPOINT)

    def _on_fsck(event: TraceEvent) -> None:
        fsck_runs.inc()
        violations = event.get("violations", 0)
        if violations:
            fsck_viol.inc(violations)

    bus.subscribe(_on_fsck, ev.FSCK_REPORT)

    # -- network (repro.net) --------------------------------------------
    net_rpcs = registry.counter("net_rpcs_total",
                                "Client-issued RPC frames by op")
    net_bytes = registry.counter("net_bytes_total",
                                 "Fabric bytes moved, by direction")
    net_inflight = registry.gauge("net_inflight",
                                  "Client RPCs awaiting replies")
    net_retries = registry.counter("net_retries_total",
                                   "Timed-out RPCs retransmitted, by op")

    def _on_net_send(event: TraceEvent) -> None:
        side = event.get("side", "client")
        if side == "client":
            net_rpcs.inc(op=event.get("op", "?"))
            net_inflight.set(event.get("inflight", 0))
        net_bytes.inc(event.get("bytes", 0),
                      direction="c2s" if side == "client" else "s2c")

    def _on_net_recv(event: TraceEvent) -> None:
        if event.get("side", "client") == "client":
            net_inflight.set(event.get("inflight", 0))

    bus.subscribe(_on_net_send, ev.NET_RPC_SEND)
    bus.subscribe(_on_net_recv, ev.NET_RPC_RECV)
    bus.subscribe(lambda e: net_retries.inc(op=e.get("op", "?")),
                  ev.NET_RETRY)

    # -- cluster (repro.cluster) ----------------------------------------
    failovers = registry.counter("cluster_failovers_total",
                                 "Replica promotions by crashed target")
    rejoins = registry.counter("cluster_rejoins_total",
                               "Recovered targets re-admitted as replicas")
    replica_lag = registry.gauge("cluster_replica_lag",
                                 "Acked writes the replica has not applied")

    bus.subscribe(lambda e: failovers.inc(target=e.get("target", "?")),
                  ev.CLUSTER_FAILOVER)
    bus.subscribe(lambda e: rejoins.inc(), ev.CLUSTER_REJOIN)
    bus.subscribe(lambda e: replica_lag.set(e.get("lag", 0),
                                            shard=e.get("shard", 0)),
                  ev.CLUSTER_REPLICATE)
