"""Prometheus-style metrics registry built on the sim stats primitives.

Counters, gauges, and fixed-bucket histograms with label sets.  The
registry snapshots to a deterministic, JSON-serialisable list of dicts
(metrics sorted by name then label values), which round-trips through
the JSONL exporter in :mod:`repro.obs.export`.

Histograms delegate count/total/min/max tracking to
:class:`repro.sim.stats.LatencyRecorder` so sampling behaviour matches
the rest of the codebase, and add fixed bucket counts on top (the
Prometheus cumulative-bucket convention, ``+Inf`` implicit).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.stats import LatencyRecorder

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing counter with label sets."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0)

    def samples(self) -> List[Dict[str, Any]]:
        out = []
        for key in sorted(self._values):
            out.append({"labels": dict(key), "value": self._values[key]})
        return out


class Gauge:
    """Set-to-current-value metric with label sets."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = value

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0)

    def samples(self) -> List[Dict[str, Any]]:
        out = []
        for key in sorted(self._values):
            out.append({"labels": dict(key), "value": self._values[key]})
        return out


class _HistogramSeries:
    """One labelled series of a histogram: recorder + bucket counts."""

    __slots__ = ("recorder", "bucket_counts")

    def __init__(self, name: str, buckets: Sequence[float]):
        self.recorder = LatencyRecorder(name=name)
        self.bucket_counts = [0] * len(buckets)


class Histogram:
    """Fixed-bucket histogram with label sets.

    ``buckets`` are upper bounds (cumulative, ``+Inf`` implicit).  Each
    labelled series wraps a :class:`LatencyRecorder` for count/total and
    percentile queries.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float], help: str = ""):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} needs sorted, non-empty buckets")
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(self.name, self.buckets)
        series.recorder.record(int(value))
        # bucket_counts holds per-bucket counts; snapshot() emits the
        # Prometheus cumulative convention.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[i] += 1
                break

    def series_count(self, **labels: Any) -> int:
        series = self._series.get(_label_key(labels))
        return series.recorder.count if series else 0

    def samples(self) -> List[Dict[str, Any]]:
        out = []
        for key in sorted(self._series):
            series = self._series[key]
            rec = series.recorder
            cumulative = []
            running = 0
            for count in series.bucket_counts:
                running += count
                cumulative.append(running)
            out.append({
                "labels": dict(key),
                "count": rec.count,
                "sum": rec.total,
                "p50": rec.p50,
                "p95": rec.p95,
                "p99": rec.p99,
                "buckets": {str(bound): cum
                            for bound, cum in zip(self.buckets, cumulative)},
            })
        return out


class MetricsRegistry:
    """Named collection of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create accessors, so
    subscribers can share metrics by name without coordination.
    """

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(self, name: str, buckets: Sequence[float],
                  help: str = "") -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(name, buckets, help=help)
        elif not isinstance(metric, Histogram):
            raise ValueError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    def _get_or_create(self, name: str, cls, help: str = ""):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help=help)
        elif not isinstance(metric, cls):
            raise ValueError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Deterministic, JSON-serialisable dump of every metric."""
        out = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out.append({
                "name": name,
                "kind": metric.kind,
                "help": metric.help,
                "samples": metric.samples(),
            })
        return out

    def render(self) -> str:
        """Human-readable text dump (one line per labelled sample)."""
        lines: List[str] = []
        for entry in self.snapshot():
            for sample in entry["samples"]:
                labels = sample["labels"]
                label_str = ("{" + ",".join(f"{k}={v}" for k, v in
                                            sorted(labels.items())) + "}"
                             if labels else "")
                if entry["kind"] == "histogram":
                    lines.append(
                        f"{entry['name']}{label_str} "
                        f"count={sample['count']} sum={sample['sum']} "
                        f"p50={sample['p50']:g} p95={sample['p95']:g} "
                        f"p99={sample['p99']:g}")
                else:
                    lines.append(f"{entry['name']}{label_str} {sample['value']}")
        return "\n".join(lines)
