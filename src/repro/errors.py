"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching programming mistakes.  Kernel-path
errors additionally carry an ``errno``-style code mirroring the constants a
real kernel would return (the paper's design returns errors such as the
extent-invalidation error to the application, which must re-run the ioctl).
"""

from __future__ import annotations

import enum


class Errno(enum.IntEnum):
    """Typed errno codes shared by local, net, and cluster paths.

    Values mirror Linux where a Linux errno exists; repro-specific
    conditions (extent invalidation, chain limits, ...) live in a
    private range >= 1000 so they can never collide with a real errno.
    Members compare equal to their integer value, and ``Errno[name]``
    maps the wire-format errno *name* back to the typed code, so clients
    can switch on ``error.errno`` instead of parsing message strings.
    """

    ENOENT = 2
    EIO = 5
    EBADF = 9
    EAGAIN = 11
    EEXIST = 17
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    ENOSPC = 28
    EREMOTE = 66
    EBADMSG = 74
    ETIMEDOUT = 110
    # -- repro-specific codes (no Linux equivalent) ---------------------
    EVERIFY = 1001
    EEXTENT = 1002
    ECHAINLIM = 1003
    ENOPROG = 1004
    EPOWERFAIL = 1005
    EFSCORRUPT = 1006
    ENET = 1007

    @classmethod
    def from_name(cls, name: str) -> "Errno":
        """Map an errno *name* to its typed code (unknown -> EREMOTE)."""
        try:
            return cls[name]
        except KeyError:
            return cls.EREMOTE


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


# ---------------------------------------------------------------------------
# Simulation engine errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """A misuse of the discrete-event simulation engine."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


# ---------------------------------------------------------------------------
# eBPF subsystem errors
# ---------------------------------------------------------------------------


class BpfError(ReproError):
    """Base class for eBPF assembler/verifier/VM errors."""


class AssemblerError(BpfError):
    """The textual assembly could not be parsed or encoded."""


class VerifierError(BpfError):
    """The static verifier rejected a program.

    Mirrors the kernel's behaviour of refusing to load an unsafe program;
    carries a human-readable reason referencing the offending instruction.
    """

    errno = Errno.EVERIFY

    def __init__(self, reason: str, pc: int = -1):
        self.reason = reason
        self.pc = pc
        location = f" at insn {pc}" if pc >= 0 else ""
        super().__init__(f"verifier rejected program{location}: {reason}")


class VmFault(BpfError):
    """The VM trapped at run time (out-of-bounds access, bad helper, ...).

    A verified program should never raise this; the fault check is defence in
    depth, exactly like the kernel keeping runtime bounds checks for helper
    arguments.
    """

    def __init__(self, reason: str, pc: int = -1):
        self.reason = reason
        self.pc = pc
        location = f" at insn {pc}" if pc >= 0 else ""
        super().__init__(f"VM fault{location}: {reason}")


# ---------------------------------------------------------------------------
# Storage / kernel errors (errno-style)
# ---------------------------------------------------------------------------


class KernelError(ReproError):
    """An error returned by the simulated kernel, with an errno-like code."""

    errno_name = "EIO"

    def __init__(self, message: str = ""):
        detail = f": {message}" if message else ""
        super().__init__(f"[{self.errno_name}]{detail}")

    @property
    def errno(self) -> Errno:
        """The typed :class:`Errno` code matching :attr:`errno_name`."""
        return Errno.from_name(self.errno_name)


class BadFileDescriptor(KernelError):
    errno_name = "EBADF"


class FileNotFound(KernelError):
    errno_name = "ENOENT"


class FileExists(KernelError):
    errno_name = "EEXIST"


class NotADirectory(KernelError):
    errno_name = "ENOTDIR"


class IsADirectory(KernelError):
    errno_name = "EISDIR"


class NoSpace(KernelError):
    errno_name = "ENOSPC"


class InvalidArgument(KernelError):
    errno_name = "EINVAL"


class IoError(KernelError):
    errno_name = "EIO"


class ExtentInvalidated(KernelError):
    """The NVMe-layer extent cache was invalidated mid-chain (paper §4).

    The application must re-run the install ioctl to refresh the soft-state
    extent cache before reissuing tagged I/Os.
    """

    errno_name = "EEXTENT"


class ChainLimitExceeded(KernelError):
    """The per-process chained-resubmission counter hit its bound (paper §4)."""

    errno_name = "ECHAINLIM"


class PowerLossError(KernelError):
    """The simulated device lost power.

    Raised by :meth:`~repro.device.nvme.NvmeDevice.submit` once the device
    is powered off, which unwinds the running workload generator — exactly
    how the crash-point harness stops a workload mid-operation.  Un-flushed
    volatile-cache contents are already gone by the time this is raised.
    """

    errno_name = "EPOWERFAIL"


class JournalCorrupt(KernelError):
    """On-media metadata (superblock/checkpoint) failed its checksum.

    A torn or corrupt *journal txn* is not an error — replay discards it —
    but a superblock or checkpoint that cannot be read leaves nothing to
    recover from.
    """

    errno_name = "EFSCORRUPT"


class NotInstalled(KernelError):
    """A tagged I/O was issued on a descriptor without an installed program."""

    errno_name = "ENOPROG"


class QosRejected(KernelError):
    """Admission control refused work for a tenant that is over its rate.

    Typed backpressure, not failure: carries ``retry_after_ns`` — the
    simulated-time delay until the tenant's token bucket next holds a
    token — so callers (and remote clients, over the wire) can back off
    deterministically and retry instead of guessing.  ``errno`` is
    :attr:`Errno.EAGAIN`, matching the kernel convention for "try again".
    """

    errno_name = "EAGAIN"

    def __init__(self, message: str = "", *, retry_after_ns: int = 0,
                 tenant: str = ""):
        self.retry_after_ns = retry_after_ns
        self.tenant = tenant
        if not message:
            message = (f"tenant {tenant or '?'} over rate; retry after "
                       f"{retry_after_ns} ns")
        super().__init__(message)


# ---------------------------------------------------------------------------
# Network / RPC errors (repro.net)
# ---------------------------------------------------------------------------


class NetError(KernelError):
    """Base class for errors raised by the simulated network layer."""

    errno_name = "ENET"


class FramingError(NetError):
    """A frame failed to decode (bad magic, truncated body, unknown op)."""

    errno_name = "EBADMSG"


class RpcTimeout(NetError):
    """An RPC exhausted its retransmission budget without a reply.

    Carries the structured facts a failover policy needs to branch on —
    which op timed out, after how many attempts, against which request
    id and per-attempt timeout — so callers (the cluster client's
    replica-promotion path in :mod:`repro.cluster`) never parse the
    message.  The rendered message keeps the historical
    ``"{op} request {id} unanswered after {n} attempts"`` format.
    """

    errno_name = "ETIMEDOUT"

    def __init__(self, message: str = "", *, op: str = "?",
                 request_id: int = 0, attempts: int = 0,
                 timeout_ns: int = 0):
        self.op = op
        self.request_id = request_id
        self.attempts = attempts
        self.timeout_ns = timeout_ns
        if not message:
            message = (f"{op} request {request_id} unanswered after "
                       f"{attempts} attempts")
        super().__init__(message)


class RemoteError(NetError):
    """The storage target refused an operation with an errno-style status.

    The target never crashes on a bad request; it maps the server-side
    exception to a status code carried in the reply frame, and the client
    re-raises it as this typed error (or a subclass) carrying the remote
    errno name and the human-readable reason.
    """

    errno_name = "EREMOTE"

    def __init__(self, remote_errno, reason: str = ""):
        #: Typed :class:`Errno` code the target refused with.  Accepts a
        #: wire-format errno name (or a bare code) for construction, but
        #: always *exposes* the typed member so clients switch on
        #: ``error.remote_errno is Errno.ENOENT`` across local, net, and
        #: cluster paths.
        if isinstance(remote_errno, Errno):
            self.remote_errno = remote_errno
        elif isinstance(remote_errno, int):
            self.remote_errno = Errno(remote_errno)
        else:
            self.remote_errno = Errno.from_name(remote_errno)
        self.reason = reason
        name = self.remote_errno.name
        detail = f"{name}: {reason}" if reason else name
        super().__init__(f"target refused: {detail}")


class RemoteVerifierRejected(RemoteError):
    """The target's server-side verifier rejected an INSTALL_CHAIN program.

    Mirrors BPF-oF: the target re-verifies untrusted client programs before
    attaching them to its NVMe hook, whatever the client claims.
    """

    errno_name = "EVERIFY"
