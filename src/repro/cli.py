"""Command-line front end: ``python -m repro <command>``.

Commands:

* ``report [--quick]`` — run every experiment and print its paper-style
  table (``--quick`` runs miniature versions in a few seconds).
* ``experiment <name>`` — run one experiment (fig1, table1, fig3a, fig3b,
  fig3c, fig3d, stability, bound, churn, vmmode, appcache, interference,
  resilience, crash, scale, pushdown, cluster, tenants, compaction).  An
  experiment name may also be
  used as the top-level command (``python -m repro scale --json`` is
  shorthand for ``python -m repro experiment scale --json``).
  ``--json`` prints the rows as JSON instead of a table; ``--trace-jsonl
  PATH`` additionally records the full tracepoint stream to ``PATH``;
  ``--fault-plan SPEC`` arms a deterministic fault plan (see
  ``docs/faults.md``) for every kernel the experiment builds;
  ``--crash-at MODE:INDEX`` narrows the ``crash`` experiment to a single
  enumerated crash point (e.g. ``flush:2`` or ``op-torn:9``).
* ``metrics <name>`` — run one experiment under the observability bus and
  print per-layer CPU-ns attribution (reconciled against Table 1), the
  chain-bypass summary, stack-health metrics (including fault-path
  counters when ``--fault-plan`` is armed), and exemplar span trees.
* ``profile <name>`` — run one experiment under the self-profiler
  (``repro.perf``) and print the wall-clock hotspot report: self and
  cumulative time by subsystem (engine / vm / kernel / device / net /
  obs), the hottest call sites, and eBPF program/opcode statistics.
  ``--collapsed PATH`` additionally writes flamegraph-format collapsed
  stacks (``-`` for stdout).
* ``disasm <program>`` — print a library program's verified assembly
  (index, scan, linked, wisckey).
* ``verify-demo`` — show the verifier accepting a safe program and
  rejecting unsafe ones, with reasons.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Dict, List

from repro.bench import (
    ablation_app_cache,
    ablation_invalidation_rate,
    ablation_resubmit_bound,
    ablation_vm_mode,
    cluster_failover,
    compaction,
    crash_consistency,
    extent_stability,
    fault_resilience,
    fig1_latency_breakdown,
    fig3_throughput,
    fig3c_latency,
    fig3d_iouring,
    format_table,
    interference,
    mq_scaling,
    net_pushdown,
    rows_to_json,
    table1_breakdown,
    tenants,
)
from repro.faults import fault_injection, parse_fault_spec
from repro.obs import ObsSession

__all__ = ["main"]


def _columns(rows: List[Dict]) -> List[str]:
    return list(rows[0].keys()) if rows else []


_EXPERIMENTS = {
    "fig1": ("Figure 1 — kernel overhead per device",
             lambda quick: fig1_latency_breakdown(reads=50 if quick
                                                  else 300)),
    "table1": ("Table 1 — 512 B read() breakdown",
               lambda quick: table1_breakdown(reads=50 if quick else 300)),
    "fig3a": ("Figure 3a — syscall hook throughput",
              lambda quick: fig3_throughput(
                  "syscall",
                  depths=(4,) if quick else (2, 6, 10),
                  threads=(1, 6) if quick else (1, 2, 4, 6, 8, 12),
                  duration_ns=2_000_000 if quick else 8_000_000)),
    "fig3b": ("Figure 3b — NVMe hook throughput",
              lambda quick: fig3_throughput(
                  "nvme",
                  depths=(4,) if quick else (2, 6, 10),
                  threads=(1, 6, 12) if quick else (1, 2, 4, 6, 8, 12),
                  duration_ns=2_000_000 if quick else 8_000_000)),
    "fig3c": ("Figure 3c — single-thread latency",
              lambda quick: fig3c_latency(
                  depths=(2, 6) if quick else (1, 2, 3, 4, 6, 8, 10, 16),
                  operations=30 if quick else 100)),
    "fig3d": ("Figure 3d — io_uring batch sweep",
              lambda quick: fig3d_iouring(
                  depths=(4,) if quick else (3, 6, 10),
                  batches=(1, 8) if quick else (1, 2, 4, 8, 16, 32),
                  duration_ns=2_000_000 if quick else 8_000_000)),
    "stability": ("§4 — extent stability under YCSB",
                  lambda quick: extent_stability(
                      sim_hours=0.05 if quick else 2.0,
                      ops_per_sec=500,
                      rebuild_overlay=3000 if quick else 32_000,
                      gc_every_rebuilds=3 if quick else 120,
                      initial_keys=3000 if quick else 20_000)),
    "bound": ("Ablation — resubmission bound",
              lambda quick: ablation_resubmit_bound(
                  chain_length=8 if quick else 24,
                  bounds=(2, 8) if quick else (2, 4, 8, 16, 64),
                  lookups=10 if quick else 50)),
    "churn": ("Ablation — extent churn",
              lambda quick: ablation_invalidation_rate(
                  intervals_us=(None, 500) if quick
                  else (None, 5000, 1000, 200),
                  duration_ns=2_000_000 if quick else 8_000_000)),
    "vmmode": ("Ablation — interp vs jit vs block",
               lambda quick: ablation_vm_mode(
                   depth=3 if quick else 6,
                   operations=30 if quick else 200)),
    "appcache": ("Ablation — app-level index cache",
                 lambda quick: ablation_app_cache(
                     depth=4 if quick else 6,
                     cached_levels=(0, 2) if quick else (0, 1, 2, 3, 5),
                     operations=30 if quick else 150)),
    "interference": ("§4 fairness — chains vs plain readers",
                     lambda quick: interference(
                         chain_threads=6 if quick else 12,
                         duration_ns=2_000_000 if quick else 8_000_000)),
    "resilience": ("Fault plan — availability and p99 of chained reads",
                   lambda quick: fault_resilience(
                       rates=(0.0, 0.01) if quick
                       else (0.0, 0.001, 0.01, 0.05),
                       duration_ns=1_500_000 if quick else 4_000_000)),
    "crash": ("Crash consistency — enumerated power cuts, recovery, fsck",
              lambda quick: crash_consistency(
                  modes=("flush", "op-torn") if quick
                  else ("flush", "op", "op-torn", "sync"))),
    "scale": ("Multi-queue NVMe — IOPS vs SQ/CQ pairs (IRQ steering)",
              lambda quick: mq_scaling(
                  queue_pairs=(1, 2, 4) if quick else (1, 2, 4, 8),
                  threads=(24,) if quick else (24, 32),
                  duration_ns=1_000_000 if quick else 2_000_000)),
    "pushdown": ("BPF-oF — naive vs pushdown GETs over the network",
                 lambda quick: net_pushdown(
                     depths=(2, 4) if quick else (1, 2, 3, 4, 5, 6),
                     rtts_us=(10, 20) if quick else (5, 10, 20, 50),
                     gets=10 if quick else 30)),
    "cluster": ("Sharded cluster — YCSB scaling + crash failover",
                lambda quick: cluster_failover(
                    shard_counts=(1, 2, 4) if quick else (1, 2, 4, 8),
                    ops=80 if quick else 160,
                    initial_keys=32 if quick else 48)),
    "tenants": ("Multi-tenant QoS — victim p99 vs an aggressor tenant",
                lambda quick: tenants(
                    duration_ns=2_000_000 if quick else 8_000_000)),
    "compaction": ("LSM compaction — user vs offloaded vs remote bytes",
                   lambda quick: compaction(
                       runs=3 if quick else 4,
                       keys_per_run=200 if quick else 600,
                       tombstones_per_run=20 if quick else 40)),
}

_CRASH_MODES = ("flush", "op", "op-torn", "sync")

_PROGRAMS = {
    "index": lambda: _library().index_traversal_program(fanout=16),
    "scan": lambda: _library().scan_aggregate_program(fanout=16),
    "linked": lambda: _library().linked_list_program(),
    "wisckey": lambda: _library().wisckey_get_program(fanout=16),
}


def _library():
    import repro.core.library as library

    return library


def _cmd_report(args) -> int:
    for name, (title, runner) in _EXPERIMENTS.items():
        rows = runner(args.quick)
        print(format_table(title, _columns(rows), rows))
        print()
    return 0


def _touch(path: str) -> None:
    """Fail fast on an unwritable trace path, before the experiment runs."""
    with open(path, "w", encoding="utf-8"):
        pass


def _fault_context(args):
    """A context manager arming ``--fault-plan``, or a no-op without it."""
    spec = getattr(args, "fault_plan", None)
    if not spec:
        return contextlib.nullcontext()
    return fault_injection(parse_fault_spec(spec))


def _parse_crash_at(value: str):
    """``MODE:INDEX`` -> (mode, index) for ``--crash-at``."""
    mode, sep, index = value.partition(":")
    if not sep or mode not in _CRASH_MODES or not index.isdigit():
        raise SystemExit(
            f"--crash-at expects MODE:INDEX with MODE one of "
            f"{', '.join(_CRASH_MODES)} (got {value!r})")
    return mode, int(index)


def _cmd_experiment(args) -> int:
    title, runner = _EXPERIMENTS[args.name]
    crash_at = getattr(args, "crash_at", None)
    if crash_at:
        if args.name != "crash":
            raise SystemExit(
                "--crash-at only applies to the 'crash' experiment")
        mode, point = _parse_crash_at(crash_at)
        title = f"{title} [{mode}:{point}]"
        runner = lambda quick: crash_consistency(modes=(mode,),  # noqa: E731
                                                 point=point)
    with _fault_context(args):
        if args.trace_jsonl:
            _touch(args.trace_jsonl)
            with ObsSession(record_jsonl=True) as obs:
                rows = runner(args.quick)
            obs.write_trace_jsonl(args.trace_jsonl)
        else:
            rows = runner(args.quick)
    if args.json:
        print(rows_to_json(title, rows))
    else:
        print(format_table(title, _columns(rows), rows))
    return 0


def _cmd_metrics(args) -> int:
    title, runner = _EXPERIMENTS[args.name]
    if args.trace_jsonl:
        _touch(args.trace_jsonl)
    with _fault_context(args):
        with ObsSession(record_jsonl=bool(args.trace_jsonl)) as obs:
            runner(args.quick)
    if args.trace_jsonl:
        obs.write_trace_jsonl(args.trace_jsonl)
    print(f"{title} — observability report")
    print()
    print(obs.render_report())
    return 0


def _cmd_profile(args) -> int:
    from repro.perf import collapsed_stacks, profiling, render_profile

    title, runner = _EXPERIMENTS[args.name]
    with _fault_context(args):
        with profiling() as profiler:
            runner(args.quick)
    print(f"{title} — simulator self-profile (wall clock)")
    print()
    print(render_profile(profiler, top=args.top))
    if args.collapsed:
        text = collapsed_stacks(profiler)
        if args.collapsed == "-":
            sys.stdout.write(text)
        else:
            with open(args.collapsed, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"\ncollapsed stacks -> {args.collapsed}")
    return 0


def _cmd_disasm(args) -> int:
    from repro.core.hooks import storage_helpers
    from repro.ebpf import verify
    from repro.ebpf.disasm import disassemble

    program = _PROGRAMS[args.program]()
    helpers = storage_helpers()
    stats = verify(program, helpers, state_budget=500_000)
    inverse = {v: k for k, v in helpers.names().items()}
    print(f"; {program.name}: {len(program)} instructions, verified "
          f"({stats.states_explored} states explored)")
    print(disassemble(program.instructions, helper_names=inverse))
    return 0


def _cmd_verify_demo(args) -> int:
    from repro.core.hooks import storage_ctx_layout, storage_helpers
    from repro.ebpf import Program, assemble, verify
    from repro.errors import VerifierError

    helpers = storage_helpers()
    layout = storage_ctx_layout()
    samples = [
        ("safe bounded loop", """
            mov r2, 0
        loop:
            jge r2, 16, done
            add r2, 1
            ja  loop
        done:
            mov r0, 0
            exit
        """),
        ("out-of-bounds load", """
            ldxdw r2, [r1+0]
            ldxb  r3, [r2+4096]
            mov r0, 0
            exit
        """),
        ("unbounded loop", """
            ldxdw r3, [r1+8]
            mov r2, 0
        loop:
            jge r2, r3, done
            add r2, 1
            ja  loop
        done:
            mov r0, 0
            exit
        """),
        ("uninitialised register", "mov r0, r7\nexit"),
    ]
    for label, source in samples:
        program = Program(assemble(source, helpers.names()), layout,
                          name=label)
        try:
            stats = verify(program, helpers, state_budget=5000)
            print(f"ACCEPT  {label}  "
                  f"({stats.states_explored} states explored)")
        except VerifierError as error:
            print(f"REJECT  {label}  -> {error}")
    return 0


def _add_runner_parser(sub, command: str, help_text: str, func):
    """One experiment-running subcommand: shared name/flag wiring.

    Both ``experiment`` and ``metrics`` take an experiment name plus the
    same run-shaping flags; registering a new experiment in
    ``_EXPERIMENTS`` makes it available to both (and to the top-level
    name shorthand) without touching the parser code.
    """
    parser = sub.add_parser(command, help=help_text)
    parser.add_argument("name", choices=sorted(_EXPERIMENTS))
    parser.add_argument("--quick", action="store_true",
                        help="miniature run (seconds instead of minutes)")
    parser.add_argument("--trace-jsonl", metavar="PATH", default=None,
                        help="record the tracepoint stream to PATH")
    parser.add_argument(
        "--fault-plan", metavar="SPEC", default=None,
        help="arm a fault plan, e.g. "
             "'seed=7,read_error_rate=0.01,error_burst=2'")
    parser.set_defaults(func=func)
    return parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="BPF-for-storage reproduction: experiments and tooling")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="run every experiment")
    report.add_argument("--quick", action="store_true",
                        help="miniature runs (seconds instead of minutes)")
    report.set_defaults(func=_cmd_report)

    experiment = _add_runner_parser(sub, "experiment",
                                    "run one experiment", _cmd_experiment)
    experiment.add_argument("--json", action="store_true",
                            help="print result rows as JSON")
    experiment.add_argument(
        "--crash-at", metavar="MODE:INDEX", default=None,
        help="('crash' only) run a single crash point, e.g. 'flush:2' "
             "or 'op-torn:9'")

    _add_runner_parser(sub, "metrics",
                       "run one experiment under the observability bus",
                       _cmd_metrics)

    profile = sub.add_parser(
        "profile", help="run one experiment under the self-profiler")
    profile.add_argument("name", choices=sorted(_EXPERIMENTS))
    profile.add_argument("--quick", action="store_true",
                         help="miniature run (seconds instead of minutes)")
    profile.add_argument("--top", type=int, default=15, metavar="N",
                         help="call sites to list (default 15)")
    profile.add_argument("--collapsed", metavar="PATH", default=None,
                         help="write flamegraph collapsed stacks to PATH "
                              "('-' for stdout)")
    profile.add_argument(
        "--fault-plan", metavar="SPEC", default=None,
        help="arm a fault plan while profiling")
    profile.set_defaults(func=_cmd_profile)

    disasm = sub.add_parser("disasm",
                            help="disassemble a library BPF program")
    disasm.add_argument("program", choices=sorted(_PROGRAMS))
    disasm.set_defaults(func=_cmd_disasm)

    demo = sub.add_parser("verify-demo",
                          help="show the verifier accepting/rejecting")
    demo.set_defaults(func=_cmd_verify_demo)
    return parser


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Experiment-name shorthand: ``python -m repro scale --json`` runs
    # ``python -m repro experiment scale --json``.
    if argv and argv[0] in _EXPERIMENTS:
        argv = ["experiment"] + list(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
