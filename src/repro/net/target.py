"""The storage target: a simulated kernel served over the network.

:class:`StorageTarget` owns one :class:`~repro.kernel.kernel.Kernel`
(cores, file system, NVMe device) plus a
:class:`~repro.core.api.StorageBpf` facade, and serves four ops per
attached connection:

* **READ / WRITE** — plain ``pread``/``pwrite`` against a path (the
  target opens descriptors lazily and caches them per client).
* **INSTALL_CHAIN** — decode the program from its wire encoding and
  **re-verify it server-side** with the target's own
  :func:`repro.ebpf.verifier.verify` before installing it at the
  requested hook.  This mirrors BPF-oF: the client is untrusted; a
  program the verifier rejects is refused with a typed ``EVERIFY``
  reply (reason included) and the target keeps serving.
* **EXEC_CHAIN** — run an installed chain through
  :meth:`~repro.core.api.StorageBpf.read_chain_robust`, i.e. the full
  §4 NVMe-hook resubmission machinery, and return the chain result in
  one reply.  This is the pushdown path: a k-hop B-tree descent costs
  one network round trip instead of k.

Each client connection gets its own kernel process, so the per-pid
resubmission accounting and fairness bounds of
:mod:`repro.core.accounting` apply per client: one greedy remote chain
cannot starve the rest — exactly the exokernel-style isolation argument,
now across the wire.

Server-side failures never crash the target: kernel and BPF errors are
mapped to errno-style reply statuses via their ``errno_name``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core import Hook, StorageBpf
from repro.core.hooks import storage_ctx_layout
from repro.device import LatencyModel
from repro.device.latency import NVM_GEN2
from repro.ebpf import Program
from repro.errors import (
    InvalidArgument,
    KernelError,
    QosRejected,
    ReproError,
    VerifierError,
)
from repro.kernel import Kernel, KernelConfig
from repro.net import wire
from repro.net.transport import Connection
from repro.sim import Simulator

__all__ = ["StorageTarget"]


class _ClientState:
    """Per-connection server state: process, fd cache, installed chains."""

    def __init__(self, proc):
        self.proc = proc
        self.fds: Dict[str, int] = {}
        self.chains: Dict[int, int] = {}


class StorageTarget:
    """One disaggregated storage server around a simulated kernel."""

    def __init__(self, sim: Simulator, model: Optional[LatencyModel] = None,
                 config: Optional[KernelConfig] = None,
                 max_chain_hops: int = 64):
        self.sim = sim
        self.kernel = Kernel(sim, model or NVM_GEN2, config)
        self.bpf = StorageBpf(self.kernel, max_chain_hops=max_chain_hops)
        self._clients: Dict[str, _ClientState] = {}
        self._next_chain_id = 1
        #: Ops actually executed (dedup-cache hits excluded), by op name.
        self.executed: Dict[str, int] = {}
        #: Refusals sent, by errno-style status name.
        self.refused: Dict[str, int] = {}
        self._compactor = None

    @property
    def _compaction_engine(self):
        """The lazily-built server-side compaction engine (verify-once).

        Imported lazily: repro.net must stay importable without pulling
        the compaction stack in for targets that never see OP_COMPACT.
        """
        if self._compactor is None:
            from repro.compact import CompactionEngine
            self._compactor = CompactionEngine(self.bpf)
        return self._compactor

    @property
    def accounting(self):
        """The per-client (per-pid) chain accounting shared with the bpf."""
        return self.bpf.accounting

    def create_file(self, path: str, data: bytes) -> None:
        """Populate the target's file system without simulated time."""
        self.kernel.create_file(path, data)

    def attach(self, connection: Connection, tenant=None) -> None:
        """Serve RPCs arriving on ``connection`` (one process per client).

        ``tenant`` names the :class:`~repro.qos.Tenant` the connection's
        process bills to (a name or a ``Tenant``).  When the kernel has
        QoS armed and no tenant is given, the connection name becomes
        the tenant, so every remote client is isolated by default; pass
        ``tenant=""`` for infrastructure connections (replication,
        control) that must bill to the system share instead.
        """
        if connection.name in self._clients:
            raise InvalidArgument(
                f"client {connection.name!r} already attached")
        if tenant == "":
            tenant = None
        elif tenant is None and self.kernel.qos is not None:
            tenant = connection.name
        proc = self.kernel.spawn_process(f"net-{connection.name}",
                                         tenant=tenant)
        state = _ClientState(proc)
        self._clients[connection.name] = state
        connection.serve(lambda op, body: self._handle(state, op, body))

    def detach(self, name: str) -> None:
        """Forget a client's server-side state (process teardown).

        Drops the per-connection process and clears its accounting rows
        so a departed client cannot leak pid-keyed entries across
        reattach cycles (tenant-keyed rows persist only while attached).
        """
        state = self._clients.pop(name, None)
        if state is not None:
            self.accounting.forget(state.proc)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def _handle(self, state: _ClientState, op: int, body: bytes):
        """Decode, execute, and encode one request (generator)."""
        qos = self.kernel.qos
        if qos is not None:
            tenant = self.kernel.tenant_of(state.proc)
            retry_after_ns = qos.admit(tenant)
            if retry_after_ns:
                return self._refuse_qos(
                    QosRejected(retry_after_ns=retry_after_ns,
                                tenant=tenant or ""))
        try:
            if op == wire.OP_READ:
                reply = yield from self._op_read(state, body)
            elif op == wire.OP_WRITE:
                reply = yield from self._op_write(state, body)
            elif op == wire.OP_INSTALL_CHAIN:
                reply = yield from self._op_install_chain(state, body)
            elif op == wire.OP_EXEC_CHAIN:
                reply = yield from self._op_exec_chain(state, body)
            elif op == wire.OP_COMPACT:
                reply = yield from self._op_compact(state, body)
            else:
                extra = self._handle_extra(state, op, body)
                if extra is None:
                    return self._refuse("EBADMSG", f"unknown op {op}")
                reply = yield from extra
        except VerifierError as error:
            return self._refuse("EVERIFY", error.reason)
        except QosRejected as error:
            return self._refuse_qos(error)
        except KernelError as error:
            return self._refuse(error.errno_name, str(error))
        except ReproError as error:
            return self._refuse("EREMOTE", str(error))
        self.executed[wire.OP_NAMES[op]] = \
            self.executed.get(wire.OP_NAMES[op], 0) + 1
        return wire.STATUS_OK, reply

    def _handle_extra(self, state: _ClientState, op: int, body: bytes):
        """Extension point: a generator for ops this class does not know.

        Subclasses (the cluster's :class:`~repro.cluster.cluster.
        ClusterTarget`) return an op-handler generator whose errors get
        the same typed-refusal mapping as the built-in ops; the base
        target returns ``None``, which becomes an ``EBADMSG`` refusal.
        """
        return None

    def _refuse(self, errno_name: str, reason: str):
        self.refused[errno_name] = self.refused.get(errno_name, 0) + 1
        return wire.status_for_errno(errno_name), reason.encode("utf-8")

    def _refuse_qos(self, error: QosRejected):
        """An EAGAIN refusal with a structured retry-after body."""
        self.refused["EAGAIN"] = self.refused.get("EAGAIN", 0) + 1
        return wire.STATUS_EAGAIN, wire.encode_qos_reject(
            error.retry_after_ns, str(error), error.tenant)

    def _fd_for(self, state: _ClientState, path: str):
        fd = state.fds.get(path)
        if fd is None:
            fd = yield from self.kernel.sys_open(state.proc, path)
            state.fds[path] = fd
        return fd

    # -- ops -------------------------------------------------------------

    def _op_read(self, state: _ClientState, body: bytes):
        path, offset, length = wire.decode_read(body)
        fd = yield from self._fd_for(state, path)
        result = yield from self.kernel.sys_pread(state.proc, fd, offset,
                                                  length)
        return wire.encode_read_reply(result.data)

    def _op_write(self, state: _ClientState, body: bytes):
        path, offset, data = wire.decode_write(body)
        fd = yield from self._fd_for(state, path)
        written = yield from self.kernel.sys_pwrite(state.proc, fd, offset,
                                                    data)
        return wire.encode_write_reply(written)

    def _op_install_chain(self, state: _ClientState, body: bytes):
        (path, hook_name, block_size, scratch_size, program_name,
         instructions) = wire.decode_install_chain(body)
        hook = Hook(hook_name)
        # The wire carries raw instructions; rebuild the Program against
        # the *target's* context layout and re-verify before attaching.
        # An unsafe program is refused here — never executed.
        program = Program(instructions,
                          storage_ctx_layout(block_size, scratch_size),
                          name=program_name)
        self.bpf.verify_program(program)
        fd = yield from self.kernel.sys_open(state.proc, path)
        yield from self.bpf.install(state.proc, fd, program, hook=hook,
                                    block_size=block_size,
                                    scratch_size=scratch_size)
        chain_id = self._next_chain_id
        self._next_chain_id += 1
        state.chains[chain_id] = fd
        return wire.encode_install_chain_reply(chain_id)

    def _op_exec_chain(self, state: _ClientState, body: bytes):
        chain_id, offset, length, args = wire.decode_exec_chain(body)
        fd = state.chains.get(chain_id)
        if fd is None:
            raise InvalidArgument(f"unknown chain id {chain_id}")
        result = yield from self.bpf.read_chain_robust(
            state.proc, fd, offset, length, args=args)
        return wire.encode_exec_chain_reply(
            str(result.status.value if hasattr(result.status, "value")
                else result.status),
            result.hops, result.value, result.value2, result.data)

    def _op_compact(self, state: _ClientState, body: bytes):
        """Run a whole LSM compaction server-side (one RPC, zero pages
        on the wire): merge the named input runs through the offloaded
        chain engine and write the output table locally.  The caller
        owns the level swap/unlinks, so the inputs are left in place."""
        output_path, drop_tombstones, input_paths = wire.decode_compact(
            body)
        report, _output = yield from self._compaction_engine.compact_files(
            state.proc, input_paths, output_path,
            drop_tombstones=drop_tombstones, mode="offloaded")
        return wire.encode_compact_reply(
            report.emitted, report.dropped, report.output_entries,
            report.output_bytes, report.chain_hops)
