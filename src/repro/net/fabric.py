"""A latency/bandwidth network model on the discrete-event simulator.

:class:`NetworkFabric` moves opaque frames between endpoints over
unidirectional :class:`Link` objects.  Each link models the two costs a
real NIC-to-NIC path charges:

* **Serialization.**  A link owns a one-slot
  :class:`~repro.sim.resources.Resource`; a frame holds the slot for
  ``bytes * 8 / gbit_per_s`` nanoseconds, so back-to-back frames queue
  behind each other exactly as they would on a wire.
* **Propagation.**  After serialization the frame travels for the
  configured one-way latency (plus optional jitter drawn from a
  dedicated deterministic RNG stream), during which the link is free for
  the next frame — frames are pipelined, not stop-and-wait.

The fabric is also where the fault plan touches the network: before a
frame propagates, :meth:`~repro.faults.plan.FaultPlan.net_decision` may
drop it (it simply never arrives; recovery is the client's retransmission
with the same request id) or hold it ``net_delay_ns`` extra.  Both fates
are emitted as ``fault_inject`` tracepoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import InvalidArgument
from repro.faults.plan import (
    FAULT_NET_DELAY,
    FAULT_NET_DROP,
    FaultPlan,
    get_default_fault_spec,
)
from repro.obs import events as obs_events
from repro.obs.bus import TraceBus, get_default_bus
from repro.sim import RandomStreams, Simulator
from repro.sim.resources import Resource

__all__ = ["Link", "NetConfig", "NetworkFabric"]


@dataclass(frozen=True)
class NetConfig:
    """Knobs for one simulated network fabric."""

    #: One-way propagation latency in simulated ns (RTT is twice this
    #: plus two serializations).
    one_way_ns: int = 5_000
    #: Link rate; 100 Gbit/s conveniently serializes one bit in 0.01 ns.
    gbit_per_s: float = 100.0
    #: Uniform jitter as a fraction of ``one_way_ns`` (0 disables the
    #: draw entirely, keeping the RNG stream untouched).
    jitter: float = 0.0
    #: Seed for the fabric's jitter stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.one_way_ns < 0:
            raise InvalidArgument("one_way_ns must be >= 0")
        if self.gbit_per_s <= 0:
            raise InvalidArgument("gbit_per_s must be > 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise InvalidArgument("jitter must be in [0, 1]")

    def serialize_ns(self, nbytes: int) -> int:
        """Wire time to clock ``nbytes`` onto the link."""
        return int(nbytes * 8 / self.gbit_per_s)


class Link:
    """One unidirectional wire: a serializer slot plus delivery callback."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.serializer = Resource(sim, 1, name=f"link-{name}")
        #: Set by the receiving endpoint; called with the frame bytes.
        self.deliver: Optional[Callable[[bytes], None]] = None
        self.frames_sent = 0
        self.frames_dropped = 0
        self.frames_delayed = 0
        self.bytes_sent = 0


class NetworkFabric:
    """The shared medium: builds links and ships frames across them."""

    def __init__(self, sim: Simulator, config: Optional[NetConfig] = None,
                 plan: Optional[FaultPlan] = None,
                 bus: Optional[TraceBus] = None):
        self.sim = sim
        self.config = config or NetConfig()
        self.bus = bus if bus is not None else get_default_bus()
        if plan is None:
            # Mirror Kernel: pick up the process-default spec (installed
            # by ``fault_injection``) so ``--fault-plan`` reaches the
            # fabric without threading a parameter through every layer.
            spec = get_default_fault_spec()
            if spec is not None and spec.any_net_faults():
                plan = FaultPlan(spec, kernel_seed=self.config.seed)
        self.plan = plan
        self._jitter_rng = (
            RandomStreams(self.config.seed).stream("net-jitter")
            if self.config.jitter > 0 else None)

    def new_link(self, name: str) -> Link:
        return Link(self.sim, name)

    def transmit(self, link: Link, frame: bytes, request_id: int = 0) -> None:
        """Ship ``frame`` down ``link`` (fire-and-forget, like a NIC).

        Spawns a background process: serialize (queueing behind earlier
        frames), consult the fault plan, then propagate and deliver.
        ``request_id`` keys the drop episodes so a retransmission of the
        same RPC frame is recognised by the plan.
        """
        if link.deliver is None:
            raise InvalidArgument(f"link {link.name!r} has no receiver")
        self.sim.spawn(self._ship(link, frame, request_id),
                       name=f"net-{link.name}")

    def _ship(self, link: Link, frame: bytes, request_id: int):
        config = self.config
        yield from link.serializer.execute(config.serialize_ns(len(frame)))
        link.frames_sent += 1
        link.bytes_sent += len(frame)
        decision = (self.plan.net_decision((link.name, request_id),
                                           self.sim.now)
                    if self.plan is not None else None)
        delay = config.one_way_ns
        if self._jitter_rng is not None:
            delay += int(self._jitter_rng.random() * config.jitter *
                         config.one_way_ns)
        if decision == FAULT_NET_DROP:
            link.frames_dropped += 1
            if self.bus.enabled:
                self.bus.emit(obs_events.FAULT_INJECT, self.sim.now,
                              kind=FAULT_NET_DROP, link=link.name,
                              request_id=request_id, bytes=len(frame))
            return
        if decision == FAULT_NET_DELAY:
            link.frames_delayed += 1
            delay += self.plan.spec.net_delay_ns
            if self.bus.enabled:
                self.bus.emit(obs_events.FAULT_INJECT, self.sim.now,
                              kind=FAULT_NET_DELAY, link=link.name,
                              request_id=request_id,
                              delay_ns=self.plan.spec.net_delay_ns)
        if delay > 0:
            yield self.sim.timeout(delay)
        link.deliver(frame)
