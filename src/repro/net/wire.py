"""Wire format: length-prefixed frames and per-op message codecs.

Every message on a link is one *frame*::

    u32  length of the rest of the frame (big-endian, like every field)
    u16  magic (0xB7F5)
    u8   op — OP_* constant; replies set the high REPLY bit
    u8   status — STATUS_OK or an errno-style refusal code
    u64  request id — client-assigned, echoed in the reply, and the key
         for the target's idempotent dedup cache
    ...  op-specific body

Bodies are packed with :mod:`struct`; variable-length fields carry a
length prefix (`u16` for strings, `u32` for byte buffers).  The
INSTALL_CHAIN body ships the program in the real 8-byte eBPF slot
encoding from :mod:`repro.ebpf.isa`, so what crosses the simulated wire
is exactly what would cross a real one — and the target must decode and
re-verify it, trusting nothing about the client's toolchain.

Error replies carry ``status != STATUS_OK`` and a UTF-8 reason as the
body; :func:`raise_for_status` turns them back into the typed errors of
:mod:`repro.errors` on the client side.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.ebpf.isa import Instruction
from repro.ebpf.isa import decode as decode_instructions
from repro.ebpf.isa import encode as encode_instructions
from repro.errors import (
    FramingError,
    QosRejected,
    RemoteError,
    RemoteVerifierRejected,
)

__all__ = [
    "MAGIC",
    "OP_COMPACT",
    "OP_EXEC_CHAIN",
    "OP_GET",
    "OP_INSTALL_CHAIN",
    "OP_NAMES",
    "OP_PUT",
    "OP_READ",
    "OP_REPLICATE",
    "OP_WRITE",
    "REPLY",
    "STATUS_EAGAIN",
    "STATUS_NAMES",
    "STATUS_OK",
    "decode_compact",
    "decode_compact_reply",
    "decode_exec_chain",
    "decode_exec_chain_reply",
    "decode_frame",
    "decode_get",
    "decode_get_reply",
    "decode_install_chain",
    "decode_install_chain_reply",
    "decode_put",
    "decode_put_reply",
    "decode_qos_reject",
    "decode_read",
    "decode_read_reply",
    "decode_replicate",
    "decode_replicate_reply",
    "decode_write",
    "decode_write_reply",
    "encode_compact",
    "encode_compact_reply",
    "encode_exec_chain",
    "encode_exec_chain_reply",
    "encode_frame",
    "encode_get",
    "encode_get_reply",
    "encode_install_chain",
    "encode_install_chain_reply",
    "encode_put",
    "encode_put_reply",
    "encode_qos_reject",
    "encode_read",
    "encode_read_reply",
    "encode_replicate",
    "encode_replicate_reply",
    "encode_write",
    "encode_write_reply",
    "raise_for_reply",
    "raise_for_status",
    "status_for_errno",
]

MAGIC = 0xB7F5
_HEADER = struct.Struct("!HBBQ")

OP_READ = 1
OP_WRITE = 2
OP_INSTALL_CHAIN = 3
OP_EXEC_CHAIN = 4
#: Cluster KV ops (repro.cluster): PUT/GET are client-facing versioned
#: records; REPLICATE is the inter-target op a shard primary sends its
#: replica before acking a PUT (chain replication, one link long).
OP_PUT = 5
OP_GET = 6
OP_REPLICATE = 7
#: Server-side LSM compaction (repro.compact): the target merges the
#: named input runs into one output table in its own completion path.
OP_COMPACT = 8
#: High bit of the op byte marks a reply frame.
REPLY = 0x80

OP_NAMES = {OP_READ: "read", OP_WRITE: "write",
            OP_INSTALL_CHAIN: "install_chain", OP_EXEC_CHAIN: "exec_chain",
            OP_PUT: "put", OP_GET: "get", OP_REPLICATE: "replicate",
            OP_COMPACT: "compact"}

STATUS_OK = 0
#: Refusal codes, one per errno name the target can send back.
STATUS_NAMES = {0: "OK", 1: "EVERIFY", 2: "ENOENT", 3: "EINVAL", 4: "EIO",
                5: "ECHAINLIM", 6: "ENOPROG", 7: "EBADMSG", 8: "EREMOTE",
                9: "EAGAIN"}
_ERRNO_TO_STATUS = {name: code for code, name in STATUS_NAMES.items()}
#: Admission-control backpressure (typed EAGAIN, body carries retry-after).
STATUS_EAGAIN = _ERRNO_TO_STATUS["EAGAIN"]


def status_for_errno(errno_name: str) -> int:
    """The wire status for an errno name (EREMOTE for unknown ones)."""
    return _ERRNO_TO_STATUS.get(errno_name, _ERRNO_TO_STATUS["EREMOTE"])


def raise_for_status(status: int, reason: str) -> None:
    """Re-raise a refusal reply as its typed client-side error."""
    if status == STATUS_OK:
        return
    errno_name = STATUS_NAMES.get(status, "EREMOTE")
    if errno_name == "EVERIFY":
        raise RemoteVerifierRejected(errno_name, reason)
    if errno_name == "EAGAIN":
        # Callers with the raw body use raise_for_reply and get the
        # decoded retry-after; a reason-only caller still gets the type.
        raise QosRejected(reason)
    raise RemoteError(errno_name, reason)


def raise_for_reply(status: int, body: bytes) -> None:
    """Re-raise a refusal reply, decoding structured refusal bodies.

    Like :func:`raise_for_status`, but takes the raw reply body so an
    EAGAIN refusal can surface its ``retry_after_ns`` (the body is
    :func:`encode_qos_reject`, not a bare UTF-8 reason).
    """
    if status == STATUS_OK:
        return
    if status == STATUS_EAGAIN:
        retry_after_ns, reason, tenant = decode_qos_reject(body)
        raise QosRejected(reason, retry_after_ns=retry_after_ns,
                          tenant=tenant)
    raise_for_status(status, body.decode("utf-8", "replace"))


def encode_qos_reject(retry_after_ns: int, reason: str = "",
                      tenant: str = "") -> bytes:
    """Body of an EAGAIN refusal: retry-after, tenant, and a reason."""
    return (struct.pack("!Q", retry_after_ns) + _pack_str(tenant) +
            reason.encode("utf-8"))


def decode_qos_reject(body: bytes) -> Tuple[int, str, str]:
    """``body`` -> (retry_after_ns, reason, tenant)."""
    cursor = _Cursor(body)
    (retry_after_ns,) = cursor.take("!Q")
    tenant = cursor.take_str()
    reason = cursor.body[cursor.pos:].decode("utf-8", "replace")
    return retry_after_ns, reason, tenant


# ---------------------------------------------------------------------------
# Frame envelope
# ---------------------------------------------------------------------------


def encode_frame(op: int, request_id: int, body: bytes = b"",
                 status: int = STATUS_OK) -> bytes:
    header = _HEADER.pack(MAGIC, op, status, request_id)
    return struct.pack("!I", len(header) + len(body)) + header + body


def decode_frame(frame: bytes) -> Tuple[int, int, int, bytes]:
    """``frame`` -> (op, status, request_id, body); validates the envelope."""
    if len(frame) < 4 + _HEADER.size:
        raise FramingError(f"short frame ({len(frame)} bytes)")
    (length,) = struct.unpack_from("!I", frame, 0)
    if length != len(frame) - 4:
        raise FramingError(
            f"length prefix {length} != {len(frame) - 4} payload bytes")
    magic, op, status, request_id = _HEADER.unpack_from(frame, 4)
    if magic != MAGIC:
        raise FramingError(f"bad magic 0x{magic:04x}")
    if op & ~REPLY not in OP_NAMES:
        raise FramingError(f"unknown op {op & ~REPLY}")
    return op, status, request_id, frame[4 + _HEADER.size:]


# ---------------------------------------------------------------------------
# Body packing primitives
# ---------------------------------------------------------------------------


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("!H", len(raw)) + raw


def _pack_bytes(data: bytes) -> bytes:
    return struct.pack("!I", len(data)) + data


class _Cursor:
    """Sequential reader over a body with short-read checking."""

    def __init__(self, body: bytes):
        self.body = body
        self.pos = 0

    def take(self, fmt: str) -> tuple:
        size = struct.calcsize(fmt)
        if self.pos + size > len(self.body):
            raise FramingError("truncated body")
        values = struct.unpack_from(fmt, self.body, self.pos)
        self.pos += size
        return values

    def take_str(self) -> str:
        (length,) = self.take("!H")
        return self.take_raw(length).decode("utf-8")

    def take_bytes(self) -> bytes:
        (length,) = self.take("!I")
        return self.take_raw(length)

    def take_raw(self, length: int) -> bytes:
        if self.pos + length > len(self.body):
            raise FramingError("truncated body")
        raw = self.body[self.pos:self.pos + length]
        self.pos += length
        return raw


# ---------------------------------------------------------------------------
# READ / WRITE
# ---------------------------------------------------------------------------


def encode_read(path: str, offset: int, length: int) -> bytes:
    return _pack_str(path) + struct.pack("!QI", offset, length)


def decode_read(body: bytes) -> Tuple[str, int, int]:
    cursor = _Cursor(body)
    path = cursor.take_str()
    offset, length = cursor.take("!QI")
    return path, offset, length


def encode_read_reply(data: bytes) -> bytes:
    return _pack_bytes(data)


def decode_read_reply(body: bytes) -> bytes:
    return _Cursor(body).take_bytes()


def encode_write(path: str, offset: int, data: bytes) -> bytes:
    return _pack_str(path) + struct.pack("!Q", offset) + _pack_bytes(data)


def decode_write(body: bytes) -> Tuple[str, int, bytes]:
    cursor = _Cursor(body)
    path = cursor.take_str()
    (offset,) = cursor.take("!Q")
    return path, offset, cursor.take_bytes()


def encode_write_reply(written: int) -> bytes:
    return struct.pack("!I", written)


def decode_write_reply(body: bytes) -> int:
    return _Cursor(body).take("!I")[0]


# ---------------------------------------------------------------------------
# INSTALL_CHAIN / EXEC_CHAIN
# ---------------------------------------------------------------------------


def encode_install_chain(path: str, hook: str, block_size: int,
                         scratch_size: int, program_name: str,
                         instructions: List[Instruction]) -> bytes:
    return (_pack_str(path) + _pack_str(hook) +
            struct.pack("!II", block_size, scratch_size) +
            _pack_str(program_name) +
            _pack_bytes(encode_instructions(instructions)))


def decode_install_chain(body: bytes,
                         ) -> Tuple[str, str, int, int, str,
                                    List[Instruction]]:
    cursor = _Cursor(body)
    path = cursor.take_str()
    hook = cursor.take_str()
    block_size, scratch_size = cursor.take("!II")
    program_name = cursor.take_str()
    instructions = decode_instructions(cursor.take_bytes())
    return path, hook, block_size, scratch_size, program_name, instructions


def encode_install_chain_reply(chain_id: int) -> bytes:
    return struct.pack("!I", chain_id)


def decode_install_chain_reply(body: bytes) -> int:
    return _Cursor(body).take("!I")[0]


def encode_exec_chain(chain_id: int, offset: int, length: int,
                      args: Tuple[int, ...]) -> bytes:
    out = struct.pack("!IQIB", chain_id, offset, length, len(args))
    for arg in args:
        out += struct.pack("!Q", arg & 0xFFFFFFFFFFFFFFFF)
    return out


def decode_exec_chain(body: bytes) -> Tuple[int, int, int, Tuple[int, ...]]:
    cursor = _Cursor(body)
    chain_id, offset, length, nargs = cursor.take("!IQIB")
    args = tuple(cursor.take("!Q")[0] for _ in range(nargs))
    return chain_id, offset, length, args


# ---------------------------------------------------------------------------
# Cluster KV: PUT / GET / REPLICATE (repro.cluster)
# ---------------------------------------------------------------------------


def encode_put(key: int, value: int) -> bytes:
    return struct.pack("!QQ", key, value)


def decode_put(body: bytes) -> Tuple[int, int]:
    return _Cursor(body).take("!QQ")


def encode_put_reply(version: int) -> bytes:
    return struct.pack("!Q", version)


def decode_put_reply(body: bytes) -> int:
    return _Cursor(body).take("!Q")[0]


def encode_get(key: int) -> bytes:
    return struct.pack("!Q", key)


def decode_get(body: bytes) -> int:
    return _Cursor(body).take("!Q")[0]


def encode_get_reply(found: bool, version: int, value: int) -> bytes:
    return struct.pack("!BQQ", 1 if found else 0, version, value)


def decode_get_reply(body: bytes) -> Tuple[bool, int, int]:
    found, version, value = _Cursor(body).take("!BQQ")
    return bool(found), version, value


def encode_replicate(key: int, version: int, offset: int,
                     data: bytes) -> bytes:
    return struct.pack("!QQQ", key, version, offset) + _pack_bytes(data)


def decode_replicate(body: bytes) -> Tuple[int, int, int, bytes]:
    cursor = _Cursor(body)
    key, version, offset = cursor.take("!QQQ")
    return key, version, offset, cursor.take_bytes()


def encode_replicate_reply(version: int) -> bytes:
    return struct.pack("!Q", version)


def decode_replicate_reply(body: bytes) -> int:
    return _Cursor(body).take("!Q")[0]


# ---------------------------------------------------------------------------
# COMPACT (repro.compact, remote-offloaded mode)
# ---------------------------------------------------------------------------


def encode_compact(output_path: str, drop_tombstones: bool,
                   input_paths: List[str]) -> bytes:
    out = _pack_str(output_path) + struct.pack(
        "!BH", 1 if drop_tombstones else 0, len(input_paths))
    for path in input_paths:  # oldest first — the merge fold order
        out += _pack_str(path)
    return out


def decode_compact(body: bytes) -> Tuple[str, bool, List[str]]:
    cursor = _Cursor(body)
    output_path = cursor.take_str()
    drop, count = cursor.take("!BH")
    input_paths = [cursor.take_str() for _ in range(count)]
    return output_path, bool(drop), input_paths


def encode_compact_reply(emitted: int, dropped: int, output_entries: int,
                         output_bytes: int, chain_hops: int) -> bytes:
    return struct.pack("!QQQQQ", emitted, dropped, output_entries,
                       output_bytes, chain_hops)


def decode_compact_reply(body: bytes) -> Tuple[int, int, int, int, int]:
    return _Cursor(body).take("!QQQQQ")


_HAS_VALUE = 0x1
_HAS_VALUE2 = 0x2


def encode_exec_chain_reply(chain_status: str, hops: int,
                            value: Optional[int], value2: Optional[int],
                            data: bytes) -> bytes:
    flags = ((_HAS_VALUE if value is not None else 0) |
             (_HAS_VALUE2 if value2 is not None else 0))
    out = _pack_str(chain_status) + struct.pack("!IB", hops, flags)
    if value is not None:
        out += struct.pack("!Q", value & 0xFFFFFFFFFFFFFFFF)
    if value2 is not None:
        out += struct.pack("!Q", value2 & 0xFFFFFFFFFFFFFFFF)
    return out + _pack_bytes(data)


def decode_exec_chain_reply(body: bytes,
                            ) -> Tuple[str, int, Optional[int],
                                       Optional[int], bytes]:
    cursor = _Cursor(body)
    chain_status = cursor.take_str()
    hops, flags = cursor.take("!IB")
    value = cursor.take("!Q")[0] if flags & _HAS_VALUE else None
    value2 = cursor.take("!Q")[0] if flags & _HAS_VALUE2 else None
    return chain_status, hops, value, value2, cursor.take_bytes()
