"""The remote client: plain RPC I/O plus the two B-tree GET strategies.

:class:`RemoteClient` wraps a :class:`~repro.net.transport.Connection`
and turns the wire ops into a storage API.  Its centrepiece is
:meth:`remote_btree_get`, which answers one key lookup two ways:

* **naive** — one READ RPC per B-tree hop: fetch the root page, parse
  it client-side, fetch the child, and so on.  A depth-``k`` tree pays
  the network round trip ``k`` times, which is the disaggregated
  analogue of the paper's per-hop kernel-crossing tax.
* **pushdown** — one EXEC_CHAIN RPC: the previously installed (and
  target-re-verified) traversal program walks the tree inside the
  target's NVMe completion path, and only the answer crosses the
  network.  The round trip is paid once, so at high RTT the speedup
  approaches the hop count — BPF-oF's headline shape.

Every method is a generator meant to run inside the simulation;
failures surface as the typed errors of :mod:`repro.errors`
(:class:`~repro.errors.RemoteError` refusals,
:class:`~repro.errors.RpcTimeout` when retransmissions are exhausted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.core import Hook
from repro.ebpf import Program
from repro.errors import QosRejected
from repro.net import wire
from repro.net.transport import Connection
from repro.structures.pages import PAGE_SIZE, decode_page, search_page

__all__ = ["RemoteChainResult", "RemoteClient", "RemoteCompactResult"]


@dataclass(frozen=True)
class RemoteChainResult:
    """An EXEC_CHAIN reply: the target-side chain outcome, unwrapped."""

    status: str
    hops: int
    value: Optional[int]
    value2: Optional[int]
    data: bytes

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class RemoteCompactResult:
    """A COMPACT reply plus client-side boundary accounting."""

    emitted: int
    dropped: int
    output_entries: int
    output_bytes: int
    chain_hops: int
    #: Bytes this RPC moved across the network, both directions
    #: (request + reply frames).  The whole point of the op: the merged
    #: pages themselves never cross.
    net_bytes: int


class RemoteClient:
    """A storage client talking to one :class:`StorageTarget`."""

    def __init__(self, connection: Connection, max_qos_retries: int = 8):
        self.connection = connection
        #: EAGAIN backpressure: how many times to sleep-and-retry before
        #: surfacing :class:`~repro.errors.QosRejected` to the caller.
        self.max_qos_retries = max_qos_retries
        #: Backoffs actually taken (for tests/metrics).
        self.qos_backoffs = 0

    def _call(self, op: int, body: bytes):
        """One RPC with deterministic QoS backoff (generator).

        An EAGAIN reply carries the target's simulated-time
        ``retry_after_ns``; the client sleeps exactly that long and
        retries, so the same seed replays the same backoff schedule.
        After ``max_qos_retries`` refusals the typed
        :class:`~repro.errors.QosRejected` propagates to the caller.
        """
        attempts = 0
        while True:
            status, reply = yield from self.connection.call(op, body)
            if status != wire.STATUS_EAGAIN:
                return status, reply
            retry_after_ns, reason, tenant = wire.decode_qos_reject(reply)
            if attempts >= self.max_qos_retries:
                raise QosRejected(reason, retry_after_ns=retry_after_ns,
                                  tenant=tenant)
            attempts += 1
            self.qos_backoffs += 1
            yield self.connection.sim.timeout(max(1, retry_after_ns))

    # ------------------------------------------------------------------
    # Plain remote I/O
    # ------------------------------------------------------------------

    def read(self, path: str, offset: int, length: int):
        """Remote ``pread`` (generator returning the data bytes)."""
        status, body = yield from self._call(
            wire.OP_READ, wire.encode_read(path, offset, length))
        wire.raise_for_status(status, body.decode("utf-8", "replace"))
        return wire.decode_read_reply(body)

    def write(self, path: str, offset: int, data: bytes):
        """Remote ``pwrite`` (generator returning bytes written)."""
        status, body = yield from self._call(
            wire.OP_WRITE, wire.encode_write(path, offset, data))
        wire.raise_for_status(status, body.decode("utf-8", "replace"))
        return wire.decode_write_reply(body)

    # ------------------------------------------------------------------
    # Chain pushdown
    # ------------------------------------------------------------------

    def install_chain(self, path: str, program: Program,
                      hook: Union[Hook, str] = Hook.NVME,
                      block_size: int = PAGE_SIZE, scratch_size: int = 256):
        """Ship ``program`` to the target for re-verification + install.

        Generator returning the target-assigned chain id.  Raises
        :class:`~repro.errors.RemoteVerifierRejected` if the target's
        verifier refuses the program.
        """
        hook_name = hook.value if isinstance(hook, Hook) else hook
        body = wire.encode_install_chain(path, hook_name, block_size,
                                         scratch_size, program.name,
                                         list(program.instructions))
        status, reply = yield from self._call(wire.OP_INSTALL_CHAIN, body)
        wire.raise_for_status(status, reply.decode("utf-8", "replace"))
        return wire.decode_install_chain_reply(reply)

    def exec_chain(self, chain_id: int, offset: int,
                   length: int = PAGE_SIZE, args: Tuple[int, ...] = ()):
        """Run an installed chain on the target (generator)."""
        status, reply = yield from self._call(
            wire.OP_EXEC_CHAIN,
            wire.encode_exec_chain(chain_id, offset, length, args))
        wire.raise_for_status(status, reply.decode("utf-8", "replace"))
        chain_status, hops, value, value2, data = \
            wire.decode_exec_chain_reply(reply)
        return RemoteChainResult(chain_status, hops, value, value2, data)

    # ------------------------------------------------------------------
    # Remote compaction offload
    # ------------------------------------------------------------------

    def compact(self, output_path: str, input_paths,
                drop_tombstones: bool = False):
        """Run a whole LSM compaction on the target (one RPC).

        ``input_paths`` must be ordered oldest first (the merge fold
        order — :meth:`~repro.structures.CompactionPlan.input_paths`).
        Generator returning a :class:`RemoteCompactResult`; its
        ``net_bytes`` counts both frames, which is the *entire* network
        cost of the compaction — versus a client-side compaction that
        READs every page up and WRITEs the merged table back.
        """
        body = wire.encode_compact(output_path, drop_tombstones,
                                   list(input_paths))
        status, reply = yield from self._call(wire.OP_COMPACT, body)
        wire.raise_for_reply(status, reply)
        emitted, dropped, output_entries, output_bytes, chain_hops = \
            wire.decode_compact_reply(reply)
        frame_overhead = 4 + wire._HEADER.size
        net_bytes = (len(body) + frame_overhead +
                     len(reply) + frame_overhead)
        return RemoteCompactResult(emitted, dropped, output_entries,
                                   output_bytes, chain_hops, net_bytes)

    # ------------------------------------------------------------------
    # The two GET strategies
    # ------------------------------------------------------------------

    def remote_btree_get(self, key: int, *, mode: str,
                         path: Optional[str] = None,
                         root_offset: int = 0,
                         chain_id: Optional[int] = None):
        """Look up ``key`` remotely; returns ``(value, found, rpc_hops)``.

        ``mode="naive"`` needs ``path`` (+ ``root_offset``) and issues
        one READ per level; ``mode="pushdown"`` needs ``chain_id`` from
        a prior :meth:`install_chain` and issues a single EXEC_CHAIN.
        """
        if mode == "naive":
            if path is None:
                raise ValueError("naive mode needs path")
            result = yield from self._naive_get(path, root_offset, key)
            return result
        if mode == "pushdown":
            if chain_id is None:
                raise ValueError("pushdown mode needs chain_id")
            result = yield from self._pushdown_get(chain_id, root_offset,
                                                   key)
            return result
        raise ValueError(f"unknown mode {mode!r}")

    def _naive_get(self, path: str, root_offset: int, key: int):
        offset = root_offset
        rpcs = 0
        while True:
            page = yield from self.read(path, offset, PAGE_SIZE)
            rpcs += 1
            _magic, level, entries = decode_page(page)
            index, value = search_page(page, key)
            if level > 0:
                if value is None:
                    return None, False, rpcs
                offset = value
                continue
            found = index >= 0 and entries[index][0] == key
            return (value if found else None), found, rpcs

    def _pushdown_get(self, chain_id: int, root_offset: int, key: int):
        result = yield from self.exec_chain(chain_id, root_offset,
                                            PAGE_SIZE, args=(key,))
        found = result.ok and result.value2 == 1
        return (result.value if found else None), found, 1
