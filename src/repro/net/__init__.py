"""Disaggregated storage over a simulated network (the BPF-oF shape).

The paper's successor work pushes the HotOS vision across a network:
when the storage sits behind a NIC, a B-tree traversal that makes one
round trip per pointer hop pays the network latency k times, while
pushing the verified BPF chain to the target pays it once.  This
package reproduces that shape on top of the existing chain engine:

* :mod:`~repro.net.fabric` — :class:`NetworkFabric`, a latency /
  bandwidth / jitter model on the discrete-event simulator, with
  fault-plan drop/delay episodes.
* :mod:`~repro.net.wire` — length-prefixed frames and per-op codecs;
  programs cross the wire in the real 8-byte eBPF slot encoding.
* :mod:`~repro.net.transport` — :class:`Connection`: request ids,
  bounded in-flight windows, client retransmission with backoff, and
  the target's idempotent request-id dedup cache.
* :mod:`~repro.net.target` — :class:`StorageTarget`: a simulated
  kernel serving READ / WRITE / INSTALL_CHAIN (with server-side
  re-verification of untrusted client programs) / EXEC_CHAIN.
* :mod:`~repro.net.client` — :class:`RemoteClient`: plain remote I/O
  plus ``remote_btree_get`` in naive (RPC-per-hop) and pushdown
  (single EXEC_CHAIN) modes.

See ``docs/networking.md`` for the full protocol and fault semantics.
"""

from repro.net.client import (
    RemoteChainResult,
    RemoteClient,
    RemoteCompactResult,
)
from repro.net.fabric import Link, NetConfig, NetworkFabric
from repro.net.target import StorageTarget
from repro.net.transport import Connection

__all__ = [
    "Connection",
    "Link",
    "NetConfig",
    "NetworkFabric",
    "RemoteChainResult",
    "RemoteClient",
    "RemoteCompactResult",
    "StorageTarget",
]
