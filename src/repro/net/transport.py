"""RPC transport: connections, request ids, windows, retry, and dedup.

A :class:`Connection` is one client's point-to-point session with a
storage target: two unidirectional fabric links (``c2s`` requests,
``s2c`` replies), a client-side demultiplexer matching replies to
pending request ids, and a bounded *in-flight window* (a one-per-slot
:class:`~repro.sim.resources.Resource`) so a client can never have more
than ``window`` RPCs outstanding — the flow-control half of a credit
scheme.

Reliability is end-to-end, client-driven:

* :meth:`Connection.call` retransmits after ``timeout_ns`` with
  exponential backoff, reusing the *same request id* every attempt.
* The target side (:meth:`Connection.serve`) keeps a bounded cache of
  encoded replies keyed by request id.  A retransmitted request whose
  original was already executed is answered from the cache — the op is
  **not** executed twice, which is what makes non-idempotent ops
  (WRITE, INSTALL_CHAIN, chains with side effects) safe under loss.
* A reply that arrives after the client gave up (or after a duplicate
  reply) is dropped by the demultiplexer.

Everything is emitted to the trace bus as ``net_rpc_send`` /
``net_rpc_recv`` / ``net_retry`` events, all behind the
``bus.enabled`` no-op guard.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import FramingError, InvalidArgument, RpcTimeout
from repro.net.fabric import NetworkFabric
from repro.net.wire import OP_NAMES, REPLY, decode_frame, encode_frame
from repro.obs import events as obs_events
from repro.sim import Event, Store
from repro.sim.engine import AnyOf
from repro.sim.resources import Resource

__all__ = ["Connection"]


class Connection:
    """One client's RPC session with a target, over two fabric links."""

    def __init__(self, fabric: NetworkFabric, name: str, window: int = 8,
                 timeout_ns: int = 400_000, max_retries: int = 8,
                 backoff_ns: int = 25_000, dedup_capacity: int = 256):
        if window < 1:
            raise InvalidArgument("window must be >= 1")
        if max_retries < 0 or timeout_ns <= 0 or backoff_ns <= 0:
            raise InvalidArgument("bad retry policy")
        self.fabric = fabric
        self.sim = fabric.sim
        self.bus = fabric.bus
        self.name = name
        self.timeout_ns = timeout_ns
        self.max_retries = max_retries
        self.backoff_ns = backoff_ns
        self.dedup_capacity = dedup_capacity
        self.c2s = fabric.new_link(f"{name}/c2s")
        self.s2c = fabric.new_link(f"{name}/s2c")
        self._client_rx: Store = Store(self.sim, name=f"{name}/client-rx")
        self._server_rx: Store = Store(self.sim, name=f"{name}/server-rx")
        self.c2s.deliver = self._server_rx.put
        self.s2c.deliver = self._client_rx.put
        self.window = Resource(self.sim, window, name=f"{name}/window")
        self._pending: Dict[int, Event] = {}
        self._next_id = 1
        #: Target-side reply cache: request id -> encoded reply frame.
        #: Evicted in least-recently-*used* order: a dedup hit moves the
        #: entry back to the tail, so a request id the client is still
        #: retransmitting cannot be displaced by newer traffic while a
        #: colder id remains cached (insertion-order eviction broke
        #: exactly-once under small ``dedup_capacity``).
        self._replies: Dict[int, bytes] = {}
        # -- plain counters (maintained with or without a bus) ----------
        self.rpcs_sent: Dict[str, int] = {}
        self.retries = 0
        self.stale_replies = 0
        self.dedup_hits = 0
        self.dedup_evictions = 0
        self.dropped_requests = 0
        self.bad_frames = 0
        self.max_inflight = 0
        self.sim.spawn(self._demux(), name=f"{name}/demux")

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def call(self, op: int, body: bytes = b""):
        """One RPC (generator): returns ``(status, reply_body)``.

        Blocks for a window slot, then transmits and retransmits (same
        request id, exponential backoff) until a reply arrives or the
        retry budget is spent, in which case :class:`RpcTimeout` is
        raised.
        """
        slot = self.window.request()
        yield slot
        self.max_inflight = max(self.max_inflight, self.window.in_use)
        try:
            result = yield from self._call_locked(op, body)
            return result
        finally:
            self.window.release(slot)

    def _call_locked(self, op: int, body: bytes):
        sim = self.sim
        request_id = self._next_id
        self._next_id += 1
        op_name = OP_NAMES[op]
        reply_event = Event(sim)
        self._pending[request_id] = reply_event
        frame = encode_frame(op, request_id, body)
        attempt = 1
        while True:
            self.rpcs_sent[op_name] = self.rpcs_sent.get(op_name, 0) + 1
            if self.bus.enabled:
                self.bus.emit(obs_events.NET_RPC_SEND, sim.now, op=op_name,
                              request_id=request_id, bytes=len(frame),
                              side="client", attempt=attempt,
                              inflight=len(self._pending))
            self.fabric.transmit(self.c2s, frame, request_id=request_id)
            yield AnyOf(sim, [reply_event, sim.timeout(self.timeout_ns)])
            if reply_event.triggered:
                status, reply_body = reply_event.value
                return status, reply_body
            if attempt > self.max_retries:
                self._pending.pop(request_id, None)
                raise RpcTimeout(op=op_name, request_id=request_id,
                                 attempts=attempt,
                                 timeout_ns=self.timeout_ns)
            backoff = self.backoff_ns << (attempt - 1)
            self.retries += 1
            if self.bus.enabled:
                self.bus.emit(obs_events.NET_RETRY, sim.now, op=op_name,
                              request_id=request_id, attempt=attempt,
                              backoff_ns=backoff)
            yield sim.timeout(backoff)
            attempt += 1

    def _demux(self):
        """Match reply frames to pending calls; drop stale duplicates."""
        while True:
            frame = yield self._client_rx.get()
            try:
                op, status, request_id, body = decode_frame(frame)
            except FramingError:
                self.bad_frames += 1
                continue
            event = self._pending.pop(request_id, None)
            if event is None:
                # The call gave up, or a duplicate reply already won.
                self.stale_replies += 1
                continue
            if self.bus.enabled:
                self.bus.emit(obs_events.NET_RPC_RECV, self.sim.now,
                              op=OP_NAMES.get(op & ~REPLY, "?"),
                              request_id=request_id, bytes=len(frame),
                              side="client", dup=False,
                              inflight=len(self._pending))
            event.succeed((status, body))

    # ------------------------------------------------------------------
    # Target side
    # ------------------------------------------------------------------

    def serve(self, handler) -> None:
        """Start the per-connection service loop (target side).

        ``handler(op, body)`` is a generator returning ``(status,
        reply_body)``; it runs inline, so one connection serves one
        request at a time and a retransmission queued behind the
        original execution is answered from the dedup cache.  A handler
        may instead return ``None`` to drop the request silently — no
        reply, nothing cached — which is how a crashed storage target
        goes dark (the client's recovery is its retransmission timeout,
        exactly as with a dead machine).
        """
        self.sim.spawn(self._serve_loop(handler), name=f"{self.name}/serve")

    def _serve_loop(self, handler):
        while True:
            frame = yield self._server_rx.get()
            try:
                op, _status, request_id, body = decode_frame(frame)
            except FramingError:
                self.bad_frames += 1
                continue
            op_name = OP_NAMES.get(op & ~REPLY, "?")
            cached = self._replies.get(request_id)
            if self.bus.enabled:
                self.bus.emit(obs_events.NET_RPC_RECV, self.sim.now,
                              op=op_name, request_id=request_id,
                              bytes=len(frame), side="target",
                              dup=cached is not None)
            if cached is not None:
                self.dedup_hits += 1
                # LRU touch: the client is clearly still retransmitting
                # this id, so keep its reply alive ahead of colder ones.
                del self._replies[request_id]
                self._replies[request_id] = cached
                self._send_reply(op_name, request_id, cached)
                continue
            result = yield from handler(op, body)
            if result is None:
                self.dropped_requests += 1
                continue
            status, reply_body = result
            reply = encode_frame(op | REPLY, request_id, reply_body,
                                 status=status)
            self._replies[request_id] = reply
            while len(self._replies) > self.dedup_capacity:
                self._replies.pop(next(iter(self._replies)))
                self.dedup_evictions += 1
            self._send_reply(op_name, request_id, reply)

    def _send_reply(self, op_name: str, request_id: int,
                    reply: bytes) -> None:
        if self.bus.enabled:
            self.bus.emit(obs_events.NET_RPC_SEND, self.sim.now, op=op_name,
                          request_id=request_id, bytes=len(reply),
                          side="target", attempt=1,
                          inflight=len(self._pending))
        self.fabric.transmit(self.s2c, reply, request_id=request_id)
