"""BPF for storage: an exokernel-inspired approach — full reproduction.

A from-scratch Python implementation of the HotOS '21 paper's system on a
deterministic discrete-event simulator.  Subpackages:

* :mod:`repro.sim` — the simulation engine (processes, CPUs, queues, RNG).
* :mod:`repro.ebpf` — the eBPF subset: assembler, verifier, VM, maps.
* :mod:`repro.device` — block store, latency models, the NVMe device.
* :mod:`repro.kernel` — the simulated storage stack (Table 1 costs, extent
  FS, BIO, driver, io_uring) with BPF hook slots.
* :mod:`repro.core` — the paper's contribution: install ioctl, chain
  engine, extent cache, accounting, the program library.
* :mod:`repro.structures` — on-disk B+-trees, LSM trees, WiscKey stores.
* :mod:`repro.workloads` — key distributions and YCSB mixes.
* :mod:`repro.bench` — one experiment per paper table/figure.

``python -m repro --help`` offers a command-line front end to the
experiments and program tooling.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
