"""The compaction engine: plan, merge (user-space or in-kernel), install.

``CompactionEngine`` executes :class:`~repro.structures.CompactionPlan`
snapshots in one of two local modes:

* ``"user"`` — the classic shape the paper taxes: every input page is
  ``pread(2)``-ed into user space, merged by the application, and the
  merged table is written back down — every byte crosses the syscall
  boundary twice (the write-amplification RESYSTANCE measures).
* ``"offloaded"`` — one installed chain per input run walks the data
  pages in the NVMe completion path and streams entries into a shared
  kernel-side :class:`MergeSink` via the ``compact_emit`` /
  ``compact_drop`` helpers; only two u64 counters per run surface to
  user space.  The rewrite of the merged run likewise stays below the
  boundary (the engine still drives it through the write syscall path
  for device/fs timing, but the payload originates in the kernel sink,
  so it is accounted as kernel-side bytes, not boundary crossings).

A third, remote mode lives in :mod:`repro.net`: ``RemoteClient.compact``
ships the whole plan to a ``StorageTarget`` as a single COMPACT RPC and
the target runs this engine in ``"offloaded"`` mode server-side.

QoS: the engine's work is keyed as *system* traffic by default
(``tenant=None``, the kernel's never-refused, never-paced class), so
background compaction is not starved by tenant shaping — exactly like
repair traffic.  Pass ``tenant="analytics"`` to opt a tenant's
compactions into its own QoS budget instead.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core import Hook
from repro.errors import InvalidArgument
from repro.compact.programs import sstable_merge_program
from repro.obs import events as obs_events
from repro.structures import FsBackend, MemoryBackend, SsTable
from repro.structures.lsm import TOMBSTONE
from repro.structures.pages import (
    FANOUT_MAX,
    PAGE_SIZE,
    SSTABLE_DATA_MAGIC,
    decode_page,
)

__all__ = ["CompactionEngine", "CompactionReport", "MergeSink"]

#: Bytes that cross the syscall boundary per offloaded run: the two u64
#: scalar results (emitted, dropped) of the terminating chain hop.
SCALAR_RESULT_BYTES = 16


class MergeSink:
    """Kernel-side k-way merge state fed by the compact helpers.

    Runs are streamed oldest first, so a plain upsert gives newer
    entries precedence — the same fold user-space compaction does —
    and ``drop`` retires a bottom-level tombstoned key.  The running
    counters are what the merge program mirrors into its scratch area
    and returns through result/result2.
    """

    __slots__ = ("entries", "emitted", "dropped")

    def __init__(self):
        self.entries: Dict[int, int] = {}
        self.emitted = 0
        self.dropped = 0

    def emit(self, key: int, value: int) -> int:
        self.entries[key] = value
        self.emitted += 1
        return self.emitted

    def drop(self, key: int) -> int:
        self.entries.pop(key, None)
        self.dropped += 1
        return self.dropped

    def items(self) -> List[Tuple[int, int]]:
        """The merged run in key order."""
        return sorted(self.entries.items())


@dataclasses.dataclass
class CompactionReport:
    """Byte-level accounting of one executed compaction."""

    mode: str
    tables: int = 0
    pages_scanned: int = 0
    emitted: int = 0
    dropped: int = 0
    output_entries: int = 0
    output_bytes: int = 0
    #: Bytes that crossed the user/kernel syscall boundary.
    user_bytes: int = 0
    #: Bytes the merge+rewrite moved entirely below the boundary.
    kernel_bytes: int = 0
    chain_hops: int = 0
    duration_ns: int = 0
    output_path: Optional[str] = None

    def as_row(self) -> Dict:
        return dataclasses.asdict(self)


class CompactionEngine:
    """Runs LSM compactions against a :class:`~repro.core.StorageBpf`."""

    def __init__(self, bpf, scratch_size: int = 64,
                 fanout: int = FANOUT_MAX, metrics=None,
                 tenant: Optional[str] = None):
        self.bpf = bpf
        self.kernel = bpf.kernel
        self.scratch_size = scratch_size
        self.metrics = metrics
        # QoS attribution knob: "" (or None) keys the compaction as
        # system traffic; a tenant name opts into that tenant's budget.
        self.tenant = tenant or None
        self.program = sstable_merge_program(
            PAGE_SIZE, scratch_size, fanout)
        self.bpf.verify_program(self.program)

    # ------------------------------------------------------------------

    def spawn(self, name: str = "compactor"):
        """A process carrying this engine's QoS attribution."""
        return self.kernel.spawn_process(name, tenant=self.tenant)

    # ------------------------------------------------------------------
    # The mode-agnostic core (also run server-side by StorageTarget)
    # ------------------------------------------------------------------

    def compact_files(self, proc, input_paths: List[str],
                      output_path: str, drop_tombstones: bool = False,
                      mode: str = "offloaded"):
        """Merge ``input_paths`` (oldest first) into ``output_path``.

        Generator (runs inside a simulated thread).  Returns
        ``(report, output)`` where ``output`` is ``(path, SsTable)`` or
        None when everything merged away.  The inputs are *not*
        unlinked — :meth:`~repro.structures.LsmTree.apply_compaction`
        owns the level swap and the invalidation-firing unlinks.
        """
        if mode not in ("user", "offloaded"):
            raise InvalidArgument(f"unknown compaction mode {mode!r}")
        kernel = self.kernel
        start_ns = kernel.sim.now
        report = CompactionReport(mode=mode, tables=len(input_paths))
        bus = kernel.bus
        if bus is not None and bus.enabled:
            bus.emit(obs_events.COMPACT_START, kernel.sim.now, mode=mode,
                     tables=len(input_paths),
                     drop_tombstones=int(drop_tombstones), pid=proc.pid)
        if mode == "user":
            items = yield from self._merge_user(proc, input_paths,
                                                drop_tombstones, report)
        else:
            items = yield from self._merge_offloaded(proc, input_paths,
                                                     drop_tombstones,
                                                     report)
        output = None
        if items:
            output = yield from self._write_output(proc, output_path,
                                                   items, report)
        report.output_entries = len(items)
        report.duration_ns = kernel.sim.now - start_ns
        if bus is not None and bus.enabled:
            bus.emit(obs_events.COMPACT_COMPLETE, kernel.sim.now,
                     mode=mode, emitted=report.emitted,
                     dropped=report.dropped,
                     output_entries=report.output_entries,
                     user_bytes=report.user_bytes,
                     kernel_bytes=report.kernel_bytes,
                     chain_hops=report.chain_hops, pid=proc.pid)
        self._record_metrics(report)
        return report, output

    def compact_tree(self, proc, tree, level: int = 0,
                     mode: str = "offloaded"):
        """Plan, execute, and install one ``level -> level + 1``
        compaction on ``tree``.  Generator; returns the report (or None
        when there was nothing to compact)."""
        plan = tree.plan_compaction(level)
        if plan is None:
            return None
        output_path = tree.reserve_table_path()
        report, output = yield from self.compact_files(
            proc, plan.input_paths(), output_path,
            drop_tombstones=plan.drop_tombstones, mode=mode)
        tree.apply_compaction(plan, [], output=output)
        return report

    # ------------------------------------------------------------------
    # user-space merge: every page up, the merged table back down
    # ------------------------------------------------------------------

    def _merge_user(self, proc, input_paths, drop_tombstones, report):
        kernel = self.kernel
        merged: Dict[int, int] = {}
        for path in input_paths:  # oldest first, newer overwrites
            fd = yield from kernel.sys_open(proc, path)
            # Walk the same pages the chain walks: the data run starts
            # at PAGE_SIZE and ends at the first non-data page.
            offset = PAGE_SIZE
            while True:
                result = yield from kernel.sys_pread(proc, fd, offset,
                                                     PAGE_SIZE)
                report.user_bytes += PAGE_SIZE
                report.pages_scanned += 1
                yield from kernel.cpus.run_thread(
                    kernel.cost.user_process_ns)
                magic, _level, entries = decode_page(result.data)
                if magic != SSTABLE_DATA_MAGIC:
                    break
                for key, value in entries:
                    merged[key] = value
                    report.emitted += 1
                offset += PAGE_SIZE
            yield from kernel.sys_close(proc, fd)
        items = sorted(merged.items())
        if drop_tombstones:
            live = [(k, v) for k, v in items if v != TOMBSTONE]
            report.dropped = len(items) - len(live)
            items = live
        return items

    # ------------------------------------------------------------------
    # offloaded merge: one chain per run, only scalars surface
    # ------------------------------------------------------------------

    def _merge_offloaded(self, proc, input_paths, drop_tombstones,
                         report):
        sink = MergeSink()
        flag = 1 if drop_tombstones else 0
        for path in input_paths:  # oldest first, newer overwrites
            handle = yield from self.bpf.open_chain(
                proc, path, self.program, hook=Hook.NVME,
                block_size=PAGE_SIZE, scratch_size=self.scratch_size,
                args=(flag,))
            # The helpers reach the sink through the installation's VM
            # (the same channel the chain budget uses).
            handle.installation.vm.compact_sink = sink
            result = yield from handle.read_robust(PAGE_SIZE)
            report.chain_hops += result.hops
            report.pages_scanned += result.hops
            report.user_bytes += SCALAR_RESULT_BYTES
            yield from handle.close()
        report.emitted = sink.emitted
        report.dropped = sink.dropped
        return sink.items()

    # ------------------------------------------------------------------

    def _write_output(self, proc, output_path, items, report):
        """Write the merged run through the (timed) write syscall path."""
        kernel = self.kernel
        staging = MemoryBackend()
        SsTable.build(staging, items)
        image = staging.read(0, staging.size)
        report.output_bytes = len(image)
        if report.mode == "user":
            report.user_bytes += len(image)
        else:
            report.kernel_bytes += len(image)
        fd = yield from kernel.sys_open(proc, output_path, create=True)
        yield from kernel.sys_pwrite(proc, fd, 0, image)
        yield from kernel.sys_fsync(proc, fd)
        inode = proc.file(fd).inode
        yield from kernel.sys_close(proc, fd)
        report.output_path = output_path
        return output_path, SsTable(FsBackend(kernel.fs, inode))

    def _record_metrics(self, report):
        if self.metrics is None:
            return
        mode = report.mode
        self.metrics.counter(
            "compact_runs_total",
            "Compactions executed, by mode").inc(mode=mode)
        boundary = self.metrics.counter(
            "compact_boundary_bytes_total",
            "Bytes moved per boundary during compaction")
        boundary.inc(report.user_bytes, boundary="syscall", mode=mode)
        boundary.inc(report.kernel_bytes, boundary="kernel", mode=mode)
        entries = self.metrics.counter(
            "compact_entries_total",
            "Entries streamed through compaction merges")
        entries.inc(report.emitted, result="emitted", mode=mode)
        entries.inc(report.dropped, result="dropped", mode=mode)
