"""The chain-installable SSTable merge leg.

One compaction installs this program once per input run and issues a
single tagged read at the first data page; the program then walks the
run's contiguous data pages by resubmitting from the completion path —
never surfacing a page to user space.  Every entry is pushed into the
kernel-side merge sink through the ``compact_emit``/``compact_drop``
helpers (ids 18/19), which upsert into a shared ordered map exactly the
way user-space compaction folds runs oldest-first: scanning the runs
oldest first makes newer entries overwrite older ones, and a
bottom-level tombstone retires its key from the sink.

Layout assumptions (matching :meth:`repro.structures.SsTable.build`):
data pages are the contiguous blocks ``1..D`` starting at
``PAGE_SIZE``, each ``(magic, level, nkeys, entries[(key, value)])``,
and the first page whose magic is not ``SSTABLE_DATA_MAGIC`` (the first
index page) terminates the walk.  The program keeps the sink's running
counters in scratch so the terminating hop can return them:
``result = entries emitted``, ``result2 = tombstones dropped``.

Contract: ``arg0`` != 0 enables bottom-level tombstone dropping.
Scratch layout: emitted count at offset 0, dropped count at offset 8.
"""

from __future__ import annotations

from repro.core.hooks import (
    ACTION_RESUBMIT,
    ACTION_RETURN_VALUE,
    CTX_ACTION,
    CTX_ARG0,
    CTX_DATA,
    CTX_FILE_OFFSET,
    CTX_NEXT_OFFSET,
    CTX_RESULT,
    CTX_RESULT2,
    CTX_SCRATCH,
    storage_ctx_layout,
    storage_helpers,
)
from repro.ebpf.builder import ProgramBuilder
from repro.ebpf.program import Program
from repro.errors import InvalidArgument
from repro.structures.pages import (
    FANOUT_MAX,
    PAGE_HEADER_SIZE,
    SSTABLE_DATA_MAGIC,
)

__all__ = ["sstable_merge_program"]

# Callee-saved registers (survive helper calls); r1-r5 are clobbered.
R_CTX = 6       # saved context pointer
R_PAGE = 7      # data page pointer
R_I = 8         # entry index
R_N = 9         # nkeys (clamped)


def sstable_merge_program(block_size: int = 4096,
                          scratch_size: int = 64,
                          fanout: int = FANOUT_MAX,
                          name: str = "sstable-merge") -> Program:
    """Build the merge leg for one sorted run (see module docstring)."""
    if not 2 <= fanout <= FANOUT_MAX:
        raise InvalidArgument(f"fanout must be in [2, {FANOUT_MAX}]")
    if scratch_size < 16:
        raise InvalidArgument("merge program needs >= 16 scratch bytes")
    layout = storage_ctx_layout(block_size, scratch_size)
    b = ProgramBuilder(layout, storage_helpers().names(), name=name)
    max_index = fanout - 1

    # The context pointer moves to a callee-saved register up front: the
    # helper calls below clobber r1-r5 every iteration.
    b.mov_reg(R_CTX, 1)
    b.ldx("dw", R_PAGE, R_CTX, CTX_DATA)
    b.ldx("w", 2, R_PAGE, 0)                        # header.magic
    finish = b.label("finish")
    b.branch("jne", 2, finish, imm=SSTABLE_DATA_MAGIC)

    # -- a data page: stream its entries into the sink -------------------
    b.ldx("h", R_N, R_PAGE, 6)                      # header.nkeys
    clamp = b.label()
    b.branch("jle", R_N, clamp, imm=fanout)
    b.mov(R_N, fanout)
    b.place(clamp)
    b.mov(R_I, 0)
    # Zero the caller-saved temps so the loop back-edge rejoins the loop
    # head with the same register state the first iteration enters with.
    b.mov(0, 0)
    b.mov(2, 0)
    loop = b.label("loop")
    page_done = b.label("page_done")
    b.place(loop)
    b.branch("jge", R_I, page_done, src=R_N)
    clamped = b.label()
    b.branch("jle", R_I, clamped, imm=max_index)
    b.mov(R_I, max_index)                           # verifier clamp
    b.place(clamped)
    b.mov_reg(2, R_I)
    b.alu("lsh", 2, imm=4)                          # i * 16
    b.alu("add", 2, imm=PAGE_HEADER_SIZE)
    b.alu("add", 2, src=R_PAGE)                     # &entries[i]
    b.ldx("dw", 1, 2, 0)                            # r1 = key
    b.ldx("dw", 2, 2, 8)                            # r2 = value
    b.mov(3, -1)                                    # the tombstone pattern
    emit = b.label("emit")
    b.branch("jne", 2, emit, src=3)                 # live entry
    b.ldx("dw", 4, R_CTX, CTX_ARG0)                 # drop_tombstones flag
    b.branch("jeq", 4, emit, imm=0)                 # keep the tombstone
    # A tombstone reaching the bottom level: retire the key (r1 holds it).
    b.call("compact_drop")
    b.ldx("dw", 2, R_CTX, CTX_SCRATCH)
    b.stx("dw", 2, 8, 0)                            # scratch[8] = dropped
    cont = b.label("cont")
    b.jump(cont)
    b.place(emit)
    b.call("compact_emit")                          # r1 = key, r2 = value
    b.ldx("dw", 2, R_CTX, CTX_SCRATCH)
    b.stx("dw", 2, 0, 0)                            # scratch[0] = emitted
    b.place(cont)
    # Normalise temps so both call paths rejoin identically (r1/r3-r5
    # are already uninitialised on both after the helper call).
    b.mov(0, 0)
    b.mov(2, 0)
    b.alu("add", R_I, imm=1)
    b.jump(loop)
    b.place(page_done)
    # Data pages are contiguous: recycle the descriptor at the next one.
    b.ldx("dw", 2, R_CTX, CTX_FILE_OFFSET)
    b.alu("add", 2, imm=block_size)
    b.mov(3, ACTION_RESUBMIT)
    b.stx("dw", R_CTX, CTX_ACTION, 3)
    b.stx("dw", R_CTX, CTX_NEXT_OFFSET, 2)
    b.mov(0, 0)
    b.exit()

    # -- first non-data page (the index): the run is fully streamed ------
    b.place(finish)
    b.ldx("dw", 3, R_CTX, CTX_SCRATCH)
    b.mov(2, ACTION_RETURN_VALUE)
    b.stx("dw", R_CTX, CTX_ACTION, 2)
    b.ldx("dw", 2, 3, 0)
    b.stx("dw", R_CTX, CTX_RESULT, 2)               # result = emitted
    b.ldx("dw", 2, 3, 8)
    b.stx("dw", R_CTX, CTX_RESULT2, 2)              # result2 = dropped
    b.mov(0, 0)
    b.exit()
    return b.build()
