"""In-kernel LSM compaction offload via BPF chains (paper §4).

User-space compaction is the paper's "auxiliary I/O" tax writ large:
every merged block crosses the syscall (or network) boundary twice —
once up to be merged, once back down to be rewritten.  This package
pushes the merge itself into the completion path: a verified merge
program walks each input SSTable's data pages as one installed chain,
streaming entries into a kernel-side merge sink through the
``compact_emit``/``compact_drop`` helpers, so only two scalar counters
per table ever surface to user space.  A remote mode runs the whole
compaction server-side on a :class:`~repro.net.StorageTarget` via a
single COMPACT RPC (the BPF-oF/RESYSTANCE shape).

* :func:`~repro.compact.programs.sstable_merge_program` — the
  chain-installable k-way merge leg (one chain per input run).
* :class:`~repro.compact.engine.CompactionEngine` — plans, executes
  (user-space or offloaded), and installs compactions on a
  :class:`~repro.structures.LsmTree`, with boundary-byte accounting.
* :class:`~repro.compact.engine.MergeSink` — the kernel-side merge
  state the helpers feed.
"""

from repro.compact.engine import (
    CompactionEngine,
    CompactionReport,
    MergeSink,
)
from repro.compact.programs import sstable_merge_program

__all__ = [
    "CompactionEngine",
    "CompactionReport",
    "MergeSink",
    "sstable_merge_program",
]
