"""Closed-loop experiment driver and the shared B-tree benchmark rig.

:class:`BtreeBench` is the machine behind Figures 3a-3d: one simulated
kernel + device, one B-tree index file of a requested depth, and the three
lookup implementations being compared — application-level traversal
(baseline), syscall-dispatch-hook chains, and NVMe-driver-hook chains.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core import Hook, StorageBpf
from repro.core.library import index_traversal_program
from repro.device import LatencyModel
from repro.errors import InvalidArgument
from repro.kernel import CostModel, Kernel, KernelConfig
from repro.obs import events as obs_events
from repro.qos import QosConfig
from repro.sim import LatencyRecorder, RandomStreams, Simulator, ThroughputMeter
from repro.structures import BTree, FsBackend
from repro.structures.pages import PAGE_SIZE, FileBackend, search_page

__all__ = ["BtreeBench", "NVM2_BENCH", "choose_fanout", "run_closed_loop"]

#: The deterministic gen-2 Optane used by all Figure 3 experiments.
NVM2_BENCH = LatencyModel("nvm2", read_ns=3224, write_ns=3600,
                          parallelism=7, jitter=0.0)

# Verify-once cache: the traversal program for a given fanout is pure and
# stateless, and every experiment variant (per mode, per depth, per round)
# builds a fresh BtreeBench around the same program.  Static verification
# was the single largest cost of small benchmark runs; sharing the verified
# Program is exactly the paper's install contract (verify once, reuse).
_PROGRAM_CACHE: Dict[int, "object"] = {}


def _bench_program(fanout: int):
    program = _PROGRAM_CACHE.get(fanout)
    if program is None:
        program = _PROGRAM_CACHE[fanout] = index_traversal_program(
            fanout=fanout)
    return program


class _MemBackend(FileBackend):
    """In-memory backend for building cacheable tree images."""

    def __init__(self):
        self.data = bytearray()

    def _grow(self, end: int) -> None:
        if len(self.data) < end:
            self.data.extend(bytes(end - len(self.data)))

    def read(self, offset: int, length: int) -> bytes:
        return bytes(self.data[offset:offset + length])

    def write(self, offset: int, data: bytes) -> None:
        self._grow(offset + len(data))
        self.data[offset:offset + len(data)] = data

    def preallocate(self, offset: int, length: int) -> None:
        self._grow(offset + length)

    @property
    def size(self) -> int:
        return len(self.data)


# Built-tree image cache.  The tree for a (depth, fanout) pair is a pure
# function of those two numbers, but every experiment variant used to
# re-serialise it page by page through the simulated FS — thousands of
# untimed write_sync transactions per BtreeBench.  Building the byte image
# once and blitting it with two bulk writes leaves the FS, extent, and
# media state identical (same preallocation burst, same bytes, meta block
# still allocated last) while skipping the per-page bookkeeping.
_TREE_IMAGE_CACHE: Dict[Tuple[int, int], bytes] = {}


def _tree_image(depth: int, fanout: int) -> bytes:
    image = _TREE_IMAGE_CACHE.get((depth, fanout))
    if image is None:
        num_keys = BTree.keys_for_depth(depth, fanout)
        mem = _MemBackend()
        BTree.build(mem, [(key * 3 + 1, key) for key in range(num_keys)],
                    fanout=fanout)
        image = _TREE_IMAGE_CACHE[(depth, fanout)] = bytes(mem.data)
    return image


def run_closed_loop(sim: Simulator, thread_count: int, duration_ns: int,
                    make_worker: Callable,
                    ) -> Tuple[ThroughputMeter, LatencyRecorder]:
    """Run ``thread_count`` closed-loop workers for ``duration_ns``.

    ``make_worker(index)`` is a generator that performs per-thread setup
    (open, install, ...) and returns a nullary generator function executing
    one operation.  Returns the completed-operation meter and per-operation
    latency recorder.
    """
    if thread_count < 1:
        raise InvalidArgument("thread_count must be >= 1")
    meter = ThroughputMeter()
    latency = LatencyRecorder()
    meter.start(sim.now)
    stop_at = sim.now + duration_ns

    def loop(index: int):
        one_op = yield from make_worker(index)
        while sim.now < stop_at:
            start = sim.now
            yield from one_op()
            latency.record(sim.now - start)
            meter.record(sim.now)

    for index in range(thread_count):
        sim.spawn(loop(index), name=f"worker-{index}")
    sim.run(until=stop_at)
    meter.stop(sim.now)
    return meter, latency


def choose_fanout(depth: int, max_keys: int = 30_000) -> int:
    """The largest fanout (<= 16) keeping a depth-``depth`` tree small."""
    if depth <= 1:
        return 16
    fanout = 16
    while fanout > 2 and fanout ** (depth - 1) + 1 > max_keys:
        fanout -= 1
    return fanout


class BtreeBench:
    """One simulated machine with a B-tree index of the requested depth."""

    def __init__(self, depth: int, cores: int = 6, seed: int = 0,
                 model: LatencyModel = NVM2_BENCH,
                 cost_model: Optional[CostModel] = None,
                 fanout: Optional[int] = None, jit: Optional[bool] = None,
                 vm_mode: Optional[str] = None,
                 max_chain_hops: int = 64, queue_pairs: int = 1,
                 irq_steering: Optional[bool] = None,
                 qos: Optional[QosConfig] = None):
        self.depth = depth
        self.fanout = fanout or choose_fanout(depth)
        num_keys = BTree.keys_for_depth(depth, self.fanout)
        self.sim = Simulator()
        config = KernelConfig(cores=cores, seed=seed,
                              cost_model=cost_model or CostModel(),
                              queue_pairs=queue_pairs,
                              irq_steering=irq_steering, qos=qos)
        self.kernel = Kernel(self.sim, model, config)
        self.bpf = StorageBpf(self.kernel, max_chain_hops=max_chain_hops)
        self.jit = jit
        self.vm_mode = vm_mode
        inode = self.kernel.fs.create("/index")
        image = _tree_image(depth, self.fanout)
        backend = FsBackend(self.kernel.fs, inode)
        backend.preallocate(PAGE_SIZE, len(image) - PAGE_SIZE)
        backend.write(PAGE_SIZE, image[PAGE_SIZE:])
        backend.write(0, image[:PAGE_SIZE])
        self.tree = BTree(backend)
        if self.tree.depth != depth:
            raise InvalidArgument(
                f"built depth {self.tree.depth}, wanted {depth}")
        self.keys = [key * 3 + 1 for key in range(num_keys)]
        self.program = _bench_program(self.fanout)
        if not self.program.verified:
            self.bpf.verify_program(self.program)
        self.streams = RandomStreams(seed)

    # ------------------------------------------------------------------
    # Worker factories for run_closed_loop
    # ------------------------------------------------------------------

    def _key_stream(self, index: int):
        rng = self.streams.fork(f"thread-{index}").stream("keys")
        keys = self.keys
        return lambda: keys[rng.randrange(len(keys))]

    def baseline_worker(self, index: int):
        """App-level traversal: one read() + user-space parse per level."""
        kernel = self.kernel
        proc = kernel.spawn_process(f"base-{index}")
        fd = yield from kernel.sys_open(proc, "/index")
        next_key = self._key_stream(index)
        root = self.tree.meta.root_offset
        depth = self.depth
        user_ns = kernel.cost.user_process_ns

        def one_op():
            key = next_key()
            offset = root
            for _level in range(depth):
                result = yield from kernel.sys_pread(proc, fd, offset,
                                                     PAGE_SIZE)
                # Application-side page parse + next-pointer computation.
                yield from kernel.cpus.run_thread(user_ns)
                if kernel.bus.enabled:
                    kernel.bus.emit(obs_events.APP_PROCESS, kernel.sim.now,
                                    cpu_ns=user_ns, path="normal")
                _index, child = search_page(result.data, key)
                if child is None:
                    return
                offset = child

        return one_op

    def chain_worker(self, hook: Hook, tenant: Optional[str] = None):
        """Factory of workers using the installed-hook chain path.

        ``tenant`` bills every worker process (and so its chain
        resubmissions and NVMe commands) to that QoS tenant.
        """

        def make_worker(index: int):
            kernel = self.kernel
            proc = kernel.spawn_process(f"chain-{index}", tenant=tenant)
            fd = yield from kernel.sys_open(proc, "/index")
            yield from self.bpf.install(proc, fd, self.program, hook=hook,
                                        jit=self.jit, vm_mode=self.vm_mode)
            next_key = self._key_stream(index)
            root = self.tree.meta.root_offset

            def one_op():
                key = next_key()
                yield from self.bpf.read_chain(proc, fd, root, PAGE_SIZE,
                                               args=(key,))

            return one_op

        return make_worker

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------

    def throughput(self, system: str, threads: int,
                   duration_ns: int = 20_000_000) -> float:
        """Closed-loop lookups/sec for 'baseline' | 'syscall' | 'nvme'."""
        make_worker = self._worker_for(system)
        meter, _latency = run_closed_loop(self.sim, threads, duration_ns,
                                          make_worker)
        return meter.ops_per_sec()

    def mean_latency(self, system: str,
                     operations: int = 200) -> float:
        """Single-thread mean lookup latency over ``operations`` ops."""
        make_worker = self._worker_for(system)
        latency = LatencyRecorder()

        def loop():
            one_op = yield from make_worker(0)
            for _ in range(operations):
                start = self.sim.now
                yield from one_op()
                latency.record(self.sim.now - start)

        self.sim.run_process(loop())
        return latency.mean

    def _worker_for(self, system: str):
        if system == "baseline":
            return self.baseline_worker
        if system == "syscall":
            return self.chain_worker(Hook.SYSCALL)
        if system == "nvme":
            return self.chain_worker(Hook.NVME)
        raise InvalidArgument(f"unknown system {system!r}")
