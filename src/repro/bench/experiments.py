"""The figure/table reproductions and ablations.

Every function returns a list of row dicts (and takes explicit scale
parameters, so tests can run miniature versions of the same code the
benchmarks run at full scale).  The module docstrings of the individual
functions state the paper's expectation for the shape of the result.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Sequence

from repro.core import Hook, StorageBpf
from repro.core.extent_cache import NvmeExtentCache
from repro.core.library import index_traversal_program, linked_list_program
from repro.device import DEVICE_PROFILES, LatencyModel
from repro.errors import ExtentInvalidated, InvalidArgument, IoError
from repro.faults import FaultSpec, fault_injection
from repro.kernel import CostModel, IoUring, Kernel, KernelConfig
from repro.qos import QosConfig, Tenant
from repro.sim import LatencyRecorder, Simulator, ThroughputMeter
from repro.structures import BTree, FsBackend, KvStore, LsmTree, SsTable
from repro.structures.pages import PAGE_SIZE, search_page
from repro.workloads import OpType, YcsbWorkload
from repro.sim.rng import RandomStreams
from repro.bench.runner import NVM2_BENCH, BtreeBench, run_closed_loop

__all__ = [
    "ablation_app_cache",
    "interference",
    "ablation_invalidation_rate",
    "ablation_resubmit_bound",
    "ablation_vm_mode",
    "cluster_failover",
    "compaction",
    "crash_consistency",
    "extent_stability",
    "fault_resilience",
    "fig1_latency_breakdown",
    "fig3_throughput",
    "fig3c_latency",
    "fig3d_iouring",
    "mq_scaling",
    "net_pushdown",
    "table1_breakdown",
    "tenants",
]


# ---------------------------------------------------------------------------
# Figure 1 — kernel overhead fraction across device generations
# ---------------------------------------------------------------------------


def fig1_latency_breakdown(reads: int = 200) -> List[Dict]:
    """Figure 1: software share of a 512 B random read per device.

    Paper's shape: negligible on HDD, a few percent on NAND, 10-15 % on
    first-generation Optane, about half on second-generation Optane.
    """
    from dataclasses import replace

    rows = []
    for name in ("hdd", "nand", "nvm1", "nvm2"):
        # Jitter-free device models so the software share is exact.
        model = replace(DEVICE_PROFILES[name], jitter=0.0)
        sim = Simulator()
        kernel = Kernel(sim, model, KernelConfig(seed=1))
        kernel.create_file("/data", bytes(1 << 20))
        proc = kernel.spawn_process()
        rng = RandomStreams(2).stream(f"fig1-{name}")
        total = 0

        def workload():
            nonlocal total
            fd = yield from kernel.sys_open(proc, "/data")
            for _ in range(reads):
                offset = rng.randrange(2048) * 512
                start = sim.now
                yield from kernel.sys_pread(proc, fd, offset, 512)
                total += sim.now - start

        kernel.run_syscall(workload())
        mean_total = total / reads
        device_ns = model.read_ns
        software_ns = mean_total - device_ns
        rows.append({
            "device": model.name,
            "total_us": mean_total / 1000,
            "device_us": device_ns / 1000,
            "software_us": software_ns / 1000,
            "software_pct": 100.0 * software_ns / mean_total,
        })
    return rows


# ---------------------------------------------------------------------------
# Table 1 — per-layer latency breakdown on gen-2 Optane
# ---------------------------------------------------------------------------

#: The paper's Table 1, for comparison columns.
TABLE1_PAPER = {
    "kernel crossing": 351,
    "read syscall": 199,
    "ext4": 2006,
    "bio": 379,
    "NVMe driver": 113,
    "storage device": 3224,
}


def table1_breakdown(reads: int = 200) -> List[Dict]:
    """Table 1: where a 512 B read's 6.27 us go on gen-2 Optane."""
    cost = CostModel()
    sim = Simulator()
    kernel = Kernel(sim, NVM2_BENCH, KernelConfig(seed=1, cost_model=cost))
    kernel.create_file("/data", bytes(1 << 20))
    proc = kernel.spawn_process()
    rng = RandomStreams(3).stream("table1")
    total = 0

    def workload():
        nonlocal total
        fd = yield from kernel.sys_open(proc, "/data")
        for _ in range(reads):
            offset = rng.randrange(2048) * 512
            start = sim.now
            yield from kernel.sys_pread(proc, fd, offset, 512)
            total += sim.now - start

    kernel.run_syscall(workload())
    mean_total = total / reads
    software = cost.software_total_ns()
    measured_device = mean_total - software
    rows = []
    for layer, layer_ns in cost.table1_rows(int(measured_device)):
        rows.append({
            "layer": layer,
            "measured_ns": layer_ns,
            "paper_ns": TABLE1_PAPER[layer],
            "measured_pct": 100.0 * layer_ns / mean_total,
        })
    rows.append({
        "layer": "total",
        "measured_ns": int(mean_total),
        "paper_ns": 6272,
        "measured_pct": 100.0,
    })
    return rows


# ---------------------------------------------------------------------------
# Figures 3a / 3b — lookup throughput vs threads, per hook
# ---------------------------------------------------------------------------


def fig3_throughput(hook: str,
                    depths: Sequence[int] = (2, 6, 10),
                    threads: Sequence[int] = (1, 2, 4, 6, 12),
                    duration_ns: int = 10_000_000,
                    cores: int = 6) -> List[Dict]:
    """Figures 3a (hook='syscall') and 3b (hook='nvme').

    Paper's shape: the syscall hook tops out around 1.25x; the NVMe hook
    reaches ~2.5x, growing with tree depth, with the largest relative gains
    appearing once the baseline saturates the six cores.
    """
    if hook not in ("syscall", "nvme"):
        raise ValueError(f"hook must be 'syscall' or 'nvme', got {hook!r}")
    rows = []
    for depth in depths:
        for thread_count in threads:
            baseline_bench = BtreeBench(depth, cores=cores, seed=depth)
            baseline = baseline_bench.throughput("baseline", thread_count,
                                                 duration_ns)
            hook_bench = BtreeBench(depth, cores=cores, seed=depth)
            hooked = hook_bench.throughput(hook, thread_count, duration_ns)
            rows.append({
                "depth": depth,
                "threads": thread_count,
                "baseline_klookups": baseline / 1000,
                f"{hook}_klookups": hooked / 1000,
                "speedup": hooked / baseline,
            })
    return rows


# ---------------------------------------------------------------------------
# Figure 3c — single-thread latency vs depth, both hooks
# ---------------------------------------------------------------------------


def fig3c_latency(depths: Sequence[int] = (1, 2, 3, 4, 6, 8, 10),
                  operations: int = 120) -> List[Dict]:
    """Figure 3c: mean lookup latency; the NVMe hook cuts it up to ~49 %."""
    rows = []
    for depth in depths:
        values = {}
        for system in ("baseline", "syscall", "nvme"):
            bench = BtreeBench(depth, seed=depth)
            values[system] = bench.mean_latency(system, operations)
        rows.append({
            "depth": depth,
            "baseline_us": values["baseline"] / 1000,
            "syscall_us": values["syscall"] / 1000,
            "nvme_us": values["nvme"] / 1000,
            "nvme_reduction_pct":
                100.0 * (1 - values["nvme"] / values["baseline"]),
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 3d — io_uring batch size sweep, single thread
# ---------------------------------------------------------------------------


def fig3d_iouring(depths: Sequence[int] = (3, 6, 10),
                  batches: Sequence[int] = (1, 2, 4, 8, 16, 32),
                  duration_ns: int = 10_000_000) -> List[Dict]:
    """Figure 3d: speedup grows with batch size; >2.5x for deep trees,
    around 1.3-1.5x for three dependent lookups."""
    rows = []
    for depth in depths:
        for batch in batches:
            baseline = _iouring_baseline_tput(depth, batch, duration_ns)
            hooked = _iouring_chain_tput(depth, batch, duration_ns)
            rows.append({
                "depth": depth,
                "batch": batch,
                "baseline_klookups": baseline / 1000,
                "bpf_klookups": hooked / 1000,
                "speedup": hooked / baseline,
            })
    return rows


def _iouring_baseline_tput(depth: int, batch: int,
                           duration_ns: int) -> float:
    """Unmodified io_uring: the app drives every level of every lookup.

    Single core: NVMe completion interrupts are steered to the submitting
    CPU, so in a single-threaded experiment the IRQ work and the
    application share one core (for both systems).
    """
    bench = BtreeBench(depth, seed=depth, cores=1)
    kernel = bench.kernel
    sim = bench.sim
    meter = ThroughputMeter()
    meter.start(sim.now)
    stop_at = sim.now + duration_ns
    next_key = bench._key_stream(0)
    root = bench.tree.meta.root_offset
    user_ns = kernel.cost.user_process_ns

    def driver():
        proc = kernel.spawn_process("uring-base")
        fd = yield from kernel.sys_open(proc, "/index")
        ring = IoUring(kernel, proc)
        # lookup state: user_data -> [key, level, offset]
        lookups = {}
        for slot in range(batch):
            lookups[slot] = [next_key(), 0, root]
        while sim.now < stop_at:
            for slot, (key, _level, offset) in lookups.items():
                ring.prep_read(fd, offset, PAGE_SIZE, user_data=slot)
            cqes = yield from ring.enter(wait_nr=batch)
            # App-side parse of every completed page.
            yield from kernel.cpus.run_thread(user_ns * len(cqes))
            for cqe in cqes:
                slot = cqe.user_data
                key, level, _offset = lookups[slot]
                _index, child = search_page(cqe.result.data, key)
                if level + 1 >= depth or child is None:
                    meter.record(sim.now)
                    lookups[slot] = [next_key(), 0, root]
                else:
                    lookups[slot] = [key, level + 1, child]

    sim.spawn(driver(), name="uring-base")
    sim.run(until=stop_at)
    meter.stop(sim.now)
    return meter.ops_per_sec()


def _iouring_chain_tput(depth: int, batch: int, duration_ns: int) -> float:
    """io_uring + the NVMe-hook chain: one tagged SQE per whole lookup.

    Single core, matching the baseline (IRQ affinity to the submitter).
    """
    bench = BtreeBench(depth, seed=depth, cores=1)
    kernel = bench.kernel
    sim = bench.sim
    meter = ThroughputMeter()
    meter.start(sim.now)
    stop_at = sim.now + duration_ns
    next_key = bench._key_stream(0)
    root = bench.tree.meta.root_offset

    def driver():
        proc = kernel.spawn_process("uring-bpf")
        fd = yield from kernel.sys_open(proc, "/index")
        yield from bench.bpf.install(proc, fd, bench.program,
                                     hook=Hook.NVME, jit=bench.jit,
                                     vm_mode=bench.vm_mode)
        ring = IoUring(kernel, proc)
        ring.chain_submitter = bench.bpf.engine.submit_uring_chain
        while sim.now < stop_at:
            for _slot in range(batch):
                ring.prep_read(fd, root, PAGE_SIZE, user_data=None,
                               tagged=True, args=(next_key(),))
            cqes = yield from ring.enter(wait_nr=batch)
            meter.record(sim.now, operations=len(cqes))

    sim.spawn(driver(), name="uring-bpf")
    sim.run(until=stop_at)
    meter.stop(sim.now)
    return meter.ops_per_sec()


# ---------------------------------------------------------------------------
# §4 extent stability — YCSB 40R/40U/20I zipf(0.7) over a batch-built index
# ---------------------------------------------------------------------------


def extent_stability(sim_hours: float = 1.0,
                     ops_per_sec: int = 500,
                     initial_keys: int = 20_000,
                     rebuild_overlay: int = 32_000,
                     gc_every_rebuilds: int = 120,
                     fanout: int = 64,
                     seed: int = 9) -> List[Dict]:
    """§4's TokuDB measurement: how often do index-file extents change?

    Paper: extents changed every ~159 s on average over 24 h, and only 5
    changes unmapped blocks.  Here the index is an append-rebuilt B-tree
    (overlay merged past EOF every ``rebuild_overlay`` dirty keys; a full
    compacting rewrite every ``gc_every_rebuilds`` rebuilds), driven by the
    paper's exact YCSB mix.  The row reports measured change intervals and
    the 24-hour extrapolation.
    """
    from repro.device import BlockDevice
    from repro.kernel.extfs import ExtFs

    fs = ExtFs(BlockDevice(4 * 1024 * 1024))  # 2 GiB
    store = KvStore(fs, "/index", engine="btree", fanout=fanout)
    store.bulk_load([(key, key) for key in range(initial_keys)])
    cache = NvmeExtentCache(fs)
    cache.install(fs.lookup("/index"))

    grow_times: List[float] = []
    unmap_times: List[float] = []
    clock = {"now_s": 0.0}
    # Inode numbers that are (or were, across a GC rename) the index file.
    watched = {fs.lookup("/index").number}

    def listener(inode, kind):
        if inode.number not in watched:
            return
        if kind == "grow":
            grow_times.append(clock["now_s"])
        else:
            unmap_times.append(clock["now_s"])

    fs.extent_change_listeners.append(listener)

    workload = YcsbWorkload(initial_keys,
                            RandomStreams(seed).stream("ycsb"),
                            mix="paper", theta=0.7)
    total_ops = int(sim_hours * 3600 * ops_per_sec)
    op_interval = 1.0 / ops_per_sec
    rebuilds = 0
    reads = 0
    for op_number in range(total_ops):
        clock["now_s"] = op_number * op_interval
        op = workload.next_operation()
        if op.op is OpType.READ:
            store.get(op.key)
            reads += 1
        elif op.op is OpType.UPDATE:
            store.put(op.key, op.value)
        else:
            store.put(op.key, op.value)
        if store.overlay_size >= rebuild_overlay:
            rebuilds += 1
            if rebuilds % gc_every_rebuilds == 0:
                store.gc_rewrite()
                watched.add(fs.lookup("/index").number)
                # Re-run the install ioctl after the invalidation.
                cache.install(fs.lookup("/index"))
            else:
                store.rebuild_appending()

    changes = sorted(grow_times + unmap_times)
    intervals = [b - a for a, b in zip(changes, changes[1:])]
    mean_interval = (sum(intervals) / len(intervals)) if intervals else \
        float("inf")
    hours = total_ops * op_interval / 3600
    # Short windows may contain no GC pass at all; derive the steady-state
    # unmap rate from the policy (one every gc_every_rebuilds rebuilds).
    derived_unmaps_24h = (24 * 3600 /
                          (gc_every_rebuilds * mean_interval)
                          if mean_interval not in (0, float("inf")) else 0)
    return [{
        "sim_hours": hours,
        "operations": total_ops,
        "extent_changes": len(changes),
        "unmap_changes": len(unmap_times),
        "mean_change_interval_s": mean_interval,
        "invalidations": cache.invalidations,
        "changes_per_24h": len(changes) * 24 / hours if hours else 0,
        "unmaps_per_24h": (len(unmap_times) * 24 / hours
                           if unmap_times else derived_unmaps_24h),
        "paper_interval_s": 159,
        "paper_unmaps_per_24h": 5,
    }]


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------


def ablation_resubmit_bound(chain_length: int = 24,
                            bounds: Sequence[int] = (2, 4, 8, 16, 64),
                            lookups: int = 60) -> List[Dict]:
    """Fairness bound sweep: tighter bounds force more (bounded) chains per
    lookup, trading latency for fairness; the result must stay correct."""
    rows = []
    for bound in bounds:
        sim = Simulator()
        kernel = Kernel(sim, NVM2_BENCH, KernelConfig(seed=4))
        bpf = StorageBpf(kernel, max_chain_hops=bound)
        blocks = bytearray(chain_length * PAGE_SIZE)
        import struct as _struct

        for index in range(chain_length):
            nxt = ((index + 1) * PAGE_SIZE if index + 1 < chain_length
                   else 0xFFFFFFFFFFFFFFFF)
            _struct.pack_into("<QQ", blocks, index * PAGE_SIZE, nxt, index)
        kernel.create_file("/chain", bytes(blocks))
        program = linked_list_program()
        bpf.verify_program(program)
        proc = kernel.spawn_process()
        total_ns = 0

        def workload():
            nonlocal total_ns
            fd = yield from kernel.sys_open(proc, "/chain")
            yield from bpf.install(proc, fd, program)
            for _ in range(lookups):
                start = sim.now
                result = yield from bpf.read_chain_robust(
                    proc, fd, 0, PAGE_SIZE,
                    max_retries=chain_length + 2)
                total_ns += sim.now - start
                assert result.value == chain_length - 1

        kernel.run_syscall(workload())
        kills = bpf.accounting.chains_killed.get(proc.pid, 0)
        rows.append({
            "bound": bound,
            "chain_length": chain_length,
            "kills_per_lookup": kills / lookups,
            "mean_latency_us": total_ns / lookups / 1000,
        })
    return rows


def ablation_invalidation_rate(
        intervals_us: Sequence[Optional[float]] = (None, 5000, 1000, 200),
        depth: int = 4, duration_ns: int = 8_000_000) -> List[Dict]:
    """Extent-churn sweep: how chain throughput degrades as the file's
    extents are unmapped (and the cache invalidated) more often."""
    rows = []
    for interval_us in intervals_us:
        bench = BtreeBench(depth, seed=7)
        kernel = bench.kernel
        sim = bench.sim
        fs = kernel.fs
        inode = fs.lookup("/index")
        # A sacrificial appendix block the injector can punch without
        # damaging tree pages (any unmap invalidates the whole snapshot).
        appendix = (inode.size + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE
        fs.write_sync(inode, appendix, b"\x00" * PAGE_SIZE)

        if interval_us is not None:
            def injector():
                while True:
                    yield sim.timeout(int(interval_us * 1000))
                    fs.punch_range(inode, appendix, PAGE_SIZE)
                    fs.write_sync(inode, appendix, b"\x00" * PAGE_SIZE)

            sim.spawn(injector(), name="churn")

        def make_worker(index):
            proc = kernel.spawn_process(f"w{index}")
            fd = yield from kernel.sys_open(proc, "/index")
            yield from bench.bpf.install(proc, fd, bench.program,
                                         hook=Hook.NVME)
            next_key = bench._key_stream(index)
            root = bench.tree.meta.root_offset

            def one_op():
                yield from bench.bpf.read_chain_robust(
                    proc, fd, root, PAGE_SIZE, args=(next_key(),),
                    max_retries=64)

            return one_op

        meter, latency = run_closed_loop(sim, 2, duration_ns, make_worker)
        rows.append({
            "churn_interval_us": interval_us if interval_us else "none",
            "klookups_per_s": meter.ops_per_sec() / 1000,
            "mean_latency_us": latency.mean / 1000,
            "invalidations": bench.bpf.cache.invalidations,
            "refresh_ioctls": bench.bpf.cache.refreshes,
        })
    return rows


def ablation_app_cache(depth: int = 6,
                       cached_levels: Sequence[int] = (0, 1, 2, 3),
                       operations: int = 150) -> List[Dict]:
    """§4's caching model: the application caches the hot top levels of the
    index in its own memory and starts the kernel chain below them.

    Each cached level replaces a device read with an in-memory page parse,
    so latency falls roughly one device round trip per level — quantifying
    the hybrid user-cache + BPF-chain design (which is how XRP later used
    this mechanism).
    """
    from repro.structures.pages import search_page as _search

    rows = []
    for cached in cached_levels:
        if cached >= depth:
            continue
        bench = BtreeBench(depth, seed=11)
        kernel = bench.kernel
        sim = bench.sim
        backend = bench.tree.backend
        next_key = bench._key_stream(0)
        user_ns = kernel.cost.user_process_ns
        recorder = []

        def workload():
            proc = kernel.spawn_process("cache-app")
            fd = yield from kernel.sys_open(proc, "/index")
            yield from bench.bpf.install(proc, fd, bench.program,
                                         hook=Hook.NVME)
            for _ in range(operations):
                key = next_key()
                start = sim.now
                offset = bench.tree.meta.root_offset
                # Walk the cached levels in application memory.
                for _level in range(cached):
                    page = backend.read(offset, PAGE_SIZE)
                    yield from kernel.cpus.run_thread(user_ns)
                    _index, child = _search(page, key)
                    offset = child
                # Chain the remaining levels in the kernel.
                yield from bench.bpf.read_chain(proc, fd, offset,
                                                PAGE_SIZE, args=(key,))
                recorder.append(sim.now - start)

        kernel.run_syscall(workload())
        rows.append({
            "cached_levels": cached,
            "device_reads_per_lookup": depth - cached,
            "mean_latency_us": sum(recorder) / len(recorder) / 1000,
        })
    return rows


def interference(chain_depth: int = 16, plain_threads: int = 3,
                 chain_threads: int = 12,
                 duration_ns: int = 8_000_000) -> List[Dict]:
    """§4 Fairness: do BPF chains starve ordinary readers?

    Three plain 512 B readers share the machine with three deep-chain
    processes.  BPF reissues never pass the block scheduler, so the only
    protections are the device's queue arbitration and the per-process
    accounting the NVMe layer drains to the BIO layer; this experiment
    measures the interference and verifies the accounting books balance.
    """
    rows = []
    for scenario in ("alone", "with-chains"):
        bench = BtreeBench(chain_depth, seed=13)
        kernel = bench.kernel
        sim = bench.sim
        kernel.create_file("/plain", bytes(1 << 20))
        plain_meter = ThroughputMeter()
        plain_meter.start(sim.now)
        stop_at = sim.now + duration_ns
        plain_latency = []

        def plain_worker(index):
            proc = kernel.spawn_process(f"plain-{index}")
            fd = yield from kernel.sys_open(proc, "/plain")
            rng = bench.streams.fork(f"plain-{index}").stream("off")
            while sim.now < stop_at:
                start = sim.now
                offset = rng.randrange(2048) * 512
                yield from kernel.sys_pread(proc, fd, offset, 512)
                plain_latency.append(sim.now - start)
                plain_meter.record(sim.now)

        for index in range(plain_threads):
            sim.spawn(plain_worker(index), name=f"plain-{index}")

        if scenario == "with-chains":
            chain_worker = bench.chain_worker(Hook.NVME)

            def chain_loop(index):
                one_op = yield from chain_worker(index)
                while sim.now < stop_at:
                    yield from one_op()

            for index in range(chain_threads):
                sim.spawn(chain_loop(index), name=f"chain-{index}")

        sim.run(until=stop_at)
        plain_meter.stop(sim.now)
        drained = bench.bpf.accounting.drain_to_bio()
        rows.append({
            "scenario": scenario,
            "plain_kreads_per_s": plain_meter.ops_per_sec() / 1000,
            "plain_mean_latency_us":
                sum(plain_latency) / len(plain_latency) / 1000,
            "chained_resubmissions": sum(drained.values()),
            "chain_processes_accounted": len(drained),
        })
    return rows


def _p99(samples: Sequence[int]) -> float:
    ordered = sorted(samples)
    return ordered[int(0.99 * (len(ordered) - 1))]


def tenants(chain_depth: int = 12, victim_threads: int = 2,
            aggressor_threads: int = 96, duration_ns: int = 8_000_000,
            victim_weight: int = 12, chain_tokens_per_ms: int = 750,
            seed: int = 13) -> List[Dict]:
    """Multi-tenant isolation: can QoS protect a victim from an aggressor?

    One machine, two tenants.  The *victim* runs a light mixed YCSB over
    a plain file (512 B reads and writes); the *aggressor* floods the
    same device with deep NVMe-hook chains, whose resubmissions bypass
    the block scheduler entirely.  Three scenarios:

    * ``victim-alone`` — the victim's unloaded baseline p99;
    * ``qos-off`` — the aggressor arrives, FIFO submission queues: the
      victim's p99 collapses (expected well over 5x the baseline);
    * ``qos-on`` — same load, but a :class:`~repro.qos.QosConfig` arms
      weighted-fair queueing at the NVMe submission queue (victim
      weighted ``victim_weight``:1) plus chain pacing at
      ``chain_tokens_per_ms`` resubmissions/ms on the aggressor's IRQ
      path.  WFQ is work-conserving and the victim speeds up, so the
      aggregate ops/sec stays comfortably above ~90 % of ``qos-off``
      while the victim's p99 lands within ~2x of its baseline.
    """
    qos_config = QosConfig(tenants=(Tenant("victim", weight=victim_weight),
                                    Tenant("aggressor", weight=1)),
                           chain_tokens_per_ms=chain_tokens_per_ms)
    rows = []
    for scenario, qos, with_aggressor in (("victim-alone", None, False),
                                          ("qos-off", None, True),
                                          ("qos-on", qos_config, True)):
        bench = BtreeBench(chain_depth, seed=seed, qos=qos)
        kernel = bench.kernel
        sim = bench.sim
        kernel.create_file("/plain", bytes(1 << 20))
        sectors = (1 << 20) // 512
        stop_at = sim.now + duration_ns
        victim_latency: List[int] = []
        victim_ops = [0]
        aggressor_ops = [0]

        def victim_worker(index):
            proc = kernel.spawn_process(f"victim-{index}", tenant="victim")
            fd = yield from kernel.sys_open(proc, "/plain")
            workload = YcsbWorkload(
                sectors, bench.streams.fork(f"victim-{index}").stream("ycsb"),
                mix="paper")
            payload = bytes(512)
            while sim.now < stop_at:
                op = workload.next_operation()
                offset = (op.key % sectors) * 512
                start = sim.now
                if op.op in (OpType.UPDATE, OpType.INSERT):
                    yield from kernel.sys_pwrite(proc, fd, offset, payload)
                else:
                    yield from kernel.sys_pread(proc, fd, offset, 512)
                victim_latency.append(sim.now - start)
                victim_ops[0] += 1

        for index in range(victim_threads):
            sim.spawn(victim_worker(index), name=f"victim-{index}")

        if with_aggressor:
            chain_worker = bench.chain_worker(Hook.NVME, tenant="aggressor")

            def aggressor_loop(index):
                one_op = yield from chain_worker(index)
                while sim.now < stop_at:
                    yield from one_op()
                    aggressor_ops[0] += 1

            for index in range(aggressor_threads):
                sim.spawn(aggressor_loop(index), name=f"aggr-{index}")

        sim.run(until=stop_at)
        seconds = duration_ns / 1e9
        rows.append({
            "scenario": scenario,
            "qos": "on" if qos is not None else "off",
            "victim_p99_us": _p99(victim_latency) / 1000,
            "victim_kops_per_s": victim_ops[0] / seconds / 1000,
            "aggressor_kops_per_s": aggressor_ops[0] / seconds / 1000,
            "aggregate_kops_per_s":
                (victim_ops[0] + aggressor_ops[0]) / seconds / 1000,
        })
    baseline = rows[0]["victim_p99_us"]
    for row in rows:
        row["victim_p99_x_alone"] = row["victim_p99_us"] / baseline
    return rows


# ---------------------------------------------------------------------------
# LSM compaction offload — boundary bytes and foreground interference
# ---------------------------------------------------------------------------


def compaction(runs: int = 4, keys_per_run: int = 600,
               tombstones_per_run: int = 40, readers: int = 2,
               seed: int = 11, rtt_us: int = 10,
               cores: int = 4) -> List[Dict]:
    """LSM compaction: user-space vs chain-offloaded vs remote-offloaded.

    The same overlapping-L0 compaction (``runs`` runs, tombstones
    included, dropped at the bottom level) executes three ways while
    foreground 512 B readers share the machine:

    * ``user`` — every input page is pread into user space, merged by
      the application, and the merged table written back down: each
      byte crosses the syscall boundary twice (the paper's auxiliary
      I/O tax, RESYSTANCE's write amplification).
    * ``offloaded`` — one installed chain per input run streams entries
      into the kernel-side merge sink; only two u64 counters per run
      surface.  Expected shape: *at least 5x* (in practice orders of
      magnitude) fewer boundary-crossing bytes at byte-identical output.
    * ``remote`` — a :class:`~repro.net.StorageTarget` runs the whole
      compaction server-side on one COMPACT RPC (the BPF-oF shape);
      the boundary column counts network bytes, both directions.

    All three modes must produce identical output tables; the ``fg``
    columns expose how much each mode's compaction perturbs foreground
    read latency.
    """
    rows = [
        _compaction_cell(mode, runs, keys_per_run, tombstones_per_run,
                         readers, seed, rtt_us, cores)
        for mode in ("user", "offloaded", "remote")
    ]
    return rows


def _seed_compaction_lsm(fs, runs: int, keys_per_run: int,
                         tombstones_per_run: int) -> LsmTree:
    """An overlapping L0: each run rewrites half the previous run's key
    range and tombstones a slice of it, so the merge has real overwrite
    and garbage-collection work to do."""
    tree = LsmTree(fs, "/db", memtable_limit=4 * keys_per_run,
                   l0_limit=runs + 4)
    half = keys_per_run // 2
    for run in range(runs):
        base = run * half
        for index in range(keys_per_run):
            tree.put(base + index, run * 100_000 + index)
        for index in range(tombstones_per_run):
            tree.delete(base + index * 3)
        tree.flush()
    return tree


def _compaction_cell(mode: str, runs: int, keys_per_run: int,
                     tombstones_per_run: int, readers: int, seed: int,
                     rtt_us: int, cores: int) -> Dict:
    from repro.compact import CompactionEngine
    from repro.net import (Connection, NetConfig, NetworkFabric,
                          RemoteClient, StorageTarget)

    sim = Simulator()
    if mode == "remote":
        target = StorageTarget(sim, model=NVM2_BENCH,
                               config=KernelConfig(cores=cores, seed=seed))
        kernel = target.kernel
    else:
        kernel = Kernel(sim, NVM2_BENCH,
                        KernelConfig(cores=cores, seed=seed))
    tree = _seed_compaction_lsm(kernel.fs, runs, keys_per_run,
                                tombstones_per_run)
    kernel.create_file("/fg", bytes(1 << 20))
    streams = RandomStreams(seed)
    done: List[bool] = []
    fg_latency: List[int] = []

    # Foreground readers run until the compaction completes (plus the
    # op in flight), so the latency samples cover exactly the window
    # the compaction perturbs.  In remote mode they run on the target —
    # that is where the contention is.
    def reader(index):
        proc = kernel.spawn_process(f"fg-{index}")
        fd = yield from kernel.sys_open(proc, "/fg")
        rng = streams.fork(f"fg-{index}").stream("off")
        while not done:
            start = sim.now
            offset = rng.randrange(2048) * 512
            yield from kernel.sys_pread(proc, fd, offset, 512)
            fg_latency.append(sim.now - start)

    for index in range(readers):
        sim.spawn(reader(index), name=f"fg-{index}")

    out: Dict[str, object] = {}
    if mode == "remote":
        fabric = NetworkFabric(sim, NetConfig(
            one_way_ns=rtt_us * 1000 // 2, seed=seed))
        connection = Connection(fabric, "compactor")
        target.attach(connection)
        client = RemoteClient(connection)
        plan = tree.plan_compaction(0)
        output_path = tree.reserve_table_path()

        def compactor():
            start = sim.now
            result = yield from client.compact(
                output_path, plan.input_paths(),
                drop_tombstones=plan.drop_tombstones)
            inode = kernel.fs.lookup(output_path)
            table = SsTable(FsBackend(kernel.fs, inode))
            tree.apply_compaction(plan, [], output=(output_path, table))
            out["boundary_bytes"] = result.net_bytes
            out["emitted"] = result.emitted
            out["dropped"] = result.dropped
            out["output_entries"] = result.output_entries
            out["output_bytes"] = result.output_bytes
            out["chain_hops"] = result.chain_hops
            out["duration_ns"] = sim.now - start
            done.append(True)
    else:
        engine = CompactionEngine(StorageBpf(kernel))
        proc = engine.spawn()

        def compactor():
            report = yield from engine.compact_tree(proc, tree, 0,
                                                    mode=mode)
            out["boundary_bytes"] = report.user_bytes
            out["emitted"] = report.emitted
            out["dropped"] = report.dropped
            out["output_entries"] = report.output_entries
            out["output_bytes"] = report.output_bytes
            out["chain_hops"] = report.chain_hops
            out["duration_ns"] = report.duration_ns
            done.append(True)

    sim.spawn(compactor(), name="compactor")
    sim.run()
    return {
        "mode": mode,
        "input_tables": runs,
        "boundary_kb": round(out["boundary_bytes"] / 1024, 3),
        "output_kb": round(out["output_bytes"] / 1024, 3),
        "output_entries": out["output_entries"],
        "emitted": out["emitted"],
        "dropped": out["dropped"],
        "chain_hops": out["chain_hops"],
        "compaction_us": round(out["duration_ns"] / 1000, 2),
        "fg_reads": len(fg_latency),
        "fg_p99_us": round(_p99(fg_latency) / 1000, 2),
    }


def ablation_vm_mode(depth: int = 6, operations: int = 150) -> List[Dict]:
    """eBPF execution tiers: interpreter vs per-insn JIT vs fused blocks.

    The simulated per-hop cost model only distinguishes compiled from
    interpreted execution, so the ``jit`` and ``block`` rows share one
    simulated latency; the block tier's additional win is simulator
    wall-clock, which the bench harness measures around this function.
    """
    rows = []
    for mode in ("interp", "jit", "block"):
        bench = BtreeBench(depth, seed=3, vm_mode=mode)
        latency = bench.mean_latency("nvme", operations)
        rows.append({
            "mode": mode,
            "depth": depth,
            "mean_latency_us": latency / 1000,
        })
    baseline = BtreeBench(depth, seed=3).mean_latency("baseline", operations)
    for row in rows:
        row["speedup_vs_baseline"] = baseline / (row["mean_latency_us"] *
                                                 1000)
    return rows


# ---------------------------------------------------------------------------
# Resilience — availability and tail latency under injected faults
# ---------------------------------------------------------------------------


def fault_resilience(rates: Sequence[float] = (0.0, 0.001, 0.01, 0.05),
                     depth: int = 4, threads: int = 4,
                     duration_ns: int = 4_000_000, error_burst: int = 2,
                     seed: int = 21, fault_seed: int = 17) -> List[Dict]:
    """Chained B-tree lookups under a transient-fault plan.

    For each rate, reads draw transient media-error episodes (burst
    ``error_burst``), completion timeouts at a tenth of the rate, and
    latency spikes at the same rate.  Workers run the *robust* chain
    protocol, so every failure either recovers in-kernel (driver/chain
    retries), degrades to a user-space restart, or surfaces as an
    ``IoError`` — never a hang.  Availability is the fraction of lookups
    completing without a surfaced error; the injected/retried/degraded
    columns reconcile against the fault plan's own counters.
    """
    rows = []
    for rate in rates:
        spec = None
        if rate > 0:
            spec = FaultSpec(seed=fault_seed, read_error_rate=rate,
                             error_burst=error_burst,
                             timeout_rate=rate / 10,
                             spike_rate=rate, spike_factor=6.0)
        ctx = (fault_injection(spec) if spec is not None
               else contextlib.nullcontext())
        with ctx:
            bench = BtreeBench(depth, seed=seed)
        kernel = bench.kernel
        sim = bench.sim
        meter = ThroughputMeter()
        latency = LatencyRecorder()
        meter.start(sim.now)
        stop_at = sim.now + duration_ns
        counts = {"ok": 0, "surfaced": 0}
        root = bench.tree.meta.root_offset

        def worker(index):
            proc = kernel.spawn_process(f"fault-{index}")
            fd = yield from kernel.sys_open(proc, "/index")
            yield from bench.bpf.install(proc, fd, bench.program,
                                         hook=Hook.NVME)
            next_key = bench._key_stream(index)
            while sim.now < stop_at:
                start = sim.now
                try:
                    yield from bench.bpf.read_chain_robust(
                        proc, fd, root, PAGE_SIZE, args=(next_key(),),
                        max_retries=32)
                    counts["ok"] += 1
                except (IoError, ExtentInvalidated):
                    counts["surfaced"] += 1
                latency.record(sim.now - start)
                meter.record(sim.now)

        for index in range(threads):
            sim.spawn(worker(index), name=f"fault-{index}")
        sim.run(until=stop_at)
        meter.stop(sim.now)

        plan = kernel.fault_plan
        injected = dict(plan.injected) if plan is not None else {}
        attempts = counts["ok"] + counts["surfaced"]
        rows.append({
            "fault_rate": rate,
            "klookups_per_s": meter.ops_per_sec() / 1000,
            "p99_latency_us": latency.p99 / 1000,
            "availability_pct": (100.0 * counts["ok"] / attempts
                                 if attempts else 100.0),
            "injected": (injected.get("transient", 0) +
                         injected.get("timeout", 0) +
                         injected.get("spike", 0)),
            "retries": kernel.nvme_retries,
            "timeouts": kernel.nvme_timeouts,
            "fallbacks": bench.bpf.engine.fault_fallbacks,
            "surfaced_errors": counts["surfaced"],
        })
    return rows


# ---------------------------------------------------------------------------
# Crash consistency — enumerated power cuts with recovery verification
# ---------------------------------------------------------------------------


def crash_consistency(seed: int = 0, cache_depth: int = 8,
                      journal_blocks: int = 64,
                      modes: Sequence[str] = ("flush", "op", "op-torn",
                                              "sync"),
                      point: Optional[int] = None) -> List[Dict]:
    """Crash-point enumeration over the mixed metadata workload.

    Four sweeps over the same 17-op create/write/fsync/rename/unlink/
    truncate script, ALICE/CrashMonkey style.  ``flush`` cuts power the
    instant each NVMe FLUSH completes (the fsync commit boundary, so the
    journal commit has not yet been written); ``op`` and ``op-torn`` cut
    between syscalls with the volatile write cache full (``op-torn``
    additionally tears the oldest in-flight multi-sector write); ``sync``
    runs write-through + ``sync_commit`` where a crash after any op may
    lose *nothing*.  Every row must come back ``fsck ok`` and
    ``consistent``: the recovered file system equals the shadow state at
    the last commit point — rolled-back tails never resurrect, durable
    prefixes never disappear.
    """
    from repro.faults.crashpoints import (enumerate_crash_points,
                                          mixed_workload)
    from repro.kernel import JournalConfig

    ops = mixed_workload(seed)
    ordered = JournalConfig(journal_blocks=journal_blocks)
    sweeps = {
        "flush": dict(journal=ordered, cache_depth=cache_depth,
                      tear=False, at="flush"),
        "op": dict(journal=ordered, cache_depth=cache_depth,
                   tear=False, at="op"),
        "op-torn": dict(journal=ordered, cache_depth=cache_depth,
                        tear=True, at="op"),
        "sync": dict(journal=JournalConfig(journal_blocks=journal_blocks,
                                           sync_commit=True),
                     cache_depth=0, tear=False, at="op"),
    }
    rows: List[Dict] = []
    for mode in modes:
        if mode not in sweeps:
            raise InvalidArgument(f"unknown crash sweep mode {mode!r} "
                                  f"(choose from {sorted(sweeps)})")
        sweep = sweeps[mode]
        for res in enumerate_crash_points(ops, seed=seed, **sweep):
            if point is not None and res.boundary != point:
                continue
            verdict = res.ok
            if mode == "sync":
                # Write-through + per-op commit: nothing may be lost.
                verdict = verdict and res.commit_index == res.ops_completed
            rows.append({
                "mode": mode,
                "crash_point": (f"flush#{res.boundary}"
                                if res.mode == "flush"
                                else f"after-op#{res.boundary}"),
                "ops_done": res.ops_completed + 1,
                "durable_ops": res.commit_index + 1,
                "replayed_txns": res.replayed_txns,
                "discarded_txns": res.discarded_txns,
                "dropped_writes": res.dropped_writes,
                "torn_sectors": res.torn_sectors,
                "fsck": "ok" if res.fsck_ok else "FAIL",
                "verdict": "consistent" if verdict else "INCONSISTENT",
            })
    return rows


# ---------------------------------------------------------------------------
# Multi-queue scaling — SQ/CQ pairs with per-core IRQ steering
# ---------------------------------------------------------------------------

#: A deeper gen-2 Optane for the multi-queue sweep: same media latency as
#: NVM2_BENCH but enough internal parallelism that the per-core IRQ lane,
#: not the media, is the bottleneck being scaled away.  A little (seeded,
#: deterministic) jitter decorrelates the closed-loop workers so they do
#: not arrive at a lane in lock-step convoys.
MQ_NVME = LatencyModel("nvm2-mq", read_ns=3224, write_ns=3600,
                       parallelism=28, jitter=0.05)


def mq_scaling(queue_pairs: Sequence[int] = (1, 2, 4, 8),
               threads: Sequence[int] = (24, 32),
               depth: int = 3,
               duration_ns: int = 2_000_000,
               cores: int = 6) -> List[Dict]:
    """Aggregate chain IOPS vs number of NVMe SQ/CQ pairs.

    Every configuration steers completion interrupts: queue ``q`` fires
    on core ``q % cores``, so a single pair funnels *all* completion
    work (IRQ entry + BPF hook + resubmission) through one core while
    the B-tree chains themselves never cross queues.  Expected shape:
    aggregate IOPS grows strictly with pairs from 1 to 4 as completion
    work spreads over more cores, then flattens once the lanes stop
    being the bottleneck (pairs > threads' demand or pairs > cores).
    """
    rows: List[Dict] = []
    for thread_count in threads:
        base_kiops: Optional[float] = None
        for pairs in queue_pairs:
            bench = BtreeBench(depth, cores=cores, seed=11, model=MQ_NVME,
                               queue_pairs=pairs, irq_steering=True)
            device = bench.kernel.device
            completed_before = device.completed
            meter, _latency = run_closed_loop(
                bench.sim, thread_count, duration_ns,
                bench.chain_worker(Hook.NVME))
            elapsed_s = duration_ns / 1e9
            iops = (device.completed - completed_before) / elapsed_s
            kiops = iops / 1000
            if base_kiops is None:
                base_kiops = kiops
            busiest = max(device.queue_completed)
            total = sum(device.queue_completed) or 1
            rows.append({
                "threads": thread_count,
                "queue_pairs": pairs,
                "klookups": meter.ops_per_sec() / 1000,
                "kiops": kiops,
                "speedup_vs_1q": kiops / base_kiops if base_kiops else 0.0,
                "busiest_q_pct": 100.0 * busiest / total,
            })
    return rows


# ---------------------------------------------------------------------------
# Network pushdown — BPF-oF's naive-vs-pushdown GET shape
# ---------------------------------------------------------------------------


def net_pushdown(depths: Sequence[int] = (1, 2, 3, 4, 5, 6),
                 rtts_us: Sequence[int] = (5, 10, 20, 50),
                 gets: int = 30,
                 seed: int = 17,
                 cores: int = 4) -> List[Dict]:
    """Naive (RPC per B-tree hop) vs pushdown (one EXEC_CHAIN) GETs.

    One client, one storage target, one B-tree per (depth, RTT) cell.
    The naive strategy fetches a page per level and parses it
    client-side, paying the round trip ``depth`` times; pushdown ships
    the verified traversal program once at setup and then pays the
    round trip once per GET while the chain walks the tree in the
    target's NVMe completion path.  Expected shape (BPF-oF): the
    speedup grows with both depth and RTT, approaching the hop count
    once the network dominates the device — at RTT >= 20 us and depth
    >= 4 the pushdown GET is at least 2x faster.
    """
    rows: List[Dict] = []
    for depth in depths:
        for rtt_us in rtts_us:
            rows.append(_net_pushdown_cell(depth, rtt_us, gets, seed,
                                           cores))
    return rows


def _net_pushdown_cell(depth: int, rtt_us: int, gets: int, seed: int,
                       cores: int) -> Dict:
    from repro.bench.runner import choose_fanout
    from repro.net import Connection, NetConfig, NetworkFabric, RemoteClient
    from repro.net import StorageTarget

    sim = Simulator()
    target = StorageTarget(sim, model=NVM2_BENCH,
                           config=KernelConfig(cores=cores, seed=seed))
    fanout = choose_fanout(depth)
    num_keys = BTree.keys_for_depth(depth, fanout)
    inode = target.kernel.fs.create("/index")
    items = [(key * 3 + 1, key) for key in range(num_keys)]
    tree = BTree.build(FsBackend(target.kernel.fs, inode), items,
                       fanout=fanout)
    if tree.depth != depth:
        raise InvalidArgument(f"built depth {tree.depth}, wanted {depth}")
    root = tree.meta.root_offset
    fabric = NetworkFabric(sim, NetConfig(one_way_ns=rtt_us * 1000 // 2,
                                          seed=seed))
    connection = Connection(fabric, "bench-client")
    target.attach(connection)
    client = RemoteClient(connection)
    program = index_traversal_program(fanout=fanout)
    rng = RandomStreams(seed).stream("pushdown-keys")
    keys = [(rng.randrange(num_keys)) * 3 + 1 for _ in range(gets)]
    lat_ns = {"naive": [], "pushdown": []}
    rpc_counts = {"naive": 0, "pushdown": 0}

    def driver():
        chain_id = yield from client.install_chain("/index", program)
        for mode in ("naive", "pushdown"):
            for key in keys:
                start = sim.now
                if mode == "naive":
                    value, found, rpcs = yield from client.remote_btree_get(
                        key, mode="naive", path="/index", root_offset=root)
                else:
                    value, found, rpcs = yield from client.remote_btree_get(
                        key, mode="pushdown", chain_id=chain_id,
                        root_offset=root)
                if not found or value != (key - 1) // 3:
                    raise IoError(f"{mode} GET returned {value} for {key}")
                lat_ns[mode].append(sim.now - start)
                rpc_counts[mode] += rpcs

    sim.run_process(driver())
    naive_us = sum(lat_ns["naive"]) / gets / 1000
    push_us = sum(lat_ns["pushdown"]) / gets / 1000
    return {
        "depth": depth,
        "rtt_us": rtt_us,
        "naive_us": round(naive_us, 2),
        "pushdown_us": round(push_us, 2),
        "speedup": round(naive_us / push_us, 2),
        "naive_rpcs_per_get": round(rpc_counts["naive"] / gets, 2),
        "pushdown_rpcs_per_get": round(rpc_counts["pushdown"] / gets, 2),
        "naive_kiops": round(1e3 / naive_us, 1),
        "pushdown_kiops": round(1e3 / push_us, 1),
    }


# ---------------------------------------------------------------------------
# Sharded cluster — YCSB scaling and crash failover
# ---------------------------------------------------------------------------


def cluster_failover(shard_counts: Sequence[int] = (1, 2, 4, 8),
                     ops: int = 160,
                     initial_keys: int = 48,
                     seed: int = 13,
                     rtt_us: int = 10,
                     workers: int = 8,
                     cores: int = 2,
                     crash_after: int = 15) -> List[Dict]:
    """YCSB over the sharded cluster: IOPS scaling, then a target kill.

    One clean row per shard count (no faults: aggregate IOPS grows with
    targets, modulo the replication round trip single-target clusters
    do not pay), then one row at the largest replicated shard count
    with a power cut armed on target 0 after it has handled
    ``crash_after`` RPCs.  The crash row must show: at least one
    failover, **zero acked writes lost and zero stale reads**
    (ack-after-replica replication + version-stamped reads), a bounded
    availability gap (client timeout + promotion, reported in us), a
    clean fsck on the rejoined target, and chain pushdown still working
    — including on the rejoined target after its re-verify + reinstall.
    """
    rows = [_cluster_cell(shards, ops, initial_keys, seed, rtt_us,
                          workers, cores, 0)
            for shards in shard_counts]
    crash_shards = max(s for s in shard_counts if s > 1)
    rows.append(_cluster_cell(crash_shards, ops, initial_keys, seed,
                              rtt_us, workers, cores, crash_after))
    return rows


def _cluster_cell(shards: int, ops: int, initial_keys: int, seed: int,
                  rtt_us: int, workers: int, cores: int,
                  crash_after: int) -> Dict:
    from repro.cluster import ClusterClient, StorageCluster
    from repro.sim.engine import AllOf

    index_keys = 64
    fanout = 16
    spec = (FaultSpec(seed=seed, target_crash_after_rpcs=crash_after)
            if crash_after else None)
    sim = Simulator()
    cluster = StorageCluster(sim, shards, model=NVM2_BENCH, seed=seed,
                             cores=cores,
                             capacity_keys=initial_keys + ops + 8,
                             rtt_us=rtt_us, fault_spec=spec,
                             crash_victim=0)
    cluster.preload([(key, key * 7 + 1) for key in range(initial_keys)])
    index_items = [(key * 3 + 1, key) for key in range(index_keys)]
    root = cluster.build_index("/cindex", index_items, fanout=fanout)
    program = index_traversal_program(fanout=fanout)
    client = ClusterClient(cluster, "ycsb")
    rng = RandomStreams(seed).stream(f"cluster/{shards}/{crash_after}")
    workload = YcsbWorkload(initial_keys, rng, mix="paper")
    plan = [op for op in workload.operations(ops)
            if op.op is not OpType.SCAN]

    def worker(assigned):
        for op in assigned:
            if op.op is OpType.READ:
                yield from client.get(op.key)
            else:  # UPDATE / INSERT both become replicated PUTs
                yield from client.put(op.key, op.value)

    timing = {}
    outcome = {}

    def driver():
        yield from client.install_chains("/cindex", program)
        start = sim.now
        procs = [sim.spawn(worker(plan[w::workers]), name=f"ycsb-{w}")
                 for w in range(workers)]
        yield AllOf(sim, procs)
        timing["elapsed_ns"] = sim.now - start
        # Every acked write must read back at >= its acked version with
        # the acked value — across the crash, from whoever is primary now.
        lost = 0
        for key in sorted(client.acked):
            version_want, value_want = client.acked[key]
            value, version, found = yield from client.get(key)
            if (not found or version < version_want
                    or (version == version_want and value != value_want)):
                lost += 1
        outcome["lost_acked"] = lost
        # Chain pushdown against the current primaries.
        chain_ok = True
        for index_key, expect in index_items[:: max(1, index_keys // 4)]:
            value, found = yield from client.index_get(index_key,
                                                       root_offset=root)
            chain_ok = chain_ok and found and value == expect
        if crash_after and cluster.crash_ts is not None:
            report = yield from cluster.rejoin(0)
            outcome["rejoin"] = report
            yield from client.reinstall_chains(0)
            # The rejoined target must serve its freshly re-verified
            # chain (queried directly, not via routing).
            index_key, expect = index_items[0]
            value, found, _rpcs = \
                yield from client.remotes[0].remote_btree_get(
                    index_key, mode="pushdown",
                    chain_id=client.chain_ids[0], root_offset=root)
            chain_ok = chain_ok and found and value == expect
        outcome["chain_ok"] = chain_ok

    sim.run_process(driver())
    elapsed_us = timing["elapsed_ns"] / 1000
    gap_ns = client.availability_gap_ns
    rejoin = outcome.get("rejoin")
    return {
        "shards": shards,
        "ops": len(plan),
        "kiops": round(len(plan) / elapsed_us * 1000, 2),
        "crash": 1 if (crash_after and cluster.crash_ts is not None) else 0,
        "failovers": cluster.failovers,
        "gap_us": round(gap_ns / 1000, 1) if gap_ns is not None else 0.0,
        "lost_acked": outcome["lost_acked"],
        "stale_reads": client.stale_reads,
        "replayed_txns": rejoin.replayed_txns if rejoin else 0,
        "caught_up": rejoin.caught_up if rejoin else 0,
        "fsck": ("ok" if rejoin is None or rejoin.fsck_ok else "FAIL"),
        "chain_ok": 1 if outcome["chain_ok"] else 0,
    }
