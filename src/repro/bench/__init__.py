"""Benchmark harness: one experiment function per paper table/figure.

* :mod:`~repro.bench.tables` — fixed-width table rendering for results.
* :mod:`~repro.bench.runner` — closed-loop multi-threaded experiment
  driver over the simulated kernel.
* :mod:`~repro.bench.experiments` — the figure/table reproductions:
  ``fig1_latency_breakdown``, ``table1_breakdown``, ``fig3_throughput``
  (3a/3b), ``fig3c_latency``, ``fig3d_iouring``, ``extent_stability``
  (§4's YCSB measurement), ``fault_resilience`` (availability under an
  injected fault plan), ``crash_consistency`` (crash-point enumeration
  with recovery verification), ``mq_scaling`` (aggregate IOPS vs NVMe
  SQ/CQ pairs with per-core IRQ steering), ``net_pushdown`` (BPF-oF's
  naive vs pushdown remote GETs over the simulated network),
  ``cluster_failover`` (sharded/replicated cluster: YCSB scaling plus a
  mid-run target kill with failover and rejoin), ``compaction`` (LSM
  compaction boundary bytes: user-space vs chain-offloaded vs one-RPC
  remote offload), and the ablations.

Each experiment returns plain row dictionaries so the ``benchmarks/``
pytest files, ``EXPERIMENTS.md``, and tests all consume the same data.
"""

from repro.bench.experiments import (
    ablation_app_cache,
    interference,
    ablation_invalidation_rate,
    ablation_resubmit_bound,
    ablation_vm_mode,
    cluster_failover,
    compaction,
    crash_consistency,
    extent_stability,
    fault_resilience,
    fig1_latency_breakdown,
    fig3_throughput,
    fig3c_latency,
    fig3d_iouring,
    mq_scaling,
    net_pushdown,
    table1_breakdown,
    tenants,
)
from repro.bench.runner import BtreeBench, run_closed_loop
from repro.bench.tables import format_table, rows_to_json

__all__ = [
    "BtreeBench",
    "ablation_app_cache",
    "ablation_invalidation_rate",
    "ablation_resubmit_bound",
    "ablation_vm_mode",
    "cluster_failover",
    "compaction",
    "crash_consistency",
    "extent_stability",
    "fault_resilience",
    "fig1_latency_breakdown",
    "fig3_throughput",
    "fig3c_latency",
    "fig3d_iouring",
    "format_table",
    "interference",
    "mq_scaling",
    "net_pushdown",
    "rows_to_json",
    "run_closed_loop",
    "table1_breakdown",
    "tenants",
]
