"""Fixed-width result tables (what the benchmark files print)."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

__all__ = ["format_table", "rows_to_json"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(title: str, columns: Sequence[str],
                 rows: List[Dict]) -> str:
    """Render rows as a fixed-width table with a title rule."""
    rendered = [[_format_cell(row.get(col, "")) for col in columns]
                for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered
        else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [title, "=" * len(title)]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) if _is_numeric(cell)
                               else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def rows_to_json(title: str, rows: List[Dict], indent: int = 2) -> str:
    """Deterministic JSON for an experiment's result rows.

    The structure mirrors what :func:`format_table` prints — a title plus
    the row dicts verbatim — so scripted consumers (``--json`` mode, the
    experiments-report generator) parse instead of scraping the table.
    """
    return json.dumps({"title": title, "rows": rows},
                      indent=indent, sort_keys=True)


def _is_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "")
    stripped = stripped.replace("%", "").replace("x", "")
    return stripped.isdigit()
