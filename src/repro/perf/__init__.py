"""Self-profiling for the simulator (`wall-clock`, not simulated ns).

`repro.obs` observes the *simulated* stack; `repro.perf` observes the
simulator.  Three pieces:

* :mod:`repro.perf.profiler` — frame-stack profiler hooked into the
  sim engine's event dispatch and the eBPF VM's instruction loop; off
  by default, one attribute check when off.
* :mod:`repro.perf.benchresult` — the ``repro-bench/1`` schema every
  benchmark emits as ``BENCH_<name>.json`` (see ``benchmarks/harness.py``).
* :mod:`repro.perf.report` — hotspot tables and collapsed flamegraph
  output for ``python -m repro profile``.

This package is imported by ``sim/engine.py``, so it must stay
import-light: nothing here may pull in ``repro.bench``, ``repro.kernel``
or anything that imports the engine at module level.
"""

from repro.perf.benchresult import (
    BENCH_SCHEMA,
    BenchResult,
    fingerprint,
    validate_bench_json,
)
from repro.perf.profiler import (
    NULL_PROFILER,
    Profiler,
    get_default_profiler,
    profiling,
    set_default_profiler,
)
from repro.perf.report import collapsed_stacks, render_profile, subsystem_totals

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "NULL_PROFILER",
    "Profiler",
    "collapsed_stacks",
    "fingerprint",
    "get_default_profiler",
    "profiling",
    "render_profile",
    "set_default_profiler",
    "subsystem_totals",
    "validate_bench_json",
]
