"""Low-overhead wall-clock profiler for the simulator's own hot paths.

The *simulated* stack already has the obs bus (`repro.obs`); this module
points the same lens at the simulator itself: where does **wall-clock**
time go while the discrete-event engine dispatches callbacks and the
eBPF VM retires instructions?  The contract is the bus's contract — off
by default, one attribute check when off:

* :class:`~repro.sim.engine.Simulator` captures the process-default
  profiler at construction (exactly like ``Kernel`` and the default
  bus) and guards its dispatch hook with ``if profiler.enabled:``.
* :meth:`repro.ebpf.vm.Vm.run` does the same per program run.

Attribution is a genuine self/cumulative profile.  The instrumented
call sites maintain a frame stack — engine dispatch → resumed-process
site → VM program — so a kernel callback's *self* time excludes the VM
programs it executed, and the engine's self time is pure event-loop
overhead.  Sites are derived from code objects (file stem + function
name), subsystems from the ``repro.<package>`` the file lives in, so
the hotspot table groups by engine / vm / kernel / device / net / obs.

Nothing here reads the wall clock unless the profiler is enabled, and
an enabled profiler only ever *observes* — it never schedules events,
touches simulated time, or perturbs callback order, so profiled runs
produce byte-identical simulation results (tested in
``tests/test_perf.py``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "NULL_PROFILER",
    "Profiler",
    "get_default_profiler",
    "profiling",
    "set_default_profiler",
]

#: ``repro.<package>`` -> hotspot-table subsystem label.  ``core`` is the
#: in-kernel BPF machinery, so it is charged to the kernel; the on-disk
#: structures and the compaction engine get their own buckets (they run
#: on both sides of the boundary); workloads and the bench driver are
#: the workload itself.
_PACKAGE_SUBSYSTEM = {
    "sim": "engine",
    "ebpf": "vm",
    "kernel": "kernel",
    "core": "kernel",
    "device": "device",
    "net": "net",
    "obs": "obs",
    "faults": "faults",
    "structures": "structures",
    "compact": "compact",
    "workloads": "app",
    "bench": "app",
}

SiteKey = Tuple[str, str]  # (subsystem, "file.function")


def _site_from_code(code) -> SiteKey:
    """(subsystem, site-label) for a code object, from its file path."""
    filename = code.co_filename
    parts = os.path.normpath(filename).split(os.sep)
    subsystem = "app"
    try:
        # Rightmost "repro" component: .../src/repro/<package>/module.py
        index = len(parts) - 1 - parts[::-1].index("repro")
        if index + 1 < len(parts):
            package = parts[index + 1]
            if package.endswith(".py"):  # repro/cli.py and friends
                subsystem = "app"
            else:
                subsystem = _PACKAGE_SUBSYSTEM.get(package, "app")
    except ValueError:
        subsystem = "app"
    stem = os.path.splitext(os.path.basename(filename))[0]
    name = getattr(code, "co_qualname", None) or code.co_name
    return (subsystem, f"{stem}.{name}")


class Profiler:
    """Accumulates wall-clock attribution from the engine and VM hooks.

    All state is plain dicts keyed by small tuples so recording is a few
    dict operations per hook.  ``sites`` maps ``(subsystem, site)`` to
    ``[calls, self_ns, cum_ns]``; ``stacks`` maps a full frame-stack
    tuple to accumulated self-ns (the flamegraph "collapsed" data);
    ``programs`` maps ``(program, mode)`` to ``[runs, instructions,
    wall_ns]``; ``opcodes`` maps an opcode class to ``[count, wall_ns]``.
    """

    __slots__ = (
        "enabled", "sites", "stacks", "events", "steps", "heap_sum",
        "heap_max", "programs", "opcodes", "_stack", "_site_cache",
    )

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.sites: Dict[SiteKey, List[int]] = {}
        self.stacks: Dict[Tuple[SiteKey, ...], int] = {}
        self.events: Dict[str, int] = {}
        self.steps = 0
        self.heap_sum = 0
        self.heap_max = 0
        self.programs: Dict[Tuple[str, str], List[int]] = {}
        self.opcodes: Dict[str, List[int]] = {}
        self._stack: List[List[Any]] = []
        self._site_cache: Dict[Any, SiteKey] = {}

    # -- frame stack -------------------------------------------------------

    def push(self, key: SiteKey) -> None:
        """Open a frame for ``key``; nest under the current frame."""
        self._stack.append([key, perf_counter_ns(), 0])

    def pop(self) -> int:
        """Close the current frame; returns its total (cumulative) ns."""
        key, start, child_ns = self._stack.pop()
        elapsed = perf_counter_ns() - start
        self_ns = elapsed - child_ns
        if self_ns < 0:
            self_ns = 0
        stat = self.sites.get(key)
        if stat is None:
            stat = self.sites[key] = [0, 0, 0]
        stat[0] += 1
        stat[1] += self_ns
        stat[2] += elapsed
        stack_key = tuple(frame[0] for frame in self._stack) + (key,)
        self.stacks[stack_key] = self.stacks.get(stack_key, 0) + self_ns
        if self._stack:
            self._stack[-1][2] += elapsed
        return elapsed

    # -- engine hooks ------------------------------------------------------

    def on_step(self, event: Any, heap_depth: int) -> None:
        """Called by ``Simulator.step`` before dispatching ``event``."""
        self.steps += 1
        self.heap_sum += heap_depth
        if heap_depth > self.heap_max:
            self.heap_max = heap_depth
        name = type(event).__name__
        self.events[name] = self.events.get(name, 0) + 1
        self.push(("engine", f"dispatch.{name}"))

    def end_step(self) -> None:
        self.pop()

    def site_for_callback(self, callback: Callable) -> SiteKey:
        """The attribution site for an event callback.

        For a :class:`~repro.sim.engine.Process` resume we attribute to
        the *generator being resumed* (the interesting code), not to the
        engine's ``_resume`` trampoline.  Sites are cached by code
        object, so steady-state cost is one dict hit.
        """
        owner = getattr(callback, "__self__", None)
        generator = getattr(owner, "_generator", None)
        code = getattr(generator, "gi_code", None)
        if code is None:
            func = getattr(callback, "__func__", callback)
            code = getattr(func, "__code__", None)
        if code is None:
            return ("app", type(callback).__name__)
        key = self._site_cache.get(code)
        if key is None:
            key = self._site_cache[code] = _site_from_code(code)
        return key

    # -- VM hooks ----------------------------------------------------------

    def on_program(self, name: str, mode: str, instructions: int,
                   wall_ns: int) -> None:
        """One completed program run: instructions retired + wall ns."""
        key = (name, mode)
        stat = self.programs.get(key)
        if stat is None:
            stat = self.programs[key] = [0, 0, 0]
        stat[0] += 1
        stat[1] += instructions
        stat[2] += wall_ns

    def on_opcode(self, opcode_class: str, wall_ns: int) -> None:
        """One retired instruction, bucketed by opcode class."""
        stat = self.opcodes.get(opcode_class)
        if stat is None:
            stat = self.opcodes[opcode_class] = [0, 0]
        stat[0] += 1
        stat[1] += wall_ns

    # -- queries -----------------------------------------------------------

    @property
    def events_dispatched(self) -> int:
        return sum(self.events.values())

    @property
    def instructions_retired(self) -> int:
        return sum(stat[1] for stat in self.programs.values())

    @property
    def total_ns(self) -> int:
        """Total profiled wall time (sum of all frames' self time)."""
        return sum(self.stacks.values())

    def heap_depth_avg(self) -> float:
        return self.heap_sum / self.steps if self.steps else 0.0


#: Permanently disabled profiler: the process default unless overridden.
NULL_PROFILER = Profiler(enabled=False)

_default_profiler: Profiler = NULL_PROFILER


def get_default_profiler() -> Profiler:
    """The process-wide default profiler (NULL_PROFILER unless set)."""
    return _default_profiler


def set_default_profiler(profiler: Profiler) -> Profiler:
    """Install ``profiler`` as the default; returns the previous one."""
    global _default_profiler
    previous = _default_profiler
    _default_profiler = profiler
    return previous


@contextmanager
def profiling(profiler: Optional[Profiler] = None):
    """Install an enabled profiler for the duration of a ``with`` block.

    Simulators and VMs constructed inside the block pick it up, the same
    way Kernels pick up the default obs bus::

        with profiling() as prof:
            fig3c_latency(depths=(2,), operations=10)
        print(render_profile(prof))
    """
    profiler = profiler if profiler is not None else Profiler()
    previous = set_default_profiler(profiler)
    try:
        yield profiler
    finally:
        set_default_profiler(previous)
