"""Render :class:`~repro.perf.profiler.Profiler` data for humans.

Two outputs:

* :func:`render_profile` — the ``python -m repro profile`` hotspot view:
  a per-subsystem self/cumulative wall-clock table, the top call sites,
  per-program VM stats, and per-opcode-class VM stats.
* :func:`collapsed_stacks` — Brendan Gregg "collapsed" flamegraph lines
  (``frame;frame;frame <self_ns>``), one per distinct frame stack, ready
  for ``flamegraph.pl`` or speedscope.

Imports from ``repro.bench`` happen inside functions: this module is
pulled in via ``repro.perf`` by ``sim/engine.py``, which must not drag
the whole bench package (and its kernel/device imports) into every
engine import.
"""

from __future__ import annotations

from typing import Dict, List

from repro.perf.profiler import Profiler

__all__ = ["collapsed_stacks", "render_profile", "subsystem_totals"]

#: Display order for the subsystem table.
_SUBSYSTEM_ORDER = ["engine", "vm", "kernel", "device", "net", "obs",
                    "faults", "structures", "compact", "app"]


def subsystem_totals(profiler: Profiler) -> Dict[str, Dict[str, int]]:
    """Per-subsystem ``{"self_ns", "cum_ns", "calls"}`` attribution.

    Self time sums site self-ns.  Cumulative time is computed from the
    collapsed stacks: each stack's self-ns is credited once to every
    *distinct* subsystem appearing in it, so nested same-subsystem
    frames (kernel calling kernel) are not double-counted and the
    engine's cumulative equals total profiled time.
    """
    totals: Dict[str, Dict[str, int]] = {}
    for (subsystem, _site), (calls, self_ns, _cum) in profiler.sites.items():
        entry = totals.setdefault(
            subsystem, {"self_ns": 0, "cum_ns": 0, "calls": 0})
        entry["self_ns"] += self_ns
        entry["calls"] += calls
    for stack, self_ns in profiler.stacks.items():
        for subsystem in set(key[0] for key in stack):
            entry = totals.setdefault(
                subsystem, {"self_ns": 0, "cum_ns": 0, "calls": 0})
            entry["cum_ns"] += self_ns
    return totals


def _fmt_ms(ns: int) -> float:
    return round(ns / 1e6, 3)


def render_profile(profiler: Profiler, top: int = 15) -> str:
    """The full hotspot report as printable text."""
    from repro.bench.tables import format_table

    total = profiler.total_ns or 1
    sections: List[str] = []

    totals = subsystem_totals(profiler)
    order = {name: index for index, name in enumerate(_SUBSYSTEM_ORDER)}
    sub_rows = []
    for subsystem in sorted(totals,
                            key=lambda s: (order.get(s, 99), s)):
        entry = totals[subsystem]
        sub_rows.append({
            "subsystem": subsystem,
            "self_ms": _fmt_ms(entry["self_ns"]),
            "self_pct": round(100.0 * entry["self_ns"] / total, 1),
            "cum_ms": _fmt_ms(entry["cum_ns"]),
            "cum_pct": round(100.0 * entry["cum_ns"] / total, 1),
            "calls": entry["calls"],
        })
    sections.append(format_table(
        "Wall-clock by subsystem (self/cumulative)",
        ["subsystem", "self_ms", "self_pct", "cum_ms", "cum_pct", "calls"],
        sub_rows,
    ))

    site_rows = []
    ranked = sorted(profiler.sites.items(),
                    key=lambda item: item[1][1], reverse=True)
    for (subsystem, site), (calls, self_ns, cum_ns) in ranked[:top]:
        site_rows.append({
            "site": site,
            "subsystem": subsystem,
            "calls": calls,
            "self_ms": _fmt_ms(self_ns),
            "self_pct": round(100.0 * self_ns / total, 1),
            "cum_ms": _fmt_ms(cum_ns),
        })
    sections.append(format_table(
        f"Hottest call sites (top {min(top, len(ranked))} of {len(ranked)})",
        ["site", "subsystem", "calls", "self_ms", "self_pct", "cum_ms"],
        site_rows,
    ))

    if profiler.programs:
        prog_rows = []
        for (name, mode), (runs, insns, wall_ns) in sorted(
                profiler.programs.items(),
                key=lambda item: item[1][2], reverse=True):
            prog_rows.append({
                "program": name,
                "mode": mode,
                "runs": runs,
                "insns": insns,
                "wall_ms": _fmt_ms(wall_ns),
                "ns_per_insn": round(wall_ns / insns, 1) if insns else 0.0,
            })
        sections.append(format_table(
            "eBPF programs (instructions retired)",
            ["program", "mode", "runs", "insns", "wall_ms", "ns_per_insn"],
            prog_rows,
        ))

    if profiler.opcodes:
        op_total = sum(stat[1] for stat in profiler.opcodes.values()) or 1
        op_rows = []
        for opclass, (opcount, wall_ns) in sorted(
                profiler.opcodes.items(),
                key=lambda item: item[1][1], reverse=True):
            op_rows.append({
                "class": opclass,
                "count": opcount,
                "wall_ms": _fmt_ms(wall_ns),
                "pct": round(100.0 * wall_ns / op_total, 1),
            })
        sections.append(format_table(
            "eBPF opcode classes (interpreter wall time)",
            ["class", "count", "wall_ms", "pct"],
            op_rows,
        ))

    summary = [
        "",
        f"events dispatched : {profiler.events_dispatched:,}"
        f"  (heap depth avg {profiler.heap_depth_avg():.1f},"
        f" max {profiler.heap_max})",
        f"vm instructions   : {profiler.instructions_retired:,}",
        f"profiled wall     : {profiler.total_ns / 1e6:.3f} ms",
    ]
    if profiler.events:
        top_events = sorted(profiler.events.items(),
                            key=lambda item: item[1], reverse=True)[:6]
        summary.append("top event types   : " + ", ".join(
            f"{name}={count:,}" for name, count in top_events))
    sections.append("\n".join(summary))
    return "\n\n".join(sections)


def collapsed_stacks(profiler: Profiler) -> str:
    """Flamegraph "collapsed" format: ``frame;frame <self_ns>`` lines.

    Frames render as ``subsystem:site``; line order is deterministic
    (sorted by stack) so output diffs cleanly between runs.
    """
    lines = []
    for stack in sorted(profiler.stacks):
        self_ns = profiler.stacks[stack]
        if self_ns <= 0:
            continue
        frames = ";".join(
            f"{subsystem}:{site}" for subsystem, site in stack)
        lines.append(f"{frames} {self_ns}")
    return "\n".join(lines) + ("\n" if lines else "")
