"""Uniform machine-readable benchmark results (``BENCH_<name>.json``).

Every ``benchmarks/bench_*.py`` emits one of these through
``benchmarks/harness.py`` so that wall-clock numbers, the deterministic
simulation outputs, and the machine fingerprint travel together.  The
committed files under ``benchmarks/baselines/`` are the repo's perf
trajectory; ``scripts/check_bench_regression.py`` diffs fresh runs
against them.

Schema version ``repro-bench/1``::

    {
      "schema": "repro-bench/1",
      "name": "fig3_throughput",           # bench module suffix
      "title": "Fig 3a: ...",
      "mode": "full" | "smoke",
      "rounds": 3,
      "wall_s": {"mean": ..., "min": ..., "max": ..., "per_round": [...]},
      "sim_time_ns": 12345 | null,         # deterministic, exact-comparable
      "throughput": {"value": ..., "unit": "kops/s"} | null,
      "metrics": {...},                    # deterministic scalars, sorted
      "fingerprint": {"git_sha", "python", "implementation",
                      "platform", "machine"},
      "created_unix": 1710000000
    }

``wall_s`` is the only noisy field; everything in ``sim_time_ns`` /
``throughput`` / ``metrics`` is a pure function of the bench's seed and
parameters, so the regression checker compares those exactly (drift
there means *behaviour* changed, not the machine).
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "fingerprint",
    "validate_bench_json",
]

BENCH_SCHEMA = "repro-bench/1"

_MODES = ("full", "smoke")

#: required key -> type check (None means nullable-dict checked separately)
_TOP_KEYS = {
    "schema": str,
    "name": str,
    "title": str,
    "mode": str,
    "rounds": int,
    "wall_s": dict,
    "metrics": dict,
    "fingerprint": dict,
    "created_unix": (int, float),
}

_WALL_KEYS = {"mean", "min", "max", "per_round"}
_FINGERPRINT_KEYS = {"git_sha", "python", "implementation", "platform",
                     "machine"}


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def fingerprint() -> Dict[str, str]:
    """Identify the machine/interpreter a result was produced on."""
    return {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
    }


class BenchResult:
    """One benchmark run, ready to serialise as ``BENCH_<name>.json``."""

    def __init__(
        self,
        name: str,
        title: str,
        mode: str,
        wall_rounds_s: List[float],
        sim_time_ns: Optional[int] = None,
        throughput: Optional[Dict[str, Any]] = None,
        metrics: Optional[Dict[str, Any]] = None,
    ):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if not wall_rounds_s:
            raise ValueError("wall_rounds_s must contain at least one round")
        if throughput is not None:
            if set(throughput) != {"value", "unit"}:
                raise ValueError(
                    "throughput must be {'value': ..., 'unit': ...}"
                )
        self.name = name
        self.title = title
        self.mode = mode
        self.wall_rounds_s = [float(w) for w in wall_rounds_s]
        self.sim_time_ns = sim_time_ns
        self.throughput = throughput
        self.metrics = dict(metrics or {})

    def to_dict(self) -> Dict[str, Any]:
        rounds = self.wall_rounds_s
        return {
            "schema": BENCH_SCHEMA,
            "name": self.name,
            "title": self.title,
            "mode": self.mode,
            "rounds": len(rounds),
            "wall_s": {
                "mean": sum(rounds) / len(rounds),
                "min": min(rounds),
                "max": max(rounds),
                "per_round": rounds,
            },
            "sim_time_ns": self.sim_time_ns,
            "throughput": self.throughput,
            "metrics": self.metrics,
            "fingerprint": fingerprint(),
            "created_unix": int(time.time()),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())


def validate_bench_json(data: Any) -> List[str]:
    """Schema-check a parsed ``BENCH_*.json``; returns a list of problems.

    An empty list means the document is valid ``repro-bench/1``.  Used by
    both the regression checker (to reject corrupt baselines with exit
    code 2) and the test suite (to validate every committed baseline).
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    if data.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema must be {BENCH_SCHEMA!r}, got {data.get('schema')!r}"
        )
    for key, kind in _TOP_KEYS.items():
        if key not in data:
            problems.append(f"missing key {key!r}")
        elif not isinstance(data[key], kind):
            problems.append(
                f"{key!r} must be {kind}, got {type(data[key]).__name__}"
            )
    if isinstance(data.get("mode"), str) and data["mode"] not in _MODES:
        problems.append(f"mode must be one of {_MODES}, got {data['mode']!r}")
    wall = data.get("wall_s")
    if isinstance(wall, dict):
        missing = _WALL_KEYS - set(wall)
        if missing:
            problems.append(f"wall_s missing {sorted(missing)}")
        rounds = wall.get("per_round")
        if isinstance(rounds, list):
            if not rounds:
                problems.append("wall_s.per_round is empty")
            elif not all(isinstance(r, (int, float)) and r >= 0
                         for r in rounds):
                problems.append("wall_s.per_round must be non-negative numbers")
        elif "per_round" in wall:
            problems.append("wall_s.per_round must be a list")
        for stat in ("mean", "min", "max"):
            if stat in wall and not isinstance(wall[stat], (int, float)):
                problems.append(f"wall_s.{stat} must be a number")
    sim_time = data.get("sim_time_ns", 0)
    if sim_time is not None and not isinstance(sim_time, int):
        problems.append("sim_time_ns must be an integer or null")
    throughput = data.get("throughput", None)
    if throughput is not None:
        if not isinstance(throughput, dict) or \
                set(throughput) != {"value", "unit"}:
            problems.append(
                "throughput must be null or {'value', 'unit'}"
            )
        elif not isinstance(throughput.get("value"), (int, float)):
            problems.append("throughput.value must be a number")
    fp = data.get("fingerprint")
    if isinstance(fp, dict):
        missing = _FINGERPRINT_KEYS - set(fp)
        if missing:
            problems.append(f"fingerprint missing {sorted(missing)}")
    return problems
