"""WiscKey-style key/value separation inside a single file.

The paper cites WiscKey (its B-tree benchmark "assumes the leaves of the
index contain user data rather than pointers" *for simplicity*, referencing
[36]).  This module implements the non-simplified layout: a B+-tree whose
leaf values are offsets of *value-log records*, so a lookup is an index
traversal **plus one more dependent hop** into the log — a chain the BPF
program follows without surfacing the index pages.

Because a chain may only dereference offsets inside the file the program
was installed on (the §4 security rule), the log lives in the same file as
the index::

    page 0            B-tree meta page
    pages 1..T        B-tree pages (leaf values = log record offsets)
    pages T+1..       value-log records, one per 4 KiB block:
                          key u64 | value_len u64 | payload bytes
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import InvalidArgument
from repro.structures.btree import BTree
from repro.structures.pages import PAGE_SIZE, FileBackend

__all__ = ["WisckeyStore"]

_RECORD_HEADER = struct.Struct("<QQ")
MAX_PAYLOAD = PAGE_SIZE - _RECORD_HEADER.size


class WisckeyStore:
    """Build and read an index-plus-value-log file."""

    def __init__(self, backend: FileBackend):
        self.backend = backend
        self.tree = BTree(backend)

    @staticmethod
    def build(backend: FileBackend,
              items: Iterable[Tuple[int, bytes]],
              fanout: int = 64) -> "WisckeyStore":
        """Write sorted ``(key, payload)`` pairs; payloads up to 4080 B."""
        items = list(items)
        if not items:
            raise InvalidArgument("cannot build an empty store")
        for key, payload in items:
            if len(payload) > MAX_PAYLOAD:
                raise InvalidArgument(
                    f"payload for key {key} exceeds {MAX_PAYLOAD} bytes")

        # The tree's page span depends only on the item count, so size it
        # first, then place the log right after it.
        probe = BTree.build(_SpanProbe(), [(k, 0) for k, _p in items],
                            fanout=fanout)
        log_base = probe.backend.high_water
        index_items: List[Tuple[int, int]] = []
        backend.preallocate(PAGE_SIZE, log_base - PAGE_SIZE +
                            len(items) * PAGE_SIZE)
        for number, (key, payload) in enumerate(items):
            record_offset = log_base + number * PAGE_SIZE
            record = bytearray(PAGE_SIZE)
            _RECORD_HEADER.pack_into(record, 0, key, len(payload))
            record[16 : 16 + len(payload)] = payload
            backend.write(record_offset, bytes(record))
            index_items.append((key, record_offset))
        BTree.build(backend, index_items, fanout=fanout)
        return WisckeyStore(backend)

    # ------------------------------------------------------------------

    def get(self, key: int) -> Optional[bytes]:
        """Reference lookup: index traversal + one log dereference."""
        record_offset = self.tree.lookup(key)
        if record_offset is None:
            return None
        record = self.backend.read(record_offset, PAGE_SIZE)
        stored_key, length = _RECORD_HEADER.unpack_from(record, 0)
        if stored_key != key:
            raise InvalidArgument(
                f"log corruption: wanted key {key}, found {stored_key}")
        return bytes(record[16 : 16 + length])

    def hops_per_get(self) -> int:
        """Index depth plus the log dereference."""
        return self.tree.depth + 1

    @staticmethod
    def parse_record(block: bytes) -> Tuple[int, bytes]:
        """(key, payload) from a raw log-record block (for chain results)."""
        stored_key, length = _RECORD_HEADER.unpack_from(block, 0)
        return stored_key, bytes(block[16 : 16 + length])


class _SpanProbe(FileBackend):
    """A write-discarding backend that records the highest offset written,
    used to pre-compute the tree's page span.  It keeps only the metadata
    page so ``BTree.build`` can hand back a readable handle."""

    def __init__(self):
        self.high_water = 0
        self._meta = bytes(PAGE_SIZE)

    def read(self, offset: int, length: int) -> bytes:
        if offset == 0 and length <= PAGE_SIZE:
            return self._meta[:length]
        raise InvalidArgument("probe backend only retains the meta page")

    def write(self, offset: int, data: bytes) -> None:
        if offset == 0:
            self._meta = bytes(data)
        self.high_water = max(self.high_water, offset + len(data))

    def preallocate(self, offset: int, length: int) -> None:
        self.high_water = max(self.high_water, offset + length)

    @property
    def size(self) -> int:
        return self.high_water
