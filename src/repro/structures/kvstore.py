"""A small KV-store facade over the B-tree and LSM engines.

Two engines, matching the two application classes the paper targets:

* ``"btree"`` — an immutable on-disk B-tree index with an in-memory update
  overlay, rebuilt in batches (the TokuDB-style pattern whose stable extents
  §4 measures).  ``rebuild()`` writes a fresh file and atomically renames it
  over the old one.
* ``"lsm"`` — the LSM tree (RocksDB-style), flushing and compacting
  immutable SSTables.

This facade is deliberately engine-shaped rather than kernel-shaped: the
BPF acceleration binds at the *file* level in the examples and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidArgument
from repro.structures.btree import BTree
from repro.structures.lsm import LsmTree
from repro.structures.pages import FANOUT_MAX, FsBackend

__all__ = ["KvStore"]


class KvStore:
    """Dictionary-style API over an on-disk engine in the simulated FS."""

    def __init__(self, fs, path: str, engine: str = "btree",
                 fanout: int = FANOUT_MAX, memtable_limit: int = 1024):
        if engine not in ("btree", "lsm"):
            raise InvalidArgument(f"unknown engine {engine!r}")
        self.fs = fs
        self.path = path
        self.engine = engine
        self.fanout = fanout
        if engine == "lsm":
            self._lsm = LsmTree(fs, path, memtable_limit=memtable_limit)
            self._tree: Optional[BTree] = None
            self._overlay: Dict[int, Optional[int]] = {}
        else:
            self._lsm = None
            self._tree = None
            self._overlay = {}

    # ------------------------------------------------------------------
    # B-tree engine
    # ------------------------------------------------------------------

    def bulk_load(self, items: List[Tuple[int, int]]) -> None:
        """(btree) Build the index file from sorted items."""
        if self.engine != "btree":
            raise InvalidArgument("bulk_load is a btree-engine operation")
        if self.fs.exists(self.path):
            self.fs.unlink(self.path)
        inode = self.fs.create(self.path)
        self._tree = BTree.build(FsBackend(self.fs, inode), items,
                                 fanout=self.fanout)
        self._overlay = {}

    def rebuild(self) -> int:
        """(btree) Merge the overlay into a fresh index file via rename.

        Returns the number of keys in the rebuilt index.  This is the batch
        index rebuild whose extent behaviour the stability experiment
        measures: a new file is written and renamed over the old one, so
        the old blocks are unmapped in one burst.
        """
        if self.engine != "btree" or self._tree is None:
            raise InvalidArgument("rebuild needs a loaded btree")
        merged: Dict[int, int] = dict(self._tree.range_scan(0, 2**64 - 1))
        for key, value in self._overlay.items():
            if value is None:
                merged.pop(key, None)
            else:
                merged[key] = value
        items = sorted(merged.items())
        temp_path = self.path + ".tmp"
        if self.fs.exists(temp_path):
            self.fs.unlink(temp_path)
        inode = self.fs.create(temp_path)
        BTree.build(FsBackend(self.fs, inode), items, fanout=self.fanout)
        self.fs.rename(temp_path, self.path)
        self._tree = BTree(FsBackend(self.fs, self.fs.lookup(self.path)))
        self._overlay = {}
        return len(items)

    def rebuild_appending(self) -> int:
        """(btree) Merge the overlay into a tree appended at EOF.

        Only the metadata page (offset 0) is overwritten in place; all new
        tree pages land past the current end of file, so the file's extents
        only *grow* — the TokuDB-style pattern the paper observes keeps the
        NVMe extent cache valid.  The superseded pages become garbage until
        :meth:`gc_rewrite` reclaims them.
        """
        if self.engine != "btree" or self._tree is None:
            raise InvalidArgument("rebuild_appending needs a loaded btree")
        from repro.structures.pages import PAGE_SIZE

        merged: Dict[int, int] = dict(self._tree.range_scan(0, 2**64 - 1))
        for key, value in self._overlay.items():
            if value is None:
                merged.pop(key, None)
            else:
                merged[key] = value
        items = sorted(merged.items())
        inode = self.fs.lookup(self.path)
        end = (inode.size + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE
        end = max(end, PAGE_SIZE)
        backend = FsBackend(self.fs, inode)
        self._tree = BTree.build(backend, items, fanout=self.fanout,
                                 first_page_offset=end)
        self._overlay = {}
        return len(items)

    def gc_rewrite(self) -> int:
        """(btree) Reclaim garbage: compact into a fresh file via rename.

        This is the rare whole-file rewrite that *does* unmap blocks (the
        "5 changes in 24 hours" of the paper's measurement).
        """
        if self.engine != "btree" or self._tree is None:
            raise InvalidArgument("gc_rewrite needs a loaded btree")
        return self.rebuild()

    @property
    def overlay_size(self) -> int:
        return len(self._overlay)

    @property
    def tree(self) -> Optional[BTree]:
        return self._tree

    @property
    def lsm(self) -> Optional[LsmTree]:
        return self._lsm

    # ------------------------------------------------------------------
    # Common API
    # ------------------------------------------------------------------

    def put(self, key: int, value: int) -> None:
        if self.engine == "lsm":
            self._lsm.put(key, value)
        else:
            self._overlay[key] = value

    def delete(self, key: int) -> None:
        if self.engine == "lsm":
            self._lsm.delete(key)
        else:
            self._overlay[key] = None

    def get(self, key: int) -> Optional[int]:
        if self.engine == "lsm":
            return self._lsm.get(key)
        if key in self._overlay:
            return self._overlay[key]
        if self._tree is None:
            return None
        return self._tree.lookup(key)

    def scan(self, low: int, high: int) -> List[Tuple[int, int]]:
        """All (key, value) with low <= key < high."""
        if self.engine == "lsm":
            raise InvalidArgument(
                "scan is implemented for the btree engine only")
        base = dict(self._tree.range_scan(low, high)) if self._tree else {}
        for key, value in self._overlay.items():
            if low <= key < high:
                if value is None:
                    base.pop(key, None)
                else:
                    base[key] = value
        return sorted(base.items())
