"""On-disk data structures the paper's workloads traverse.

* :mod:`~repro.structures.pages` — 4 KiB page codecs shared by the Python
  implementations and the BPF programs (same byte layout).
* :mod:`~repro.structures.btree` — a bulk-loaded on-disk B+-tree with
  configurable fanout (hence depth), the paper's headline benchmark
  structure.
* :mod:`~repro.structures.lsm` — an LSM tree: memtable, immutable SSTables
  with two-level block index and bloom filters, leveled compaction.  Its
  immutable-file discipline is the paper's motivating example for stable
  extents.
* :mod:`~repro.structures.kvstore` — a small KV-store facade over either
  engine.

Structures operate over a :class:`~repro.structures.pages.FileBackend`, so
they are independent of the simulated kernel; the examples and benchmarks
bind them to files in the simulated file system and accelerate their reads
with the BPF chain programs from :mod:`repro.core.library`.
"""

from repro.structures.btree import BTree, BTreeMeta
from repro.structures.kvstore import KvStore
from repro.structures.lsm import CompactionPlan, LsmTree, SsTable, TOMBSTONE
from repro.structures.wisckey import WisckeyStore
from repro.structures.pages import (
    BTREE_PAGE_MAGIC,
    FANOUT_MAX,
    FileBackend,
    FsBackend,
    MemoryBackend,
    PAGE_SIZE,
)

__all__ = [
    "BTREE_PAGE_MAGIC",
    "BTree",
    "BTreeMeta",
    "CompactionPlan",
    "FANOUT_MAX",
    "FileBackend",
    "FsBackend",
    "KvStore",
    "LsmTree",
    "MemoryBackend",
    "PAGE_SIZE",
    "SsTable",
    "TOMBSTONE",
    "WisckeyStore",
]
