"""Page codecs and file backends.

Every on-disk structure in this package is built from 4 KiB pages holding
fixed-width ``(u64 key, u64 value)`` entries behind a 16-byte header::

    offset  size  field
    0       4     magic (structure/page kind)
    4       2     level (B-tree: 0 = leaf; SSTable: block kind)
    6       2     nkeys
    8       8     reserved
    16      16*i  entries: key u64, value u64 (sorted by key)

The BPF traversal programs in :mod:`repro.core.library` parse exactly this
layout, byte for byte — the "application-defined structure pushed into the
kernel" of §4.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.errors import InvalidArgument

__all__ = [
    "BTREE_PAGE_MAGIC",
    "FANOUT_MAX",
    "FileBackend",
    "FsBackend",
    "HEADER",
    "MemoryBackend",
    "PAGE_HEADER_SIZE",
    "PAGE_SIZE",
    "SSTABLE_DATA_MAGIC",
    "SSTABLE_INDEX_MAGIC",
    "SSTABLE_META_MAGIC",
    "decode_page",
    "encode_page",
    "search_page",
]

PAGE_SIZE = 4096
PAGE_HEADER_SIZE = 16
#: Entries per page: (4096 - 16) / 16.
FANOUT_MAX = (PAGE_SIZE - PAGE_HEADER_SIZE) // 16

BTREE_PAGE_MAGIC = 0xB7EE0001
BTREE_META_MAGIC = 0xB7EE0000
SSTABLE_META_MAGIC = 0x55AB0000
SSTABLE_INDEX_MAGIC = 0x55AB0001
SSTABLE_DATA_MAGIC = 0x55AB0002

HEADER = struct.Struct("<IHHQ")
ENTRY = struct.Struct("<QQ")


def encode_page(magic: int, level: int,
                entries: List[Tuple[int, int]]) -> bytes:
    """Encode one page; entries must be sorted by key and fit the page."""
    if len(entries) > FANOUT_MAX:
        raise InvalidArgument(
            f"{len(entries)} entries exceed page fanout {FANOUT_MAX}")
    for index in range(1, len(entries)):
        if entries[index - 1][0] > entries[index][0]:
            raise InvalidArgument("page entries must be sorted by key")
    page = bytearray(PAGE_SIZE)
    HEADER.pack_into(page, 0, magic, level, len(entries), 0)
    for index, (key, value) in enumerate(entries):
        ENTRY.pack_into(page, PAGE_HEADER_SIZE + 16 * index, key, value)
    return bytes(page)


def decode_page(page: bytes) -> Tuple[int, int, List[Tuple[int, int]]]:
    """Decode (magic, level, entries) from page bytes."""
    if len(page) < PAGE_SIZE:
        raise InvalidArgument(f"page is {len(page)} bytes, expected "
                              f"{PAGE_SIZE}")
    magic, level, nkeys, _reserved = HEADER.unpack_from(page, 0)
    if nkeys > FANOUT_MAX:
        raise InvalidArgument(f"corrupt page: nkeys={nkeys}")
    entries = [
        ENTRY.unpack_from(page, PAGE_HEADER_SIZE + 16 * index)
        for index in range(nkeys)
    ]
    return magic, level, entries


def search_page(page: bytes, key: int) -> Tuple[int, Optional[int]]:
    """Find ``key``'s position in a page, the way the BPF program does.

    Returns ``(index, value)`` where ``index`` is the largest entry index
    with ``entry_key <= key`` (or -1 if the key precedes every entry) and
    ``value`` is that entry's value (None when index is -1).
    """
    _magic, _level, nkeys, _reserved = HEADER.unpack_from(page, 0)
    lo, hi = 0, nkeys  # invariant: entries[<lo] <= key < entries[>=hi]
    while lo < hi:
        mid = (lo + hi) // 2
        entry_key, _value = ENTRY.unpack_from(page,
                                              PAGE_HEADER_SIZE + 16 * mid)
        if entry_key <= key:
            lo = mid + 1
        else:
            hi = mid
    index = lo - 1
    if index < 0:
        return -1, None
    _key, value = ENTRY.unpack_from(page, PAGE_HEADER_SIZE + 16 * index)
    return index, value


class FileBackend:
    """Byte-addressed storage a structure lives in."""

    def read(self, offset: int, length: int) -> bytes:
        raise NotImplementedError

    def write(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def preallocate(self, offset: int, length: int) -> None:
        """Reserve space ahead of a bulk write (one allocation burst).

        Optional; the default is a no-op.  The FS-backed implementation
        maps the whole range in one go, so a bulk build appears to the
        extent-change listeners as a single growth event — the behaviour
        of a real file system with delayed allocation.
        """

    @property
    def size(self) -> int:
        raise NotImplementedError


class MemoryBackend(FileBackend):
    """An in-memory backend for structure unit tests."""

    def __init__(self, data: bytes = b""):
        self._data = bytearray(data)

    def read(self, offset: int, length: int) -> bytes:
        if offset + length > len(self._data):
            raise InvalidArgument(
                f"read [{offset}, {offset + length}) beyond EOF "
                f"({len(self._data)})")
        return bytes(self._data[offset : offset + length])

    def write(self, offset: int, data: bytes) -> None:
        if offset + len(data) > len(self._data):
            self._data.extend(bytes(offset + len(data) - len(self._data)))
        self._data[offset : offset + len(data)] = data

    @property
    def size(self) -> int:
        return len(self._data)


class FsBackend(FileBackend):
    """A backend over a file in the simulated file system (untimed access).

    Timed access happens through the kernel read paths in experiments; this
    backend is for structure construction and reference lookups.
    """

    def __init__(self, fs, inode):
        self.fs = fs
        self.inode = inode

    def read(self, offset: int, length: int) -> bytes:
        return self.fs.read_sync(self.inode, offset, length)

    def write(self, offset: int, data: bytes) -> None:
        self.fs.write_sync(self.inode, offset, data)

    def preallocate(self, offset: int, length: int) -> None:
        self.fs.ensure_allocated(self.inode, offset, length)

    @property
    def size(self) -> int:
        return self.inode.size
