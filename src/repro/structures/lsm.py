"""An LSM tree with immutable SSTables (the paper's motivating structure).

SSTables are immutable once written — the property §4 leans on for stable
extents — and are laid out as pages compatible with the BPF traversal
programs::

    block 0                meta page (entry count, root index offset,
                           key range, bloom filter location)
    blocks 1..D            data pages   (level 0): sorted (key, value)
    blocks D+1..D+I        index pages  (level 1): (first_key, data offset)
    next block             root index   (level 2): (first_key, index offset)
    remaining blocks       bloom filter bits

A ``get`` that misses the memtable costs one 3-hop dependent chain per
consulted SSTable (root index → index → data) — exactly the paper's
"auxiliary I/O" pattern.  Deletes write a tombstone value.

The tree keeps a write-ahead-free, flush-on-threshold memtable, an
overlapping L0, and leveled runs below it; compaction merges a level into
the next and *unlinks* the input tables, which is what fires the extent
unmap events the invalidation experiments measure.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import InvalidArgument
from repro.structures.pages import (
    PAGE_SIZE,
    SSTABLE_DATA_MAGIC,
    SSTABLE_INDEX_MAGIC,
    SSTABLE_META_MAGIC,
    FANOUT_MAX,
    FileBackend,
    FsBackend,
    encode_page,
    search_page,
)

__all__ = ["BloomFilter", "CompactionPlan", "LsmTree", "SsTable",
           "TOMBSTONE"]

#: Reserved value marking a deletion.
TOMBSTONE = 0xFFFFFFFFFFFFFFFF

_META = struct.Struct("<IQQQQQQ")


def _mix(key: int, salt: int) -> int:
    """SplitMix64-style deterministic hash (no Python hash() involved)."""
    x = (key + 0x9E3779B97F4A7C15 * (salt + 1)) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class BloomFilter:
    """A classic k-hash bloom filter over u64 keys."""

    def __init__(self, num_bits: int, num_hashes: int = 7):
        if num_bits < 8 or num_hashes < 1:
            raise InvalidArgument("bloom filter too small")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)

    @classmethod
    def for_entries(cls, count: int, bits_per_key: int = 10) -> "BloomFilter":
        return cls(max(64, count * bits_per_key))

    def add(self, key: int) -> None:
        for salt in range(self.num_hashes):
            bit = _mix(key, salt) % self.num_bits
            self._bits[bit // 8] |= 1 << (bit % 8)

    def may_contain(self, key: int) -> bool:
        for salt in range(self.num_hashes):
            bit = _mix(key, salt) % self.num_bits
            if not self._bits[bit // 8] & (1 << (bit % 8)):
                return False
        return True

    def to_bytes(self) -> bytes:
        return bytes(self._bits)

    @classmethod
    def from_bytes(cls, blob: bytes, num_bits: int,
                   num_hashes: int = 7) -> "BloomFilter":
        bloom = cls(num_bits, num_hashes)
        bloom._bits[:] = blob[: len(bloom._bits)]
        return bloom


class SsTable:
    """One immutable sorted table."""

    def __init__(self, backend: FileBackend):
        self.backend = backend
        meta = backend.read(0, PAGE_SIZE)
        (magic, self.num_entries, self.root_index_offset, self.min_key,
         self.max_key, bloom_offset, bloom_bits) = _META.unpack_from(meta, 0)
        if magic != SSTABLE_META_MAGIC:
            raise InvalidArgument(f"not an SSTable (magic {magic:#x})")
        bloom_bytes = (bloom_bits + 7) // 8
        self.bloom = BloomFilter.from_bytes(
            backend.read(bloom_offset, bloom_bytes), bloom_bits)

    # ------------------------------------------------------------------

    @staticmethod
    def build(backend: FileBackend,
              items: List[Tuple[int, int]]) -> "SsTable":
        """Write sorted ``(key, value)`` items (values may be TOMBSTONE)."""
        if not items:
            raise InvalidArgument("cannot build an empty SSTable")
        for index in range(1, len(items)):
            if items[index - 1][0] >= items[index][0]:
                raise InvalidArgument("keys must be strictly increasing")

        def chunk(seq, size):
            return [seq[i : i + size] for i in range(0, len(seq), size)]

        data_groups = chunk(items, FANOUT_MAX)
        data_offsets = [(1 + i) * PAGE_SIZE for i in range(len(data_groups))]
        index_entries = [
            (group[0][0], offset)
            for group, offset in zip(data_groups, data_offsets)
        ]
        index_groups = chunk(index_entries, FANOUT_MAX)
        if len(index_groups) > FANOUT_MAX:
            raise InvalidArgument("SSTable too large for a two-level index")
        first_index_block = 1 + len(data_groups)
        index_offsets = [
            (first_index_block + i) * PAGE_SIZE
            for i in range(len(index_groups))
        ]
        root_entries = [
            (group[0][0], offset)
            for group, offset in zip(index_groups, index_offsets)
        ]
        root_offset = (first_index_block + len(index_groups)) * PAGE_SIZE
        bloom = BloomFilter.for_entries(len(items))
        for key, _value in items:
            bloom.add(key)
        bloom_offset = root_offset + PAGE_SIZE

        blob_len = (len(bloom.to_bytes()) + PAGE_SIZE - 1) // PAGE_SIZE \
            * PAGE_SIZE
        backend.preallocate(0, bloom_offset + blob_len)
        for group, offset in zip(data_groups, data_offsets):
            backend.write(offset, encode_page(SSTABLE_DATA_MAGIC, 0, group))
        for group, offset in zip(index_groups, index_offsets):
            backend.write(offset, encode_page(SSTABLE_INDEX_MAGIC, 1, group))
        backend.write(root_offset,
                      encode_page(SSTABLE_INDEX_MAGIC, 2, root_entries))
        blob = bloom.to_bytes()
        padded = blob + bytes(-len(blob) % PAGE_SIZE)
        backend.write(bloom_offset, padded)

        meta = bytearray(PAGE_SIZE)
        _META.pack_into(meta, 0, SSTABLE_META_MAGIC, len(items), root_offset,
                        items[0][0], items[-1][0], bloom_offset,
                        bloom.num_bits)
        backend.write(0, bytes(meta))
        return SsTable(backend)

    # ------------------------------------------------------------------

    def key_in_range(self, key: int) -> bool:
        return self.min_key <= key <= self.max_key

    def may_contain(self, key: int) -> bool:
        """The in-memory pre-check apps do before touching the device."""
        return self.key_in_range(key) and self.bloom.may_contain(key)

    def get(self, key: int) -> Optional[int]:
        """Reference lookup: root index -> index -> data (3 page reads).

        Returns the stored value (possibly TOMBSTONE) or None if absent.
        """
        value, _visited = self.get_traced(key)
        return value

    def get_traced(self, key: int) -> Tuple[Optional[int], List[int]]:
        offset = self.root_index_offset
        visited = [offset]
        for _level in (2, 1):
            page = self.backend.read(offset, PAGE_SIZE)
            _index, child = search_page(page, key)
            if child is None:
                return None, visited
            offset = child
            visited.append(offset)
        page = self.backend.read(offset, PAGE_SIZE)
        index, value = search_page(page, key)
        if index < 0:
            return None, visited
        entry_key = struct.unpack_from("<Q", page, 16 + 16 * index)[0]
        if entry_key != key:
            return None, visited
        return value, visited

    def entries(self) -> Iterator[Tuple[int, int]]:
        """All entries in key order (for compaction merges)."""
        offset = self.root_index_offset
        root = self.backend.read(offset, PAGE_SIZE)
        _m, _l, root_entries = _decode_entries(root)
        for _first, index_offset in root_entries:
            index_page = self.backend.read(index_offset, PAGE_SIZE)
            _m, _l, index_entries = _decode_entries(index_page)
            for _first2, data_offset in index_entries:
                data_page = self.backend.read(data_offset, PAGE_SIZE)
                _m, _l, data_entries = _decode_entries(data_page)
                for key, value in data_entries:
                    yield key, value


def _decode_entries(page: bytes):
    from repro.structures.pages import decode_page

    return decode_page(page)


class CompactionPlan:
    """Immutable snapshot of one ``level -> level + 1`` compaction.

    A plan separates *deciding* a compaction from *executing* it so the
    merge can run elsewhere (user space, a BPF chain, or a remote
    target) while the tree keeps serving reads — and keeps accepting
    memtable flushes: :meth:`LsmTree.apply_compaction` removes exactly
    the planned inputs, so tables that landed meanwhile survive.
    """

    __slots__ = ("level", "upper", "lower", "drop_tombstones")

    def __init__(self, level: int, upper: List[Tuple[str, "SsTable"]],
                 lower: List[Tuple[str, "SsTable"]],
                 drop_tombstones: bool):
        self.level = level
        #: Tables from ``levels[level]`` (the newer run being pushed down).
        self.upper = list(upper)
        #: Tables from ``levels[level + 1]`` (the older resident run).
        self.lower = list(lower)
        self.drop_tombstones = drop_tombstones

    @property
    def inputs(self) -> List[Tuple[str, "SsTable"]]:
        """All input tables (upper first — the unlink order)."""
        return self.upper + self.lower

    @property
    def merge_order(self) -> List[Tuple[str, "SsTable"]]:
        """Inputs ordered oldest first, so newer entries overwrite."""
        return self.lower + self.upper

    def input_paths(self) -> List[str]:
        """Paths oldest first (the order an offloaded merge scans)."""
        return [path for path, _table in self.merge_order]

    def __repr__(self) -> str:
        return (f"CompactionPlan(level={self.level}, "
                f"inputs={len(self.upper) + len(self.lower)}, "
                f"drop_tombstones={self.drop_tombstones})")


class LsmTree:
    """Memtable + L0 + leveled runs over files in the simulated FS."""

    def __init__(self, fs, directory: str, memtable_limit: int = 1024,
                 l0_limit: int = 4, level_ratio: int = 4):
        if memtable_limit < 1:
            raise InvalidArgument("memtable_limit must be >= 1")
        self.fs = fs
        self.directory = directory.rstrip("/")
        if not fs.exists(self.directory):
            fs.mkdir(self.directory)
        self.memtable: Dict[int, int] = {}
        self.memtable_limit = memtable_limit
        self.l0_limit = l0_limit
        self.level_ratio = level_ratio
        #: levels[0] is the overlapping L0 (newest last); deeper levels are
        #: single sorted runs (one table each, possibly large).
        self.levels: List[List[Tuple[str, SsTable]]] = [[]]
        self._sequence = 0
        # Statistics.
        self.flushes = 0
        self.compactions = 0
        self.tables_written = 0
        self.tables_deleted = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def put(self, key: int, value: int) -> None:
        if value == TOMBSTONE:
            raise InvalidArgument("value collides with the tombstone")
        self.memtable[key] = value
        if len(self.memtable) >= self.memtable_limit:
            self.flush()

    def delete(self, key: int) -> None:
        self.memtable[key] = TOMBSTONE
        if len(self.memtable) >= self.memtable_limit:
            self.flush()

    def flush(self) -> Optional[str]:
        """Write the memtable as a new L0 table; maybe compact."""
        if not self.memtable:
            return None
        items = sorted(self.memtable.items())
        self.memtable = {}
        path = self._new_table_path()
        table = self._write_table(path, items)
        self.levels[0].append((path, table))
        self.flushes += 1
        self._maybe_compact()
        return path

    def _new_table_path(self) -> str:
        self._sequence += 1
        return f"{self.directory}/sst-{self._sequence:06d}"

    def reserve_table_path(self) -> str:
        """Allocate a table path for an externally-written output table
        (the compaction engine writes through timed syscalls, then hands
        the finished table to :meth:`apply_compaction`)."""
        return self._new_table_path()

    def _write_table(self, path: str,
                     items: List[Tuple[int, int]]) -> SsTable:
        inode = self.fs.create(path)
        backend = FsBackend(self.fs, inode)
        table = SsTable.build(backend, items)
        self.tables_written += 1
        return table

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def _level_capacity(self, level: int) -> int:
        """Max entries allowed in ``level`` (levels >= 1)."""
        base = self.memtable_limit * self.l0_limit
        return base * (self.level_ratio ** level)

    def _maybe_compact(self) -> None:
        if len(self.levels[0]) > self.l0_limit:
            self._compact(0)
        level = 1
        while level < len(self.levels):
            entries = sum(t.num_entries for _p, t in self.levels[level])
            if entries > self._level_capacity(level):
                self._compact(level)
            level += 1

    def _compact(self, level: int) -> None:
        """Merge ``level`` into ``level + 1`` and unlink the inputs."""
        plan = self.plan_compaction(level)
        if plan is None:
            return
        merged = self._merge_tables(
            [table for _path, table in plan.merge_order],
            drop_tombstones=plan.drop_tombstones,
        )
        self.apply_compaction(plan, merged)

    def plan_compaction(self, level: int) -> Optional["CompactionPlan"]:
        """Snapshot the inputs of a ``level -> level + 1`` compaction.

        Returns None when both levels are empty.  The tree itself is
        not modified (beyond growing the level list), so the caller can
        run the merge asynchronously — through chains or a remote
        target — and install the result with :meth:`apply_compaction`.

        Tombstones are dropped only when no level *below* the target
        holds data: a tombstone must shadow every older version of its
        key before it can be garbage-collected.  (Checking for live
        tables rather than "target is the last level" also collects
        tombstones when trailing levels exist but are empty.)
        """
        while len(self.levels) <= level + 1:
            self.levels.append([])
        upper = list(self.levels[level])
        lower = list(self.levels[level + 1])
        if not upper and not lower:
            return None
        drop = not any(self.levels[i]
                       for i in range(level + 2, len(self.levels)))
        return CompactionPlan(level, upper, lower, drop)

    def apply_compaction(self, plan: "CompactionPlan",
                         merged: List[Tuple[int, int]],
                         output: Optional[Tuple[str, SsTable]] = None
                         ) -> Optional[Tuple[str, SsTable]]:
        """Install the result of a planned (possibly offloaded) merge.

        ``merged`` is the merged item list, already tombstone-filtered
        when the plan says so.  ``output`` optionally names an output
        table the executor wrote itself (e.g. through timed syscalls);
        when None and ``merged`` is non-empty the table is written here.
        Exactly the planned inputs are removed from the two levels —
        tables flushed while the merge ran survive — and then unlinked,
        which fires the extent unmap/invalidation events concurrent
        chain gets recover from.
        """
        if output is None and merged:
            path = self._new_table_path()
            output = (path, self._write_table(path, merged))
        planned = {path for path, _table in plan.inputs}
        self.levels[plan.level] = [
            entry for entry in self.levels[plan.level]
            if entry[0] not in planned
        ]
        survivors = [
            entry for entry in self.levels[plan.level + 1]
            if entry[0] not in planned
        ]
        if output is not None:
            survivors.append(output)
        self.levels[plan.level + 1] = survivors
        for path, _table in plan.inputs:
            self.fs.unlink(path)  # fires the unmap/invalidation hook
            self.tables_deleted += 1
        self.compactions += 1
        return output

    def _merge_tables(self, tables: List[SsTable],
                      drop_tombstones: bool) -> List[Tuple[int, int]]:
        """K-way merge; later (newer) tables win on duplicate keys.

        ``tables`` must be ordered oldest first, which is how the level
        lists store them.
        """
        merged: Dict[int, int] = {}
        for table in tables:  # oldest first, newer overwrites
            for key, value in table.entries():
                merged[key] = value
        items = sorted(merged.items())
        if drop_tombstones:
            items = [(k, v) for k, v in items if v != TOMBSTONE]
        return items

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: int) -> Optional[int]:
        """Point lookup through memtable, L0 (newest first), then levels."""
        if key in self.memtable:
            value = self.memtable[key]
            return None if value == TOMBSTONE else value
        for _path, table in reversed(self.levels[0]):
            if table.may_contain(key):
                value = table.get(key)
                if value is not None:
                    return None if value == TOMBSTONE else value
        for level in self.levels[1:]:
            for _path, table in reversed(level):
                if table.may_contain(key):
                    value = table.get(key)
                    if value is not None:
                        return None if value == TOMBSTONE else value
        return None

    def candidate_tables(self, key: int) -> List[Tuple[str, SsTable]]:
        """Tables (newest first) whose bloom/range admit ``key`` — the set a
        BPF-accelerated get must chain through."""
        candidates = [
            (path, table)
            for path, table in reversed(self.levels[0])
            if table.may_contain(key)
        ]
        for level in self.levels[1:]:
            candidates.extend(
                (path, table)
                for path, table in reversed(level)
                if table.may_contain(key)
            )
        return candidates

    def table_count(self) -> int:
        return sum(len(level) for level in self.levels)

    def total_entries(self) -> int:
        disk = sum(t.num_entries for level in self.levels
                   for _p, t in level)
        return disk + len(self.memtable)
