"""A bulk-loaded on-disk B+-tree (the paper's benchmark structure).

The tree is built bottom-up from sorted key/value pairs with a configurable
fanout — small fanouts force deep trees, which is how the Figure 3
experiments sweep depth.  Page 0 is a metadata page (root offset, depth,
entry count); every other page is a :mod:`~repro.structures.pages` page.

Interior entries are ``(separator_key, child_page_offset)`` where the
separator is the smallest key in the child's subtree; a lookup descends by
"largest separator <= key" at every level, which is also exactly what the
BPF traversal program does one block at a time.

Following the paper's simplification (§3), leaves store user values
directly, and the tree is immutable once built — updates are applied by
rebuilding (batch rebuild), which is what keeps its extents stable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import InvalidArgument
from repro.structures.pages import (
    BTREE_META_MAGIC,
    BTREE_PAGE_MAGIC,
    FANOUT_MAX,
    PAGE_SIZE,
    FileBackend,
    decode_page,
    encode_page,
    search_page,
)

__all__ = ["BTree", "BTreeMeta"]

_META = struct.Struct("<IHHQQQ")  # magic, depth, fanout, root_off, nkeys, _


@dataclass(frozen=True)
class BTreeMeta:
    """Contents of the metadata page."""

    depth: int
    fanout: int
    root_offset: int
    num_keys: int

    def encode(self) -> bytes:
        page = bytearray(PAGE_SIZE)
        _META.pack_into(page, 0, BTREE_META_MAGIC, self.depth, self.fanout,
                        self.root_offset, self.num_keys, 0)
        return bytes(page)

    @classmethod
    def decode(cls, page: bytes) -> "BTreeMeta":
        magic, depth, fanout, root_offset, num_keys, _ = _META.unpack_from(
            page, 0)
        if magic != BTREE_META_MAGIC:
            raise InvalidArgument(f"not a B-tree meta page (magic {magic:#x})")
        return cls(depth, fanout, root_offset, num_keys)


class BTree:
    """Read-side handle over a built tree image."""

    def __init__(self, backend: FileBackend):
        self.backend = backend
        self.meta = BTreeMeta.decode(backend.read(0, PAGE_SIZE))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def build(backend: FileBackend, items: Iterable[Tuple[int, int]],
              fanout: int = FANOUT_MAX,
              first_page_offset: int = PAGE_SIZE) -> "BTree":
        """Bulk-load sorted ``(key, value)`` pairs into ``backend``.

        ``first_page_offset`` places the tree's pages; the metadata page is
        always (re)written at offset 0.  Appending a rebuilt tree at EOF
        while only overwriting the meta page is the TokuDB-style pattern
        that keeps extents stable (growth only, no unmaps).
        """
        if not 2 <= fanout <= FANOUT_MAX:
            raise InvalidArgument(
                f"fanout must be in [2, {FANOUT_MAX}], got {fanout}")
        if first_page_offset % PAGE_SIZE != 0 or first_page_offset < PAGE_SIZE:
            raise InvalidArgument("first_page_offset must be a positive "
                                  "page multiple")
        items = list(items)
        if not items:
            raise InvalidArgument("cannot build an empty B-tree")
        for index in range(1, len(items)):
            if items[index - 1][0] >= items[index][0]:
                raise InvalidArgument("keys must be strictly increasing")

        # Build levels bottom-up.  Each level is a list of
        # (first_key, entries) pages.
        def chunk(seq: List, size: int) -> List[List]:
            return [seq[i : i + size] for i in range(0, len(seq), size)]

        levels: List[List[Tuple[int, List[Tuple[int, int]]]]] = []
        leaf_pages = [
            (group[0][0], group) for group in chunk(items, fanout)
        ]
        levels.append(leaf_pages)
        while len(levels[-1]) > 1:
            children = levels[-1]
            parents = []
            for group in chunk(list(range(len(children))), fanout):
                entries = [
                    (children[child][0], child)  # value fixed up below
                    for child in group
                ]
                parents.append((entries[0][0], entries))
            levels.append(parents)

        # Assign page offsets: meta at 0, tree pages from first_page_offset.
        offsets: List[List[int]] = []
        next_offset = first_page_offset
        for level in levels:
            level_offsets = []
            for _ in level:
                level_offsets.append(next_offset)
                next_offset += PAGE_SIZE
            offsets.append(level_offsets)

        # Reserve the whole region in one burst (one extent-change event),
        # then serialise.
        backend.preallocate(first_page_offset,
                            next_offset - first_page_offset)
        for level_index, level in enumerate(levels):
            is_leaf = level_index == 0
            for page_index, (_first, entries) in enumerate(level):
                if is_leaf:
                    encoded = encode_page(BTREE_PAGE_MAGIC, 0, entries)
                else:
                    fixed = [
                        (key, offsets[level_index - 1][child])
                        for key, child in entries
                    ]
                    encoded = encode_page(BTREE_PAGE_MAGIC, level_index,
                                          fixed)
                backend.write(offsets[level_index][page_index], encoded)

        meta = BTreeMeta(depth=len(levels), fanout=fanout,
                         root_offset=offsets[-1][0], num_keys=len(items))
        backend.write(0, meta.encode())
        return BTree(backend)

    # ------------------------------------------------------------------
    # Lookup (reference implementation; experiments use the kernel paths)
    # ------------------------------------------------------------------

    def lookup(self, key: int) -> Optional[int]:
        """Value for ``key``, or None; reads ``depth`` pages."""
        value, _pages = self.lookup_traced(key)
        return value

    def lookup_traced(self, key: int) -> Tuple[Optional[int], List[int]]:
        """Like :meth:`lookup` but also returns the page offsets visited."""
        offset = self.meta.root_offset
        visited = [offset]
        for _level in range(self.meta.depth - 1):
            page = self.backend.read(offset, PAGE_SIZE)
            _index, child = search_page(page, key)
            if child is None:
                return None, visited
            offset = child
            visited.append(offset)
        page = self.backend.read(offset, PAGE_SIZE)
        index, value = search_page(page, key)
        if index < 0:
            return None, visited
        entry_key = struct.unpack_from("<Q", page, 16 + 16 * index)[0]
        if entry_key != key:
            return None, visited
        return value, visited

    def range_scan(self, low: int, high: int) -> List[Tuple[int, int]]:
        """All (key, value) pairs with low <= key < high (leaf walk)."""
        results: List[Tuple[int, int]] = []
        self._scan_node(self.meta.root_offset, self.meta.depth, low, high,
                        results)
        return results

    def _scan_node(self, offset: int, depth: int, low: int, high: int,
                   results: List[Tuple[int, int]]) -> None:
        page = self.backend.read(offset, PAGE_SIZE)
        _magic, _level, entries = decode_page(page)
        if depth == 1:
            results.extend((k, v) for k, v in entries if low <= k < high)
            return
        for index, (sep, child) in enumerate(entries):
            next_sep = entries[index + 1][0] if index + 1 < len(entries) \
                else None
            if next_sep is not None and next_sep <= low:
                continue
            if sep >= high:
                break
            self._scan_node(child, depth - 1, low, high, results)

    @property
    def depth(self) -> int:
        return self.meta.depth

    def page_count(self) -> int:
        return self.backend.size // PAGE_SIZE

    @staticmethod
    def keys_for_depth(depth: int, fanout: int) -> int:
        """Smallest key count that yields exactly ``depth`` levels."""
        if depth < 1:
            raise InvalidArgument("depth must be >= 1")
        if depth == 1:
            return 1
        # f^(d-1) keys still fit in depth d-1; one more key forces depth d.
        return fanout ** (depth - 1) + 1
