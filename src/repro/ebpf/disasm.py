"""Disassembler: instruction lists back to assembler-compatible text.

``disassemble`` produces text that re-assembles to the identical
instruction list (branch targets become generated labels), which the tests
verify as a round-trip property.  Useful for debugging generated programs:

    print(disassemble(index_traversal_program().instructions))
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import AssemblerError
from repro.ebpf.isa import ALU_OPS, Instruction, JMP_OPS, MEM_SIZES

__all__ = ["disassemble"]


def _mem_operand(reg: int, offset: int) -> str:
    if offset == 0:
        return f"[r{reg}]"
    sign = "+" if offset >= 0 else "-"
    return f"[r{reg}{sign}{abs(offset)}]"


def _collect_labels(instructions: List[Instruction]) -> Dict[int, str]:
    targets = set()
    for pc, insn in enumerate(instructions):
        if insn.opcode == "ja" or insn.opcode in JMP_OPS:
            targets.add(pc + 1 + insn.offset)
    return {target: f"L{index}" for index, target in
            enumerate(sorted(targets))}


def disassemble(instructions: List[Instruction],
                helper_names: Optional[Dict[int, str]] = None) -> str:
    """Render ``instructions`` as re-assemblable text.

    ``helper_names`` optionally maps helper ids to names (the inverse of
    ``HelperRegistry.names()``); unknown ids are emitted numerically.
    """
    helper_names = helper_names or {}
    labels = _collect_labels(instructions)
    lines: List[str] = []
    for pc, insn in enumerate(instructions):
        if pc in labels:
            lines.append(f"{labels[pc]}:")
        lines.append("    " + _render(insn, pc, labels, helper_names))
    # A trailing branch may target one past the last instruction.
    if len(instructions) in labels:
        raise AssemblerError("branch targets past program end")
    return "\n".join(lines) + "\n"


def _render(insn: Instruction, pc: int, labels: Dict[int, str],
            helper_names: Dict[int, str]) -> str:
    op = insn.opcode
    if op == "exit":
        return "exit"
    if op == "call":
        name = helper_names.get(insn.imm)
        return f"call {name}" if name else f"call {insn.imm}"
    if op == "ja":
        return f"ja {labels[pc + 1 + insn.offset]}"
    if op == "lddw":
        return f"lddw r{insn.dst}, {insn.imm:#x}"

    base = op[:-2] if op.endswith("32") else op
    if base in ALU_OPS:
        if base == "neg":
            return f"{op} r{insn.dst}"
        source = f"r{insn.src}" if insn.src_is_reg else str(insn.imm)
        return f"{op} r{insn.dst}, {source}"
    if op in JMP_OPS:
        source = f"r{insn.src}" if insn.src_is_reg else str(insn.imm)
        return f"{op} r{insn.dst}, {source}, {labels[pc + 1 + insn.offset]}"
    if op.startswith("ldx") and op[3:] in MEM_SIZES:
        return f"{op} r{insn.dst}, {_mem_operand(insn.src, insn.offset)}"
    if op.startswith("stx") and op[3:] in MEM_SIZES:
        return f"{op} {_mem_operand(insn.dst, insn.offset)}, r{insn.src}"
    if op.startswith("st") and op[2:] in MEM_SIZES:
        return f"{op} {_mem_operand(insn.dst, insn.offset)}, {insn.imm}"
    raise AssemblerError(f"cannot disassemble {op!r}")
