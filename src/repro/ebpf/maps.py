"""BPF maps: fixed-size key/value stores shared between programs and user code.

Maps are how real eBPF programs keep state across invocations and exchange
data with user space; the storage hooks use them for per-chain statistics and
for parameter blocks.  Keys and values are fixed-width byte strings, as in
the kernel.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.errors import InvalidArgument

__all__ = ["ArrayMap", "BpfMap", "HashMap"]


class BpfMap:
    """Common behaviour for all map types."""

    kind = "map"

    def __init__(self, key_size: int, value_size: int, max_entries: int,
                 name: str = "map"):
        if key_size < 1 or value_size < 1 or max_entries < 1:
            raise InvalidArgument("map sizes must be positive")
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries
        self.name = name

    def _check_key(self, key: bytes) -> bytes:
        key = bytes(key)
        if len(key) != self.key_size:
            raise InvalidArgument(
                f"map {self.name!r} key must be {self.key_size} bytes, "
                f"got {len(key)}"
            )
        return key

    def _check_value(self, value: bytes) -> bytes:
        value = bytes(value)
        if len(value) != self.value_size:
            raise InvalidArgument(
                f"map {self.name!r} value must be {self.value_size} bytes, "
                f"got {len(value)}"
            )
        return value

    # Subclass API -----------------------------------------------------------

    def lookup(self, key: bytes) -> Optional[bytearray]:
        """The live value buffer for ``key`` (mutations persist), or None."""
        raise NotImplementedError

    def update(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def delete(self, key: bytes) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HashMap(BpfMap):
    """An open hash map with bounded entry count."""

    kind = "hash"

    def __init__(self, key_size: int, value_size: int, max_entries: int,
                 name: str = "hash"):
        super().__init__(key_size, value_size, max_entries, name)
        self._entries: Dict[bytes, bytearray] = {}

    def lookup(self, key: bytes) -> Optional[bytearray]:
        return self._entries.get(self._check_key(key))

    def update(self, key: bytes, value: bytes) -> None:
        key = self._check_key(key)
        value = self._check_value(value)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            raise InvalidArgument(f"map {self.name!r} is full")
        if key in self._entries:
            self._entries[key][:] = value
        else:
            self._entries[key] = bytearray(value)

    def delete(self, key: bytes) -> bool:
        return self._entries.pop(self._check_key(key), None) is not None

    def keys(self) -> Iterator[bytes]:
        return iter(list(self._entries.keys()))

    def __len__(self) -> int:
        return len(self._entries)


class ArrayMap(BpfMap):
    """An array map: keys are little-endian u32 indices, values preallocated."""

    kind = "array"

    def __init__(self, value_size: int, max_entries: int, name: str = "array"):
        super().__init__(4, value_size, max_entries, name)
        self._values = [bytearray(value_size) for _ in range(max_entries)]

    def _index(self, key: bytes) -> int:
        return int.from_bytes(self._check_key(key), "little")

    def lookup(self, key: bytes) -> Optional[bytearray]:
        index = self._index(key)
        if index >= self.max_entries:
            return None
        return self._values[index]

    def lookup_index(self, index: int) -> Optional[bytearray]:
        """Convenience lookup by integer index."""
        if not 0 <= index < self.max_entries:
            return None
        return self._values[index]

    def update(self, key: bytes, value: bytes) -> None:
        index = self._index(key)
        if index >= self.max_entries:
            raise InvalidArgument(
                f"array map {self.name!r} index {index} out of range"
            )
        self._values[index][:] = self._check_value(value)

    def delete(self, key: bytes) -> bool:
        # Array map entries cannot be deleted (kernel semantics); zero instead.
        index = self._index(key)
        if index >= self.max_entries:
            return False
        self._values[index][:] = bytes(self.value_size)
        return True

    def __len__(self) -> int:
        return self.max_entries
