"""Instruction set for the eBPF-subset virtual machine.

The ISA mirrors classic eBPF: eleven 64-bit registers (``r0``–``r10``, with
``r10`` the read-only frame pointer), fixed-size instructions carrying a
destination register, source register, signed 16-bit offset, and a 32-bit
(or, for ``lddw``, 64-bit) immediate.

Instructions are held symbolically as :class:`Instruction` records; an
encoder/decoder to the 8-byte on-the-wire eBPF format is provided for
fidelity (``lddw`` occupies two slots exactly as in the kernel).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

from repro.errors import AssemblerError

__all__ = [
    "ALU_OPS",
    "JMP_OPS",
    "Instruction",
    "MEM_SIZES",
    "NUM_REGISTERS",
    "STACK_SIZE",
    "decode",
    "encode",
]

#: Register count; r10 is the frame pointer.
NUM_REGISTERS = 11
FP_REG = 10

#: Per-program stack size in bytes, as in Linux.
STACK_SIZE = 512

#: Maximum instruction count accepted by the loader (classic eBPF limit).
MAX_INSNS = 4096

# Arithmetic/logic operations (operate on 64-bit registers; the assembler's
# ``32`` suffix selects 32-bit semantics with zero-extension of the result).
ALU_OPS = (
    "add",
    "sub",
    "mul",
    "div",
    "mod",
    "or",
    "and",
    "xor",
    "lsh",
    "rsh",
    "arsh",
    "mov",
    "neg",
)

# Conditional and unconditional jumps.  The ``s`` prefix denotes signed
# comparison, matching eBPF mnemonics.
JMP_OPS = (
    "ja",
    "jeq",
    "jne",
    "jgt",
    "jge",
    "jlt",
    "jle",
    "jsgt",
    "jsge",
    "jslt",
    "jsle",
    "jset",
)

#: Memory access widths in bytes, keyed by mnemonic suffix.
MEM_SIZES = {"b": 1, "h": 2, "w": 4, "dw": 8}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``opcode`` is a symbolic mnemonic string such as ``"add"``, ``"add32"``,
    ``"ldxw"``, ``"stxdw"``, ``"stw"`` (store-immediate), ``"jeq"``,
    ``"lddw"``, ``"call"``, or ``"exit"``.  ``src_is_reg`` selects between the
    register and immediate forms for ALU and jump instructions.
    """

    opcode: str
    dst: int = 0
    src: int = 0
    offset: int = 0
    imm: int = 0
    src_is_reg: bool = False

    def __post_init__(self):
        if not 0 <= self.dst < NUM_REGISTERS:
            raise AssemblerError(f"bad dst register r{self.dst} in {self.opcode}")
        if not 0 <= self.src < NUM_REGISTERS:
            raise AssemblerError(f"bad src register r{self.src} in {self.opcode}")
        if not -(2**15) <= self.offset < 2**15:
            raise AssemblerError(f"offset {self.offset} out of 16-bit range")
        if self.opcode == "lddw":
            if not -(2**63) <= self.imm < 2**64:
                raise AssemblerError("lddw immediate out of 64-bit range")
        elif not -(2**31) <= self.imm < 2**32:
            raise AssemblerError(f"immediate {self.imm} out of 32-bit range")

    def __str__(self) -> str:
        src = f"r{self.src}" if self.src_is_reg else f"{self.imm:#x}"
        return (
            f"{self.opcode} dst=r{self.dst} src={src} off={self.offset}"
            if self.opcode != "exit"
            else "exit"
        )


# ---------------------------------------------------------------------------
# Binary encoding (classic 8-byte eBPF wire format)
# ---------------------------------------------------------------------------

# Instruction class bits.
_CLS_LD = 0x00
_CLS_LDX = 0x01
_CLS_ST = 0x02
_CLS_STX = 0x03
_CLS_ALU32 = 0x04
_CLS_JMP = 0x05
_CLS_ALU64 = 0x07

_SRC_IMM = 0x00
_SRC_REG = 0x08

_SIZE_BITS = {1: 0x10, 2: 0x08, 4: 0x00, 8: 0x18}
_SIZE_FROM_BITS = {value: key for key, value in _SIZE_BITS.items()}

_ALU_CODE = {
    "add": 0x00,
    "sub": 0x10,
    "mul": 0x20,
    "div": 0x30,
    "or": 0x40,
    "and": 0x50,
    "lsh": 0x60,
    "rsh": 0x70,
    "neg": 0x80,
    "mod": 0x90,
    "xor": 0xA0,
    "mov": 0xB0,
    "arsh": 0xC0,
}
_ALU_FROM_CODE = {value: key for key, value in _ALU_CODE.items()}

_JMP_CODE = {
    "ja": 0x00,
    "jeq": 0x10,
    "jgt": 0x20,
    "jge": 0x30,
    "jset": 0x40,
    "jne": 0x50,
    "jsgt": 0x60,
    "jsge": 0x70,
    "call": 0x80,
    "exit": 0x90,
    "jlt": 0xA0,
    "jle": 0xB0,
    "jslt": 0xC0,
    "jsle": 0xD0,
}
_JMP_FROM_CODE = {value: key for key, value in _JMP_CODE.items()}

_INSN = struct.Struct("<BBhi")


def _pack(opcode_byte: int, dst: int, src: int, offset: int, imm: int) -> bytes:
    regs = (src << 4) | dst
    return _INSN.pack(opcode_byte, regs, offset, _signed32(imm & 0xFFFFFFFF))


def encode(instructions: List[Instruction]) -> bytes:
    """Encode to the 8-byte-per-slot eBPF wire format (lddw uses two slots)."""
    out = bytearray()
    for insn in instructions:
        op = insn.opcode
        if op == "lddw":
            imm64 = insn.imm & 0xFFFFFFFFFFFFFFFF
            low = imm64 & 0xFFFFFFFF
            high = (imm64 >> 32) & 0xFFFFFFFF
            opcode_byte = _CLS_LD | 0x18  # BPF_LD | BPF_DW | BPF_IMM
            out += _INSN.pack(opcode_byte, insn.dst, 0, _signed32(low))
            out += _INSN.pack(0, 0, 0, _signed32(high))
            continue
        if op == "exit":
            out += _pack(_CLS_JMP | _JMP_CODE["exit"], 0, 0, 0, 0)
            continue
        if op == "call":
            out += _pack(_CLS_JMP | _JMP_CODE["call"], 0, 0, 0, insn.imm)
            continue
        base = op[:-2] if op.endswith("32") else op
        if base in _ALU_CODE:
            cls = _CLS_ALU32 if op.endswith("32") else _CLS_ALU64
            src_bit = _SRC_REG if insn.src_is_reg else _SRC_IMM
            out += _pack(
                cls | _ALU_CODE[base] | src_bit,
                insn.dst,
                insn.src,
                insn.offset,
                insn.imm,
            )
            continue
        if op in _JMP_CODE:
            src_bit = _SRC_REG if insn.src_is_reg else _SRC_IMM
            out += _pack(
                _CLS_JMP | _JMP_CODE[op] | src_bit,
                insn.dst,
                insn.src,
                insn.offset,
                insn.imm,
            )
            continue
        if op.startswith("ldx"):
            size = MEM_SIZES[op[3:]]
            out += _pack(
                _CLS_LDX | _SIZE_BITS[size] | 0x60,  # BPF_MEM
                insn.dst,
                insn.src,
                insn.offset,
                0,
            )
            continue
        if op.startswith("stx"):
            size = MEM_SIZES[op[3:]]
            out += _pack(
                _CLS_STX | _SIZE_BITS[size] | 0x60,
                insn.dst,
                insn.src,
                insn.offset,
                0,
            )
            continue
        if op.startswith("st"):
            size = MEM_SIZES[op[2:]]
            out += _pack(
                _CLS_ST | _SIZE_BITS[size] | 0x60,
                insn.dst,
                0,
                insn.offset,
                insn.imm,
            )
            continue
        raise AssemblerError(f"cannot encode opcode {op!r}")
    return bytes(out)


def _signed32(value: int) -> int:
    return value - 2**32 if value >= 2**31 else value


def decode(blob: bytes) -> List[Instruction]:
    """Decode wire-format bytes back into :class:`Instruction` records."""
    if len(blob) % 8 != 0:
        raise AssemblerError("encoded program length is not a multiple of 8")
    slots = [_INSN.unpack(blob[i : i + 8]) for i in range(0, len(blob), 8)]
    out: List[Instruction] = []
    index = 0
    while index < len(slots):
        opcode_byte, regs, offset, imm = slots[index]
        dst = regs & 0x0F
        src = (regs >> 4) & 0x0F
        cls = opcode_byte & 0x07
        if cls == _CLS_LD and opcode_byte == (_CLS_LD | 0x18):
            if index + 1 >= len(slots):
                raise AssemblerError("truncated lddw")
            _op2, _regs2, _off2, imm_high = slots[index + 1]
            imm64 = (imm & 0xFFFFFFFF) | ((imm_high & 0xFFFFFFFF) << 32)
            out.append(Instruction("lddw", dst=dst, imm=imm64))
            index += 2
            continue
        if cls in (_CLS_ALU64, _CLS_ALU32):
            base = _ALU_FROM_CODE[opcode_byte & 0xF0]
            name = base + ("32" if cls == _CLS_ALU32 else "")
            src_is_reg = bool(opcode_byte & _SRC_REG)
            out.append(
                Instruction(name, dst=dst, src=src, offset=offset, imm=imm,
                            src_is_reg=src_is_reg)
            )
        elif cls == _CLS_JMP:
            base = _JMP_FROM_CODE[opcode_byte & 0xF0]
            if base == "exit":
                out.append(Instruction("exit"))
            elif base == "call":
                out.append(Instruction("call", imm=imm))
            else:
                src_is_reg = bool(opcode_byte & _SRC_REG)
                out.append(
                    Instruction(base, dst=dst, src=src, offset=offset, imm=imm,
                                src_is_reg=src_is_reg)
                )
        elif cls == _CLS_LDX:
            size = _SIZE_FROM_BITS[opcode_byte & 0x18]
            suffix = {1: "b", 2: "h", 4: "w", 8: "dw"}[size]
            out.append(Instruction(f"ldx{suffix}", dst=dst, src=src, offset=offset))
        elif cls == _CLS_STX:
            size = _SIZE_FROM_BITS[opcode_byte & 0x18]
            suffix = {1: "b", 2: "h", 4: "w", 8: "dw"}[size]
            out.append(Instruction(f"stx{suffix}", dst=dst, src=src, offset=offset))
        elif cls == _CLS_ST:
            size = _SIZE_FROM_BITS[opcode_byte & 0x18]
            suffix = {1: "b", 2: "h", 4: "w", 8: "dw"}[size]
            out.append(Instruction(f"st{suffix}", dst=dst, offset=offset, imm=imm))
        else:
            raise AssemblerError(f"cannot decode opcode byte {opcode_byte:#x}")
        index += 1
    return out
