"""Two-pass textual assembler for the eBPF-subset ISA.

Syntax, one instruction per line (``;`` or ``#`` starts a comment)::

    start:
        mov   r1, 42          ; immediate
        mov   r2, r1          ; register
        add32 r2, 7           ; 32-bit ALU form
        lddw  r3, 0x1122334455667788
        ldxw  r4, [r1+16]     ; load 4 bytes
        stxdw [r10-8], r4     ; store register
        stw   [r10-16], 7     ; store immediate
        jeq   r1, 42, done    ; conditional jump to label
        jlt   r1, r2, start
        ja    done
        call  trace           ; helper by name (or numeric id)
    done:
        exit

Numeric literals accept decimal, hex (``0x``), and negative values.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.errors import AssemblerError
from repro.ebpf.isa import ALU_OPS, Instruction, JMP_OPS, MEM_SIZES

__all__ = ["assemble"]

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_MEM_RE = re.compile(r"^\[\s*r(\d+)\s*(?:([+-])\s*(\w+)\s*)?\]$")
_REG_RE = re.compile(r"^r(\d+)$")
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _parse_int(token: str, context: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"bad integer {token!r} in {context}") from None


def _parse_reg(token: str, context: str) -> int:
    match = _REG_RE.match(token)
    if not match:
        raise AssemblerError(f"expected register, got {token!r} in {context}")
    reg = int(match.group(1))
    if reg > 10:
        raise AssemblerError(f"no such register r{reg} in {context}")
    return reg


def _parse_mem(token: str, context: str) -> "tuple[int, int]":
    match = _MEM_RE.match(token)
    if not match:
        raise AssemblerError(f"expected [rN+off], got {token!r} in {context}")
    reg = int(match.group(1))
    if reg > 10:
        raise AssemblerError(f"no such register r{reg} in {context}")
    offset = 0
    if match.group(3) is not None:
        offset = _parse_int(match.group(3), context)
        if match.group(2) == "-":
            offset = -offset
    return reg, offset


def _split_operands(rest: str) -> List[str]:
    """Split an operand string on top-level commas (none occur in brackets)."""
    parts = [part.strip() for part in rest.split(",")]
    return [part for part in parts if part]


def assemble(
    source: str,
    helpers: Optional[Dict[str, int]] = None,
) -> List[Instruction]:
    """Assemble ``source`` into an instruction list.

    ``helpers`` maps helper names to ids for ``call name`` syntax; ``call``
    with a numeric operand always works.
    """
    helpers = helpers or {}

    # Pass 1: strip comments, collect labels and raw instruction lines.
    lines: List["tuple[int, str]"] = []  # (source line number, text)
    labels: Dict[str, int] = {}
    for lineno, raw in enumerate(source.splitlines(), start=1):
        text = raw.split(";", 1)[0].split("#", 1)[0].strip()
        if not text:
            continue
        label_match = _LABEL_RE.match(text)
        if label_match:
            name = label_match.group(1)
            if name in labels:
                raise AssemblerError(f"duplicate label {name!r} (line {lineno})")
            labels[name] = len(lines)
            continue
        lines.append((lineno, text))

    # Pass 2: encode each line.
    out: List[Instruction] = []
    for pc, (lineno, text) in enumerate(lines):
        context = f"line {lineno}: {text!r}"
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        out.append(
            _encode_line(mnemonic, operands, pc, labels, helpers, context)
        )
    if not out:
        raise AssemblerError("no instructions in source")
    return out


def _branch_offset(target: str, pc: int, labels: Dict[str, int], context: str) -> int:
    if target not in labels:
        raise AssemblerError(f"unknown label {target!r} in {context}")
    return labels[target] - pc - 1


def _encode_line(
    mnemonic: str,
    operands: List[str],
    pc: int,
    labels: Dict[str, int],
    helpers: Dict[str, int],
    context: str,
) -> Instruction:
    if mnemonic == "exit":
        if operands:
            raise AssemblerError(f"exit takes no operands in {context}")
        return Instruction("exit")

    if mnemonic == "call":
        if len(operands) != 1:
            raise AssemblerError(f"call takes one operand in {context}")
        target = operands[0]
        if _NAME_RE.match(target) and target in helpers:
            return Instruction("call", imm=helpers[target])
        if _NAME_RE.match(target) and not target.lstrip("-").isdigit():
            raise AssemblerError(f"unknown helper {target!r} in {context}")
        return Instruction("call", imm=_parse_int(target, context))

    if mnemonic == "ja":
        if len(operands) != 1:
            raise AssemblerError(f"ja takes one label in {context}")
        return Instruction(
            "ja", offset=_branch_offset(operands[0], pc, labels, context)
        )

    if mnemonic == "lddw":
        if len(operands) != 2:
            raise AssemblerError(f"lddw takes reg, imm64 in {context}")
        dst = _parse_reg(operands[0], context)
        return Instruction("lddw", dst=dst, imm=_parse_int(operands[1], context))

    base = mnemonic[:-2] if mnemonic.endswith("32") else mnemonic
    if base in ALU_OPS:
        if base == "neg":
            if len(operands) != 1:
                raise AssemblerError(f"neg takes one register in {context}")
            return Instruction(mnemonic, dst=_parse_reg(operands[0], context))
        if len(operands) != 2:
            raise AssemblerError(f"{mnemonic} takes dst, src in {context}")
        dst = _parse_reg(operands[0], context)
        if _REG_RE.match(operands[1]):
            return Instruction(
                mnemonic, dst=dst, src=_parse_reg(operands[1], context),
                src_is_reg=True,
            )
        return Instruction(mnemonic, dst=dst, imm=_parse_int(operands[1], context))

    if mnemonic in JMP_OPS:
        if len(operands) != 3:
            raise AssemblerError(f"{mnemonic} takes dst, src, label in {context}")
        dst = _parse_reg(operands[0], context)
        offset = _branch_offset(operands[2], pc, labels, context)
        if _REG_RE.match(operands[1]):
            return Instruction(
                mnemonic, dst=dst, src=_parse_reg(operands[1], context),
                offset=offset, src_is_reg=True,
            )
        return Instruction(
            mnemonic, dst=dst, imm=_parse_int(operands[1], context), offset=offset
        )

    if mnemonic.startswith("ldx") and mnemonic[3:] in MEM_SIZES:
        if len(operands) != 2:
            raise AssemblerError(f"{mnemonic} takes reg, [mem] in {context}")
        dst = _parse_reg(operands[0], context)
        src, offset = _parse_mem(operands[1], context)
        return Instruction(mnemonic, dst=dst, src=src, offset=offset)

    if mnemonic.startswith("stx") and mnemonic[3:] in MEM_SIZES:
        if len(operands) != 2:
            raise AssemblerError(f"{mnemonic} takes [mem], reg in {context}")
        dst, offset = _parse_mem(operands[0], context)
        src = _parse_reg(operands[1], context)
        return Instruction(mnemonic, dst=dst, src=src, offset=offset)

    if mnemonic.startswith("st") and mnemonic[2:] in MEM_SIZES:
        if len(operands) != 2:
            raise AssemblerError(f"{mnemonic} takes [mem], imm in {context}")
        dst, offset = _parse_mem(operands[0], context)
        return Instruction(
            mnemonic, dst=dst, offset=offset, imm=_parse_int(operands[1], context)
        )

    raise AssemblerError(f"unknown mnemonic {mnemonic!r} in {context}")
