"""A from-scratch eBPF-subset virtual machine.

This package reproduces the part of Linux eBPF the paper's safety argument
rests on: a register machine with a *static verifier* that proves memory
safety and termination before a program may be attached to a kernel hook, an
interpreter with defence-in-depth runtime checks, helper functions, and maps.

Layout:

* :mod:`~repro.ebpf.isa` — instruction set and encoding.
* :mod:`~repro.ebpf.assembler` — two-pass textual assembler with labels.
* :mod:`~repro.ebpf.program` — program container plus context layout.
* :mod:`~repro.ebpf.verifier` — abstract-interpretation verifier.
* :mod:`~repro.ebpf.vm` — interpreter ("interp") and closure-compiled ("jit")
  execution engines.
* :mod:`~repro.ebpf.helpers` — helper-function registry.
* :mod:`~repro.ebpf.maps` — array and hash maps.
* :mod:`~repro.ebpf.builder` — a small Python DSL for emitting programs.
"""

from repro.ebpf.assembler import assemble
from repro.ebpf.builder import ProgramBuilder
from repro.ebpf.helpers import HelperRegistry, HelperSpec, base_registry
from repro.ebpf.isa import Instruction
from repro.ebpf.maps import ArrayMap, HashMap
from repro.ebpf.program import CtxField, CtxLayout, FieldKind, Program
from repro.ebpf.verifier import Verifier, verify
from repro.ebpf.vm import ExecutionResult, Vm

__all__ = [
    "ArrayMap",
    "CtxField",
    "CtxLayout",
    "ExecutionResult",
    "FieldKind",
    "HashMap",
    "HelperRegistry",
    "HelperSpec",
    "Instruction",
    "Program",
    "ProgramBuilder",
    "base_registry",
    "Verifier",
    "Vm",
    "assemble",
    "verify",
]
