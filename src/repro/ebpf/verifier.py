"""Static verifier: abstract interpretation over register/stack state.

Before a program may be attached to a storage hook it must pass this
verifier, which proves — without running the program on real data — that:

* no register is read before it is written;
* every load and store lands inside a region the program legitimately holds
  a pointer into (context, stack, buffers reachable from the context, map
  values), with statically bounded offsets;
* maybe-null pointers returned by ``map_lookup`` are null-checked before any
  dereference;
* helper calls match their declared signatures, including proving that
  ``(ptr, size)`` argument pairs stay in bounds for the *maximum* possible
  size value;
* the program terminates: all paths reach ``exit`` within a state budget, so
  a loop is only accepted if the analysis can unroll it to completion
  (mirroring the kernel's 1M-instruction verification cap, which the paper
  cites as the mechanism preventing unbounded I/O loops).

The scalar domain tracks unsigned ranges ``[umin, umax]``; branch outcomes
refine ranges along each edge, which is what lets bounded loops such as a
B-tree node's bounded binary search verify while an unbounded walk is
rejected by budget exhaustion.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import VerifierError
from repro.ebpf.helpers import ArgKind, HelperRegistry, RetKind
from repro.ebpf.isa import FP_REG, MEM_SIZES, STACK_SIZE
from repro.ebpf.program import FieldKind, Program

__all__ = ["VerifierStats", "Verifier", "verify"]

U64_MAX = 2**64 - 1
U32_MAX = 2**32 - 1

# Offsets a pointer may be adjusted by before we give up precision.
_OFF_LIMIT = 1 << 29


@dataclass(frozen=True)
class Scalar:
    """An integer with an unsigned range (constant when umin == umax)."""

    umin: int = 0
    umax: int = U64_MAX

    @property
    def const(self) -> Optional[int]:
        return self.umin if self.umin == self.umax else None

    def __repr__(self) -> str:
        if self.const is not None:
            return f"Scalar({self.umin})"
        return f"Scalar([{self.umin}, {self.umax}])"


UNKNOWN = Scalar()


@dataclass(frozen=True)
class Ptr:
    """A pointer into a statically sized region, with an offset range."""

    region: str
    size: int
    off_min: int = 0
    off_max: int = 0
    maybe_null: bool = False

    def __repr__(self) -> str:
        null = "?null" if self.maybe_null else ""
        return f"Ptr({self.region}+[{self.off_min},{self.off_max}]{null})"


class NotInit:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "NotInit"


NOT_INIT = NotInit()

# Stack slot contents: ("ptr", Ptr) or ("bytes", frozenset of initialised
# byte offsets within the slot).
_SLOT_COUNT = STACK_SIZE // 8


class State:
    """Abstract machine state at one program point."""

    __slots__ = ("regs", "stack", "_signature")

    def __init__(self, regs, stack):
        self.regs = regs          # tuple of 11 abstract values
        self.stack = stack        # dict slot_index -> ("ptr", Ptr)|("bytes", frozenset)
        self._signature = None

    def with_reg(self, index: int, value) -> "State":
        regs = list(self.regs)
        regs[index] = value
        return State(tuple(regs), self.stack)

    def with_stack(self, stack) -> "State":
        return State(self.regs, stack)

    def signature(self):
        """A hashable snapshot for O(1) exact-duplicate pruning."""
        if self._signature is None:
            self._signature = (
                self.regs,
                frozenset(
                    (slot, entry[0], entry[1])
                    for slot, entry in self.stack.items()
                ),
            )
        return self._signature


def _initial_state(ctx_size: int) -> State:
    regs = [NOT_INIT] * 11
    regs[1] = Ptr("ctx", ctx_size)
    regs[FP_REG] = Ptr("stack", STACK_SIZE, STACK_SIZE, STACK_SIZE)
    return State(tuple(regs), {})


@dataclass
class VerifierStats:
    """Bookkeeping returned on success."""

    states_explored: int = 0
    max_states_per_insn: int = 0


class Verifier:
    """One verification run over a program."""

    def __init__(self, program: Program, helpers: HelperRegistry,
                 maps: Optional[Dict[int, object]] = None,
                 state_budget: int = 200_000):
        self.program = program
        self.helpers = helpers
        self.maps = maps or {}
        self.state_budget = state_budget
        self.stats = VerifierStats()
        # Fully explored states per pc: safe to prune against (that
        # exploration provably reached exit on every path).  Exact
        # duplicates are pruned through the signature set in O(1); the
        # subsumption scan is capped to recent states to keep verification
        # time linear on long bounded loops.
        self._completed: Dict[int, List[State]] = {}
        self._completed_sigs: Dict[int, set] = {}
        # States on the current DFS path per pc: matching one of these means
        # a loop iteration made no progress -> infinite loop.
        self._in_progress: Dict[int, List[State]] = {}

    _SUBSUME_SCAN_LIMIT = 32

    # ------------------------------------------------------------------

    def run(self) -> VerifierStats:
        """Depth-first exploration with kernel-style loop detection.

        A state subsumed by a *completed* state at the same pc is pruned
        (that more-general exploration already terminated safely).  A state
        subsumed by an *ancestor on the current path* is an infinite loop and
        is rejected — pruning against an ancestor would wrongly certify
        termination.
        """
        insns = self.program.instructions
        self._check_jump_targets()

        # Explicit DFS frames: [pc, state, successors or None, next index].
        frames: List[list] = [
            [0, _initial_state(self.program.ctx_layout.size), None, 0]
        ]
        while frames:
            frame = frames[-1]
            pc, state, successors, index = frame
            if successors is None:
                for ancestor in self._in_progress.get(pc, ()):
                    if _subsumes(ancestor, state):
                        raise VerifierError("infinite loop detected", pc)
                if state.signature() in self._completed_sigs.get(pc, ()):
                    frames.pop()
                    continue
                recent = self._completed.get(pc, ())
                if any(_subsumes(old, state)
                       for old in recent[-self._SUBSUME_SCAN_LIMIT:]):
                    frames.pop()
                    continue
                self.stats.states_explored += 1
                if self.stats.states_explored > self.state_budget:
                    raise VerifierError(
                        "state budget exhausted — program too complex or "
                        "contains a loop the verifier cannot bound", pc)
                successors = self._step(pc, state)
                for next_pc, _next_state in successors:
                    if next_pc >= len(insns):
                        raise VerifierError(
                            "control falls off the program end", pc)
                frame[2] = successors
                self._in_progress.setdefault(pc, []).append(state)
                depth = len(self._in_progress[pc])
                if depth > self.stats.max_states_per_insn:
                    self.stats.max_states_per_insn = depth
            if frame[3] < len(frame[2]):
                next_pc, next_state = frame[2][frame[3]]
                frame[3] += 1
                frames.append([next_pc, next_state, None, 0])
            else:
                self._in_progress[pc].remove(state)
                self._completed.setdefault(pc, []).append(state)
                self._completed_sigs.setdefault(pc, set()).add(
                    state.signature())
                frames.pop()
        self.program.verified = True
        return self.stats

    def _check_jump_targets(self) -> None:
        insns = self.program.instructions
        for pc, insn in enumerate(insns):
            if insn.opcode == "ja" or insn.opcode in _JMP_REFINERS or \
                    insn.opcode == "jset":
                target = pc + 1 + insn.offset
                if not 0 <= target < len(insns):
                    raise VerifierError(
                        f"jump target {target} out of range", pc
                    )

    # ------------------------------------------------------------------
    # Transfer function
    # ------------------------------------------------------------------

    def _step(self, pc: int, state: State) -> List[Tuple[int, State]]:
        insn = self.program.instructions[pc]
        op = insn.opcode

        if op == "exit":
            r0 = state.regs[0]
            if r0 is NOT_INIT:
                raise VerifierError("exit with uninitialised r0", pc)
            if isinstance(r0, Ptr):
                raise VerifierError("exit with pointer in r0", pc)
            return []

        if op == "call":
            return [(pc + 1, self._check_call(pc, state, insn.imm))]

        if op == "ja":
            return [(pc + 1 + insn.offset, state)]

        if op == "lddw":
            value = insn.imm & U64_MAX
            return [(pc + 1, state.with_reg(insn.dst, Scalar(value, value)))]

        base = op[:-2] if op.endswith("32") else op
        if base in ("add", "sub", "mul", "div", "mod", "or", "and", "xor",
                    "lsh", "rsh", "arsh", "mov", "neg"):
            return [(pc + 1, self._check_alu(pc, state, insn, base,
                                             op.endswith("32")))]

        if op in _JMP_REFINERS or op == "jset":
            return self._check_jump(pc, state, insn, op)

        if op.startswith("ldx"):
            return [(pc + 1, self._check_load(pc, state, insn,
                                              MEM_SIZES[op[3:]]))]
        if op.startswith("stx"):
            return [(pc + 1, self._check_store(pc, state, insn,
                                               MEM_SIZES[op[3:]],
                                               from_reg=True))]
        if op.startswith("st"):
            return [(pc + 1, self._check_store(pc, state, insn,
                                               MEM_SIZES[op[2:]],
                                               from_reg=False))]

        raise VerifierError(f"unknown opcode {op!r}", pc)

    # -- ALU ------------------------------------------------------------

    def _check_alu(self, pc: int, state: State, insn, base: str,
                   is32: bool) -> State:
        if insn.dst == FP_REG:
            raise VerifierError("write to frame pointer r10", pc)
        dst_val = state.regs[insn.dst]
        if base == "neg":
            if dst_val is NOT_INIT:
                raise VerifierError(f"neg of uninitialised r{insn.dst}", pc)
            if isinstance(dst_val, Ptr):
                raise VerifierError("neg of pointer", pc)
            return state.with_reg(insn.dst, UNKNOWN if not is32 else
                                  Scalar(0, U32_MAX))

        if insn.src_is_reg:
            src_val = state.regs[insn.src]
            if src_val is NOT_INIT:
                raise VerifierError(f"use of uninitialised r{insn.src}", pc)
        else:
            imm = insn.imm & U64_MAX
            src_val = Scalar(imm, imm)

        if base == "mov":
            if is32:
                if isinstance(src_val, Ptr):
                    raise VerifierError("mov32 of pointer", pc)
                return state.with_reg(insn.dst, _clamp32(src_val))
            return state.with_reg(insn.dst, src_val)

        if dst_val is NOT_INIT:
            raise VerifierError(f"use of uninitialised r{insn.dst}", pc)

        dst_ptr = isinstance(dst_val, Ptr)
        src_ptr = isinstance(src_val, Ptr)
        if dst_ptr or src_ptr:
            if is32:
                raise VerifierError("32-bit ALU on pointer", pc)
            if (dst_ptr and dst_val.maybe_null) or \
                    (src_ptr and src_val.maybe_null):
                raise VerifierError("arithmetic on maybe-null pointer", pc)
            if base == "add":
                if dst_ptr and src_ptr:
                    raise VerifierError("pointer + pointer", pc)
                ptr, scalar = (dst_val, src_val) if dst_ptr else (src_val,
                                                                  dst_val)
                return state.with_reg(insn.dst,
                                      self._ptr_add(pc, ptr, scalar))
            if base == "sub":
                if dst_ptr and src_ptr:
                    if dst_val.region != src_val.region:
                        raise VerifierError(
                            "pointer difference across regions", pc)
                    return state.with_reg(insn.dst, UNKNOWN)
                if dst_ptr and isinstance(src_val, Scalar) and \
                        src_val.const is not None:
                    delta = (-src_val.const) & U64_MAX
                    return state.with_reg(
                        insn.dst,
                        self._ptr_add(pc, dst_val, Scalar(delta, delta)))
                raise VerifierError(
                    "pointer minus unknown value is unbounded", pc)
            raise VerifierError(f"ALU op {base!r} on pointer", pc)

        result = _scalar_alu(base, dst_val, src_val, is32)
        return state.with_reg(insn.dst, result)

    def _ptr_add(self, pc: int, ptr: Ptr, scalar) -> Ptr:
        if not isinstance(scalar, Scalar):
            raise VerifierError("pointer adjusted by pointer", pc)
        # Interpret the scalar as signed when it is a constant near 2^64
        # (assembler encodes negative immediates that way).
        smin, smax = scalar.umin, scalar.umax
        if smin > 2**63:
            smin -= 2**64
            smax -= 2**64
        if smax > _OFF_LIMIT or smin < -_OFF_LIMIT:
            raise VerifierError("pointer offset adjustment unbounded", pc)
        off_min = ptr.off_min + smin
        off_max = ptr.off_max + smax
        if off_min < -_OFF_LIMIT or off_max > _OFF_LIMIT:
            raise VerifierError("pointer offset out of tractable range", pc)
        return replace(ptr, off_min=off_min, off_max=off_max)

    # -- jumps ------------------------------------------------------------

    def _check_jump(self, pc: int, state: State, insn,
                    op: str) -> List[Tuple[int, State]]:
        dst_val = state.regs[insn.dst]
        if dst_val is NOT_INIT:
            raise VerifierError(f"jump on uninitialised r{insn.dst}", pc)
        if insn.src_is_reg:
            src_val = state.regs[insn.src]
            if src_val is NOT_INIT:
                raise VerifierError(f"jump on uninitialised r{insn.src}", pc)
        else:
            imm = insn.imm & U64_MAX
            src_val = Scalar(imm, imm)

        taken_pc = pc + 1 + insn.offset
        out: List[Tuple[int, State]] = []

        # Pointer null-checks and pointer comparisons.
        if isinstance(dst_val, Ptr) or isinstance(src_val, Ptr):
            if op not in ("jeq", "jne"):
                raise VerifierError(f"ordered comparison {op!r} on pointer",
                                    pc)
            ptr, other, ptr_reg = (
                (dst_val, src_val, insn.dst)
                if isinstance(dst_val, Ptr)
                else (src_val, dst_val, insn.src)
            )
            if isinstance(other, Ptr):
                # ptr vs ptr: both outcomes possible, no refinement.
                return [(taken_pc, state), (pc + 1, state)]
            if isinstance(other, Scalar) and other.const == 0:
                non_null = replace(ptr, maybe_null=False)
                null_scalar = Scalar(0, 0)
                if ptr.maybe_null:
                    if op == "jeq":
                        out.append((taken_pc,
                                    state.with_reg(ptr_reg, null_scalar)))
                        out.append((pc + 1, state.with_reg(ptr_reg, non_null)))
                    else:
                        out.append((taken_pc,
                                    state.with_reg(ptr_reg, non_null)))
                        out.append((pc + 1,
                                    state.with_reg(ptr_reg, null_scalar)))
                    return out
                # Definite pointer never equals NULL.
                return [(pc + 1, state)] if op == "jeq" else [(taken_pc,
                                                               state)]
            # ptr vs non-zero scalar: never equal.
            return [(pc + 1, state)] if op == "jeq" else [(taken_pc, state)]

        if op == "jset":
            if dst_val.const is not None and src_val.const is not None:
                taken = (dst_val.const & src_val.const) != 0
                return [(taken_pc if taken else pc + 1, state)]
            return [(taken_pc, state), (pc + 1, state)]

        refine = _JMP_REFINERS[op]
        results = []
        taken = refine(dst_val, src_val, True)
        if taken is not None:
            new_dst, new_src = taken
            new_state = state.with_reg(insn.dst, new_dst)
            if insn.src_is_reg:
                new_state = new_state.with_reg(insn.src, new_src)
            results.append((taken_pc, new_state))
        not_taken = refine(dst_val, src_val, False)
        if not_taken is not None:
            new_dst, new_src = not_taken
            new_state = state.with_reg(insn.dst, new_dst)
            if insn.src_is_reg:
                new_state = new_state.with_reg(insn.src, new_src)
            results.append((pc + 1, new_state))
        if not results:
            raise VerifierError("branch with no feasible outcome", pc)
        return results

    # -- memory ------------------------------------------------------------

    def _region_of(self, pc: int, ptr: Ptr):
        if ptr.maybe_null:
            raise VerifierError(
                f"dereference of maybe-null pointer into {ptr.region!r} "
                "without a null check", pc)
        return ptr

    def _check_load(self, pc: int, state: State, insn, size: int) -> State:
        base = state.regs[insn.src]
        if base is NOT_INIT:
            raise VerifierError(f"load via uninitialised r{insn.src}", pc)
        if not isinstance(base, Ptr):
            raise VerifierError(f"load via non-pointer r{insn.src}", pc)
        self._region_of(pc, base)
        lo = base.off_min + insn.offset
        hi = base.off_max + insn.offset + size

        if base.region == "ctx":
            if base.off_min != base.off_max:
                raise VerifierError("ctx access with variable offset", pc)
            layout = self.program.ctx_layout
            try:
                ctx_field = layout.field_at(lo, size)
            except KeyError:
                raise VerifierError(
                    f"ctx load at ({lo}, {size}) matches no field", pc)
            if ctx_field.kind is FieldKind.POINTER:
                return state.with_reg(
                    insn.dst, Ptr(ctx_field.region, ctx_field.region_size))
            return state.with_reg(insn.dst, _range_of_size(size))

        if base.region == "stack":
            return self._stack_load(pc, state, insn, lo, hi, size)

        if lo < 0 or hi > base.size:
            raise VerifierError(
                f"load [{lo}, {hi}) out of bounds of {base.region!r} "
                f"({base.size}B)", pc)
        return state.with_reg(insn.dst, _range_of_size(size))

    def _stack_load(self, pc: int, state: State, insn, lo: int, hi: int,
                    size: int) -> State:
        if lo < 0 or hi > STACK_SIZE:
            raise VerifierError(f"stack load [{lo}, {hi}) out of bounds", pc)
        base = state.regs[insn.src]
        if base.off_min != base.off_max:
            raise VerifierError("stack access with variable offset", pc)
        slot = lo // 8
        entry = state.stack.get(slot)
        if size == 8 and lo % 8 == 0 and entry is not None and \
                entry[0] == "ptr":
            return state.with_reg(insn.dst, entry[1])
        # Scalar load: every byte must be initialised.
        for byte in range(lo, hi):
            slot_entry = state.stack.get(byte // 8)
            if slot_entry is None:
                raise VerifierError(
                    f"read of uninitialised stack byte {byte}", pc)
            if slot_entry[0] == "ptr":
                raise VerifierError(
                    "partial read of a spilled pointer", pc)
            if (byte % 8) not in slot_entry[1]:
                raise VerifierError(
                    f"read of uninitialised stack byte {byte}", pc)
        return state.with_reg(insn.dst, _range_of_size(size))

    def _check_store(self, pc: int, state: State, insn, size: int,
                     from_reg: bool) -> State:
        base = state.regs[insn.dst]
        if base is NOT_INIT:
            raise VerifierError(f"store via uninitialised r{insn.dst}", pc)
        if not isinstance(base, Ptr):
            raise VerifierError(f"store via non-pointer r{insn.dst}", pc)
        self._region_of(pc, base)

        if from_reg:
            value = state.regs[insn.src]
            if value is NOT_INIT:
                raise VerifierError(
                    f"store of uninitialised r{insn.src}", pc)
        else:
            imm = insn.imm & U64_MAX
            value = Scalar(imm, imm)

        lo = base.off_min + insn.offset
        hi = base.off_max + insn.offset + size

        if base.region == "ctx":
            if base.off_min != base.off_max:
                raise VerifierError("ctx access with variable offset", pc)
            layout = self.program.ctx_layout
            try:
                ctx_field = layout.field_at(lo, size)
            except KeyError:
                raise VerifierError(
                    f"ctx store at ({lo}, {size}) matches no field", pc)
            if ctx_field.kind is not FieldKind.SCALAR or not ctx_field.writable:
                raise VerifierError(
                    f"ctx field {ctx_field.name!r} is not writable", pc)
            if isinstance(value, Ptr):
                raise VerifierError("pointer stored to ctx", pc)
            return state

        if base.region == "stack":
            if base.off_min != base.off_max:
                raise VerifierError("stack access with variable offset", pc)
            if lo < 0 or hi > STACK_SIZE:
                raise VerifierError(
                    f"stack store [{lo}, {hi}) out of bounds", pc)
            stack = dict(state.stack)
            if isinstance(value, Ptr):
                if size != 8 or lo % 8 != 0:
                    raise VerifierError(
                        "pointer spill must be 8-byte aligned", pc)
                if value.maybe_null:
                    raise VerifierError("spill of maybe-null pointer", pc)
                stack[lo // 8] = ("ptr", value)
                return state.with_stack(stack)
            for byte in range(lo, hi):
                slot = byte // 8
                entry = stack.get(slot)
                if entry is None or entry[0] == "ptr":
                    initialised = frozenset()
                else:
                    initialised = entry[1]
                stack[slot] = ("bytes", initialised | {byte % 8})
            return state.with_stack(stack)

        if isinstance(value, Ptr):
            raise VerifierError(
                f"pointer stored to region {base.region!r}", pc)
        if lo < 0 or hi > base.size:
            raise VerifierError(
                f"store [{lo}, {hi}) out of bounds of {base.region!r} "
                f"({base.size}B)", pc)
        writable = self._region_writable(base.region)
        if not writable:
            raise VerifierError(f"store to read-only region {base.region!r}",
                                pc)
        return state

    def _region_writable(self, region: str) -> bool:
        if region.startswith("map_value:"):
            return True
        for ctx_field in self.program.ctx_layout.fields:
            if ctx_field.kind is FieldKind.POINTER and \
                    ctx_field.region == region:
                return ctx_field.writable
        return region == "stack"

    # -- helper calls --------------------------------------------------------

    def _check_call(self, pc: int, state: State, helper_id: int) -> State:
        try:
            spec = self.helpers.spec(helper_id)
        except Exception:
            raise VerifierError(f"call to unknown helper id {helper_id}", pc)

        map_for_call = None
        map_id_for_call = None
        args = list(spec.args)
        for index, kind in enumerate(args):
            reg = 1 + index
            value = state.regs[reg]
            if value is NOT_INIT:
                raise VerifierError(
                    f"helper {spec.name!r}: r{reg} uninitialised", pc)
            if kind is ArgKind.SCALAR:
                if isinstance(value, Ptr):
                    raise VerifierError(
                        f"helper {spec.name!r}: r{reg} must be scalar", pc)
            elif kind in (ArgKind.CONST, ArgKind.MAP_ID):
                if not isinstance(value, Scalar) or value.const is None:
                    raise VerifierError(
                        f"helper {spec.name!r}: r{reg} must be a known "
                        "constant", pc)
                if kind is ArgKind.MAP_ID:
                    if value.const not in self.maps:
                        raise VerifierError(
                            f"helper {spec.name!r}: unknown map id "
                            f"{value.const}", pc)
                    map_for_call = self.maps[value.const]
                    map_id_for_call = value.const
            elif kind in (ArgKind.MAP_KEY, ArgKind.MAP_VALUE):
                if map_for_call is None:
                    raise VerifierError(
                        f"helper {spec.name!r}: map arg before MAP_ID", pc)
                needed = (map_for_call.key_size if kind is ArgKind.MAP_KEY
                          else map_for_call.value_size)
                self._check_mem_arg(pc, state, spec, reg, value, needed,
                                    writable=False)
            elif kind in (ArgKind.PTR_MEM, ArgKind.PTR_MEM_WRITABLE):
                size_val = state.regs[reg + 1]
                if size_val is NOT_INIT or isinstance(size_val, Ptr):
                    raise VerifierError(
                        f"helper {spec.name!r}: r{reg + 1} must be a scalar "
                        "size", pc)
                if size_val.umax > spec.max_size:
                    raise VerifierError(
                        f"helper {spec.name!r}: size in r{reg + 1} unbounded "
                        f"(umax={size_val.umax})", pc)
                self._check_mem_arg(
                    pc, state, spec, reg, value, size_val.umax,
                    writable=(kind is ArgKind.PTR_MEM_WRITABLE))
            elif kind is ArgKind.SIZE:
                continue  # validated together with its pointer
            elif kind is ArgKind.PTR_CTX:
                if not isinstance(value, Ptr) or value.region != "ctx":
                    raise VerifierError(
                        f"helper {spec.name!r}: r{reg} must be ctx pointer",
                        pc)
            else:
                raise VerifierError(
                    f"helper {spec.name!r}: unhandled arg kind {kind}", pc)

        regs = list(state.regs)
        for reg in range(1, 6):
            regs[reg] = NOT_INIT
        if spec.ret is RetKind.VOID:
            regs[0] = Scalar(0, 0)
        elif spec.ret is RetKind.MAP_VALUE_OR_NULL:
            if map_for_call is None:
                raise VerifierError(
                    f"helper {spec.name!r}: returns map value but no map",
                    pc)
            regs[0] = Ptr(f"map_value:{map_id_for_call}",
                          map_for_call.value_size, maybe_null=True)
        else:
            regs[0] = UNKNOWN
        return State(tuple(regs), state.stack)

    def _check_mem_arg(self, pc: int, state: State, spec, reg: int, value,
                       needed: int, writable: bool) -> None:
        if not isinstance(value, Ptr):
            raise VerifierError(
                f"helper {spec.name!r}: r{reg} must be a pointer", pc)
        self._region_of(pc, value)
        if needed == 0:
            return
        lo = value.off_min
        hi = value.off_max + needed
        if value.region == "stack":
            if lo < 0 or hi > STACK_SIZE:
                raise VerifierError(
                    f"helper {spec.name!r}: stack arg [{lo}, {hi}) out of "
                    "bounds", pc)
            if not writable:
                for byte in range(lo, hi):
                    entry = state.stack.get(byte // 8)
                    if entry is None or entry[0] == "ptr" or \
                            (byte % 8) not in entry[1]:
                        raise VerifierError(
                            f"helper {spec.name!r}: stack byte {byte} "
                            "uninitialised", pc)
            return
        if value.region == "ctx":
            raise VerifierError(
                f"helper {spec.name!r}: raw ctx memory may not be passed",
                pc)
        if lo < 0 or hi > value.size:
            raise VerifierError(
                f"helper {spec.name!r}: arg [{lo}, {hi}) out of bounds of "
                f"{value.region!r} ({value.size}B)", pc)
        if writable and not self._region_writable(value.region):
            raise VerifierError(
                f"helper {spec.name!r}: region {value.region!r} is "
                "read-only", pc)


# ---------------------------------------------------------------------------
# Scalar arithmetic and branch refinement
# ---------------------------------------------------------------------------


def _range_of_size(size: int) -> Scalar:
    return Scalar(0, (1 << (8 * size)) - 1)


def _clamp32(value: Scalar) -> Scalar:
    if value.umax <= U32_MAX:
        return value
    return Scalar(0, U32_MAX)


def _scalar_alu(base: str, a: Scalar, b: Scalar, is32: bool) -> Scalar:
    if is32:
        a = _clamp32(a) if a.umax <= U32_MAX else Scalar(0, U32_MAX)
        b = _clamp32(b) if b.umax <= U32_MAX else Scalar(0, U32_MAX)
    top = U32_MAX if is32 else U64_MAX

    result = None
    if base == "add":
        if a.umax + b.umax <= top:
            result = Scalar(a.umin + b.umin, a.umax + b.umax)
    elif base == "sub":
        if a.umin >= b.umax:
            result = Scalar(a.umin - b.umax, a.umax - b.umin)
    elif base == "mul":
        if a.umax * b.umax <= top:
            result = Scalar(a.umin * b.umin, a.umax * b.umax)
    elif base == "and":
        result = Scalar(0, min(a.umax, b.umax))
    elif base in ("or", "xor"):
        bits = max(a.umax, b.umax).bit_length()
        if bits < 64:
            result = Scalar(0, (1 << bits) - 1)
    elif base == "lsh":
        if b.const is not None:
            shift = b.const & (31 if is32 else 63)
            if a.umax << shift <= top:
                result = Scalar(a.umin << shift, a.umax << shift)
    elif base == "rsh":
        if b.const is not None:
            shift = b.const & (31 if is32 else 63)
            result = Scalar(a.umin >> shift, a.umax >> shift)
    elif base == "div":
        if b.const is not None and b.const > 0:
            result = Scalar(a.umin // b.const, a.umax // b.const)
    elif base == "mod":
        if b.const is not None and b.const > 0:
            if a.umax < b.const:
                result = a
            else:
                result = Scalar(0, b.const - 1)
    elif base == "arsh":
        if a.umax < 2**63 and b.const is not None:
            shift = b.const & (31 if is32 else 63)
            result = Scalar(a.umin >> shift, a.umax >> shift)

    if result is None:
        result = Scalar(0, top)
    if is32 and result.umax > U32_MAX:
        result = Scalar(0, U32_MAX)
    return result


def _refine(op):
    """Build a refinement function for an unsigned comparison.

    Returns ``fn(a, b, taken)`` yielding refined ``(a, b)`` scalars for the
    requested edge, or None if that edge is infeasible.
    """

    def refine(a: Scalar, b: Scalar, taken: bool):
        effective = op if taken else _NEGATION[op]
        if effective == "jeq":
            lo = max(a.umin, b.umin)
            hi = min(a.umax, b.umax)
            if lo > hi:
                return None
            return Scalar(lo, hi), Scalar(lo, hi)
        if effective == "jne":
            if a.const is not None and a.const == b.const:
                return None
            # Shave the boundary when one side is constant.
            new_a, new_b = a, b
            if b.const is not None:
                if a.umin == b.const and a.umin < a.umax:
                    new_a = Scalar(a.umin + 1, a.umax)
                elif a.umax == b.const and a.umin < a.umax:
                    new_a = Scalar(a.umin, a.umax - 1)
            if a.const is not None:
                if b.umin == a.const and b.umin < b.umax:
                    new_b = Scalar(b.umin + 1, b.umax)
                elif b.umax == a.const and b.umin < b.umax:
                    new_b = Scalar(b.umin, b.umax - 1)
            return new_a, new_b
        if effective == "jgt":  # a > b
            if a.umax <= b.umin:
                return None
            return (Scalar(max(a.umin, b.umin + 1), a.umax),
                    Scalar(b.umin, min(b.umax, a.umax - 1)))
        if effective == "jge":  # a >= b
            if a.umax < b.umin:
                return None
            return (Scalar(max(a.umin, b.umin), a.umax),
                    Scalar(b.umin, min(b.umax, a.umax)))
        if effective == "jlt":  # a < b
            if a.umin >= b.umax:
                return None
            return (Scalar(a.umin, min(a.umax, b.umax - 1)),
                    Scalar(max(b.umin, a.umin + 1), b.umax))
        if effective == "jle":  # a <= b
            if a.umin > b.umax:
                return None
            return (Scalar(a.umin, min(a.umax, b.umax)),
                    Scalar(max(b.umin, a.umin), b.umax))
        if effective in ("jsgt", "jsge", "jslt", "jsle"):
            # Signed comparisons: when both ranges sit in the non-negative
            # half they coincide with the unsigned refiners; otherwise give
            # up refinement but keep both edges feasible.
            if a.umax < 2**63 and b.umax < 2**63:
                unsigned = {"jsgt": "jgt", "jsge": "jge", "jslt": "jlt",
                            "jsle": "jle"}[effective]
                return _refine_table(unsigned)(a, b, True)
            return a, b
        raise AssertionError(effective)

    return refine


_NEGATION = {
    "jeq": "jne", "jne": "jeq",
    "jgt": "jle", "jle": "jgt",
    "jge": "jlt", "jlt": "jge",
    "jsgt": "jsle", "jsle": "jsgt",
    "jsge": "jslt", "jslt": "jsge",
}

_REFINERS_CACHE: Dict[str, object] = {}


def _refine_table(op: str):
    if op not in _REFINERS_CACHE:
        _REFINERS_CACHE[op] = _refine(op)
    return _REFINERS_CACHE[op]


_JMP_REFINERS = {
    op: _refine_table(op)
    for op in ("jeq", "jne", "jgt", "jge", "jlt", "jle", "jsgt", "jsge",
               "jslt", "jsle")
}


# ---------------------------------------------------------------------------
# State subsumption (pruning)
# ---------------------------------------------------------------------------


def _value_subsumes(old, new) -> bool:
    """True if having verified ``old`` covers ``new`` (old is more general)."""
    if old is NOT_INIT:
        return True  # verified without knowing the register at all
    if new is NOT_INIT:
        return False
    if isinstance(old, Scalar) and isinstance(new, Scalar):
        return old.umin <= new.umin and old.umax >= new.umax
    if isinstance(old, Ptr) and isinstance(new, Ptr):
        return (old.region == new.region and old.size == new.size and
                old.off_min <= new.off_min and old.off_max >= new.off_max and
                (old.maybe_null or not new.maybe_null))
    return False


def _subsumes(old: State, new: State) -> bool:
    for old_val, new_val in zip(old.regs, new.regs):
        if not _value_subsumes(old_val, new_val):
            return False
    # Old must have been verified with *less* stack knowledge.
    for slot, entry in old.stack.items():
        new_entry = new.stack.get(slot)
        if entry[0] == "ptr":
            if new_entry is None or new_entry[0] != "ptr" or \
                    not _value_subsumes(entry[1], new_entry[1]):
                return False
        else:
            if new_entry is None or new_entry[0] != "bytes" or \
                    not entry[1] <= new_entry[1]:
                return False
    return True


def verify(program: Program, helpers: HelperRegistry,
           maps: Optional[Dict[int, object]] = None,
           state_budget: int = 200_000) -> VerifierStats:
    """Verify ``program``; raises :class:`VerifierError` on rejection.

    On success, marks ``program.verified`` and returns exploration stats.
    """
    return Verifier(program, helpers, maps, state_budget).run()
