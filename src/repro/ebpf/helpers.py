"""Helper-function registry shared by the verifier and the VM.

A helper is declared with a :class:`HelperSpec` describing how the verifier
must type-check each argument register (``r1``–``r5``) and what lands in
``r0``, plus a Python implementation the VM dispatches to.

The argument model is a practical subset of the kernel's:

* ``SCALAR`` — any initialised integer.
* ``CONST`` — an integer whose exact value is statically known.
* ``MAP_ID`` — a CONST naming a map registered with the execution
  environment; subsequent ``MAP_KEY``/``MAP_VALUE`` pointer args are checked
  against that map's key/value sizes.
* ``MAP_KEY`` / ``MAP_VALUE`` — readable pointers with at least
  ``key_size``/``value_size`` accessible bytes.
* ``PTR_MEM`` / ``PTR_MEM_WRITABLE`` — a pointer followed by a ``SIZE``
  argument; the verifier proves ``[ptr, ptr+size_max)`` stays inside the
  pointed-to region.
* ``SIZE`` — the byte count validating the preceding pointer argument.

Return kinds: ``SCALAR`` (r0 becomes an unknown integer), ``VOID`` (r0
becomes zero), or ``MAP_VALUE_OR_NULL`` (r0 is a maybe-null pointer to the
map's value; the verifier requires a null check before any dereference,
exactly like the kernel).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import BpfError

__all__ = ["ArgKind", "HelperRegistry", "HelperSpec", "RetKind"]


class ArgKind(enum.Enum):
    SCALAR = "scalar"
    CONST = "const"
    MAP_ID = "map_id"
    MAP_KEY = "map_key"
    MAP_VALUE = "map_value"
    PTR_MEM = "ptr_mem"
    PTR_MEM_WRITABLE = "ptr_mem_writable"
    SIZE = "size"
    PTR_CTX = "ptr_ctx"


class RetKind(enum.Enum):
    SCALAR = "scalar"
    VOID = "void"
    MAP_VALUE_OR_NULL = "map_value_or_null"


@dataclass(frozen=True)
class HelperSpec:
    """Static description of one helper function."""

    helper_id: int
    name: str
    args: "tuple[ArgKind, ...]" = ()
    ret: RetKind = RetKind.SCALAR
    #: Upper bound accepted for SIZE arguments (prevents huge memcpy bounds).
    max_size: int = 1 << 16

    def __post_init__(self):
        if len(self.args) > 5:
            raise BpfError(f"helper {self.name!r} takes too many args (max 5)")
        for index, kind in enumerate(self.args):
            if kind in (ArgKind.PTR_MEM, ArgKind.PTR_MEM_WRITABLE):
                if index + 1 >= len(self.args) or self.args[index + 1] is not ArgKind.SIZE:
                    raise BpfError(
                        f"helper {self.name!r}: {kind.value} arg must be "
                        "followed by a SIZE arg"
                    )
        if self.ret is RetKind.MAP_VALUE_OR_NULL and ArgKind.MAP_ID not in self.args:
            raise BpfError(
                f"helper {self.name!r}: MAP_VALUE_OR_NULL return requires a "
                "MAP_ID argument"
            )


# The VM passes itself plus the decoded argument values; implementations may
# read/write memory through Pointer arguments via the VM's accessors.
HelperImpl = Callable[..., int]


@dataclass
class HelperRegistry:
    """Id- and name-addressable collection of helpers."""

    specs: Dict[int, HelperSpec] = field(default_factory=dict)
    impls: Dict[int, HelperImpl] = field(default_factory=dict)

    def register(self, spec: HelperSpec, impl: HelperImpl) -> HelperSpec:
        if spec.helper_id in self.specs:
            raise BpfError(f"duplicate helper id {spec.helper_id}")
        if any(existing.name == spec.name for existing in self.specs.values()):
            raise BpfError(f"duplicate helper name {spec.name!r}")
        self.specs[spec.helper_id] = spec
        self.impls[spec.helper_id] = impl
        return spec

    def spec(self, helper_id: int) -> HelperSpec:
        if helper_id not in self.specs:
            raise BpfError(f"unknown helper id {helper_id}")
        return self.specs[helper_id]

    def impl(self, helper_id: int) -> HelperImpl:
        if helper_id not in self.impls:
            raise BpfError(f"unknown helper id {helper_id}")
        return self.impls[helper_id]

    def names(self) -> Dict[str, int]:
        """Assembler-friendly mapping of helper name to id."""
        return {spec.name: spec.helper_id for spec in self.specs.values()}

    def extend(self, other: "HelperRegistry") -> "HelperRegistry":
        """A new registry containing this registry's helpers plus ``other``'s."""
        merged = HelperRegistry(dict(self.specs), dict(self.impls))
        for helper_id, spec in other.specs.items():
            if helper_id in merged.specs:
                raise BpfError(f"helper id collision on {helper_id}")
            merged.specs[helper_id] = spec
            merged.impls[helper_id] = other.impls[helper_id]
        return merged


def base_registry() -> HelperRegistry:
    """The generic helpers every program may use (ids 1-9).

    Storage-specific helpers (resubmit, return-buffer, ...) live in
    :mod:`repro.core.hooks` and extend this registry from id 16 up.
    """
    registry = HelperRegistry()

    def trace(vm, value: int) -> int:
        vm.trace_append(value & 0xFFFFFFFFFFFFFFFF)
        return 0

    registry.register(
        HelperSpec(1, "trace", (ArgKind.SCALAR,), RetKind.VOID), trace
    )

    def map_lookup(vm, map_id: int, key_ptr) -> object:
        bpf_map = vm.env.map(map_id)
        key = vm.mem_read(key_ptr, bpf_map.key_size)
        value = bpf_map.lookup(key)
        if value is None:
            return 0
        return vm.map_value_pointer(map_id, value)

    registry.register(
        HelperSpec(
            2, "map_lookup", (ArgKind.MAP_ID, ArgKind.MAP_KEY),
            RetKind.MAP_VALUE_OR_NULL,
        ),
        map_lookup,
    )

    def map_update(vm, map_id: int, key_ptr, value_ptr) -> int:
        bpf_map = vm.env.map(map_id)
        key = vm.mem_read(key_ptr, bpf_map.key_size)
        value = vm.mem_read(value_ptr, bpf_map.value_size)
        try:
            bpf_map.update(key, value)
        except Exception:
            return -1 & 0xFFFFFFFFFFFFFFFF
        return 0

    registry.register(
        HelperSpec(
            3, "map_update", (ArgKind.MAP_ID, ArgKind.MAP_KEY, ArgKind.MAP_VALUE),
            RetKind.SCALAR,
        ),
        map_update,
    )

    def map_delete(vm, map_id: int, key_ptr) -> int:
        bpf_map = vm.env.map(map_id)
        key = vm.mem_read(key_ptr, bpf_map.key_size)
        return 0 if bpf_map.delete(key) else -1 & 0xFFFFFFFFFFFFFFFF

    registry.register(
        HelperSpec(4, "map_delete", (ArgKind.MAP_ID, ArgKind.MAP_KEY),
                   RetKind.SCALAR),
        map_delete,
    )

    def memcmp_helper(vm, ptr_a, size_a: int, ptr_b, size_b: int) -> int:
        length = min(size_a, size_b)
        a = vm.mem_read(ptr_a, length)
        b = vm.mem_read(ptr_b, length)
        if a == b:
            return 0
        return 1 if a > b else -1 & 0xFFFFFFFFFFFFFFFF

    registry.register(
        HelperSpec(
            5, "memcmp",
            (ArgKind.PTR_MEM, ArgKind.SIZE, ArgKind.PTR_MEM, ArgKind.SIZE),
            RetKind.SCALAR,
        ),
        memcmp_helper,
    )

    def memcpy_helper(vm, dst_ptr, dst_size: int, src_ptr, src_size: int) -> int:
        length = min(dst_size, src_size)
        vm.mem_write(dst_ptr, vm.mem_read(src_ptr, length))
        return length

    registry.register(
        HelperSpec(
            6, "memcpy",
            (ArgKind.PTR_MEM_WRITABLE, ArgKind.SIZE, ArgKind.PTR_MEM,
             ArgKind.SIZE),
            RetKind.SCALAR,
        ),
        memcpy_helper,
    )

    def ktime(vm) -> int:
        return vm.env.now()

    registry.register(HelperSpec(7, "ktime", (), RetKind.SCALAR), ktime)

    return registry
