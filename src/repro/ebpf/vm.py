"""Execution engines for verified programs.

Two modes with identical semantics and identical runtime safety checks:

* ``interp`` — decode-and-dispatch per instruction (the kernel's
  interpreter).
* ``jit`` — each instruction is pre-compiled to a Python closure once at
  load time (standing in for the kernel's JIT; the ablation benchmark
  compares the two).

Memory model.  Registers hold either 64-bit unsigned integers or
:class:`Pointer` values tagged with the :class:`Region` they point into.
Every load/store is bounds-checked against its region even though the
verifier already proved safety — the same defence-in-depth the kernel keeps
for helper arguments.  The context struct is special-cased: loads of
pointer-kind fields (per the program's :class:`~repro.ebpf.program.CtxLayout`)
materialise pointers to the buffer regions the hook passed in, and stores are
only allowed to fields the layout marks writable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Optional

from repro.errors import VmFault
from repro.perf.profiler import get_default_profiler
from repro.ebpf.helpers import ArgKind, HelperRegistry, RetKind
from repro.ebpf.isa import FP_REG, MEM_SIZES, STACK_SIZE
from repro.ebpf.maps import BpfMap
from repro.ebpf.program import FieldKind, Program

__all__ = ["ExecutionResult", "Pointer", "Region", "Vm", "VmEnvironment"]

U64 = 0xFFFFFFFFFFFFFFFF
U32 = 0xFFFFFFFF


def _s64(value: int) -> int:
    return value - 2**64 if value >= 2**63 else value


def _s32(value: int) -> int:
    return value - 2**32 if value >= 2**31 else value


class Region:
    """A named, bounds-checked span of bytes the program may touch."""

    __slots__ = ("name", "data", "readable", "writable")

    def __init__(self, name: str, data: bytearray, readable: bool = True,
                 writable: bool = True):
        self.name = name
        self.data = data
        self.readable = readable
        self.writable = writable

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Region({self.name!r}, {len(self.data)}B)"


class Pointer:
    """A runtime pointer: region + byte offset."""

    __slots__ = ("region", "offset")

    def __init__(self, region: Region, offset: int):
        self.region = region
        self.offset = offset

    def moved(self, delta: int) -> "Pointer":
        return Pointer(self.region, self.offset + delta)

    def __repr__(self) -> str:
        return f"<{self.region.name}+{self.offset}>"


class VmEnvironment:
    """Maps, helpers, and a clock shared by program runs."""

    def __init__(self, helpers: HelperRegistry,
                 maps: Optional[Dict[int, BpfMap]] = None,
                 clock: Optional[Callable[[], int]] = None):
        self.helpers = helpers
        self.maps: Dict[int, BpfMap] = dict(maps or {})
        self._clock = clock or (lambda: 0)

    def map(self, map_id: int) -> BpfMap:
        if map_id not in self.maps:
            raise VmFault(f"no map with id {map_id}")
        return self.maps[map_id]

    def now(self) -> int:
        return self._clock()


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    return_value: int
    instructions: int
    trace_log: List[int] = field(default_factory=list)
    helper_calls: int = 0


class Vm:
    """Executes a verified :class:`Program` against an environment."""

    def __init__(self, program: Program, env: VmEnvironment,
                 mode: str = "interp", max_instructions: int = 1_000_000,
                 require_verified: bool = True):
        if mode not in ("interp", "jit"):
            raise VmFault(f"unknown execution mode {mode!r}")
        if require_verified and not program.verified:
            raise VmFault(
                f"program {program.name!r} was not accepted by the verifier"
            )
        self.program = program
        self.env = env
        self.mode = mode
        self.max_instructions = max_instructions
        self.trace_log: List[int] = []
        self._compiled = None
        self._opclasses: Optional[List[str]] = None  # lazy; profiling only
        if mode == "jit":
            self._compiled = [self._compile_insn(i) for i in program.instructions]

    # ------------------------------------------------------------------
    # Memory access (also used by helper implementations)
    # ------------------------------------------------------------------

    def mem_read(self, ptr: Any, length: int) -> bytes:
        if not isinstance(ptr, Pointer):
            raise VmFault(f"read through non-pointer {ptr!r}")
        region = ptr.region
        if not region.readable:
            raise VmFault(f"region {region.name!r} is not readable")
        if ptr.offset < 0 or ptr.offset + length > len(region.data):
            raise VmFault(
                f"read [{ptr.offset}, {ptr.offset + length}) out of bounds of "
                f"{region.name!r} ({len(region.data)}B)"
            )
        return bytes(region.data[ptr.offset : ptr.offset + length])

    def mem_write(self, ptr: Any, data: bytes) -> None:
        if not isinstance(ptr, Pointer):
            raise VmFault(f"write through non-pointer {ptr!r}")
        region = ptr.region
        if not region.writable:
            raise VmFault(f"region {region.name!r} is not writable")
        if ptr.offset < 0 or ptr.offset + len(data) > len(region.data):
            raise VmFault(
                f"write [{ptr.offset}, {ptr.offset + len(data)}) out of bounds "
                f"of {region.name!r} ({len(region.data)}B)"
            )
        region.data[ptr.offset : ptr.offset + len(data)] = data

    def map_value_pointer(self, map_id: int, value: bytearray) -> Pointer:
        """Wrap a live map value buffer as a pointer (helper support)."""
        bpf_map = self.env.map(map_id)
        return Pointer(Region(f"map_value:{bpf_map.name}", value), 0)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, ctx: bytearray,
            regions: Optional[Dict[str, bytearray]] = None) -> ExecutionResult:
        """Execute the program over context bytes ``ctx``.

        ``regions`` supplies backing storage for every pointer-kind ctx field
        (keyed by the field's region name).  Output fields written by the
        program land in ``ctx`` in place.
        """
        layout = self.program.ctx_layout
        if len(ctx) < layout.size:
            raise VmFault(
                f"ctx too small: {len(ctx)} < layout size {layout.size}"
            )
        regions = regions or {}
        region_objs: Dict[str, Region] = {}
        for ctx_field in layout.fields:
            if ctx_field.kind is FieldKind.POINTER:
                if ctx_field.region not in regions:
                    raise VmFault(f"missing region {ctx_field.region!r}")
                backing = regions[ctx_field.region]
                if len(backing) != ctx_field.region_size:
                    raise VmFault(
                        f"region {ctx_field.region!r} is {len(backing)}B, "
                        f"layout declares {ctx_field.region_size}B"
                    )
                region_objs[ctx_field.region] = Region(
                    ctx_field.region, backing, writable=ctx_field.writable
                )

        state = _RunState(self, ctx, region_objs)
        self.trace_log = state.trace_log
        profiler = get_default_profiler()
        if profiler.enabled:
            return self._run_profiled(state, profiler)
        if self.mode == "jit":
            return self._run_compiled(state)
        return self._run_interp(state)

    # -- interpreter ----------------------------------------------------

    def _run_interp(self, state: "_RunState") -> ExecutionResult:
        insns = self.program.instructions
        pc = 0
        while True:
            if state.executed >= self.max_instructions:
                raise VmFault("instruction budget exhausted", pc)
            if not 0 <= pc < len(insns):
                raise VmFault(f"pc {pc} out of program", pc)
            state.executed += 1
            insn = insns[pc]
            next_pc = _step(state, insn, pc)
            if next_pc is None:
                break
            pc = next_pc
        return state.result()

    # -- compiled mode ----------------------------------------------------

    def _compile_insn(self, insn):
        """Pre-bind one instruction to a closure ``fn(state, pc) -> next_pc``."""
        return _compile(insn)

    def _run_compiled(self, state: "_RunState") -> ExecutionResult:
        compiled = self._compiled
        pc = 0
        limit = self.max_instructions
        while True:
            if state.executed >= limit:
                raise VmFault("instruction budget exhausted", pc)
            if not 0 <= pc < len(compiled):
                raise VmFault(f"pc {pc} out of program", pc)
            state.executed += 1
            next_pc = compiled[pc](state, pc)
            if next_pc is None:
                break
            pc = next_pc
        return state.result()

    # -- profiled mode ----------------------------------------------------

    def _run_profiled(self, state: "_RunState",
                      profiler) -> ExecutionResult:
        """The interpreter/compiled loop with per-opcode-class timing.

        Same semantics and instruction budget as the unprofiled loops;
        only taken when a default profiler is enabled, so neither hot
        path pays for the timing calls.
        """
        classes = self._opclasses
        if classes is None:
            classes = self._opclasses = [
                _opcode_class(insn.opcode)
                for insn in self.program.instructions
            ]
        insns = self.program.instructions
        compiled = self._compiled
        limit = self.max_instructions
        name = self.program.name
        profiler.push(("vm", f"run.{name}"))
        try:
            pc = 0
            while True:
                if state.executed >= limit:
                    raise VmFault("instruction budget exhausted", pc)
                if not 0 <= pc < len(insns):
                    raise VmFault(f"pc {pc} out of program", pc)
                state.executed += 1
                started = perf_counter_ns()
                if compiled is not None:
                    next_pc = compiled[pc](state, pc)
                else:
                    next_pc = _step(state, insns[pc], pc)
                profiler.on_opcode(classes[pc], perf_counter_ns() - started)
                if next_pc is None:
                    break
                pc = next_pc
            result = state.result()
        finally:
            wall_ns = profiler.pop()
        profiler.on_program(name, self.mode, state.executed, wall_ns)
        return result


class _RunState:
    """Per-run mutable state: registers, stack, ctx, spilled pointers."""

    __slots__ = (
        "vm", "regs", "ctx", "ctx_region", "stack", "stack_region",
        "stack_ptr_slots", "regions", "executed", "trace_log", "helper_calls",
    )

    def __init__(self, vm: Vm, ctx: bytearray, regions: Dict[str, Region]):
        self.vm = vm
        self.ctx = ctx
        self.ctx_region = Region("ctx", ctx, writable=True)
        self.stack = bytearray(STACK_SIZE)
        self.stack_region = Region("stack", self.stack)
        self.stack_ptr_slots: Dict[int, Pointer] = {}
        self.regions = regions
        self.executed = 0
        self.trace_log: List[int] = []
        self.helper_calls = 0
        self.regs: List[Any] = [0] * 11
        self.regs[1] = Pointer(self.ctx_region, 0)
        self.regs[FP_REG] = Pointer(self.stack_region, STACK_SIZE)

    def result(self) -> ExecutionResult:
        r0 = self.regs[0]
        if isinstance(r0, Pointer):
            raise VmFault("program returned a pointer in r0")
        return ExecutionResult(
            return_value=r0 & U64,
            instructions=self.executed,
            trace_log=self.trace_log,
            helper_calls=self.helper_calls,
        )


# ---------------------------------------------------------------------------
# Shared single-step semantics
# ---------------------------------------------------------------------------

_ALU_FN = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "xor": lambda a, b: a ^ b,
}

_JMP_FN = {
    "jeq": lambda a, b: a == b,
    "jne": lambda a, b: a != b,
    "jgt": lambda a, b: a > b,
    "jge": lambda a, b: a >= b,
    "jlt": lambda a, b: a < b,
    "jle": lambda a, b: a <= b,
    "jset": lambda a, b: (a & b) != 0,
    "jsgt": lambda a, b: _s64(a) > _s64(b),
    "jsge": lambda a, b: _s64(a) >= _s64(b),
    "jslt": lambda a, b: _s64(a) < _s64(b),
    "jsle": lambda a, b: _s64(a) <= _s64(b),
}


def _opcode_class(op: str) -> str:
    """Profiling bucket for an opcode: exit/call/imm/jmp/load/store/alu."""
    if op == "exit":
        return "exit"
    if op == "call":
        return "call"
    if op == "lddw":
        return "imm"
    if op == "ja" or op in _JMP_FN:
        return "jmp"
    if op.startswith("ldx"):
        return "load"
    if op.startswith("stx") or op.startswith("st"):
        return "store"
    return "alu"


def _as_scalar(value: Any, what: str, pc: int) -> int:
    if isinstance(value, Pointer):
        raise VmFault(f"{what} is a pointer, expected scalar", pc)
    return value


def _load(state: _RunState, base: Any, offset: int, size: int, pc: int) -> Any:
    if not isinstance(base, Pointer):
        raise VmFault(f"load through non-pointer {base!r}", pc)
    region = base.region
    addr = base.offset + offset
    # Context loads may materialise pointers per the layout.
    if region is state.ctx_region:
        layout = state.vm.program.ctx_layout
        try:
            ctx_field = layout.field_at(addr, size)
        except KeyError:
            raise VmFault(f"ctx load at ({addr}, {size}) hits no field", pc)
        if ctx_field.kind is FieldKind.POINTER:
            target = state.regions.get(ctx_field.region)
            if target is None:
                raise VmFault(f"region {ctx_field.region!r} unavailable", pc)
            return Pointer(target, 0)
        raw = state.ctx[addr : addr + size]
        return int.from_bytes(raw, "little")
    # Stack loads may restore a spilled pointer.
    if region is state.stack_region and size == 8:
        spilled = state.stack_ptr_slots.get(addr)
        if spilled is not None:
            return spilled
    data = state.vm.mem_read(Pointer(region, addr), size)
    return int.from_bytes(data, "little")


def _store(state: _RunState, base: Any, offset: int, size: int, value: Any,
           pc: int) -> None:
    if not isinstance(base, Pointer):
        raise VmFault(f"store through non-pointer {base!r}", pc)
    region = base.region
    addr = base.offset + offset
    if region is state.ctx_region:
        layout = state.vm.program.ctx_layout
        try:
            ctx_field = layout.field_at(addr, size)
        except KeyError:
            raise VmFault(f"ctx store at ({addr}, {size}) hits no field", pc)
        if not ctx_field.writable or ctx_field.kind is not FieldKind.SCALAR:
            raise VmFault(f"ctx field {ctx_field.name!r} is not writable", pc)
        scalar = _as_scalar(value, "ctx store value", pc)
        state.ctx[addr : addr + size] = (scalar & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )
        return
    if isinstance(value, Pointer):
        # Pointer spill: only full 8-byte aligned stack slots.
        if region is not state.stack_region or size != 8 or addr % 8 != 0:
            raise VmFault("pointer may only be spilled to aligned stack slot", pc)
        if addr < 0 or addr + 8 > STACK_SIZE:
            raise VmFault("stack spill out of bounds", pc)
        state.stack_ptr_slots[addr] = value
        state.stack[addr : addr + 8] = b"\xff" * 8  # poison raw view
        return
    if region is state.stack_region:
        # A scalar store over a spilled pointer invalidates the spill.
        for slot in list(state.stack_ptr_slots):
            if slot < addr + size and addr < slot + 8:
                del state.stack_ptr_slots[slot]
    scalar = _as_scalar(value, "store value", pc)
    state.vm.mem_write(
        Pointer(region, addr),
        (scalar & ((1 << (8 * size)) - 1)).to_bytes(size, "little"),
    )


def _alu(state: _RunState, op: str, is32: bool, dst_val: Any, src_val: Any,
         pc: int) -> Any:
    # Pointer arithmetic first.
    if op == "mov":
        return src_val if not is32 else (_as_scalar(src_val, "mov32", pc) & U32)
    if isinstance(dst_val, Pointer) or isinstance(src_val, Pointer):
        if is32:
            raise VmFault("32-bit ALU on pointer", pc)
        if op == "add":
            if isinstance(dst_val, Pointer) and isinstance(src_val, Pointer):
                raise VmFault("pointer + pointer", pc)
            if isinstance(dst_val, Pointer):
                return dst_val.moved(_s64(_as_scalar(src_val, "addend", pc)))
            return src_val.moved(_s64(_as_scalar(dst_val, "addend", pc)))
        if op == "sub":
            if isinstance(dst_val, Pointer) and isinstance(src_val, Pointer):
                if dst_val.region is not src_val.region:
                    raise VmFault("pointer difference across regions", pc)
                return (dst_val.offset - src_val.offset) & U64
            if isinstance(dst_val, Pointer):
                return dst_val.moved(-_s64(_as_scalar(src_val, "subtrahend", pc)))
        raise VmFault(f"ALU op {op!r} on pointer", pc)
    a = dst_val
    b = src_val
    if is32:
        a &= U32
        b &= U32
    if op in _ALU_FN:
        result = _ALU_FN[op](a, b)
    elif op == "lsh":
        result = a << (b & (31 if is32 else 63))
    elif op == "rsh":
        result = a >> (b & (31 if is32 else 63))
    elif op == "div":
        result = 0 if b == 0 else a // b
    elif op == "mod":
        result = a if b == 0 else a % b
    elif op == "arsh":
        shift = b & (31 if is32 else 63)
        signed = _s32(a) if is32 else _s64(a)
        result = signed >> shift
    elif op == "neg":
        result = -a
    else:
        raise VmFault(f"unknown ALU op {op!r}", pc)
    return (result & U32) if is32 else (result & U64)


def _jump_compare(op: str, a: Any, b: Any, pc: int) -> bool:
    a_ptr = isinstance(a, Pointer)
    b_ptr = isinstance(b, Pointer)
    if a_ptr or b_ptr:
        if op not in ("jeq", "jne"):
            raise VmFault(f"ordered comparison {op!r} on pointer", pc)
        if a_ptr and b_ptr:
            same = a.region is b.region and a.offset == b.offset
        else:
            # Pointer vs scalar: a live pointer never equals NULL (or any
            # scalar) — the interesting case is the post-map-lookup null
            # check, where NULL is the plain integer 0 and takes the other
            # branch.
            same = False
        return same if op == "jeq" else not same
    return _JMP_FN[op](a & U64, b & U64)


def _call_helper(state: _RunState, helper_id: int, pc: int) -> None:
    vm = state.vm
    spec = vm.env.helpers.spec(helper_id)
    impl = vm.env.helpers.impl(helper_id)
    args = []
    for index, kind in enumerate(spec.args):
        value = state.regs[1 + index]
        if kind in (ArgKind.SCALAR, ArgKind.CONST, ArgKind.MAP_ID, ArgKind.SIZE):
            args.append(_as_scalar(value, f"helper arg {index + 1}", pc) & U64)
        else:
            if not isinstance(value, Pointer):
                raise VmFault(
                    f"helper {spec.name!r} arg {index + 1} expects pointer", pc
                )
            args.append(value)
    state.helper_calls += 1
    result = impl(vm, *args)
    # Clobber caller-saved registers like the kernel ABI.
    for reg in range(1, 6):
        state.regs[reg] = 0
    if spec.ret is RetKind.VOID:
        state.regs[0] = 0
    elif spec.ret is RetKind.MAP_VALUE_OR_NULL:
        state.regs[0] = result if isinstance(result, Pointer) else 0
    else:
        state.regs[0] = _as_scalar(result, "helper return", pc) & U64


def _step(state: _RunState, insn, pc: int) -> Optional[int]:
    """Execute one instruction; returns next pc or None on exit."""
    op = insn.opcode
    regs = state.regs

    if op == "exit":
        return None
    if op == "call":
        _call_helper(state, insn.imm, pc)
        return pc + 1
    if op == "ja":
        return pc + 1 + insn.offset
    if op == "lddw":
        regs[insn.dst] = insn.imm & U64
        return pc + 1

    base = op[:-2] if op.endswith("32") else op
    if base in ("add", "sub", "mul", "div", "mod", "or", "and", "xor", "lsh",
                "rsh", "arsh", "mov", "neg"):
        if insn.dst == FP_REG:
            raise VmFault("write to frame pointer r10", pc)
        if base == "neg":
            regs[insn.dst] = _alu(state, "neg", op.endswith("32"),
                                  regs[insn.dst], 0, pc)
            return pc + 1
        src_val = regs[insn.src] if insn.src_is_reg else insn.imm & U64
        regs[insn.dst] = _alu(state, base, op.endswith("32"), regs[insn.dst],
                              src_val, pc)
        return pc + 1

    if op in _JMP_FN:
        a = regs[insn.dst]
        b = regs[insn.src] if insn.src_is_reg else insn.imm & U64
        if _jump_compare(op, a, b, pc):
            return pc + 1 + insn.offset
        return pc + 1

    if op.startswith("ldx"):
        size = MEM_SIZES[op[3:]]
        regs[insn.dst] = _load(state, regs[insn.src], insn.offset, size, pc)
        return pc + 1
    if op.startswith("stx"):
        size = MEM_SIZES[op[3:]]
        _store(state, regs[insn.dst], insn.offset, size, regs[insn.src], pc)
        return pc + 1
    if op.startswith("st"):
        size = MEM_SIZES[op[2:]]
        _store(state, regs[insn.dst], insn.offset, size, insn.imm & U64, pc)
        return pc + 1

    raise VmFault(f"unknown opcode {op!r}", pc)


def _compile(insn) -> Callable[[_RunState, int], Optional[int]]:
    """Pre-decode one instruction into a closure (the "JIT")."""
    op = insn.opcode

    if op == "exit":
        return lambda state, pc: None
    if op == "call":
        helper_id = insn.imm

        def do_call(state, pc):
            _call_helper(state, helper_id, pc)
            return pc + 1

        return do_call
    if op == "ja":
        delta = insn.offset + 1
        return lambda state, pc: pc + delta
    if op == "lddw":
        value = insn.imm & U64
        dst = insn.dst

        def do_lddw(state, pc):
            state.regs[dst] = value
            return pc + 1

        return do_lddw

    base = op[:-2] if op.endswith("32") else op
    is32 = op.endswith("32")

    if base in ("add", "sub", "mul", "div", "mod", "or", "and", "xor", "lsh",
                "rsh", "arsh", "mov", "neg"):
        dst = insn.dst
        if dst == FP_REG:
            def bad_fp(state, pc):
                raise VmFault("write to frame pointer r10", pc)
            return bad_fp
        if base == "neg":
            def do_neg(state, pc):
                state.regs[dst] = _alu(state, "neg", is32, state.regs[dst], 0, pc)
                return pc + 1
            return do_neg
        if insn.src_is_reg:
            src = insn.src

            def do_alu_reg(state, pc):
                state.regs[dst] = _alu(
                    state, base, is32, state.regs[dst], state.regs[src], pc
                )
                return pc + 1

            return do_alu_reg
        imm = insn.imm & U64

        def do_alu_imm(state, pc):
            state.regs[dst] = _alu(state, base, is32, state.regs[dst], imm, pc)
            return pc + 1

        return do_alu_imm

    if op in _JMP_FN:
        dst = insn.dst
        delta = insn.offset + 1
        if insn.src_is_reg:
            src = insn.src

            def do_jmp_reg(state, pc):
                if _jump_compare(op, state.regs[dst], state.regs[src], pc):
                    return pc + delta
                return pc + 1

            return do_jmp_reg
        imm = insn.imm & U64

        def do_jmp_imm(state, pc):
            if _jump_compare(op, state.regs[dst], imm, pc):
                return pc + delta
            return pc + 1

        return do_jmp_imm

    if op.startswith("ldx"):
        size = MEM_SIZES[op[3:]]
        dst, src, offset = insn.dst, insn.src, insn.offset

        def do_ldx(state, pc):
            state.regs[dst] = _load(state, state.regs[src], offset, size, pc)
            return pc + 1

        return do_ldx
    if op.startswith("stx"):
        size = MEM_SIZES[op[3:]]
        dst, src, offset = insn.dst, insn.src, insn.offset

        def do_stx(state, pc):
            _store(state, state.regs[dst], offset, size, state.regs[src], pc)
            return pc + 1

        return do_stx
    if op.startswith("st"):
        size = MEM_SIZES[op[2:]]
        dst, offset, imm = insn.dst, insn.offset, insn.imm & U64

        def do_st(state, pc):
            _store(state, state.regs[dst], offset, size, imm, pc)
            return pc + 1

        return do_st

    raise VmFault(f"cannot compile opcode {op!r}")
