"""Execution engines for verified programs.

Three modes with identical semantics and identical runtime safety checks:

* ``interp`` — decode-and-dispatch per instruction (the kernel's
  interpreter).
* ``jit`` — each instruction is pre-compiled to a Python closure once at
  load time (standing in for the kernel's JIT).
* ``block`` — the default: at load time the verified program is split
  into basic blocks and each straight-line run is fused into a single
  generated Python function (instruction budget checked once per block,
  no per-instruction pc bounds check, registers bound to a local), with
  block-to-block dispatch.  The ablation benchmark compares all three.

Memory model.  Registers hold either 64-bit unsigned integers or
:class:`Pointer` values tagged with the :class:`Region` they point into.
Every load/store is bounds-checked against its region even though the
verifier already proved safety — the same defence-in-depth the kernel keeps
for helper arguments.  The context struct is special-cased: loads of
pointer-kind fields (per the program's :class:`~repro.ebpf.program.CtxLayout`)
materialise pointers to the buffer regions the hook passed in, and stores are
only allowed to fields the layout marks writable.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import VmFault
from repro.perf.profiler import get_default_profiler
from repro.ebpf.helpers import ArgKind, HelperRegistry, RetKind
from repro.ebpf.isa import FP_REG, MEM_SIZES, STACK_SIZE
from repro.ebpf.maps import BpfMap
from repro.ebpf.program import FieldKind, Program

__all__ = ["ExecutionResult", "Pointer", "Region", "Vm", "VmEnvironment"]

U64 = 0xFFFFFFFFFFFFFFFF
U32 = 0xFFFFFFFF


def _s64(value: int) -> int:
    return value - 2**64 if value >= 2**63 else value


def _s32(value: int) -> int:
    return value - 2**32 if value >= 2**31 else value


class Region:
    """A named, bounds-checked span of bytes the program may touch."""

    __slots__ = ("name", "data", "readable", "writable")

    def __init__(self, name: str, data: bytearray, readable: bool = True,
                 writable: bool = True):
        self.name = name
        self.data = data
        self.readable = readable
        self.writable = writable

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Region({self.name!r}, {len(self.data)}B)"


class Pointer:
    """A runtime pointer: region + byte offset."""

    __slots__ = ("region", "offset")

    def __init__(self, region: Region, offset: int):
        self.region = region
        self.offset = offset

    def moved(self, delta: int) -> "Pointer":
        return Pointer(self.region, self.offset + delta)

    def __repr__(self) -> str:
        return f"<{self.region.name}+{self.offset}>"


class VmEnvironment:
    """Maps, helpers, and a clock shared by program runs."""

    def __init__(self, helpers: HelperRegistry,
                 maps: Optional[Dict[int, BpfMap]] = None,
                 clock: Optional[Callable[[], int]] = None):
        self.helpers = helpers
        self.maps: Dict[int, BpfMap] = dict(maps or {})
        self._clock = clock or (lambda: 0)

    def map(self, map_id: int) -> BpfMap:
        if map_id not in self.maps:
            raise VmFault(f"no map with id {map_id}")
        return self.maps[map_id]

    def now(self) -> int:
        return self._clock()


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    return_value: int
    instructions: int
    trace_log: List[int] = field(default_factory=list)
    helper_calls: int = 0


class Vm:
    """Executes a verified :class:`Program` against an environment."""

    def __init__(self, program: Program, env: VmEnvironment,
                 mode: str = "interp", max_instructions: int = 1_000_000,
                 require_verified: bool = True):
        if mode not in ("interp", "jit", "block"):
            raise VmFault(f"unknown execution mode {mode!r}")
        if require_verified and not program.verified:
            raise VmFault(
                f"program {program.name!r} was not accepted by the verifier"
            )
        self.program = program
        self.env = env
        self.mode = mode
        self.max_instructions = max_instructions
        self._trace: List[int] = []
        self._compiled = None
        self._blocks: Optional[_BlockProgram] = None
        self._opclasses: Optional[List[str]] = None  # lazy; profiling only
        if mode == "jit":
            self._compiled = [self._compile_insn(i) for i in program.instructions]
        elif mode == "block":
            self._blocks = _block_program_for(program, max_instructions)

    @property
    def trace_log(self) -> List[int]:
        """Deprecated alias for the most recent run's trace.

        The trace is per-run state: read it from the
        :class:`ExecutionResult` a run returns.  This attribute only ever
        reflects the newest run, so a shared ``Vm`` (one installation,
        many chain executions) silently loses earlier runs through it.
        """
        warnings.warn(
            "Vm.trace_log is deprecated: read trace_log from the "
            "ExecutionResult returned by Vm.run()",
            DeprecationWarning, stacklevel=2)
        return self._trace

    def trace_append(self, value: int) -> None:
        """Append to the *current run's* trace (helper support)."""
        self._trace.append(value)

    # ------------------------------------------------------------------
    # Memory access (also used by helper implementations)
    # ------------------------------------------------------------------

    def mem_read(self, ptr: Any, length: int) -> bytes:
        if not isinstance(ptr, Pointer):
            raise VmFault(f"read through non-pointer {ptr!r}")
        region = ptr.region
        if not region.readable:
            raise VmFault(f"region {region.name!r} is not readable")
        if ptr.offset < 0 or ptr.offset + length > len(region.data):
            raise VmFault(
                f"read [{ptr.offset}, {ptr.offset + length}) out of bounds of "
                f"{region.name!r} ({len(region.data)}B)"
            )
        return bytes(region.data[ptr.offset : ptr.offset + length])

    def mem_write(self, ptr: Any, data: bytes) -> None:
        if not isinstance(ptr, Pointer):
            raise VmFault(f"write through non-pointer {ptr!r}")
        region = ptr.region
        if not region.writable:
            raise VmFault(f"region {region.name!r} is not writable")
        if ptr.offset < 0 or ptr.offset + len(data) > len(region.data):
            raise VmFault(
                f"write [{ptr.offset}, {ptr.offset + len(data)}) out of bounds "
                f"of {region.name!r} ({len(region.data)}B)"
            )
        region.data[ptr.offset : ptr.offset + len(data)] = data

    def map_value_pointer(self, map_id: int, value: bytearray) -> Pointer:
        """Wrap a live map value buffer as a pointer (helper support)."""
        bpf_map = self.env.map(map_id)
        return Pointer(Region(f"map_value:{bpf_map.name}", value), 0)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, ctx: bytearray,
            regions: Optional[Dict[str, bytearray]] = None) -> ExecutionResult:
        """Execute the program over context bytes ``ctx``.

        ``regions`` supplies backing storage for every pointer-kind ctx field
        (keyed by the field's region name).  Output fields written by the
        program land in ``ctx`` in place.
        """
        layout = self.program.ctx_layout
        if len(ctx) < layout.size:
            raise VmFault(
                f"ctx too small: {len(ctx)} < layout size {layout.size}"
            )
        regions = regions or {}
        region_objs: Dict[str, Region] = {}
        for ctx_field in layout.fields:
            if ctx_field.kind is FieldKind.POINTER:
                if ctx_field.region not in regions:
                    raise VmFault(f"missing region {ctx_field.region!r}")
                backing = regions[ctx_field.region]
                if len(backing) != ctx_field.region_size:
                    raise VmFault(
                        f"region {ctx_field.region!r} is {len(backing)}B, "
                        f"layout declares {ctx_field.region_size}B"
                    )
                region_objs[ctx_field.region] = Region(
                    ctx_field.region, backing, writable=ctx_field.writable
                )

        state = _RunState(self, ctx, region_objs)
        # The trace lives in the run's state (and travels out in the
        # ExecutionResult); helpers reach it through trace_append.
        self._trace = state.trace_log
        profiler = get_default_profiler()
        if profiler.enabled:
            return self._run_profiled(state, profiler)
        mode = self.mode
        if mode == "block":
            return self._run_block(state)
        if mode == "jit":
            return self._run_compiled(state)
        return self._run_interp(state)

    # -- interpreter ----------------------------------------------------

    def _run_interp(self, state: "_RunState") -> ExecutionResult:
        insns = self.program.instructions
        pc = 0
        while True:
            if state.executed >= self.max_instructions:
                raise VmFault("instruction budget exhausted", pc)
            if not 0 <= pc < len(insns):
                raise VmFault(f"pc {pc} out of program", pc)
            state.executed += 1
            insn = insns[pc]
            next_pc = _step(state, insn, pc)
            if next_pc is None:
                break
            pc = next_pc
        return state.result()

    # -- compiled mode ----------------------------------------------------

    def _compile_insn(self, insn):
        """Pre-bind one instruction to a closure ``fn(state, pc) -> next_pc``."""
        return _compile(insn)

    def _run_compiled(self, state: "_RunState",
                      pc: int = 0) -> ExecutionResult:
        compiled = self._compiled
        if compiled is None:
            # Block mode compiles per-insn closures lazily: they are only
            # needed for the rare budget-exhaustion tail of a block.
            compiled = self._compiled = [
                self._compile_insn(i) for i in self.program.instructions]
        limit = self.max_instructions
        while True:
            if state.executed >= limit:
                raise VmFault("instruction budget exhausted", pc)
            if not 0 <= pc < len(compiled):
                raise VmFault(f"pc {pc} out of program", pc)
            state.executed += 1
            next_pc = compiled[pc](state, pc)
            if next_pc is None:
                break
            pc = next_pc
        return state.result()

    # -- block mode -------------------------------------------------------

    def _run_block(self, state: "_RunState") -> ExecutionResult:
        """Dispatch fused basic blocks until exit.

        A block function returns the next block index, ``-1`` on exit, or
        ``-2`` when its hoisted budget check sees the budget running out
        inside the block — that tail re-runs per-instruction so the fault
        lands on exactly the same instruction (with the same executed
        count) as the other tiers.
        """
        blocks = self._blocks
        funcs = blocks.funcs
        idx = 0
        nxt = 0
        try:
            while True:
                nxt = funcs[idx](state)
                if nxt < 0:
                    break
                idx = nxt
        except VmFault as fault:
            # The fused fast path charges the whole block up front; put
            # the count back to "instructions actually retired" when the
            # fault names an instruction inside the current block.
            start = blocks.starts[idx]
            size = blocks.sizes[idx]
            if start <= fault.pc < start + size:
                state.executed += fault.pc - start + 1 - size
            raise
        if nxt == -1:
            return state.result()
        # Budget tail (-2): finish per-instruction from the block start.
        return self._run_compiled(state, pc=blocks.starts[idx])

    # -- profiled mode ----------------------------------------------------

    def _run_profiled(self, state: "_RunState",
                      profiler) -> ExecutionResult:
        """The interpreter/compiled loop with per-opcode-class timing.

        Same semantics and instruction budget as the unprofiled loops;
        only taken when a default profiler is enabled, so neither hot
        path pays for the timing calls.
        """
        classes = self._opclasses
        if classes is None:
            classes = self._opclasses = [
                _opcode_class(insn.opcode)
                for insn in self.program.instructions
            ]
        insns = self.program.instructions
        compiled = self._compiled
        limit = self.max_instructions
        name = self.program.name
        profiler.push(("vm", f"run.{name}"))
        try:
            pc = 0
            while True:
                if state.executed >= limit:
                    raise VmFault("instruction budget exhausted", pc)
                if not 0 <= pc < len(insns):
                    raise VmFault(f"pc {pc} out of program", pc)
                state.executed += 1
                started = perf_counter_ns()
                if compiled is not None:
                    next_pc = compiled[pc](state, pc)
                else:
                    next_pc = _step(state, insns[pc], pc)
                profiler.on_opcode(classes[pc], perf_counter_ns() - started)
                if next_pc is None:
                    break
                pc = next_pc
            result = state.result()
        finally:
            wall_ns = profiler.pop()
        profiler.on_program(name, self.mode, state.executed, wall_ns)
        return result


class _RunState:
    """Per-run mutable state: registers, stack, ctx, spilled pointers."""

    __slots__ = (
        "vm", "regs", "ctx", "ctx_region", "stack", "stack_region",
        "stack_ptr_slots", "regions", "executed", "trace_log", "helper_calls",
    )

    def __init__(self, vm: Vm, ctx: bytearray, regions: Dict[str, Region]):
        self.vm = vm
        self.ctx = ctx
        self.ctx_region = Region("ctx", ctx, writable=True)
        self.stack = bytearray(STACK_SIZE)
        self.stack_region = Region("stack", self.stack)
        self.stack_ptr_slots: Dict[int, Pointer] = {}
        self.regions = regions
        self.executed = 0
        self.trace_log: List[int] = []
        self.helper_calls = 0
        self.regs: List[Any] = [0] * 11
        self.regs[1] = Pointer(self.ctx_region, 0)
        self.regs[FP_REG] = Pointer(self.stack_region, STACK_SIZE)

    def result(self) -> ExecutionResult:
        r0 = self.regs[0]
        if isinstance(r0, Pointer):
            raise VmFault("program returned a pointer in r0")
        return ExecutionResult(
            return_value=r0 & U64,
            instructions=self.executed,
            trace_log=self.trace_log,
            helper_calls=self.helper_calls,
        )


# ---------------------------------------------------------------------------
# Shared single-step semantics
# ---------------------------------------------------------------------------

_ALU_FN = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "xor": lambda a, b: a ^ b,
}

_JMP_FN = {
    "jeq": lambda a, b: a == b,
    "jne": lambda a, b: a != b,
    "jgt": lambda a, b: a > b,
    "jge": lambda a, b: a >= b,
    "jlt": lambda a, b: a < b,
    "jle": lambda a, b: a <= b,
    "jset": lambda a, b: (a & b) != 0,
    "jsgt": lambda a, b: _s64(a) > _s64(b),
    "jsge": lambda a, b: _s64(a) >= _s64(b),
    "jslt": lambda a, b: _s64(a) < _s64(b),
    "jsle": lambda a, b: _s64(a) <= _s64(b),
}


def _opcode_class(op: str) -> str:
    """Profiling bucket for an opcode: exit/call/imm/jmp/load/store/alu."""
    if op == "exit":
        return "exit"
    if op == "call":
        return "call"
    if op == "lddw":
        return "imm"
    if op == "ja" or op in _JMP_FN:
        return "jmp"
    if op.startswith("ldx"):
        return "load"
    if op.startswith("stx") or op.startswith("st"):
        return "store"
    return "alu"


def _as_scalar(value: Any, what: str, pc: int) -> int:
    if isinstance(value, Pointer):
        raise VmFault(f"{what} is a pointer, expected scalar", pc)
    return value


def _load(state: _RunState, base: Any, offset: int, size: int, pc: int) -> Any:
    if not isinstance(base, Pointer):
        raise VmFault(f"load through non-pointer {base!r}", pc)
    region = base.region
    addr = base.offset + offset
    # Context loads may materialise pointers per the layout.
    if region is state.ctx_region:
        layout = state.vm.program.ctx_layout
        try:
            ctx_field = layout.field_at(addr, size)
        except KeyError:
            raise VmFault(f"ctx load at ({addr}, {size}) hits no field", pc)
        if ctx_field.kind is FieldKind.POINTER:
            target = state.regions.get(ctx_field.region)
            if target is None:
                raise VmFault(f"region {ctx_field.region!r} unavailable", pc)
            return Pointer(target, 0)
        raw = state.ctx[addr : addr + size]
        return int.from_bytes(raw, "little")
    # Stack loads may restore a spilled pointer; anything short of a full
    # aligned 8-byte read over a spilled slot is rejected the way the
    # kernel rejects partial reads of spilled pointers (the raw bytes are
    # poison, never data).
    if region is state.stack_region:
        slots = state.stack_ptr_slots
        if slots:
            if size == 8:
                spilled = slots.get(addr)
                if spilled is not None:
                    return spilled
            for slot in slots:
                if slot < addr + size and addr < slot + 8:
                    raise VmFault(
                        f"partial read of spilled pointer at stack+{slot}",
                        pc)
    data = state.vm.mem_read(Pointer(region, addr), size)
    return int.from_bytes(data, "little")


def _store(state: _RunState, base: Any, offset: int, size: int, value: Any,
           pc: int) -> None:
    if not isinstance(base, Pointer):
        raise VmFault(f"store through non-pointer {base!r}", pc)
    region = base.region
    addr = base.offset + offset
    if region is state.ctx_region:
        layout = state.vm.program.ctx_layout
        try:
            ctx_field = layout.field_at(addr, size)
        except KeyError:
            raise VmFault(f"ctx store at ({addr}, {size}) hits no field", pc)
        if not ctx_field.writable or ctx_field.kind is not FieldKind.SCALAR:
            raise VmFault(f"ctx field {ctx_field.name!r} is not writable", pc)
        scalar = _as_scalar(value, "ctx store value", pc)
        state.ctx[addr : addr + size] = (scalar & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )
        return
    if isinstance(value, Pointer):
        # Pointer spill: only full 8-byte aligned stack slots.
        if region is not state.stack_region or size != 8 or addr % 8 != 0:
            raise VmFault("pointer may only be spilled to aligned stack slot", pc)
        if addr < 0 or addr + 8 > STACK_SIZE:
            raise VmFault("stack spill out of bounds", pc)
        state.stack_ptr_slots[addr] = value
        state.stack[addr : addr + 8] = b"\xff" * 8  # poison raw view
        return
    if region is state.stack_region and state.stack_ptr_slots:
        # A scalar store over a spilled pointer invalidates the spill.
        for slot in list(state.stack_ptr_slots):
            if slot < addr + size and addr < slot + 8:
                del state.stack_ptr_slots[slot]
    scalar = _as_scalar(value, "store value", pc)
    state.vm.mem_write(
        Pointer(region, addr),
        (scalar & ((1 << (8 * size)) - 1)).to_bytes(size, "little"),
    )


def _alu(state: _RunState, op: str, is32: bool, dst_val: Any, src_val: Any,
         pc: int) -> Any:
    # Pointer arithmetic first.
    if op == "mov":
        return src_val if not is32 else (_as_scalar(src_val, "mov32", pc) & U32)
    if isinstance(dst_val, Pointer) or isinstance(src_val, Pointer):
        if is32:
            raise VmFault("32-bit ALU on pointer", pc)
        if op == "add":
            if isinstance(dst_val, Pointer) and isinstance(src_val, Pointer):
                raise VmFault("pointer + pointer", pc)
            if isinstance(dst_val, Pointer):
                return dst_val.moved(_s64(_as_scalar(src_val, "addend", pc)))
            return src_val.moved(_s64(_as_scalar(dst_val, "addend", pc)))
        if op == "sub":
            if isinstance(dst_val, Pointer) and isinstance(src_val, Pointer):
                if dst_val.region is not src_val.region:
                    raise VmFault("pointer difference across regions", pc)
                return (dst_val.offset - src_val.offset) & U64
            if isinstance(dst_val, Pointer):
                return dst_val.moved(-_s64(_as_scalar(src_val, "subtrahend", pc)))
        raise VmFault(f"ALU op {op!r} on pointer", pc)
    a = dst_val
    b = src_val
    if is32:
        a &= U32
        b &= U32
    if op in _ALU_FN:
        result = _ALU_FN[op](a, b)
    elif op == "lsh":
        result = a << (b & (31 if is32 else 63))
    elif op == "rsh":
        result = a >> (b & (31 if is32 else 63))
    elif op == "div":
        result = 0 if b == 0 else a // b
    elif op == "mod":
        result = a if b == 0 else a % b
    elif op == "arsh":
        shift = b & (31 if is32 else 63)
        signed = _s32(a) if is32 else _s64(a)
        result = signed >> shift
    elif op == "neg":
        result = -a
    else:
        raise VmFault(f"unknown ALU op {op!r}", pc)
    return (result & U32) if is32 else (result & U64)


def _jump_compare(op: str, a: Any, b: Any, pc: int) -> bool:
    a_ptr = isinstance(a, Pointer)
    b_ptr = isinstance(b, Pointer)
    if a_ptr or b_ptr:
        if op not in ("jeq", "jne"):
            raise VmFault(f"ordered comparison {op!r} on pointer", pc)
        if a_ptr and b_ptr:
            same = a.region is b.region and a.offset == b.offset
        else:
            # Pointer vs scalar: a live pointer never equals NULL (or any
            # scalar) — the interesting case is the post-map-lookup null
            # check, where NULL is the plain integer 0 and takes the other
            # branch.
            same = False
        return same if op == "jeq" else not same
    return _JMP_FN[op](a & U64, b & U64)


def _call_helper(state: _RunState, helper_id: int, pc: int) -> None:
    vm = state.vm
    spec = vm.env.helpers.spec(helper_id)
    impl = vm.env.helpers.impl(helper_id)
    args = []
    for index, kind in enumerate(spec.args):
        value = state.regs[1 + index]
        if kind in (ArgKind.SCALAR, ArgKind.CONST, ArgKind.MAP_ID, ArgKind.SIZE):
            args.append(_as_scalar(value, f"helper arg {index + 1}", pc) & U64)
        else:
            if not isinstance(value, Pointer):
                raise VmFault(
                    f"helper {spec.name!r} arg {index + 1} expects pointer", pc
                )
            args.append(value)
    state.helper_calls += 1
    result = impl(vm, *args)
    # Clobber caller-saved registers like the kernel ABI.
    for reg in range(1, 6):
        state.regs[reg] = 0
    if spec.ret is RetKind.VOID:
        state.regs[0] = 0
    elif spec.ret is RetKind.MAP_VALUE_OR_NULL:
        state.regs[0] = result if isinstance(result, Pointer) else 0
    else:
        state.regs[0] = _as_scalar(result, "helper return", pc) & U64


_ALU_BASES = ("add", "sub", "mul", "div", "mod", "or", "and", "xor", "lsh",
              "rsh", "arsh", "mov", "neg")

# Opcode kinds for the interpreter's decode cache: the mnemonic string is
# parsed once per distinct opcode, not once per executed instruction.
(_K_ALU, _K_JMP, _K_LDX, _K_STX, _K_ST, _K_CALL, _K_JA, _K_LDDW, _K_EXIT,
 _K_BAD) = range(10)

_DECODE: Dict[str, Tuple[int, str, bool, int]] = {}


def _decode_op(op: str) -> Tuple[int, str, bool, int]:
    """Parse one mnemonic into ``(kind, alu_base, is32, mem_size)``."""
    if op == "exit":
        info = (_K_EXIT, "", False, 0)
    elif op == "call":
        info = (_K_CALL, "", False, 0)
    elif op == "ja":
        info = (_K_JA, "", False, 0)
    elif op == "lddw":
        info = (_K_LDDW, "", False, 0)
    elif op in _JMP_FN:
        info = (_K_JMP, "", False, 0)
    elif op.startswith("ldx"):
        info = (_K_LDX, "", False, MEM_SIZES[op[3:]])
    elif op.startswith("stx"):
        info = (_K_STX, "", False, MEM_SIZES[op[3:]])
    elif op.startswith("st"):
        info = (_K_ST, "", False, MEM_SIZES[op[2:]])
    else:
        is32 = op.endswith("32")
        base = op[:-2] if is32 else op
        if base in _ALU_BASES:
            info = (_K_ALU, base, is32, 0)
        else:
            info = (_K_BAD, "", False, 0)
    _DECODE[op] = info
    return info


def _step(state: _RunState, insn, pc: int) -> Optional[int]:
    """Execute one instruction; returns next pc or None on exit."""
    op = insn.opcode
    info = _DECODE.get(op) or _decode_op(op)
    kind = info[0]
    regs = state.regs

    if kind == _K_ALU:
        base = info[1]
        if insn.dst == FP_REG:
            raise VmFault("write to frame pointer r10", pc)
        if base == "neg":
            regs[insn.dst] = _alu(state, "neg", info[2], regs[insn.dst], 0,
                                  pc)
            return pc + 1
        src_val = regs[insn.src] if insn.src_is_reg else insn.imm & U64
        regs[insn.dst] = _alu(state, base, info[2], regs[insn.dst],
                              src_val, pc)
        return pc + 1

    if kind == _K_JMP:
        a = regs[insn.dst]
        b = regs[insn.src] if insn.src_is_reg else insn.imm & U64
        if _jump_compare(op, a, b, pc):
            return pc + 1 + insn.offset
        return pc + 1

    if kind == _K_LDX:
        regs[insn.dst] = _load(state, regs[insn.src], insn.offset, info[3],
                               pc)
        return pc + 1
    if kind == _K_STX:
        _store(state, regs[insn.dst], insn.offset, info[3], regs[insn.src],
               pc)
        return pc + 1
    if kind == _K_ST:
        _store(state, regs[insn.dst], insn.offset, info[3], insn.imm & U64,
               pc)
        return pc + 1

    if kind == _K_EXIT:
        return None
    if kind == _K_CALL:
        _call_helper(state, insn.imm, pc)
        return pc + 1
    if kind == _K_JA:
        return pc + 1 + insn.offset
    if kind == _K_LDDW:
        regs[insn.dst] = insn.imm & U64
        return pc + 1

    raise VmFault(f"unknown opcode {op!r}", pc)


def _compile(insn) -> Callable[[_RunState, int], Optional[int]]:
    """Pre-decode one instruction into a closure (the "JIT")."""
    op = insn.opcode

    if op == "exit":
        return lambda state, pc: None
    if op == "call":
        helper_id = insn.imm

        def do_call(state, pc):
            _call_helper(state, helper_id, pc)
            return pc + 1

        return do_call
    if op == "ja":
        delta = insn.offset + 1
        return lambda state, pc: pc + delta
    if op == "lddw":
        value = insn.imm & U64
        dst = insn.dst

        def do_lddw(state, pc):
            state.regs[dst] = value
            return pc + 1

        return do_lddw

    base = op[:-2] if op.endswith("32") else op
    is32 = op.endswith("32")

    if base in ("add", "sub", "mul", "div", "mod", "or", "and", "xor", "lsh",
                "rsh", "arsh", "mov", "neg"):
        dst = insn.dst
        if dst == FP_REG:
            def bad_fp(state, pc):
                raise VmFault("write to frame pointer r10", pc)
            return bad_fp
        if base == "neg":
            def do_neg(state, pc):
                state.regs[dst] = _alu(state, "neg", is32, state.regs[dst], 0, pc)
                return pc + 1
            return do_neg
        if insn.src_is_reg:
            src = insn.src

            def do_alu_reg(state, pc):
                state.regs[dst] = _alu(
                    state, base, is32, state.regs[dst], state.regs[src], pc
                )
                return pc + 1

            return do_alu_reg
        imm = insn.imm & U64

        def do_alu_imm(state, pc):
            state.regs[dst] = _alu(state, base, is32, state.regs[dst], imm, pc)
            return pc + 1

        return do_alu_imm

    if op in _JMP_FN:
        dst = insn.dst
        delta = insn.offset + 1
        if insn.src_is_reg:
            src = insn.src

            def do_jmp_reg(state, pc):
                if _jump_compare(op, state.regs[dst], state.regs[src], pc):
                    return pc + delta
                return pc + 1

            return do_jmp_reg
        imm = insn.imm & U64

        def do_jmp_imm(state, pc):
            if _jump_compare(op, state.regs[dst], imm, pc):
                return pc + delta
            return pc + 1

        return do_jmp_imm

    if op.startswith("ldx"):
        size = MEM_SIZES[op[3:]]
        dst, src, offset = insn.dst, insn.src, insn.offset

        def do_ldx(state, pc):
            state.regs[dst] = _load(state, state.regs[src], offset, size, pc)
            return pc + 1

        return do_ldx
    if op.startswith("stx"):
        size = MEM_SIZES[op[3:]]
        dst, src, offset = insn.dst, insn.src, insn.offset

        def do_stx(state, pc):
            _store(state, state.regs[dst], offset, size, state.regs[src], pc)
            return pc + 1

        return do_stx
    if op.startswith("st"):
        size = MEM_SIZES[op[2:]]
        dst, offset, imm = insn.dst, insn.offset, insn.imm & U64

        def do_st(state, pc):
            _store(state, state.regs[dst], offset, size, imm, pc)
            return pc + 1

        return do_st

    raise VmFault(f"cannot compile opcode {op!r}")


# ---------------------------------------------------------------------------
# Block compilation (the default execution tier)
# ---------------------------------------------------------------------------
#
# At load time the verified program is split into basic blocks (leaders =
# entry, jump targets, and fall-throughs of jumps/exits).  Each block is
# fused into ONE generated Python function:
#
#   * the instruction budget is checked once per block (the per-insn tail
#     only runs when the budget would expire inside the block),
#   * there is no per-instruction pc bounds check — control flow between
#     blocks is by returned block index, and every in-range target was
#     resolved at compile time,
#   * the register file is bound to a local once per block.
#
# Fast paths are guarded with exact ``__class__ is int`` checks; anything
# else (pointers, faults) falls back to the shared `_alu`/`_load`/`_store`/
# `_jump_compare` routines so fault messages and semantics stay identical
# to the other tiers.  Register invariant relied on throughout: integer
# register values are always already reduced to [0, 2**64).

class _BlockProgram:
    """Fused basic blocks of one program at one instruction budget."""

    __slots__ = ("funcs", "starts", "sizes")

    def __init__(self, funcs: List[Callable[["_RunState"], int]],
                 starts: List[int], sizes: List[int]):
        self.funcs = funcs
        self.starts = starts
        self.sizes = sizes


# Int-only expression templates.  They reproduce `_alu`'s results exactly
# for in-range integer operands (see the invariant above), skipping masks
# that are provably no-ops.
_EXPR64 = {
    "add": "({a} + {b}) & U64",
    "sub": "({a} - {b}) & U64",
    "mul": "({a} * {b}) & U64",
    "or": "{a} | {b}",
    "and": "{a} & {b}",
    "xor": "{a} ^ {b}",
    "lsh": "({a} << ({b} & 63)) & U64",
    "rsh": "{a} >> ({b} & 63)",
    "arsh": "(_s64({a}) >> ({b} & 63)) & U64",
    "div": "0 if {b} == 0 else {a} // {b}",
    "mod": "{a} if {b} == 0 else {a} % {b}",
}
_EXPR32 = {
    "add": "(({a} & U32) + ({b} & U32)) & U32",
    "sub": "(({a} & U32) - ({b} & U32)) & U32",
    "mul": "(({a} & U32) * ({b} & U32)) & U32",
    "or": "({a} & U32) | ({b} & U32)",
    "and": "{a} & {b} & U32",
    "xor": "(({a} & U32) ^ ({b} & U32))",
    "lsh": "(({a} & U32) << ({b} & 31)) & U32",
    "rsh": "({a} & U32) >> ({b} & 31)",
    "arsh": "(_s32({a} & U32) >> ({b} & 31)) & U32",
    "div": "0 if ({b} & U32) == 0 else ({a} & U32) // ({b} & U32)",
    "mod": "({a} & U32) if ({b} & U32) == 0 else ({a} & U32) % ({b} & U32)",
}
_COND = {
    "jeq": "{a} == {b}",
    "jne": "{a} != {b}",
    "jgt": "{a} > {b}",
    "jge": "{a} >= {b}",
    "jlt": "{a} < {b}",
    "jle": "{a} <= {b}",
    "jset": "({a} & {b}) != 0",
    "jsgt": "_s64({a}) > _s64({b})",
    "jsge": "_s64({a}) >= _s64({b})",
    "jslt": "_s64({a}) < _s64({b})",
    "jsle": "_s64({a}) <= _s64({b})",
}


def _emit_alu(body: List[str], insn, pc: int, base: str, is32: bool) -> None:
    dst = insn.dst
    if dst == FP_REG:
        body.append(f"raise VmFault('write to frame pointer r10', {pc})")
        return
    d = f"regs[{dst}]"
    if base == "mov":
        if insn.src_is_reg:
            if is32:
                body.append(f"_a = regs[{insn.src}]")
                body.append("if _a.__class__ is int:")
                body.append(f"    {d} = _a & U32")
                body.append("else:")
                body.append(
                    f"    {d} = _alu(state, 'mov', True, 0, _a, {pc})")
            else:
                body.append(f"{d} = regs[{insn.src}]")
        else:
            value = insn.imm & U64
            body.append(f"{d} = {value & U32 if is32 else value}")
        return
    if base == "neg":
        body.append(f"_a = {d}")
        body.append("if _a.__class__ is int:")
        if is32:
            body.append(f"    {d} = (-(_a & U32)) & U32")
        else:
            body.append(f"    {d} = (-_a) & U64")
        body.append("else:")
        body.append(f"    {d} = _alu(state, 'neg', {is32}, _a, 0, {pc})")
        return
    table = _EXPR32 if is32 else _EXPR64
    if insn.src_is_reg:
        body.append(f"_a = {d}")
        body.append(f"_b = regs[{insn.src}]")
        body.append("if _a.__class__ is int and _b.__class__ is int:")
        body.append(f"    {d} = {table[base].format(a='_a', b='_b')}")
        body.append("else:")
        body.append(f"    {d} = _alu(state, {base!r}, {is32}, _a, _b, {pc})")
    else:
        const = insn.imm & U64
        body.append(f"_a = {d}")
        body.append("if _a.__class__ is int:")
        body.append(f"    {d} = {table[base].format(a='_a', b=const)}")
        body.append("else:")
        body.append(
            f"    {d} = _alu(state, {base!r}, {is32}, _a, {const}, {pc})")


def _emit_jump(body: List[str], insn, pc: int, op: str,
               taken: str, fall: str) -> None:
    if insn.src_is_reg:
        body.append(f"_a = regs[{insn.dst}]")
        body.append(f"_b = regs[{insn.src}]")
        body.append("if _a.__class__ is int and _b.__class__ is int:")
        body.append(f"    if {_COND[op].format(a='_a', b='_b')}:")
        body.append(f"        {taken}")
        body.append(f"    {fall}")
        body.append(f"if _jump_compare({op!r}, _a, _b, {pc}):")
    else:
        const = insn.imm & U64
        body.append(f"_a = regs[{insn.dst}]")
        body.append("if _a.__class__ is int:")
        body.append(f"    if {_COND[op].format(a='_a', b=const)}:")
        body.append(f"        {taken}")
        body.append(f"    {fall}")
        body.append(f"if _jump_compare({op!r}, _a, {const}, {pc}):")
    body.append(f"    {taken}")
    body.append(fall)


def _emit_load(body: List[str], insn, pc: int, size: int) -> None:
    dst, src, off = insn.dst, insn.src, insn.offset
    slow = f"regs[{dst}] = _load(state, _p, {off}, {size}, {pc})"
    body.append(f"_p = regs[{src}]")
    body.append("if _p.__class__ is Pointer:")
    body.append("    _r = _p.region")
    body.append(f"    _o = _p.offset + {off}")
    body.append("    if (_r is state.ctx_region"
                " or (_r is state.stack_region and state.stack_ptr_slots)"
                " or not _r.readable"
                f" or _o < 0 or _o + {size} > len(_r.data)):")
    body.append(f"        {slow}")
    body.append("    else:")
    if size == 1:
        body.append(f"        regs[{dst}] = _r.data[_o]")
    else:
        body.append(f"        regs[{dst}] = "
                    f"_from_bytes(_r.data[_o:_o + {size}], 'little')")
    body.append("else:")
    body.append(f"    {slow}")


def _emit_store(body: List[str], insn, pc: int, size: int,
                value_reg: Optional[int]) -> None:
    off = insn.offset
    mask = (1 << (8 * size)) - 1
    if value_reg is None:
        const = insn.imm & U64
        value = str(const)
        guard = "if _p.__class__ is Pointer:"
        fast = (f"_r.data[_o] = {const & mask}" if size == 1 else
                f"_r.data[_o:_o + {size}] = {(const & mask).to_bytes(size, 'little')!r}")
    else:
        value = "_v"
        body.append(f"_v = regs[{value_reg}]")
        guard = "if _p.__class__ is Pointer and _v.__class__ is int:"
        fast = (f"_r.data[_o] = _v & 255" if size == 1 else
                f"_r.data[_o:_o + {size}] = "
                f"(_v & {mask}).to_bytes({size}, 'little')")
    slow = f"_store(state, _p, {off}, {size}, {value}, {pc})"
    body.append(f"_p = regs[{insn.dst}]")
    body.append(guard)
    body.append("    _r = _p.region")
    body.append(f"    _o = _p.offset + {off}")
    body.append("    if (_r is state.ctx_region or _r is state.stack_region"
                " or not _r.writable"
                f" or _o < 0 or _o + {size} > len(_r.data)):")
    body.append(f"        {slow}")
    body.append("    else:")
    body.append(f"        {fast}")
    body.append("else:")
    body.append(f"    {slow}")


def _bad_jump(state: "_RunState", target: int, limit: int) -> None:
    """Fault for a jump landing outside the program.

    Reproduces the interpreter's loop-top check order exactly: budget
    first, then the pc bounds fault (only reachable with verification
    disabled — the verifier rejects out-of-range targets).
    """
    if state.executed >= limit:
        raise VmFault("instruction budget exhausted", target)
    raise VmFault(f"pc {target} out of program", target)


def _branch_stmt(target: int, count: int,
                 index_of: Dict[int, int], limit: int) -> str:
    """Single-line statement for a taken jump to ``target``."""
    if 0 <= target < count:
        return f"return {index_of[target]}"
    return f"return _bad_jump(state, {target}, {limit})"


def _fuse_block(program: Program, start: int, end: int,
                index_of: Dict[int, int],
                limit: int) -> Tuple[Callable[["_RunState"], int], int]:
    """Compile instructions [start, end) into one block function."""
    insns = program.instructions
    count = len(insns)
    ns: Dict[str, Any] = {
        "_alu": _alu, "_load": _load, "_store": _store,
        "_call_helper": _call_helper, "_jump_compare": _jump_compare,
        "_s64": _s64, "_s32": _s32, "U64": U64, "U32": U32,
        "VmFault": VmFault, "Pointer": Pointer, "_bad_jump": _bad_jump,
        "_from_bytes": int.from_bytes, "len": len,
    }
    body: List[str] = []
    size = 0
    terminated = False
    pc = start
    while pc < end:
        insn = insns[pc]
        op = insn.opcode
        info = _DECODE.get(op) or _decode_op(op)
        kind = info[0]
        size += 1
        if kind == _K_EXIT:
            body.append("return -1")
            terminated = True
            break
        if kind == _K_JA:
            body.append(_branch_stmt(pc + 1 + insn.offset, count,
                                     index_of, limit))
            terminated = True
            break
        if kind == _K_JMP:
            taken = _branch_stmt(pc + 1 + insn.offset, count,
                                 index_of, limit)
            _emit_jump(body, insn, pc, op, taken,
                       f"return {index_of[pc + 1]}")
            terminated = True
            break
        if kind == _K_ALU:
            _emit_alu(body, insn, pc, info[1], info[2])
        elif kind == _K_LDX:
            _emit_load(body, insn, pc, info[3])
        elif kind == _K_STX:
            _emit_store(body, insn, pc, info[3], insn.src)
        elif kind == _K_ST:
            _emit_store(body, insn, pc, info[3], None)
        elif kind == _K_CALL:
            body.append(f"_call_helper(state, {insn.imm}, {pc})")
        elif kind == _K_LDDW:
            body.append(f"regs[{insn.dst}] = {insn.imm & U64}")
        else:
            body.append(f"raise VmFault('unknown opcode {op!r}', {pc})")
            terminated = True
            break
        pc += 1
    if not terminated:
        body.append(f"return {index_of[pc]}")
    lines = ["def _block(state):",
             f"    executed = state.executed + {size}",
             f"    if executed > {limit}:",
             "        return -2",
             "    state.executed = executed",
             "    regs = state.regs"]
    for stmt in body:
        for line in stmt.split("\n"):
            lines.append("    " + line)
    source = "\n".join(lines)
    code = compile(source, f"<bpf:{program.name}:block@{start}>", "exec")
    exec(code, ns)
    return ns["_block"], size


def _compile_blocks(program: Program, limit: int) -> _BlockProgram:
    insns = program.instructions
    count = len(insns)
    leaders = {0}
    for pc, insn in enumerate(insns):
        op = insn.opcode
        if op == "ja" or op in _JMP_FN:
            target = pc + 1 + insn.offset
            if 0 <= target < count:
                leaders.add(target)
            if pc + 1 < count:
                leaders.add(pc + 1)
        elif op == "exit" and pc + 1 < count:
            leaders.add(pc + 1)
    starts = sorted(leaders)
    index_of = {start: index for index, start in enumerate(starts)}
    funcs: List[Callable[["_RunState"], int]] = []
    sizes: List[int] = []
    for which, start in enumerate(starts):
        end = starts[which + 1] if which + 1 < len(starts) else count
        func, size = _fuse_block(program, start, end, index_of, limit)
        funcs.append(func)
        sizes.append(size)
    return _BlockProgram(funcs, starts, sizes)


def _block_program_for(program: Program, limit: int) -> _BlockProgram:
    """Blocks for ``program`` at budget ``limit``, cached on the program.

    One installation's Program is shared by many Vm instances (chain
    executions, remote re-verification); compiling once per (program,
    budget) keeps load cost amortised exactly like the kernel's JIT cache.
    """
    cache = getattr(program, "_block_cache", None)
    if cache is None:
        cache = {}
        try:
            program._block_cache = cache
        except AttributeError:  # frozen dataclass: compile uncached
            return _compile_blocks(program, limit)
    blocks = cache.get(limit)
    if blocks is None:
        blocks = cache[limit] = _compile_blocks(program, limit)
    return blocks
