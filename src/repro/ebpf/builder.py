"""A small Python DSL for emitting programs with symbolic labels.

The textual assembler is fine for static programs; the builder is for
programs generated from parameters (context field offsets, fanout bounds,
helper ids) — e.g. the prebuilt B-tree and SSTable traversal functions in
:mod:`repro.core.library`.

Registers are plain integers 0–10.  Example::

    b = ProgramBuilder(layout, helpers.names(), name="double")
    b.ldx("w", 0, 1, layout.offset_of("value"))   # r0 = ctx.value
    b.alu("add", 0, src=0)                        # r0 *= 2
    b.exit()
    program = b.build()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import AssemblerError
from repro.ebpf.isa import Instruction
from repro.ebpf.program import CtxLayout, Program

__all__ = ["Label", "ProgramBuilder"]


class Label:
    """A forward-referenceable jump target."""

    def __init__(self, name: str):
        self.name = name
        self.pc: Optional[int] = None

    def __repr__(self) -> str:
        where = self.pc if self.pc is not None else "?"
        return f"Label({self.name}@{where})"


class _Fixup:
    """A placeholder instruction whose branch offset awaits label placement."""

    def __init__(self, opcode: str, dst: int, src: int, imm: int,
                 src_is_reg: bool, label: Label):
        self.opcode = opcode
        self.dst = dst
        self.src = src
        self.imm = imm
        self.src_is_reg = src_is_reg
        self.label = label


class ProgramBuilder:
    """Accumulates instructions and resolves labels at :meth:`build` time."""

    def __init__(self, ctx_layout: CtxLayout,
                 helper_names: Optional[Dict[str, int]] = None,
                 name: str = "prog"):
        self.ctx_layout = ctx_layout
        self.helper_names = helper_names or {}
        self.name = name
        self._items: List[Union[Instruction, _Fixup]] = []
        self._label_count = 0

    # -- labels -------------------------------------------------------------

    def label(self, name: str = "") -> Label:
        """Create a label; call :meth:`place` to pin it."""
        self._label_count += 1
        return Label(name or f"L{self._label_count}")

    def place(self, label: Label) -> Label:
        """Pin ``label`` at the current position."""
        if label.pc is not None:
            raise AssemblerError(f"label {label.name!r} placed twice")
        label.pc = len(self._items)
        return label

    # -- instruction emitters -------------------------------------------------

    def emit(self, instruction: Instruction) -> "ProgramBuilder":
        self._items.append(instruction)
        return self

    def mov(self, dst: int, value: int) -> "ProgramBuilder":
        """dst = immediate (use lddw automatically for wide values)."""
        if -(2**31) <= value < 2**31:
            return self.emit(Instruction("mov", dst=dst, imm=value))
        return self.emit(Instruction("lddw", dst=dst, imm=value))

    def mov_reg(self, dst: int, src: int) -> "ProgramBuilder":
        return self.emit(Instruction("mov", dst=dst, src=src, src_is_reg=True))

    def alu(self, op: str, dst: int, imm: Optional[int] = None,
            src: Optional[int] = None, width: int = 64) -> "ProgramBuilder":
        """ALU op with either an immediate or a source register."""
        opcode = op + ("32" if width == 32 else "")
        if (imm is None) == (src is None):
            raise AssemblerError("alu() needs exactly one of imm/src")
        if src is not None:
            return self.emit(
                Instruction(opcode, dst=dst, src=src, src_is_reg=True))
        return self.emit(Instruction(opcode, dst=dst, imm=imm))

    def ldx(self, size: str, dst: int, src: int, offset: int = 0
            ) -> "ProgramBuilder":
        """dst = *(size *)(src + offset); size in {"b","h","w","dw"}."""
        return self.emit(
            Instruction(f"ldx{size}", dst=dst, src=src, offset=offset))

    def stx(self, size: str, dst: int, offset: int, src: int
            ) -> "ProgramBuilder":
        """*(size *)(dst + offset) = src."""
        return self.emit(
            Instruction(f"stx{size}", dst=dst, src=src, offset=offset))

    def st(self, size: str, dst: int, offset: int, imm: int
           ) -> "ProgramBuilder":
        """*(size *)(dst + offset) = immediate."""
        return self.emit(
            Instruction(f"st{size}", dst=dst, offset=offset, imm=imm))

    def jump(self, label: Label) -> "ProgramBuilder":
        self._items.append(_Fixup("ja", 0, 0, 0, False, label))
        return self

    def branch(self, op: str, dst: int, label: Label,
               imm: Optional[int] = None, src: Optional[int] = None
               ) -> "ProgramBuilder":
        """Conditional branch to ``label`` comparing dst against imm or src."""
        if (imm is None) == (src is None):
            raise AssemblerError("branch() needs exactly one of imm/src")
        if src is not None:
            self._items.append(_Fixup(op, dst, src, 0, True, label))
        else:
            self._items.append(_Fixup(op, dst, 0, imm, False, label))
        return self

    def call(self, helper: Union[str, int]) -> "ProgramBuilder":
        if isinstance(helper, str):
            if helper not in self.helper_names:
                raise AssemblerError(f"unknown helper {helper!r}")
            helper = self.helper_names[helper]
        return self.emit(Instruction("call", imm=helper))

    def exit(self) -> "ProgramBuilder":
        return self.emit(Instruction("exit"))

    def ctx_load(self, size: str, dst: int, field_name: str
                 ) -> "ProgramBuilder":
        """Load a context field by name from the ctx pointer in r1.

        Only valid while r1 still holds the context pointer (i.e. before any
        helper call clobbers it or the program moves it elsewhere).
        """
        return self.ldx(size, dst, 1, self.ctx_layout.offset_of(field_name))

    # -- finalisation ----------------------------------------------------------

    def build(self) -> Program:
        """Resolve labels and return the :class:`Program`."""
        instructions: List[Instruction] = []
        for pc, item in enumerate(self._items):
            if isinstance(item, Instruction):
                instructions.append(item)
                continue
            if item.label.pc is None:
                raise AssemblerError(
                    f"label {item.label.name!r} was never placed")
            offset = item.label.pc - pc - 1
            instructions.append(
                Instruction(item.opcode, dst=item.dst, src=item.src,
                            offset=offset, imm=item.imm,
                            src_is_reg=item.src_is_reg))
        return Program(instructions, self.ctx_layout, name=self.name)
