"""Program container and context layout descriptions.

A :class:`Program` bundles the instruction list with the *context layout* it
expects.  The context is the struct the kernel hands to the function in
``r1``; for the storage hooks it carries the block buffer pointer, buffer
length, the file offset of the completed block, a scratch-area pointer that
persists across chained resubmissions, and output fields the program writes
to request a resubmission or to select a result window (see
:mod:`repro.core.hooks`).

The verifier and VM both consume the layout: pointer-kind fields load as
bounded pointers into named memory regions, scalar fields load as integers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import AssemblerError
from repro.ebpf.isa import Instruction, MAX_INSNS

__all__ = ["CtxField", "CtxLayout", "FieldKind", "Program"]


class FieldKind(enum.Enum):
    """What a context field holds."""

    SCALAR = "scalar"
    #: Loads as a pointer into the named region (the region must be provided
    #: to the VM at run time, and its size declared in the field).
    POINTER = "pointer"


@dataclass(frozen=True)
class CtxField:
    """One field of the context struct.

    Pointer fields are 8 bytes and name the region they point into along with
    that region's size, so the verifier can bound accesses statically.
    """

    name: str
    offset: int
    size: int
    kind: FieldKind = FieldKind.SCALAR
    region: Optional[str] = None
    region_size: int = 0
    writable: bool = False

    def __post_init__(self):
        if self.size not in (1, 2, 4, 8):
            raise AssemblerError(f"ctx field {self.name!r} has bad size {self.size}")
        if self.kind is FieldKind.POINTER:
            if self.size != 8:
                raise AssemblerError(f"pointer field {self.name!r} must be 8 bytes")
            if not self.region or self.region_size <= 0:
                raise AssemblerError(
                    f"pointer field {self.name!r} needs region and region_size"
                )


class CtxLayout:
    """The set of fields of a context struct, with no overlaps."""

    def __init__(self, fields: Sequence[CtxField]):
        self.fields: List[CtxField] = sorted(fields, key=lambda f: f.offset)
        self.by_name: Dict[str, CtxField] = {}
        covered_until = 0
        for ctx_field in self.fields:
            if ctx_field.name in self.by_name:
                raise AssemblerError(f"duplicate ctx field {ctx_field.name!r}")
            if ctx_field.offset < covered_until:
                raise AssemblerError(f"ctx field {ctx_field.name!r} overlaps")
            if ctx_field.offset % ctx_field.size != 0:
                raise AssemblerError(f"ctx field {ctx_field.name!r} misaligned")
            covered_until = ctx_field.offset + ctx_field.size
            self.by_name[ctx_field.name] = ctx_field
        self.size = covered_until

    def field_at(self, offset: int, size: int) -> CtxField:
        """The field covering an exact (offset, size) access, or raise KeyError."""
        for ctx_field in self.fields:
            if ctx_field.offset == offset and ctx_field.size == size:
                return ctx_field
        raise KeyError(f"no ctx field at offset {offset} size {size}")

    def offset_of(self, name: str) -> int:
        return self.by_name[name].offset


@dataclass
class Program:
    """A loadable program: instructions plus the context layout it expects."""

    instructions: List[Instruction]
    ctx_layout: CtxLayout
    name: str = "prog"
    #: Filled in by the verifier on success (instruction states explored).
    verified: bool = field(default=False, compare=False)

    def __post_init__(self):
        if not self.instructions:
            raise AssemblerError("empty program")
        if len(self.instructions) > MAX_INSNS:
            raise AssemblerError(
                f"program too large: {len(self.instructions)} > {MAX_INSNS} insns"
            )
        if self.instructions[-1].opcode not in ("exit", "ja"):
            raise AssemblerError("program must end in exit (or an unconditional jump)")

    def __len__(self) -> int:
        return len(self.instructions)
