"""Additional verifier coverage: jset, signed branches, pointer compares,
state pruning, and the builder DSL's error handling."""

import pytest

from repro.errors import AssemblerError, VerifierError
from repro.ebpf import (
    CtxField,
    CtxLayout,
    FieldKind,
    Program,
    ProgramBuilder,
    assemble,
    base_registry,
    verify,
)
from repro.ebpf.verifier import Scalar, _scalar_alu

HELPERS = base_registry()
LAYOUT = CtxLayout(
    [
        CtxField("data", 0, 8, FieldKind.POINTER, region="data",
                 region_size=128),
        CtxField("n", 8, 8),
        CtxField("out", 16, 8, writable=True),
    ]
)


def accept(source):
    program = Program(assemble(source, HELPERS.names()), LAYOUT)
    return verify(program, HELPERS)


def reject(source, match):
    program = Program(assemble(source, HELPERS.names()), LAYOUT)
    with pytest.raises(VerifierError, match=match):
        verify(program, HELPERS)


# ---------------------------------------------------------------------------
# Branch kinds
# ---------------------------------------------------------------------------


def test_jset_constant_folds_taken():
    # 0b1010 & 0b0010 != 0 -> always taken; the dead path may be unsafe.
    accept(
        """
        mov r2, 10
        jset r2, 2, good
        ldxdw r3, [r10-8]
        mov r0, 0
        exit
    good:
        mov r0, 0
        exit
        """
    )


def test_jset_constant_folds_not_taken():
    accept(
        """
        mov r2, 8
        jset r2, 2, bad
        mov r0, 0
        exit
    bad:
        ldxdw r3, [r10-8]
        mov r0, 0
        exit
        """
    )


def test_jset_unknown_explores_both():
    reject(
        """
        ldxdw r2, [r1+8]
        jset r2, 1, bad
        mov r0, 0
        exit
    bad:
        ldxdw r3, [r10-8]
        mov r0, 0
        exit
        """,
        "uninitialised stack",
    )


def test_signed_branch_refines_nonnegative_ranges():
    # n clamped to [0, 100]; jsgt then behaves like jgt.
    accept(
        """
        ldxdw r2, [r1+0]
        ldxdw r3, [r1+8]
        jle   r3, 100, ok
        mov   r3, 100
    ok:
        jsgt  r3, 120, bad
        add   r2, r3
        ldxb  r4, [r2+0]
        mov r0, 0
        exit
    bad:
        ldxdw r5, [r10-8]
        mov r0, 0
        exit
        """
    )


def test_signed_branch_wide_range_keeps_both_edges():
    reject(
        """
        ldxdw r3, [r1+8]
        jsgt  r3, 0, pos
        mov r0, 0
        exit
    pos:
        ldxdw r5, [r10-8]
        mov r0, 0
        exit
        """,
        "uninitialised stack",
    )


def test_pointer_equality_comparison_explores_both():
    reject(
        """
        ldxdw r2, [r1+0]
        mov   r3, r2
        jeq   r2, r3, same
        mov r0, 0
        exit
    same:
        ldxdw r5, [r10-8]
        mov r0, 0
        exit
        """,
        "uninitialised stack",
    )


def test_definite_pointer_never_null():
    # jeq ptr, 0 can never be taken for a live ctx-derived pointer.
    accept(
        """
        ldxdw r2, [r1+0]
        jeq   r2, 0, dead
        mov r0, 0
        exit
    dead:
        ldxdw r5, [r10-400]
        mov r0, 0
        exit
        """
    )


# ---------------------------------------------------------------------------
# Pruning behaviour
# ---------------------------------------------------------------------------


def test_diamond_rejoin_prunes_to_linear_states():
    # Both branches normalise their temps, so the rejoined states are
    # identical and the second path prunes: states stay small.
    source_lines = ["ldxdw r2, [r1+8]", "mov r3, 0"]
    for index in range(24):
        source_lines += [
            f"jgt r2, {index * 3}, t{index}",
            "mov r4, 1",
            f"ja j{index}",
            f"t{index}:",
            "mov r4, 1",
            f"j{index}:",
            "mov r4, 0",
        ]
    source_lines += ["mov r0, 0", "exit"]
    program = Program(assemble("\n".join(source_lines)), LAYOUT)
    stats = verify(program, HELPERS, state_budget=20_000)
    # Without completed-state pruning this would be ~2^24 states.
    assert stats.states_explored < 2000


def test_loop_with_distinct_states_not_falsely_pruned():
    reject("loop:\nja loop", "infinite loop")


# ---------------------------------------------------------------------------
# Scalar transfer functions
# ---------------------------------------------------------------------------


def test_scalar_alu_add_overflow_widens():
    huge = Scalar(2**63, 2**64 - 1)
    result = _scalar_alu("add", huge, huge, is32=False)
    assert (result.umin, result.umax) == (0, 2**64 - 1)


def test_scalar_alu_and_bounds():
    result = _scalar_alu("and", Scalar(0, 2**64 - 1), Scalar(255, 255),
                         is32=False)
    assert (result.umin, result.umax) == (0, 255)


def test_scalar_alu_mod_constant():
    result = _scalar_alu("mod", Scalar(0, 2**64 - 1), Scalar(16, 16),
                         is32=False)
    assert (result.umin, result.umax) == (0, 15)


def test_scalar_alu_div_constant():
    result = _scalar_alu("div", Scalar(100, 200), Scalar(10, 10),
                         is32=False)
    assert (result.umin, result.umax) == (10, 20)


def test_scalar_alu_lsh_within_range():
    result = _scalar_alu("lsh", Scalar(1, 4), Scalar(3, 3), is32=False)
    assert (result.umin, result.umax) == (8, 32)


def test_scalar_alu_32bit_clamps():
    result = _scalar_alu("add", Scalar(2**32 - 1, 2**32 - 1),
                         Scalar(10, 10), is32=True)
    assert result.umax <= 2**32 - 1


# ---------------------------------------------------------------------------
# Builder DSL errors
# ---------------------------------------------------------------------------


def test_builder_unplaced_label_rejected():
    b = ProgramBuilder(LAYOUT)
    target = b.label("nowhere")
    b.jump(target)
    b.exit()
    with pytest.raises(AssemblerError, match="never placed"):
        b.build()


def test_builder_double_placed_label_rejected():
    b = ProgramBuilder(LAYOUT)
    label = b.label()
    b.place(label)
    with pytest.raises(AssemblerError, match="placed twice"):
        b.place(label)


def test_builder_alu_needs_exactly_one_source():
    b = ProgramBuilder(LAYOUT)
    with pytest.raises(AssemblerError):
        b.alu("add", 2)
    with pytest.raises(AssemblerError):
        b.alu("add", 2, imm=1, src=3)


def test_builder_unknown_helper_rejected():
    b = ProgramBuilder(LAYOUT)
    with pytest.raises(AssemblerError, match="unknown helper"):
        b.call("frobnicate")


def test_builder_wide_mov_uses_lddw():
    b = ProgramBuilder(LAYOUT)
    b.mov(2, 2**40)
    b.mov(0, 0)
    b.exit()
    program = b.build()
    assert program.instructions[0].opcode == "lddw"
